//! # fairsched
//!
//! Umbrella crate: re-exports the whole `fairsched` workspace behind one
//! dependency, and hosts the workspace-level examples and integration tests.
//!
//! See [`core`] (policies + experiment runner), [`workload`] (trace model and
//! synthesis), [`sim`] (the event-driven simulator), [`metrics`] (user,
//! system, and fairness metrics), [`obs`] (decision traces, runtime
//! counters, logging facade), [`cpa`] (the compute process allocator),
//! [`served`] (the `fairschedd` online scheduling service and its typed
//! client), and [`experiments`] (per-figure regeneration harness).
//!
//! Most applications only need the [`prelude`]. One `try_run_policy` call
//! simulates once and collects every requested report from that single run:
//!
//! ```
//! use fairsched::prelude::*;
//!
//! let trace = CplantModel::new(1).with_scale(0.02).generate();
//! let run = try_run_policy(
//!     &trace,
//!     &PolicySpec::baseline(),
//!     1024,
//!     &RunOptions::everything(),
//! )
//! .unwrap();
//! assert!(run.outcome.metrics().utilization > 0.0);
//! assert!(run.per_user.is_some() && run.equality.is_some() && run.resilience.is_some());
//! ```

pub use fairsched_core as core;
pub use fairsched_cpa as cpa;
pub use fairsched_experiments as experiments;
pub use fairsched_metrics as metrics;
pub use fairsched_obs as obs;
pub use fairsched_served as served;
pub use fairsched_sim as sim;
pub use fairsched_workload as workload;

/// The types most users need, in one import.
///
/// Centred on the single-pass API: [`simulate`](fairsched_sim::simulate) +
/// [`SimOptions`](fairsched_sim::SimOptions) + [`ObserverSet`] for raw
/// simulations, [`try_run_policy`] + [`RunOptions`] for one policy with any
/// subset of reports, [`try_run_policies`] / [`try_run_policies_with`] for
/// fenced parallel sweeps. The clock-decoupled core is here too —
/// [`SteppedSim`](fairsched_sim::SteppedSim) with its
/// [`SimEvent`](fairsched_sim::SimEvent)/[`Effect`](fairsched_sim::Effect)
/// contract — plus the `fairsched-served` client types for talking to a
/// running `fairschedd`.
pub mod prelude {
    pub use fairsched_core::policy::PolicySpec;
    pub use fairsched_core::runner::{
        run_policy, try_run_policy, try_run_policy_traced, OutcomeMetrics, PolicyOutcome,
        PolicyRun, RunOptions,
    };
    pub use fairsched_core::sweep::{try_run_policies, try_run_policies_with, SweepError};
    pub use fairsched_metrics::explain::{explain_wait, worst_miss, WaitBreakdown};
    pub use fairsched_metrics::fairness::fst::FstReport;
    pub use fairsched_metrics::fairness::sabin::{sabin_fsts, sabin_fsts_parallel, sabin_report};
    pub use fairsched_metrics::{
        EqualityObserver, EqualityReport, HybridFstObserver, PerUserObserver, ResilienceObserver,
        ResilienceReport, UserFairness,
    };
    pub use fairsched_obs::{
        CounterSnapshot, DecisionTracer, ProfileReport, ProfileScope, StartCause, TraceRecord,
        TraceSink,
    };
    pub use fairsched_served::{
        AdvanceResponse, Client, ClockMode, Daemon, SealResponse, ServeError, Session,
        SessionConfig, StatusResponse, SubmitRequest, SubmitResponse, VirtualClock,
    };
    pub use fairsched_sim::{
        simulate, warm_start_forkable, warm_start_supported, Effect, EngineKind, FaultConfig,
        KillPolicy, NullObserver, Observer, ObserverSet, PrefixSimulator, QueueOrder,
        ResiliencePolicy, Schedule, SimConfig, SimError, SimEvent, SimOptions, StepStatus,
        SteppedSim,
    };
    pub use fairsched_workload::job::{Job, JobId, UserId};
    pub use fairsched_workload::time::{Time, DAY, HOUR, MINUTE, WEEK};
    pub use fairsched_workload::CplantModel;
}
