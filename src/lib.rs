//! # fairsched
//!
//! Umbrella crate: re-exports the whole `fairsched` workspace behind one
//! dependency, and hosts the workspace-level examples and integration tests.
//!
//! See [`core`] (policies + experiment runner), [`workload`] (trace model and
//! synthesis), [`sim`] (the event-driven simulator), [`metrics`] (user,
//! system, and fairness metrics), [`cpa`] (the compute process allocator),
//! and [`experiments`] (per-figure regeneration harness).
//!
//! Most applications only need the [`prelude`]:
//!
//! ```
//! use fairsched::prelude::*;
//!
//! let trace = CplantModel::new(1).with_scale(0.02).generate();
//! let outcome = run_policy(&trace, &PolicySpec::baseline(), 1024);
//! assert!(outcome.metrics().utilization > 0.0);
//! ```

pub use fairsched_core as core;
pub use fairsched_cpa as cpa;
pub use fairsched_experiments as experiments;
pub use fairsched_metrics as metrics;
pub use fairsched_sim as sim;
pub use fairsched_workload as workload;

/// The types most users need, in one import.
pub mod prelude {
    pub use fairsched_core::policy::PolicySpec;
    pub use fairsched_core::runner::{run_policy, OutcomeMetrics, PolicyOutcome};
    pub use fairsched_core::sweep::run_policies;
    pub use fairsched_metrics::fairness::fst::FstReport;
    pub use fairsched_metrics::fairness::hybrid::HybridFstObserver;
    pub use fairsched_sim::{
        simulate, EngineKind, KillPolicy, NullObserver, QueueOrder, Schedule, SimConfig,
    };
    pub use fairsched_workload::job::{Job, JobId, UserId};
    pub use fairsched_workload::time::{Time, DAY, HOUR, MINUTE, WEEK};
    pub use fairsched_workload::CplantModel;
}
