//! Determinism of the fault-injection layer, end to end.
//!
//! The resilience design promise is that a faulted run is a pure function
//! of (trace, policy, fault config): the outage timeline comes from a
//! dedicated seeded stream and crash decisions are replayable per
//! submission. These tests pin that promise across every paper policy,
//! and pin the other half of the contract — a default (disabled) fault
//! config is byte-identical to the historical fault-free simulator.

use fairsched::prelude::*;
use fairsched::sim::RepairTime;
use fairsched::workload::synthetic::random_trace;
use proptest::prelude::*;

const NODES: u32 = 32;

/// Fast repairs so full-width jobs still find windows in test-sized runs.
fn fault_cfg(mtbf: Option<u64>, crash: f64, resume: bool, seed: u64) -> FaultConfig {
    FaultConfig {
        node_mtbf: mtbf,
        repair: RepairTime { min: 60, max: 600 },
        job_crash_rate: crash,
        resilience: if resume {
            ResiliencePolicy::ChunkResume
        } else {
            ResiliencePolicy::RequeueFromScratch
        },
        seed,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Equal (trace seed, policy, fault seed) inputs give byte-identical
    /// schedules and fairness reports, run to run.
    #[test]
    fn faulted_runs_are_reproducible(
        trace_seed in 0u64..1000,
        policy_idx in 0usize..9,
        fault_seed in 0u64..1000,
        resume in 0u8..2,
    ) {
        let trace = random_trace(trace_seed, 40, NODES / 2, 20_000);
        let policy = &PolicySpec::paper_policies()[policy_idx];
        let faults = fault_cfg(Some(50_000), 0.2, resume == 1, fault_seed);
        let a = try_run_policy(&trace, policy, NODES, &RunOptions::with_faults(faults.clone()))
            .unwrap()
            .outcome;
        let b = try_run_policy(&trace, policy, NODES, &RunOptions::with_faults(faults.clone()))
            .unwrap()
            .outcome;
        prop_assert_eq!(a.schedule, b.schedule);
        prop_assert_eq!(a.fairness, b.fairness);
    }

    /// The fault seed only matters when a fault source is enabled: with
    /// everything off, any seed reproduces the fault-free schedule.
    #[test]
    fn disabled_faults_never_perturb_the_schedule(
        trace_seed in 0u64..1000,
        policy_idx in 0usize..9,
        fault_seed in 0u64..1000,
    ) {
        let trace = random_trace(trace_seed, 40, NODES / 2, 20_000);
        let policy = &PolicySpec::paper_policies()[policy_idx];
        let clean = run_policy(&trace, policy, NODES);
        let faults = FaultConfig { seed: fault_seed, ..FaultConfig::default() };
        let seeded = try_run_policy(&trace, policy, NODES, &RunOptions::with_faults(faults.clone()))
            .unwrap()
            .outcome;
        prop_assert_eq!(clean.schedule, seeded.schedule);
        prop_assert_eq!(clean.fairness, seeded.fairness);
    }
}

/// The headline zero-diff guarantee as a plain unit test: the default
/// `FaultConfig` is disabled, and threading it through changes nothing.
#[test]
fn default_fault_config_is_a_zero_diff() {
    let trace = random_trace(42, 120, NODES, 30_000);
    assert!(!FaultConfig::default().enabled());
    for policy in PolicySpec::paper_policies() {
        let clean = run_policy(&trace, &policy, NODES);
        let faulted = try_run_policy(
            &trace,
            &policy,
            NODES,
            &RunOptions::with_faults(FaultConfig::default()),
        )
        .unwrap()
        .outcome;
        assert_eq!(clean.schedule, faulted.schedule, "{} diverged", policy.id);
        assert_eq!(clean.fairness, faulted.fairness, "{} diverged", policy.id);
    }
}

/// Node failures and crashes stay deterministic through the whole stack
/// (policy lowering, chunking, resilience) — two independent sweeps of a
/// faulted configuration agree exactly.
#[test]
fn node_failure_runs_are_reproducible_across_policies() {
    let trace = random_trace(7, 60, NODES / 2, 20_000);
    let faults = fault_cfg(Some(200_000), 0.1, true, 13);
    for policy in PolicySpec::paper_policies() {
        let a = try_run_policy(
            &trace,
            &policy,
            NODES,
            &RunOptions::with_faults(faults.clone()),
        )
        .unwrap()
        .outcome;
        let b = try_run_policy(
            &trace,
            &policy,
            NODES,
            &RunOptions::with_faults(faults.clone()),
        )
        .unwrap()
        .outcome;
        assert_eq!(a.schedule, b.schedule, "{} diverged", policy.id);
        assert!(
            a.schedule.originals().len() == trace.len(),
            "{} lost jobs",
            policy.id
        );
    }
}
