//! Metamorphic simulator properties: transformations of the input with
//! predictable effects on the output. These catch whole classes of bugs
//! (absolute-time leaks, capacity bookkeeping errors) that example-based
//! tests miss.

use fairsched::prelude::*;
use fairsched::sim::StarvationConfig;
use proptest::prelude::*;

const NODES: u32 = 32;

fn arb_trace() -> impl Strategy<Value = Vec<Job>> {
    prop::collection::vec(
        (
            1u64..3000,
            1u32..=NODES,
            1u64..20_000,
            1.0f64..4.0,
            1u32..=5,
        ),
        1..50,
    )
    .prop_map(|rows| {
        let mut t = 0u64;
        rows.iter()
            .enumerate()
            .map(|(i, &(gap, nodes, runtime, factor, user))| {
                t += gap;
                Job::new(
                    i as u32 + 1,
                    user,
                    1,
                    t,
                    nodes,
                    runtime,
                    ((runtime as f64 * factor) as u64).max(1),
                )
            })
            .collect()
    })
}

fn engines() -> impl Strategy<Value = EngineKind> {
    prop::sample::select(vec![
        EngineKind::NoGuarantee,
        EngineKind::Easy,
        EngineKind::Conservative { dynamic: false },
        EngineKind::Conservative { dynamic: true },
        EngineKind::ReservationDepth(2),
        EngineKind::FcfsNoBackfill,
    ])
}

fn cfg(engine: EngineKind) -> SimConfig {
    SimConfig {
        nodes: NODES,
        engine,
        starvation: Some(StarvationConfig::default()),
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Shifting every submit by a whole number of fairshare-decay intervals
    /// shifts every start and end by exactly that amount. (A non-multiple
    /// shift may legitimately change fairshare decay phase; a whole-day
    /// shift must not change anything.)
    #[test]
    fn day_shift_invariance(trace in arb_trace(), engine in engines(), days in 1u64..4) {
        let delta = days * DAY;
        let shifted: Vec<Job> = trace
            .iter()
            .map(|j| Job { submit: j.submit + delta, ..j.clone() })
            .collect();
        let c = cfg(engine);
        let base = simulate(&trace, &c, &mut NullObserver, SimOptions::new()).unwrap();
        let moved = simulate(&shifted, &c, &mut NullObserver, SimOptions::new()).unwrap();
        prop_assert_eq!(base.records.len(), moved.records.len());
        for (a, b) in base.records.iter().zip(&moved.records) {
            prop_assert_eq!(a.id, b.id);
            prop_assert_eq!(a.start + delta, b.start, "job {:?}", a.id);
            prop_assert_eq!(a.end + delta, b.end);
            prop_assert_eq!(a.killed, b.killed);
        }
        // The shift also leaves the shape metrics untouched.
        prop_assert_eq!(base.makespan(), moved.makespan());
        prop_assert!((base.waste_nodeseconds - moved.waste_nodeseconds).abs() < 1.0);
    }

    /// Doubling the machine and every width leaves the schedule unchanged in
    /// time: the problem is scale-free in the width dimension.
    #[test]
    fn width_scaling_invariance(trace in arb_trace(), engine in engines()) {
        let doubled: Vec<Job> = trace
            .iter()
            .map(|j| Job { nodes: j.nodes * 2, ..j.clone() })
            .collect();
        let c1 = cfg(engine);
        let mut c2 = cfg(engine);
        c2.nodes = NODES * 2;
        let base = simulate(&trace, &c1, &mut NullObserver, SimOptions::new()).unwrap();
        let scaled = simulate(&doubled, &c2, &mut NullObserver, SimOptions::new()).unwrap();
        for (a, b) in base.records.iter().zip(&scaled.records) {
            prop_assert_eq!(a.start, b.start, "job {:?}", a.id);
            prop_assert_eq!(a.end, b.end);
        }
        // Utilization and LOC are ratios: identical.
        prop_assert!((base.utilization() - scaled.utilization()).abs() < 1e-9);
        prop_assert!((base.loss_of_capacity() - scaled.loss_of_capacity()).abs() < 1e-9);
    }

    /// Adding a job that arrives after everything else has *finished* cannot
    /// change any earlier outcome.
    #[test]
    fn late_straggler_cannot_rewrite_history(trace in arb_trace(), engine in engines()) {
        let c = cfg(engine);
        let base = simulate(&trace, &c, &mut NullObserver, SimOptions::new()).unwrap();
        let after = base.max_completion + DAY;
        let mut extended = trace.clone();
        extended.push(Job::new(9999, 1, 1, after, 1, 100, 100));
        let with_straggler = simulate(&extended, &c, &mut NullObserver, SimOptions::new()).unwrap();
        for a in &base.records {
            let b = with_straggler
                .records
                .iter()
                .find(|r| r.id == a.id)
                .expect("original job still scheduled");
            prop_assert_eq!(a.start, b.start);
            prop_assert_eq!(a.end, b.end);
        }
    }

    /// Removing the last-arriving job can only help or leave unchanged every
    /// other job under conservative backfilling with perfect estimates (the
    /// §4 social-justice property, stated as a metamorphic relation).
    #[test]
    fn conservative_perfect_estimates_no_later_harm(trace in arb_trace()) {
        let mut perfect: Vec<Job> = trace
            .iter()
            .map(|j| Job { estimate: j.runtime, ..j.clone() })
            .collect();
        let c = SimConfig {
            nodes: NODES,
            engine: EngineKind::Conservative { dynamic: false },
            order: fairsched::sim::QueueOrder::Fcfs,
            kill: KillPolicy::Never,
            starvation: None,
            ..Default::default()
        };
        let full = simulate(&perfect, &c, &mut NullObserver, SimOptions::new()).unwrap();
        let last = perfect
            .iter()
            .max_by_key(|j| (j.submit, j.id))
            .expect("non-empty")
            .id;
        perfect.retain(|j| j.id != last);
        let without = simulate(&perfect, &c, &mut NullObserver, SimOptions::new()).unwrap();
        for b in &without.records {
            let a = full.records.iter().find(|r| r.id == b.id).expect("same job");
            prop_assert!(
                a.start >= b.start,
                "removing a later arrival must not delay {:?}: {} vs {}",
                b.id, a.start, b.start
            );
        }
    }
}
