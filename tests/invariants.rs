//! Property-based simulator invariants: for arbitrary valid traces and
//! policies, schedules must respect physics (no oversubscription, no time
//! travel), accounting identities, and determinism.

use fairsched::prelude::*;
use fairsched::sim::{RuntimeLimit, StarvationConfig};
use proptest::prelude::*;

const NODES: u32 = 64;

/// An arbitrary valid job stream: arrival gaps, widths, runtimes, and
/// estimate accuracy all fuzzed.
fn arb_trace(max_jobs: usize) -> impl Strategy<Value = Vec<Job>> {
    prop::collection::vec(
        (
            1u64..5000,   // arrival gap
            1u32..=NODES, // width
            1u64..50_000, // runtime
            0.3f64..8.0,  // estimate factor (some under-estimates)
            1u32..=6,     // user
        ),
        1..max_jobs,
    )
    .prop_map(|rows| {
        let mut t = 0u64;
        rows.iter()
            .enumerate()
            .map(|(i, &(gap, nodes, runtime, factor, user))| {
                t += gap;
                let estimate = ((runtime as f64 * factor) as u64).max(1);
                Job::new(i as u32 + 1, user, 1, t, nodes, runtime, estimate)
            })
            .collect()
    })
}

fn arb_config() -> impl Strategy<Value = SimConfig> {
    (
        prop::sample::select(vec![
            EngineKind::NoGuarantee,
            EngineKind::Easy,
            EngineKind::Conservative { dynamic: false },
            EngineKind::Conservative { dynamic: true },
            EngineKind::ReservationDepth(0),
            EngineKind::ReservationDepth(3),
            EngineKind::ReservationDepth(64),
            EngineKind::FcfsNoBackfill,
        ]),
        prop::sample::select(vec![QueueOrder::Fcfs, QueueOrder::Fairshare]),
        prop::sample::select(vec![
            KillPolicy::AtWcl,
            KillPolicy::WhenNeeded,
            KillPolicy::Never,
        ]),
        prop::option::of(1u64..100), // starvation entry delay (hours)
        prop::option::of(2u64..40),  // runtime limit (hours)
    )
        .prop_map(|(engine, order, kill, starve_h, limit_h)| SimConfig {
            nodes: NODES,
            engine,
            order,
            kill,
            starvation: starve_h.map(|h| StarvationConfig {
                entry_delay: h * HOUR,
                heavy_rule: None,
            }),
            runtime_limit: limit_h.map(|h| RuntimeLimit { limit: h * HOUR }),
            ..Default::default()
        })
}

/// Reconstructs peak concurrent node usage from the records.
fn peak_usage(schedule: &Schedule) -> i64 {
    let mut events: Vec<(u64, i64)> = Vec::new();
    for r in &schedule.records {
        events.push((r.start, r.nodes as i64));
        events.push((r.end, -(r.nodes as i64)));
    }
    events.sort_unstable();
    let mut level = 0i64;
    let mut peak = 0i64;
    // Releases at time t happen before acquisitions at t (sort puts the
    // negative delta first at equal times).
    for (_, d) in events {
        level += d;
        peak = peak.max(level);
    }
    peak
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn machine_is_never_oversubscribed(trace in arb_trace(60), cfg in arb_config()) {
        let s = simulate(&trace, &cfg, &mut NullObserver, SimOptions::new()).unwrap();
        prop_assert!(peak_usage(&s) <= NODES as i64);
    }

    #[test]
    fn no_time_travel_and_full_coverage(trace in arb_trace(60), cfg in arb_config()) {
        let s = simulate(&trace, &cfg, &mut NullObserver, SimOptions::new()).unwrap();
        // Every submission starts at or after its submit and ends after it
        // starts.
        for r in &s.records {
            prop_assert!(r.start >= r.submit, "{:?}", r);
            prop_assert!(r.end > r.start, "{:?}", r);
            prop_assert!(r.origin_submit <= r.submit);
        }
        // Without runtime limits, records correspond 1:1 to trace jobs.
        if cfg.runtime_limit.is_none() {
            prop_assert_eq!(s.records.len(), trace.len());
        }
        // With limits, every original job appears exactly once.
        let originals = s.originals();
        prop_assert_eq!(originals.len(), trace.len());
    }

    #[test]
    fn executed_work_matches_busy_integral(trace in arb_trace(60), cfg in arb_config()) {
        let s = simulate(&trace, &cfg, &mut NullObserver, SimOptions::new()).unwrap();
        let from_records: f64 = s
            .records
            .iter()
            .map(|r| r.nodes as f64 * (r.end - r.start) as f64)
            .sum();
        prop_assert!((from_records - s.busy_nodeseconds).abs() < 1.0,
            "records {} vs integral {}", from_records, s.busy_nodeseconds);
    }

    #[test]
    fn never_killed_jobs_run_their_full_runtime(trace in arb_trace(60), mut cfg in arb_config()) {
        cfg.kill = KillPolicy::Never;
        cfg.runtime_limit = None;
        let s = simulate(&trace, &cfg, &mut NullObserver, SimOptions::new()).unwrap();
        let by_id: std::collections::HashMap<_, _> =
            trace.iter().map(|j| (j.id, j.runtime)).collect();
        for r in &s.records {
            prop_assert!(!r.killed);
            prop_assert_eq!(r.end - r.start, by_id[&r.id]);
        }
    }

    #[test]
    fn killed_jobs_never_run_past_their_estimate_under_atwcl(
        trace in arb_trace(60), mut cfg in arb_config()
    ) {
        cfg.kill = KillPolicy::AtWcl;
        cfg.runtime_limit = None;
        let s = simulate(&trace, &cfg, &mut NullObserver, SimOptions::new()).unwrap();
        for r in &s.records {
            prop_assert!(r.end - r.start <= r.estimate, "{:?}", r);
        }
    }

    #[test]
    fn simulation_is_deterministic(trace in arb_trace(40), cfg in arb_config()) {
        let a = simulate(&trace, &cfg, &mut NullObserver, SimOptions::new()).unwrap();
        let b = simulate(&trace, &cfg, &mut NullObserver, SimOptions::new()).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn chunked_runs_conserve_unkilled_work(trace in arb_trace(40), mut cfg in arb_config()) {
        cfg.kill = KillPolicy::Never;
        cfg.runtime_limit = Some(RuntimeLimit { limit: 10 * HOUR });
        let s = simulate(&trace, &cfg, &mut NullObserver, SimOptions::new()).unwrap();
        let by_id: std::collections::HashMap<_, _> =
            trace.iter().map(|j| (j.id, j.runtime)).collect();
        for o in s.originals() {
            prop_assert_eq!(o.executed, by_id[&o.origin], "origin {:?}", o.origin);
        }
    }

    #[test]
    fn loc_and_utilization_stay_in_unit_range(trace in arb_trace(60), cfg in arb_config()) {
        let s = simulate(&trace, &cfg, &mut NullObserver, SimOptions::new()).unwrap();
        prop_assert!((0.0..=1.0 + 1e-9).contains(&s.utilization()));
        prop_assert!((0.0..=1.0 + 1e-9).contains(&s.loss_of_capacity()));
    }
}
