//! Properties of the single-pass metric-collection engine: fanning every
//! observer out over one simulation must be byte-identical to the legacy
//! one-observer-per-run protocol, and the warm-start parallel Sabin prefix
//! engine must reproduce the serial from-scratch FSTs exactly.

use fairsched::prelude::*;
use fairsched::workload::synthetic::random_trace;
use proptest::prelude::*;

const NODES: u32 = 32;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// An `ObserverSet` carrying all four metric observers sees exactly
    /// what each observer sees when it gets a dedicated simulation —
    /// with and without fault injection.
    #[test]
    fn observer_set_matches_one_observer_per_run(seed in 0u64..500, crash in 0u8..2) {
        let trace = random_trace(seed, 50, NODES, 8000);
        let cfg = SimConfig {
            nodes: NODES,
            faults: FaultConfig {
                job_crash_rate: if crash == 1 { 0.2 } else { 0.0 },
                seed,
                ..Default::default()
            },
            ..Default::default()
        };

        // One simulation, every observer attached.
        let mut hybrid = HybridFstObserver::new();
        let mut equality = EqualityObserver::new();
        let mut per_user = PerUserObserver::new();
        let mut resilience = ResilienceObserver::new();
        let combined = {
            let mut set = ObserverSet::new();
            set.push(&mut hybrid);
            set.push(&mut equality);
            set.push(&mut per_user);
            set.push(&mut resilience);
            simulate(&trace, &cfg, &mut set, SimOptions::new()).unwrap()
        };

        // The legacy protocol: one simulation per observer.
        let mut solo_hybrid = HybridFstObserver::new();
        let solo_schedule = simulate(&trace, &cfg, &mut solo_hybrid, SimOptions::new()).unwrap();
        let mut solo_equality = EqualityObserver::new();
        simulate(&trace, &cfg, &mut solo_equality, SimOptions::new()).unwrap();
        let mut solo_per_user = PerUserObserver::new();
        simulate(&trace, &cfg, &mut solo_per_user, SimOptions::new()).unwrap();
        let mut solo_resilience = ResilienceObserver::new();
        simulate(&trace, &cfg, &mut solo_resilience, SimOptions::new()).unwrap();

        prop_assert_eq!(combined, solo_schedule);
        prop_assert_eq!(hybrid.into_report(), solo_hybrid.into_report());
        prop_assert_eq!(equality.into_report(), solo_equality.into_report());
        prop_assert_eq!(per_user.into_users(), solo_per_user.into_users());
        prop_assert_eq!(resilience.into_report(), solo_resilience.into_report());
    }

    /// The warm-start parallel Sabin engine returns exactly the serial
    /// from-scratch FSTs, whatever the thread count.
    #[test]
    fn parallel_sabin_matches_serial_from_scratch(
        seed in 0u64..300,
        threads in 1usize..5,
        engine_idx in 0usize..3,
    ) {
        let trace = random_trace(seed, 40, NODES, 6000);
        // NoGuarantee and Easy take the warm-start path; Conservative is
        // stateful and exercises the from-scratch fallback.
        let engine = [
            EngineKind::NoGuarantee,
            EngineKind::Easy,
            EngineKind::Conservative { dynamic: false },
        ][engine_idx];
        let cfg = SimConfig {
            nodes: NODES,
            engine,
            ..Default::default()
        };
        let serial = sabin_fsts(&trace, &cfg);
        let parallel = sabin_fsts_parallel(&trace, &cfg, Some(threads));
        prop_assert_eq!(&serial, &parallel);

        // And the derived reports agree entry for entry.
        let schedule = simulate(&trace, &cfg, &mut NullObserver, SimOptions::new()).unwrap();
        prop_assert_eq!(
            sabin_report(&schedule, &serial),
            sabin_report(&schedule, &parallel)
        );
    }

    /// Every engine composition row is explicitly classified by
    /// `warm_start_forkable`, and for every row it declares forkable the
    /// warm-started prefix FSTs equal the from-scratch ones — the guard
    /// against a new stateful order strategy silently riding the fork path
    /// with state the clone does not carry.
    #[test]
    fn every_engine_row_is_classified_and_warm_equals_cold(
        seed in 0u64..200,
        engine_idx in 0usize..9,
    ) {
        let kinds = EngineKind::representatives();
        prop_assert_eq!(kinds.len(), 9, "representatives() must cover every variant");
        let engine = kinds[engine_idx];
        // Classification is total: the match in warm_start_forkable has no
        // wildcard, so merely calling it on every representative proves
        // each row was consciously classified.
        let forkable = warm_start_forkable(engine);
        if matches!(engine, EngineKind::Conservative { dynamic: true }) {
            prop_assert!(!forkable, "dynamic conservative must stay from-scratch");
        }

        let trace = random_trace(seed, 30, NODES, 5000);
        let cfg = SimConfig {
            nodes: NODES,
            engine,
            ..Default::default()
        };
        prop_assert_eq!(warm_start_supported(&cfg), forkable);
        if forkable {
            // The parallel path forks a warm master when supported; serial
            // replays every prefix from scratch. Equal FSTs prove the
            // strategy's cloned state is exact.
            let warm = sabin_fsts_parallel(&trace, &cfg, Some(2));
            let cold = sabin_fsts(&trace, &cfg);
            prop_assert_eq!(warm, cold, "warm-start diverged for {:?}", engine);
        }
    }

    /// `try_run_policy` + `RunOptions::everything()` returns the same four
    /// reports the dedicated observers produce on their own runs.
    #[test]
    fn run_options_everything_matches_dedicated_runs(seed in 0u64..300) {
        let trace = random_trace(seed, 40, NODES, 6000);
        let policy = PolicySpec::baseline();
        let run = try_run_policy(&trace, &policy, NODES, &RunOptions::everything()).unwrap();

        let cfg = policy.sim_config(NODES);
        let mut hybrid = HybridFstObserver::new();
        let mut equality = EqualityObserver::new();
        let mut per_user = PerUserObserver::new();
        let mut resilience = ResilienceObserver::new();
        let schedule = {
            let mut set = ObserverSet::new();
            set.push(&mut hybrid);
            set.push(&mut equality);
            set.push(&mut per_user);
            set.push(&mut resilience);
            simulate(&trace, &cfg, &mut set, SimOptions::new()).unwrap()
        };

        prop_assert_eq!(run.outcome.schedule, schedule);
        prop_assert_eq!(run.outcome.fairness, hybrid.into_report());
        prop_assert_eq!(run.equality.unwrap(), equality.into_report());
        prop_assert_eq!(run.per_user.unwrap(), per_user.into_users());
        prop_assert_eq!(run.resilience.unwrap(), resilience.into_report());
    }
}
