//! Old-vs-new engine equivalence suite (the strategy-decomposition refactor).
//!
//! The scheduling core was refactored from monolithic `Engine`
//! implementations into composed `QueueOrder` / `ReservationLedger` /
//! `BackfillRule` strategies. The refactor must preserve byte-identical
//! `Schedule`s: these goldens were recorded at small scale against the
//! pre-refactor engines (commit `bc1d7de`) and every recomposed policy is
//! replayed against them. A digest mismatch means the recomposition changed
//! an actual scheduling decision somewhere — not just formatting.
//!
//! To re-record after an *intentional* semantic change (which should be rare
//! and loudly justified):
//!
//! ```text
//! cargo test --test engine_equivalence -- --ignored print_goldens --nocapture
//! ```

use fairsched_core::policy::PolicySpec;
use fairsched_sim::{
    simulate, EngineKind, FaultConfig, KillPolicy, NullObserver, QueueOrder, ResiliencePolicy,
    Schedule, SimConfig, SimOptions,
};
use fairsched_workload::job::Job;
use fairsched_workload::synthetic::random_trace;

/// Machine size all scenarios run on.
const NODES: u32 = 32;

/// FNV-1a over every semantically meaningful `Schedule` field. Floats are
/// hashed by bit pattern: the integrals must be *identical*, not close.
struct Digest(u64);

impl Digest {
    fn new() -> Self {
        Digest(0xcbf2_9ce4_8422_2325)
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
}

fn digest_schedule(s: &Schedule) -> u64 {
    let mut d = Digest::new();
    d.u64(s.nodes as u64);
    d.u64(s.records.len() as u64);
    for r in &s.records {
        d.u64(r.id.0 as u64);
        d.u64(r.origin.0 as u64);
        d.u64(r.chunk_index as u64);
        d.u64(r.user.0 as u64);
        d.u64(r.nodes as u64);
        d.u64(r.submit);
        d.u64(r.origin_submit);
        d.u64(r.start);
        d.u64(r.end);
        d.u64(r.estimate);
        d.u64(r.killed as u64);
        d.u64(r.interrupted as u64);
    }
    d.f64(s.waste_nodeseconds);
    d.f64(s.busy_nodeseconds);
    d.f64(s.down_nodeseconds);
    d.f64(s.lost_nodeseconds);
    d.u64(s.weekly_busy.len() as u64);
    for w in &s.weekly_busy {
        d.f64(*w);
    }
    d.u64(s.min_start);
    d.u64(s.max_completion);
    d.u64(s.queue_stats.max_queued_jobs as u64);
    d.u64(s.queue_stats.max_queued_demand);
    d.f64(s.queue_stats.mean_queued_jobs);
    d.f64(s.queue_stats.mean_queued_demand);
    d.0
}

/// Trace A: long jobs (up to ~69 h, estimates past the 72 h limit) under
/// heavy backlog, chosen so every policy pair in the table actually
/// diverges — queue waits cross both starvation thresholds, the 72 h-limit
/// policies chunk, and the 24 h vs 72 h entry delays produce different
/// schedules (seed-scanned when the goldens were recorded).
fn trace_a() -> Vec<Job> {
    random_trace(13, 200, 32, 250_000)
}

/// Trace B: shorter, denser mix for the minor-policy subset.
fn trace_b() -> Vec<Job> {
    random_trace(7, 100, 28, 120_000)
}

fn faults_nodes_and_crashes(resilience: ResiliencePolicy) -> FaultConfig {
    FaultConfig {
        node_mtbf: Some(2_000_000),
        job_crash_rate: 0.05,
        resilience,
        seed: 11,
        ..Default::default()
    }
}

/// Every scenario in a fixed order: `(label, trace, config)`.
fn scenarios() -> Vec<(String, Vec<Job>, SimConfig)> {
    let mut out = Vec::new();
    // The nine paper policies on the long-job trace.
    for p in PolicySpec::paper_policies() {
        out.push((format!("paper/{}", p.id), trace_a(), p.sim_config(NODES)));
    }
    // The minor subset again on a second, denser trace.
    for p in PolicySpec::minor_policies() {
        out.push((format!("minor/{}", p.id), trace_b(), p.sim_config(NODES)));
    }
    // The non-paper reference engines.
    for p in [PolicySpec::easy(), PolicySpec::fcfs_no_backfill()] {
        out.push((format!("extra/{}", p.id), trace_a(), p.sim_config(NODES)));
    }
    for depth in [0u32, 2] {
        let mut cfg = SimConfig {
            nodes: NODES,
            engine: EngineKind::ReservationDepth(depth),
            starvation: None,
            ..Default::default()
        };
        cfg.kill = KillPolicy::AtWcl;
        out.push((format!("extra/depth{depth}.atwcl"), trace_a(), cfg));
    }
    // Non-default knobs: FCFS order, never-kill, closed-loop users.
    {
        let mut cfg = PolicySpec::baseline().sim_config(NODES);
        cfg.order = QueueOrder::Fcfs;
        cfg.kill = KillPolicy::Never;
        out.push(("knobs/cplant24.fcfs.nokill".into(), trace_b(), cfg));
    }
    {
        let mut cfg = PolicySpec::by_id("cons.nomax").unwrap().sim_config(NODES);
        cfg.user_concurrency = Some(2);
        out.push(("knobs/cons.nomax.closed2".into(), trace_b(), cfg));
    }
    // Fault injection across the engine families and both resilience
    // policies (node outages force the reservation paths to plan around
    // repairs; crashes exercise the requeue/chunk-resume lifecycles).
    for (policy, resilience, tag) in [
        (
            PolicySpec::baseline(),
            ResiliencePolicy::RequeueFromScratch,
            "requeue",
        ),
        (
            PolicySpec::baseline(),
            ResiliencePolicy::ChunkResume,
            "resume",
        ),
        (
            PolicySpec::by_id("cons.nomax").unwrap(),
            ResiliencePolicy::RequeueFromScratch,
            "requeue",
        ),
        (
            PolicySpec::by_id("consdyn.nomax").unwrap(),
            ResiliencePolicy::ChunkResume,
            "resume",
        ),
        (
            PolicySpec::by_id("cplant24.72max.all").unwrap(),
            ResiliencePolicy::ChunkResume,
            "resume",
        ),
    ] {
        let mut cfg = policy.sim_config(NODES);
        cfg.faults = faults_nodes_and_crashes(resilience);
        out.push((format!("faults/{}.{tag}", policy.id), trace_b(), cfg));
    }
    // The size-based family (FSP / LAS / HFSP): stateful virtual-fair and
    // least-attained orders, recorded when the family landed. Appended
    // after the original 25 so those stay byte-for-byte pinned.
    for p in PolicySpec::size_based_policies() {
        out.push((
            format!("sizebased/{}", p.id),
            trace_a(),
            p.sim_config(NODES),
        ));
    }
    for (id, resilience, tag) in [
        ("fsp.nomax", ResiliencePolicy::RequeueFromScratch, "requeue"),
        ("las.nomax", ResiliencePolicy::ChunkResume, "resume"),
        ("hfsp.72max", ResiliencePolicy::ChunkResume, "resume"),
    ] {
        let mut cfg = PolicySpec::by_id(id).unwrap().sim_config(NODES);
        cfg.faults = faults_nodes_and_crashes(resilience);
        out.push((format!("faults/{id}.{tag}"), trace_b(), cfg));
    }
    out
}

/// Goldens recorded against the pre-refactor monolithic engines. Each line
/// is `(scenario label, FNV-1a digest of the Schedule)`.
const GOLDENS: &[(&str, u64)] = &[
    ("paper/cplant24.nomax.all", 0x1f7c91f8a34f9f06),
    ("paper/cplant72.nomax.all", 0x20785f9645b7d615),
    ("paper/cplant24.nomax.fair", 0x5ca604eddce74d3d),
    ("paper/cplant24.72max.all", 0xa58766cdc706dd5a),
    ("paper/cplant72.72max.fair", 0xb6dd64febb534ff1),
    ("paper/cons.nomax", 0xbd96cd6c195ee7af),
    ("paper/cons.72max", 0x8fec7b6b4a448fe9),
    ("paper/consdyn.nomax", 0xcf1e9d1a6621999d),
    ("paper/consdyn.72max", 0x2e99248d7e84e882),
    ("minor/cplant24.nomax.all", 0x1723ccadde128a56),
    ("minor/cplant72.nomax.all", 0x923f1d032e37585d),
    ("minor/cplant24.nomax.fair", 0xde24ff9495bbf047),
    ("minor/cplant24.72max.all", 0xc5c5a8bb8e625d16),
    ("minor/cplant72.72max.fair", 0xb7101bbdbd5ca49e),
    ("extra/easy.nomax", 0x1516060870104b11),
    ("extra/fcfs.nobackfill", 0x9d401475536a53f6),
    ("extra/depth0.atwcl", 0x4ebd4254e50b08d8),
    ("extra/depth2.atwcl", 0xce31a03f12155e8f),
    ("knobs/cplant24.fcfs.nokill", 0xb71eebb37185a048),
    ("knobs/cons.nomax.closed2", 0x86214840d59baa7b),
    ("faults/cplant24.nomax.all.requeue", 0xe31077d2f40af063),
    ("faults/cplant24.nomax.all.resume", 0x2499fe96c8c30270),
    ("faults/cons.nomax.requeue", 0x3e9564953a9f5613),
    ("faults/consdyn.nomax.resume", 0xe2bfff51b9b840a7),
    ("faults/cplant24.72max.all.resume", 0x978a727e5dace8d2),
    // Size-based family goldens, recorded when FSP/LAS/HFSP landed. FSP
    // and HFSP coincide on the unlimited trace-A scenario (aging never
    // flips a decision there) but diverge under 72 h chunking, which
    // shrinks virtual remainders enough for the aging credit to matter.
    ("sizebased/fsp.nomax", 0x7086e9a3aefdfdd7),
    ("sizebased/las.nomax", 0x2908170e889648ed),
    ("sizebased/hfsp.nomax", 0x7086e9a3aefdfdd7),
    ("sizebased/fsp.72max", 0xa2f3a067387df1dd),
    ("sizebased/las.72max", 0x361117a621a59116),
    ("sizebased/hfsp.72max", 0x2be051936d752f62),
    ("faults/fsp.nomax.requeue", 0x6c14bf498e581c8d),
    ("faults/las.nomax.resume", 0x78cf802f534c967d),
    ("faults/hfsp.72max.resume", 0x5608530cf8dd1df4),
];

fn run(trace: &[Job], cfg: &SimConfig) -> Schedule {
    simulate(trace, cfg, &mut NullObserver, SimOptions::new()).expect("scenario simulates cleanly")
}

/// Re-record helper: prints the `GOLDENS` table for the current engines.
#[test]
#[ignore = "re-records the golden table; run with --nocapture and paste"]
fn print_goldens() {
    for (label, trace, cfg) in scenarios() {
        let digest = digest_schedule(&run(&trace, &cfg));
        println!("    (\"{label}\", 0x{digest:016x}),");
    }
}

/// Property-based leg of the equivalence suite: the goldens above pin the
/// recomposed strategies to fixed pre-refactor scenarios; these properties
/// sweep *random* traces and fault configurations over the same policy
/// table, so a composition bug that happens to dodge the golden traces
/// still gets caught.
mod properties {
    use super::*;
    use fairsched_sim::{warm_start_supported, PrefixSimulator};
    use fairsched_workload::time::Time;
    use proptest::prelude::*;

    /// Every paper policy plus the minor subset, exactly as the refactor's
    /// contract names them. The minor policies are a subset of the nine,
    /// so dedup by id keeps each composition exercised once per case.
    fn specs_under_test() -> Vec<PolicySpec> {
        let mut specs = PolicySpec::paper_policies();
        for p in PolicySpec::minor_policies()
            .into_iter()
            .chain(PolicySpec::size_based_policies())
        {
            if !specs.iter().any(|s| s.id == p.id) {
                specs.push(p);
            }
        }
        specs
    }

    fn arb_trace() -> impl Strategy<Value = Vec<Job>> {
        prop::collection::vec(
            (
                1u64..5_000,   // inter-arrival gap
                1u32..=NODES,  // width
                1u64..100_000, // runtime (long enough to cross 72 h when chunked policies run)
                1.0f64..3.0,   // estimate factor
                1u32..=6,      // user
            ),
            1..40,
        )
        .prop_map(|rows| {
            let mut t = 0u64;
            rows.iter()
                .enumerate()
                .map(|(i, &(gap, nodes, runtime, factor, user))| {
                    t += gap;
                    Job::new(
                        i as u32 + 1,
                        user,
                        1,
                        t,
                        nodes,
                        runtime,
                        ((runtime as f64 * factor) as u64).max(1),
                    )
                })
                .collect()
        })
    }

    /// Fault-injection configurations spanning off / crashes-only /
    /// outages-plus-crashes and both resilience policies.
    fn arb_faults() -> impl Strategy<Value = FaultConfig> {
        (0u8..3, 0u8..2, 1u64..64).prop_map(|(mode, resume, seed)| {
            let resilience = if resume == 1 {
                ResiliencePolicy::ChunkResume
            } else {
                ResiliencePolicy::RequeueFromScratch
            };
            match mode {
                0 => FaultConfig::default(),
                1 => FaultConfig {
                    job_crash_rate: 0.1,
                    resilience,
                    seed,
                    ..Default::default()
                },
                _ => FaultConfig {
                    node_mtbf: Some(1_500_000),
                    job_crash_rate: 0.05,
                    resilience,
                    seed,
                    ..Default::default()
                },
            }
        })
    }

    /// From-scratch prefix start of `target`: simulate only the jobs at or
    /// before it in admission order and read its start from the schedule.
    fn scratch_start(trace: &[Job], cfg: &SimConfig, target: &Job) -> Time {
        let prefix: Vec<Job> = trace
            .iter()
            .filter(|j| (j.submit, j.id) <= (target.submit, target.id))
            .cloned()
            .collect();
        let schedule = simulate(&prefix, cfg, &mut NullObserver, SimOptions::new()).unwrap();
        schedule
            .records
            .iter()
            .find(|r| r.id == target.id)
            .map(|r| r.start)
            .expect("target is in its own prefix")
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// A recomposed policy is a pure function of (trace, config): two
        /// runs agree byte-for-byte, fault injection included. Hidden state
        /// bleeding between the order/ledger/rule layers of a
        /// `ComposedEngine` (or between the extracted lifecycle/accounting
        /// modules) shows up here as a digest mismatch.
        #[test]
        fn every_recomposed_policy_is_deterministic(
            trace in arb_trace(),
            faults in arb_faults(),
        ) {
            for spec in specs_under_test() {
                let mut cfg = spec.sim_config(NODES);
                cfg.faults = faults.clone();
                let first = digest_schedule(&run(&trace, &cfg));
                let second = digest_schedule(&run(&trace, &cfg));
                prop_assert_eq!(
                    first, second,
                    "policy {} is not deterministic under {:?}", spec.id, cfg.faults
                );
            }
        }

        /// For every policy the warm-start capability covers (now including
        /// static conservative), the forked-engine prefix query must equal
        /// a from-scratch prefix simulation at every arrival.
        #[test]
        fn warm_start_matches_from_scratch_for_supported_policies(
            trace in arb_trace(),
        ) {
            let mut trace = trace;
            trace.sort_by_key(|j| (j.submit, j.id));
            let mut covered = 0;
            for spec in specs_under_test() {
                let cfg = spec.sim_config(NODES);
                if !warm_start_supported(&cfg) {
                    continue;
                }
                covered += 1;
                let mut prefix = PrefixSimulator::new(&cfg).unwrap();
                for job in &trace {
                    let warm = prefix.start_of(job).unwrap();
                    let cold = scratch_start(&trace, &cfg, job);
                    prop_assert_eq!(
                        warm, cold,
                        "warm-start diverged from from-scratch for job {} under {}",
                        job.id, spec.id
                    );
                }
            }
            // The capability must cover the unlimited no-guarantee rows,
            // the static conservative row, and the three unlimited
            // size-based rows — if it silently shrank, this suite would be
            // vacuous.
            prop_assert!(covered >= 7, "only {covered} policies warm-startable");
        }
    }
}

#[test]
fn recomposed_strategies_match_pre_refactor_goldens() {
    let scenarios = scenarios();
    assert_eq!(
        scenarios.len(),
        GOLDENS.len(),
        "golden table out of sync with the scenario list"
    );
    for ((label, trace, cfg), (golden_label, golden)) in scenarios.into_iter().zip(GOLDENS) {
        assert_eq!(&label, golden_label, "scenario order changed");
        let digest = digest_schedule(&run(&trace, &cfg));
        assert_eq!(
            digest, *golden,
            "schedule for {label} diverged from the pre-refactor golden \
             (0x{digest:016x} != 0x{golden:016x})"
        );
    }
}
