//! Cross-workload validation: the paper's headline conclusions re-checked
//! on an independent Lublin–Feitelson-style workload that shares nothing
//! with the CPlant calibration. If a conclusion only held on the calibrated
//! trace it would be an artifact of the calibration; these tests pin the
//! mechanism, not the dataset.
//!
//! Regime note (itself a finding, recorded in EXPERIMENTS.md): the paper's
//! levers act on *multi-day jobs under recoverable contention*. The model
//! here is configured to that regime (~75% utilization, a long-runtime
//! branch averaging 4.6 days). In permanent saturation, or with no
//! multi-day jobs, the 72 h limit has nothing to bite on and the deltas
//! dissolve — which the probe runs behind this file demonstrated.

use fairsched::prelude::*;
use fairsched::workload::job::validate_trace;
use fairsched::workload::LublinModel;
use std::sync::OnceLock;

const NODES: u32 = 128;

fn metrics() -> &'static Vec<(String, OutcomeMetrics)> {
    static CACHE: OnceLock<Vec<(String, OutcomeMetrics)>> = OnceLock::new();
    CACHE.get_or_init(|| {
        let mut model = LublinModel::new(1234, 2000, NODES);
        model.peak_interarrival = 10_000; // ~75% utilization
        model.runtime_means = (1800.0, 400_000.0); // long branch ≈ 4.6 days
        model.short_fraction = 0.7;
        let trace = model.generate();
        validate_trace(&trace).expect("valid trace");
        let policies = PolicySpec::paper_policies();
        try_run_policies(&trace, &policies, NODES, &FaultConfig::default())
            .into_iter()
            .map(|r| r.expect("paper policies succeed"))
            .map(|o| (o.policy.clone(), o.metrics()))
            .collect()
    })
}

fn of(id: &str) -> &'static OutcomeMetrics {
    &metrics()
        .iter()
        .find(|(n, _)| n == id)
        .expect("policy present")
        .1
}

#[test]
fn runtime_limits_still_cut_average_miss_on_an_independent_workload() {
    let base = of("cplant24.nomax.all");
    let limited = of("cplant24.72max.all");
    assert!(
        limited.average_miss_time < base.average_miss_time,
        "72max miss {} not below baseline {}",
        limited.average_miss_time,
        base.average_miss_time
    );
    assert!(of("cons.72max").average_miss_time < of("cons.nomax").average_miss_time);
}

#[test]
fn conservative_72max_remains_an_all_round_improvement() {
    let base = of("cplant24.nomax.all");
    let winner = of("cons.72max");
    assert!(winner.average_miss_time < base.average_miss_time);
    assert!(winner.average_turnaround < base.average_turnaround);
    assert!(winner.loss_of_capacity < base.loss_of_capacity);
}

#[test]
fn dynamic_reservations_still_trade_count_for_magnitude() {
    // consdyn: fewest unfair jobs among the no-limit policies, but its
    // missed jobs fare worse — the paper's trade-off, on foreign data.
    let consdyn = of("consdyn.nomax");
    let base = of("cplant24.nomax.all");
    let cons = of("cons.nomax");
    assert!(
        consdyn.percent_unfair < base.percent_unfair,
        "consdyn unfair {} vs baseline {}",
        consdyn.percent_unfair,
        base.percent_unfair
    );
    assert!(
        consdyn.average_miss_time > cons.average_miss_time,
        "consdyn miss {} should exceed cons {}",
        consdyn.average_miss_time,
        cons.average_miss_time
    );
}

#[test]
fn runtime_limits_improve_loss_of_capacity_here_too() {
    assert!(of("cplant24.72max.all").loss_of_capacity < of("cplant24.nomax.all").loss_of_capacity);
    assert!(of("cons.72max").loss_of_capacity < of("cons.nomax").loss_of_capacity);
}

#[test]
fn all_nine_policies_complete_sanely_on_the_foreign_workload() {
    let all = metrics();
    assert_eq!(all.len(), 9);
    for (name, m) in all {
        assert!((0.0..=1.0).contains(&m.percent_unfair), "{name}");
        assert!((0.0..=1.0).contains(&m.loss_of_capacity), "{name}");
        assert!(
            m.average_turnaround > 0.0 && m.average_turnaround.is_finite(),
            "{name}"
        );
    }
}
