//! Streaming-fairness convergence: the live observer riding inside
//! `fairschedd` must agree with the after-the-fact batch verdict.
//!
//! [`StreamingFairness`] maintains the fairness view event-by-event so an
//! operator can watch a live scheduler; the batch path computes the same
//! view from the finished schedule. This suite pins the convergence
//! guarantee the observability layer rests on, for every
//! warm-start-forkable [`EngineKind`] representative over randomized
//! traces driven through the *stepped* core (the service's code path):
//!
//! * the sealed [`FstReport`] is **equal** to the batch
//!   [`HybridFstObserver`] report — same entries, same misses;
//! * per-user rows equal [`per_user_of`] on the finished schedule,
//!   bit-for-bit (integer accumulation: no f64 ordering drift);
//! * live utilization lands on [`Schedule::utilization`] at seal;
//! * observing changes nothing: the instrumented online run seals into
//!   the schedule the batch simulator produces.

use fairsched::metrics::fairness::peruser::per_user_of;
use fairsched::metrics::fairness::stream::StreamingFairness;
use fairsched::prelude::*;
use fairsched::sim::StarvationConfig;
use proptest::prelude::*;

const NODES: u32 = 32;

fn arb_trace() -> impl Strategy<Value = Vec<Job>> {
    prop::collection::vec(
        (
            0u64..2_000,
            1u32..=NODES,
            1u64..10_000,
            1.0f64..4.0,
            1u32..=5,
        ),
        1..40,
    )
    .prop_map(|rows| {
        let mut t = 0u64;
        rows.iter()
            .enumerate()
            .map(|(i, &(gap, nodes, runtime, factor, user))| {
                t += gap;
                Job::new(
                    i as u32 + 1,
                    user,
                    1,
                    t,
                    nodes,
                    runtime,
                    ((runtime as f64 * factor) as u64).max(1),
                )
            })
            .collect()
    })
}

fn forkable_engines() -> Vec<EngineKind> {
    EngineKind::representatives()
        .into_iter()
        .filter(|&kind| warm_start_forkable(kind))
        .collect()
}

fn base_cfg(engine: EngineKind) -> SimConfig {
    SimConfig {
        nodes: NODES,
        engine,
        starvation: Some(StarvationConfig::default()),
        ..Default::default()
    }
}

/// Replays `jobs` through the stepped core with the streaming observer
/// attached to every step — the exact shape of the serving loop — and
/// returns the sealed schedule alongside the observer.
fn replay_streamed(
    jobs: &[Job],
    cfg: &SimConfig,
) -> Result<(Schedule, StreamingFairness), SimError> {
    let mut core = SteppedSim::new(cfg)?;
    let mut stream = StreamingFairness::new(cfg.nodes);
    let mut sorted: Vec<&Job> = jobs.iter().collect();
    sorted.sort_by_key(|j| (j.submit, j.id));
    for job in sorted {
        core.step(SimEvent::Submit(job.clone()), &mut stream)?;
    }
    while let Some(at) = core.next_wakeup() {
        core.step(SimEvent::AdvanceTo(at), &mut stream)?;
    }
    let schedule = core.finish()?;
    // The stepped core's `finish` hands back the schedule without an
    // observer; the seal hook fires by hand, as `Session::seal` does.
    stream.on_finish(&schedule);
    Ok((schedule, stream))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// At seal, the streaming gauges equal the batch observers' verdict
    /// for the same trace, for every warm-start-forkable engine.
    #[test]
    fn streaming_fairness_converges_to_the_batch_verdict(jobs in arb_trace()) {
        for engine in forkable_engines() {
            let cfg = base_cfg(engine);
            let mut batch = HybridFstObserver::new();
            let reference = simulate(&jobs, &cfg, &mut batch, SimOptions::new())
                .expect("batch run");
            let batch_report = batch.into_report();

            let (sealed, stream) = replay_streamed(&jobs, &cfg).expect("streamed run");
            prop_assert_eq!(
                &sealed,
                &reference,
                "engine {:?}: observing perturbed the schedule",
                engine
            );
            prop_assert_eq!(
                stream.report(),
                batch_report.clone(),
                "engine {:?}: sealed FST report diverged from batch",
                engine
            );
            prop_assert_eq!(
                stream.users(),
                per_user_of(&reference.records, &batch_report),
                "engine {:?}: per-user rows diverged from batch",
                engine
            );

            let snap = stream.snapshot();
            prop_assert_eq!(snap.arrivals as usize, jobs.len());
            prop_assert_eq!(snap.completed as usize, reference.records.len());
            prop_assert_eq!(snap.queue_depth, 0);
            prop_assert_eq!(snap.busy_nodes, 0);
            prop_assert!(
                (snap.utilization - reference.utilization()).abs() < 1e-9,
                "engine {:?}: live utilization {} vs batch {}",
                engine,
                snap.utilization,
                reference.utilization()
            );
            prop_assert_eq!(snap.total_miss, batch_report.total_miss());
        }
    }
}
