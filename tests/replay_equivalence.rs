//! Replay equivalence: feeding recorded arrivals through the *online*
//! service — submissions interleaved with virtual-clock grants — must
//! produce a [`Schedule`] byte-identical to handing the whole trace to
//! the batch simulator at once.
//!
//! This is the load-bearing property of `fairschedd`: the event queue
//! orders by `(time, kind, id)` independent of insertion order, and the
//! session's monotonic-submission rule guarantees no event is processed
//! before every arrival at or below its timestamp is in the queue. The
//! suite pins the property for every warm-start-forkable
//! [`EngineKind`] representative, over randomized traces and randomized
//! grant schedules, and once through a realtime clock at high speedup.

use fairsched::prelude::*;
use fairsched::sim::StarvationConfig;
use proptest::prelude::*;

const NODES: u32 = 32;

fn arb_trace() -> impl Strategy<Value = Vec<Job>> {
    prop::collection::vec(
        (
            0u64..2_000,
            1u32..=NODES,
            1u64..10_000,
            1.0f64..4.0,
            1u32..=5,
        ),
        1..40,
    )
    .prop_map(|rows| {
        let mut t = 0u64;
        rows.iter()
            .enumerate()
            .map(|(i, &(gap, nodes, runtime, factor, user))| {
                t += gap;
                Job::new(
                    i as u32 + 1,
                    user,
                    1,
                    t,
                    nodes,
                    runtime,
                    ((runtime as f64 * factor) as u64).max(1),
                )
            })
            .collect()
    })
}

fn forkable_engines() -> Vec<EngineKind> {
    EngineKind::representatives()
        .into_iter()
        .filter(|&kind| warm_start_forkable(kind))
        .collect()
}

/// Replays `jobs` online through a [`SteppedSim`]: submissions strictly
/// before any grant reaching their timestamp, with grant horizons chosen
/// by `grant_gaps` (cycled). Returns the sealed schedule.
fn replay_online(jobs: &[Job], cfg: &SimConfig, grant_gaps: &[u64]) -> Result<Schedule, SimError> {
    let mut core = SteppedSim::new(cfg)?;
    let mut granted: Time = 0;
    let mut gap_idx = 0;
    let mut sorted: Vec<&Job> = jobs.iter().collect();
    sorted.sort_by_key(|j| (j.submit, j.id));
    for job in sorted {
        // Grant time in arbitrary increments, but never up to or past the
        // next submission — the service enforces the same invariant via
        // its NonMonotonicSubmit rejection.
        while !grant_gaps.is_empty() && granted + 1 < job.submit {
            let gap = grant_gaps[gap_idx % grant_gaps.len()].max(1);
            gap_idx += 1;
            granted = (granted + gap).min(job.submit.saturating_sub(1));
            core.step(SimEvent::AdvanceTo(granted), &mut NullObserver)?;
        }
        core.step(SimEvent::Submit(job.clone()), &mut NullObserver)?;
    }
    // Seal: play out everything left.
    while let Some(at) = core.next_wakeup() {
        core.step(SimEvent::AdvanceTo(at), &mut NullObserver)?;
    }
    core.finish()
}

fn base_cfg(engine: EngineKind) -> SimConfig {
    SimConfig {
        nodes: NODES,
        engine,
        starvation: Some(StarvationConfig::default()),
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Online replay ≡ batch, for every warm-start-forkable engine
    /// representative, any trace, any grant schedule.
    #[test]
    fn online_replay_is_byte_identical_to_batch(
        jobs in arb_trace(),
        gaps in prop::collection::vec(1u64..5_000, 1..6),
    ) {
        for engine in forkable_engines() {
            let cfg = base_cfg(engine);
            let batch = simulate(&jobs, &cfg, &mut NullObserver, SimOptions::new())
                .expect("batch run");
            let online = replay_online(&jobs, &cfg, &gaps).expect("online run");
            prop_assert_eq!(
                &online,
                &batch,
                "engine {:?} diverged online vs batch",
                engine
            );
        }
    }

    /// The id floor keeps chained ids equivalent when a replay starts
    /// from a nonzero floor (the service's --id-floor path).
    #[test]
    fn id_floor_reservation_is_inert_for_plain_traces(
        jobs in arb_trace(),
        floor in 0u32..10_000,
    ) {
        let cfg = base_cfg(EngineKind::Easy);
        let batch = simulate(&jobs, &cfg, &mut NullObserver, SimOptions::new())
            .expect("batch run");
        let mut core = SteppedSim::new(&cfg).expect("core");
        core.reserve_ids(floor);
        for job in &jobs {
            core.step(SimEvent::Submit(job.clone()), &mut NullObserver)
                .expect("submit");
        }
        while let Some(at) = core.next_wakeup() {
            core.step(SimEvent::AdvanceTo(at), &mut NullObserver).expect("advance");
        }
        // Without runtime limits or faults no fresh ids are minted, so
        // the floor cannot leak into the schedule.
        prop_assert_eq!(core.finish().expect("finish"), batch);
    }
}

/// The service path end to end: recorded CplantModel arrivals through a
/// realtime clock at high speedup must seal into the batch schedule, for
/// every warm-start-forkable engine representative (exercised through
/// the session API; the HTTP layer is pinned by `crates/served` tests).
#[test]
fn cplant_arrivals_replay_through_the_service_at_high_speedup() {
    let jobs: Vec<Job> = {
        let mut jobs = CplantModel::new(11).with_nodes(256).generate();
        jobs.truncate(120);
        jobs
    };
    // Shift arrivals far enough ahead that submitting them all comfortably
    // beats the accelerated clock (10_000x: the 1h lead lasts ~0.36 wall
    // seconds per 3.6M simulated seconds of shift — we shift by a week).
    let lead = WEEK;
    let shifted: Vec<Job> = jobs
        .iter()
        .map(|j| Job {
            submit: j.submit + lead,
            ..j.clone()
        })
        .collect();

    // Policy-id-addressable engines with forkable warm starts; the ids
    // mirror EngineKind::representatives() minus dynamic conservative.
    let policies = [
        "cplant24.nomax.all",
        "easy.nomax",
        "cons.nomax",
        "rdepth2.nomax",
        "fcfs.nobackfill",
        "fsp.nomax",
        "las.nomax",
        "hfsp.nomax",
    ];
    for policy in policies {
        let spec = fairsched::core::policy::PolicySpec::parse(policy).expect("known policy");
        assert!(
            warm_start_forkable(spec.engine),
            "{policy} should be forkable"
        );
        let batch = simulate(
            &shifted,
            &spec.sim_config(256),
            &mut NullObserver,
            SimOptions::new(),
        )
        .expect("batch run");

        let session = Session::new(SessionConfig {
            policy: policy.into(),
            nodes: 256,
            clock: ClockMode::Realtime { speedup: 10_000.0 },
            traced: false,
            id_floor: 0,
            ..SessionConfig::default()
        })
        .expect("session");
        for job in &shifted {
            session
                .submit(&SubmitRequest::from_job(job))
                .unwrap_or_else(|e| panic!("{policy}: lost submission {}: {e}", job.id));
        }
        // Let the accelerated clock drive some of the run live, then seal
        // the rest — both paths must agree with batch.
        std::thread::sleep(std::time::Duration::from_millis(30));
        session.tick().expect("tick");
        let seal = session.seal().expect("seal");
        assert_eq!(seal.records, batch.records.len() as u64, "{policy}");
        assert_eq!(
            session.schedule().expect("sealed schedule"),
            batch,
            "{policy} diverged online vs batch"
        );
    }
}
