//! End-to-end integration: generate the CPlant-like workload, evaluate the
//! paper's policies across crates, and check the qualitative *shape* of the
//! results the paper reports (who wins, in which direction) at a reduced
//! scale that keeps CI fast.

use fairsched::prelude::*;
use fairsched::workload::job::validate_trace;

const NODES: u32 = 1024;

fn evaluate_all() -> Vec<PolicyOutcome> {
    let trace = CplantModel::new(42)
        .with_nodes(NODES)
        .with_scale(0.1)
        .generate();
    validate_trace(&trace).expect("generator produces valid traces");
    try_run_policies(
        &trace,
        &PolicySpec::paper_policies(),
        NODES,
        &FaultConfig::default(),
    )
    .into_iter()
    .map(|r| r.expect("paper policies succeed"))
    .collect()
}

fn metric_of<'a>(outcomes: &'a [PolicyOutcome], id: &str) -> &'a PolicyOutcome {
    outcomes
        .iter()
        .find(|o| o.policy == id)
        .expect("policy present")
}

#[test]
fn full_pipeline_shapes_match_the_paper() {
    let outcomes = evaluate_all();
    assert_eq!(outcomes.len(), 9);

    let m = |id: &str| metric_of(&outcomes, id).metrics();
    let baseline = m("cplant24.nomax.all");

    // Every metric is sane on every policy.
    for o in &outcomes {
        let x = o.metrics();
        assert!((0.0..=1.0).contains(&x.percent_unfair), "{}", o.policy);
        assert!((0.0..=1.0).contains(&x.loss_of_capacity), "{}", o.policy);
        assert!((0.0..0.95).contains(&x.utilization), "{}", o.policy);
        assert!(x.average_miss_time >= 0.0, "{}", o.policy);
        assert!(x.average_turnaround > 0.0, "{}", o.policy);
    }

    // §6.1: raising the starvation delay or barring heavy users reduces the
    // number of unfairly treated jobs.
    assert!(m("cplant72.nomax.all").percent_unfair < baseline.percent_unfair);
    assert!(m("cplant24.nomax.fair").percent_unfair < baseline.percent_unfair);

    // §6.1/§6.2: the 72 h runtime limit is the big lever on average miss
    // time — both on the CPlant engine and the conservative one.
    assert!(m("cplant24.72max.all").average_miss_time < baseline.average_miss_time);
    assert!(m("cons.72max").average_miss_time < m("cons.nomax").average_miss_time);
    assert!(m("consdyn.72max").average_miss_time < m("consdyn.nomax").average_miss_time);

    // §6.2: cons.72max is the all-round winner — it improves average miss
    // time AND average turnaround over the baseline simultaneously.
    assert!(m("cons.72max").average_miss_time < baseline.average_miss_time);
    assert!(m("cons.72max").average_turnaround < baseline.average_turnaround);
}

#[test]
fn conservative_helps_wide_jobs() {
    // §6.2 / Figure 16: conservative backfilling reduces the unfairness of
    // wide jobs relative to the reservation-less baseline. Compare the
    // aggregate miss over the four widest populated buckets.
    let outcomes = evaluate_all();
    let wide_miss = |id: &str| -> f64 {
        metric_of(&outcomes, id).metrics().miss_by_width[7..]
            .iter()
            .sum()
    };
    let base = wide_miss("cplant24.nomax.all");
    let cons = wide_miss("cons.nomax");
    assert!(
        cons < base,
        "conservative wide-job miss {cons:.0}s not below baseline {base:.0}s"
    );
}

#[test]
fn chunked_policies_conserve_work() {
    // Runtime limits must never lose work: with kills disabled on the final
    // chunk path, total executed node-seconds per original job equals the
    // trace's demand. (Kills of *unchunked* under-estimated jobs do lose
    // work, identically across policies — so compare chunked vs unchunked
    // totals only over jobs that were never killed.)
    let trace = CplantModel::new(9)
        .with_nodes(NODES)
        .with_scale(0.05)
        .generate();
    let plain = run_policy(&trace, &PolicySpec::baseline(), NODES);
    let chunked = run_policy(
        &trace,
        &PolicySpec::by_id("cplant24.72max.all").unwrap(),
        NODES,
    );

    let executed_unkilled = |o: &PolicyOutcome| -> u64 {
        o.originals()
            .iter()
            .filter(|j| !j.killed)
            .map(|j| j.nodes as u64 * j.executed)
            .sum()
    };
    let plain_work = executed_unkilled(&plain);
    let chunked_work = executed_unkilled(&chunked);
    // Chunking changes *which* jobs get killed, so allow a small delta, but
    // the bulk of the work must be identical.
    let ratio = chunked_work as f64 / plain_work as f64;
    assert!(
        (0.95..=1.05).contains(&ratio),
        "chunked work {chunked_work} vs plain {plain_work}"
    );

    // And every never-killed original in the chunked run executed exactly
    // its trace runtime.
    let by_id: std::collections::HashMap<_, _> = trace.iter().map(|j| (j.id, j.runtime)).collect();
    for o in chunked.originals() {
        if !o.killed {
            assert_eq!(o.executed, by_id[&o.origin], "origin {:?}", o.origin);
        }
    }
}

#[test]
fn fairness_report_covers_all_submissions_for_every_policy() {
    let outcomes = evaluate_all();
    for o in &outcomes {
        assert_eq!(
            o.fairness.entries.len(),
            o.schedule.records.len(),
            "{} fairness entries != records",
            o.policy
        );
    }
}

#[test]
fn easy_engine_runs_the_same_pipeline() {
    let trace = CplantModel::new(3)
        .with_nodes(NODES)
        .with_scale(0.05)
        .generate();
    let outcome = run_policy(&trace, &PolicySpec::easy(), NODES);
    assert_eq!(outcome.schedule.records.len(), trace.len());
    let m = outcome.metrics();
    assert!((0.0..=1.0).contains(&m.percent_unfair));
}
