//! Cross-metric fairness properties: the relationships §4 establishes
//! between the metric families, checked on simulated schedules.

use fairsched::metrics::fairness::consp::{consp_fsts, consp_report};
use fairsched::metrics::fairness::equality::equality_report;
use fairsched::metrics::fairness::jain::jain_index;
use fairsched::prelude::*;
use fairsched::workload::synthetic::random_trace;
use proptest::prelude::*;

const NODES: u32 = 32;

fn perfect(trace: &[Job]) -> Vec<Job> {
    trace
        .iter()
        .map(|j| Job {
            estimate: j.runtime,
            ..j.clone()
        })
        .collect()
}

fn cfg(engine: EngineKind, order: QueueOrder) -> SimConfig {
    SimConfig {
        nodes: NODES,
        engine,
        order,
        kill: KillPolicy::Never,
        starvation: None,
        runtime_limit: None,
        ..Default::default()
    }
}

#[test]
fn consp_schedule_is_fair_under_consp_and_hybrid_fcfs() {
    // The §4 anchor: FCFS conservative backfilling with perfect estimates
    // is socially just. Both CONS_P (by definition) and the hybrid metric
    // instantiated with FCFS order must agree.
    let trace = perfect(&random_trace(5, 250, NODES, 8000));
    let c = cfg(
        EngineKind::Conservative { dynamic: false },
        QueueOrder::Fcfs,
    );

    let mut obs = HybridFstObserver::new();
    let schedule = simulate(&trace, &c, &mut obs, SimOptions::new()).unwrap();
    let hybrid = obs.into_report();
    assert_eq!(
        hybrid.percent_unfair(),
        0.0,
        "hybrid misses: {}",
        hybrid.total_miss()
    );

    let consp = consp_report(&schedule, &consp_fsts(&trace, NODES));
    assert_eq!(consp.percent_unfair(), 0.0);
}

#[test]
fn sabin_fst_of_a_no_later_arrival_schedule_matches_actual_starts() {
    // When later arrivals cannot affect earlier jobs (conservative, perfect
    // estimates, FCFS), every job starts exactly at its Sabin FST.
    let trace = perfect(&random_trace(7, 60, NODES, 5000));
    let c = cfg(
        EngineKind::Conservative { dynamic: false },
        QueueOrder::Fcfs,
    );
    let fsts = sabin_fsts(&trace, &c);
    let schedule = simulate(&trace, &c, &mut NullObserver, SimOptions::new()).unwrap();
    let report = sabin_report(&schedule, &fsts);
    assert_eq!(report.percent_unfair(), 0.0);
    assert_eq!(report.total_miss(), 0);
}

#[test]
fn metrics_disagree_on_real_schedules_but_agree_on_direction() {
    // On a contended fairshare no-guarantee schedule with bad estimates,
    // the metric families give different absolute numbers (that's §4's
    // point) — but all FST metrics must report non-negative misses and
    // score the same job set.
    let trace = random_trace(11, 300, NODES, 8000);
    let c = SimConfig {
        nodes: NODES,
        ..Default::default()
    };
    let mut obs = HybridFstObserver::new();
    let schedule = simulate(&trace, &c, &mut obs, SimOptions::new()).unwrap();
    let hybrid = obs.into_report();
    let consp = consp_report(&schedule, &consp_fsts(&trace, NODES));
    assert_eq!(hybrid.entries.len(), consp.entries.len());
    assert!(hybrid.average_miss_time() >= 0.0);
    assert!(consp.average_miss_time() >= 0.0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn equality_discrimination_sums_to_zero_under_saturation(seed in 0u64..500) {
        // When jobs are always live somewhere (dense arrivals), total
        // entitlement equals total capacity over the live span; if the
        // machine is also never idle while jobs wait, received == deserved
        // in aggregate. We assert the weaker, always-true identity:
        // Σ received = Σ (deserved + discrimination).
        let trace = random_trace(seed, 80, NODES, 4000);
        let c = SimConfig { nodes: NODES, kill: KillPolicy::Never, ..Default::default() };
        let s = simulate(&trace, &c, &mut NullObserver, SimOptions::new()).unwrap();
        let report = equality_report(&s);
        let received: f64 = s
            .records
            .iter()
            .map(|r| r.nodes as f64 * (r.end - r.start) as f64)
            .sum();
        let disc_sum: f64 = report.discrimination.iter().map(|&(_, d)| d).sum();
        // Σ deserved = Σ SystemSize/N(t) over live time, which equals
        // SystemSize × (total time with N > 0).
        let deserved_sum = received - disc_sum;
        prop_assert!(deserved_sum > 0.0);
        // Deserved never exceeds capacity × full span.
        let span = (s.max_completion - s.records.iter().map(|r| r.submit).min().unwrap_or(0)) as f64;
        prop_assert!(deserved_sum <= NODES as f64 * span + 1.0);
    }

    #[test]
    fn jain_index_bounds_hold_on_real_turnarounds(seed in 0u64..500) {
        let trace = random_trace(seed, 60, NODES, 4000);
        let c = SimConfig { nodes: NODES, ..Default::default() };
        let s = simulate(&trace, &c, &mut NullObserver, SimOptions::new()).unwrap();
        let turnarounds: Vec<f64> =
            s.records.iter().map(|r| r.turnaround() as f64).collect();
        let idx = jain_index(&turnarounds);
        let n = turnarounds.len() as f64;
        prop_assert!(idx >= 1.0 / n - 1e-9 && idx <= 1.0 + 1e-9);
    }

    #[test]
    fn hybrid_misses_are_bounded_by_waits(seed in 0u64..500) {
        // A job can never miss its FST by more than it waited: FST ≥ submit.
        let trace = random_trace(seed, 80, NODES, 4000);
        let c = SimConfig { nodes: NODES, ..Default::default() };
        let mut obs = HybridFstObserver::new();
        let s = simulate(&trace, &c, &mut obs, SimOptions::new()).unwrap();
        let report = obs.into_report();
        let waits: std::collections::HashMap<_, _> =
            s.records.iter().map(|r| (r.id, r.wait())).collect();
        for e in &report.entries {
            prop_assert!(e.miss() <= waits[&e.id], "{:?}", e);
        }
    }
}
