//! Workspace-level exercises of the crash-safe sweep harness: a complete
//! grid round-trips through the journal, a hung cell degrades to a typed
//! `timed_out` row after bounded retries, and resume replays terminal rows
//! instead of re-simulating them.

use fairsched_core::policy::PolicySpec;
use fairsched_core::{
    cell_fault_seed, run_sweep, CellStatus, FaultPoint, GridState, SweepConfig, SweepPlan,
};
use fairsched_sim::FaultConfig;
use std::path::PathBuf;
use std::time::Duration;

fn journal_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("fairsched-ws-sweep-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{}-{name}", std::process::id()))
}

fn small_plan() -> SweepPlan {
    SweepPlan {
        seeds: vec![5],
        policies: vec![
            PolicySpec::by_id("cons.nomax").unwrap(),
            PolicySpec::by_id("easy.nomax").unwrap(),
        ],
        faults: vec![
            FaultPoint::clean(),
            FaultPoint {
                label: "crashy".into(),
                config: FaultConfig {
                    job_crash_rate: 0.2,
                    seed: 11,
                    ..FaultConfig::default()
                },
            },
        ],
        scale: 0.01,
        nodes: 1024,
        exact_estimates: false,
    }
}

#[test]
fn a_complete_grid_round_trips_through_the_journal() {
    let path = journal_path("complete.jsonl");
    let cfg = SweepConfig {
        plan: small_plan(),
        journal: path.clone(),
        timeout_per_cell: None,
        max_retries: 0,
        resume: false,
        threads: Some(2),
    };
    let summary = run_sweep(&cfg).unwrap();
    assert_eq!(summary.grid_state(), GridState::Complete);
    assert_eq!(summary.ok, 4);
    assert_eq!(summary.rows.len(), 4);
    for (i, row) in summary.rows.iter().enumerate() {
        assert_eq!(row.cell, i as u64);
        assert_eq!(row.status, CellStatus::Ok);
        assert!(row.metrics.is_some(), "ok rows carry metrics");
        // The journaled fault sub-seed is the documented pure derivation.
        let cell = cfg.plan.cell(row.cell);
        let base = cfg.plan.faults[cell.fault_idx].config.seed;
        assert_eq!(row.fault_seed, cell_fault_seed(base, row.cell));
    }
    // The journal on disk is the summary's source of truth.
    let replayed = fairsched_core::sweep::journal::replay(&path).unwrap();
    assert_eq!(replayed.skipped, 0);
    assert_eq!(replayed.latest_rows(), summary.rows);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn a_hung_cell_times_out_retries_and_degrades_to_a_typed_row() {
    // A 1ms budget is far below any cell's runtime at this scale, so every
    // attempt is cancelled by the watchdog; the grid survives with a
    // typed `timed_out` row instead of hanging or aborting.
    let path = journal_path("timeout.jsonl");
    let cfg = SweepConfig {
        plan: SweepPlan {
            seeds: vec![5],
            policies: vec![PolicySpec::by_id("cons.nomax").unwrap()],
            faults: vec![FaultPoint::clean()],
            scale: 0.05,
            nodes: 1024,
            exact_estimates: false,
        },
        journal: path.clone(),
        timeout_per_cell: Some(Duration::from_millis(1)),
        max_retries: 2,
        resume: false,
        threads: Some(1),
    };
    let summary = run_sweep(&cfg).unwrap();
    assert_eq!(summary.grid_state(), GridState::Partial);
    assert_eq!(summary.timed_out, 1);
    let row = &summary.rows[0];
    assert_eq!(row.status, CellStatus::TimedOut);
    assert_eq!(row.attempts, 3, "initial attempt + max_retries");
    assert!(row.detail.contains("watchdog timeout"), "{}", row.detail);
    assert!(row.metrics.is_none());
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn resume_replays_terminal_rows_without_resimulating() {
    let path = journal_path("resume.jsonl");
    let fresh = SweepConfig {
        plan: small_plan(),
        journal: path.clone(),
        timeout_per_cell: None,
        max_retries: 0,
        resume: false,
        threads: Some(1),
    };
    let first = run_sweep(&fresh).unwrap();
    assert_eq!(first.grid_state(), GridState::Complete);
    let bytes_after_first = std::fs::read(&path).unwrap();

    let resumed_cfg = SweepConfig {
        resume: true,
        ..fresh
    };
    let second = run_sweep(&resumed_cfg).unwrap();
    assert_eq!(second.resumed, 4, "every terminal row is skipped");
    assert_eq!(second.grid_state(), GridState::Complete);
    // Byte-identical journal and rows: nothing was appended, nothing
    // re-simulated.
    assert_eq!(std::fs::read(&path).unwrap(), bytes_after_first);
    let to_lines = |rows: &[fairsched_core::CellRow]| -> Vec<String> {
        rows.iter().map(|r| r.to_jsonl()).collect()
    };
    assert_eq!(to_lines(&second.rows), to_lines(&first.rows));
    std::fs::remove_file(&path).unwrap();
}
