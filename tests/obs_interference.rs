//! Zero-interference contract of the observability layer, end to end.
//!
//! Attaching a decision-trace sink (or the profiling scope) to a run must
//! never change what the scheduler decides: a traced run's `Schedule` and
//! every report in its `PolicyRun` are byte-identical to the untraced
//! run's, across policies, trace seeds, and fault configurations. This is
//! the half of the "zero-cost when off" design the type system cannot
//! enforce — emission sites live inside the engines' decision loops, so a
//! stray `&mut` or an emission-order dependence would silently fork the
//! schedule. These proptests pin it.

use fairsched::prelude::*;
use fairsched::sim::RepairTime;
use fairsched::workload::synthetic::random_trace;
use proptest::prelude::*;

const NODES: u32 = 32;

fn fault_cfg(variant: u8, seed: u64) -> FaultConfig {
    match variant {
        // Fault-free.
        0 => FaultConfig::default(),
        // Crashes, rerun from scratch.
        1 => FaultConfig {
            job_crash_rate: 0.2,
            resilience: ResiliencePolicy::RequeueFromScratch,
            seed,
            ..FaultConfig::default()
        },
        // Node outages + crashes, resuming chunks.
        _ => FaultConfig {
            node_mtbf: Some(50_000),
            repair: RepairTime { min: 60, max: 600 },
            job_crash_rate: 0.1,
            resilience: ResiliencePolicy::ChunkResume,
            seed,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A fully traced, fully profiled run reproduces the untraced
    /// `PolicyRun` exactly — schedule, fairness, and every optional
    /// report — while actually recording decisions.
    #[test]
    fn traced_runs_are_byte_identical_to_untraced(
        trace_seed in 0u64..1000,
        policy_idx in 0usize..9,
        fault_variant in 0u8..3,
        fault_seed in 0u64..1000,
    ) {
        let trace = random_trace(trace_seed, 40, NODES / 2, 20_000);
        let policy = &PolicySpec::paper_policies()[policy_idx];
        let untraced_opts = RunOptions {
            faults: fault_cfg(fault_variant, fault_seed),
            per_user: true,
            equality: true,
            resilience: true,
            profile: false,
            cancel: None,
        };
        // The traced run additionally profiles: both instrumentation
        // layers at once must still be invisible to the scheduler.
        let traced_opts = RunOptions { profile: true, ..untraced_opts.clone() };

        let untraced = try_run_policy(&trace, policy, NODES, &untraced_opts).unwrap();
        let mut records: Vec<TraceRecord> = Vec::new();
        let traced =
            try_run_policy_traced(&trace, policy, NODES, &traced_opts, Some(&mut records))
                .unwrap();

        prop_assert_eq!(&traced.outcome.schedule, &untraced.outcome.schedule);
        prop_assert_eq!(&traced.outcome.fairness, &untraced.outcome.fairness);
        prop_assert_eq!(&traced.per_user, &untraced.per_user);
        prop_assert_eq!(&traced.equality, &untraced.equality);
        prop_assert_eq!(&traced.resilience, &untraced.resilience);
        prop_assert!(traced.profile.is_some() && untraced.profile.is_none());

        // The trace is not vacuous: every start decision is recorded, in
        // nondecreasing time order, and with a start cause.
        let starts = records
            .iter()
            .filter(|r| matches!(r, TraceRecord::JobStarted { .. }))
            .count();
        prop_assert_eq!(starts, traced.outcome.schedule.records.len());
        prop_assert!(records.windows(2).all(|w| w[0].at() <= w[1].at()));
    }

    /// Tracing twice gives the identical record stream: decisions are a
    /// pure function of (trace, config), and so is their narration.
    #[test]
    fn decision_traces_are_reproducible(
        trace_seed in 0u64..1000,
        policy_idx in 0usize..9,
    ) {
        let trace = random_trace(trace_seed, 30, NODES / 2, 15_000);
        let policy = &PolicySpec::paper_policies()[policy_idx];
        let opts = RunOptions::default();
        let mut a: Vec<TraceRecord> = Vec::new();
        let mut b: Vec<TraceRecord> = Vec::new();
        try_run_policy_traced(&trace, policy, NODES, &opts, Some(&mut a)).unwrap();
        try_run_policy_traced(&trace, policy, NODES, &opts, Some(&mut b)).unwrap();
        prop_assert_eq!(a, b);
    }
}

/// The raw simulator entry point honors the same contract, and the JSONL
/// rendering round-trips every record into one well-formed line.
#[test]
fn traced_simulation_matches_untraced_and_serializes() {
    let trace = random_trace(11, 60, NODES / 2, 20_000);
    let cfg = SimConfig {
        nodes: NODES,
        engine: EngineKind::Conservative { dynamic: false },
        ..Default::default()
    };
    let clean = simulate(&trace, &cfg, &mut NullObserver, SimOptions::new()).unwrap();
    let mut tracer = DecisionTracer::unbounded();
    let traced = simulate(
        &trace,
        &cfg,
        &mut NullObserver,
        SimOptions::new().trace(&mut tracer),
    )
    .unwrap();
    assert_eq!(clean, traced);
    assert!(!tracer.is_empty());
    assert_eq!(tracer.dropped(), 0);
    for rec in tracer.records() {
        let line = rec.to_jsonl();
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(line.contains("\"type\":\""), "{line}");
        assert!(!line.contains('\n'));
    }
}
