//! SWF interchange: traces must survive serialization and produce identical
//! schedules when replayed from the parsed form — the property that makes
//! the generated workload archivable.

use fairsched::prelude::*;
use fairsched::workload::swf::{read_swf_str, write_swf_string};
use fairsched::workload::synthetic::random_trace;
use proptest::prelude::*;

#[test]
fn cplant_trace_round_trips_losslessly() {
    let trace = CplantModel::new(42).with_scale(0.05).generate();
    let text = write_swf_string(&trace, 1024, "integration test");
    let parsed = read_swf_str(&text).expect("parses");
    assert_eq!(parsed.jobs, trace);
    assert_eq!(parsed.skipped_degenerate, 0);
    assert_eq!(parsed.skipped_malformed, 0);
}

#[test]
fn replaying_a_parsed_trace_gives_the_identical_schedule() {
    let trace = CplantModel::new(11).with_scale(0.03).generate();
    let text = write_swf_string(&trace, 1024, "replay test");
    let parsed = read_swf_str(&text).expect("parses").jobs;

    let cfg = SimConfig {
        nodes: 1024,
        ..Default::default()
    };
    let original = simulate(&trace, &cfg, &mut NullObserver, SimOptions::new()).unwrap();
    let replayed = simulate(&parsed, &cfg, &mut NullObserver, SimOptions::new()).unwrap();
    assert_eq!(original, replayed);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_traces_round_trip(seed in 0u64..10_000, n in 1usize..120) {
        let trace = random_trace(seed, n, 64, 10_000);
        let text = write_swf_string(&trace, 64, "prop");
        let parsed = read_swf_str(&text).unwrap();
        prop_assert_eq!(parsed.jobs, trace);
    }

    #[test]
    fn swf_is_line_per_job_plus_header(seed in 0u64..10_000, n in 1usize..100) {
        let trace = random_trace(seed, n, 64, 10_000);
        let text = write_swf_string(&trace, 64, "prop");
        let data_lines = text.lines().filter(|l| !l.starts_with(';')).count();
        prop_assert_eq!(data_lines, n);
    }
}
