/root/repo/target/debug/libfairsched_cpa.rlib: /root/repo/crates/cpa/src/alloc.rs /root/repo/crates/cpa/src/frag.rs /root/repo/crates/cpa/src/lib.rs /root/repo/crates/cpa/src/linear.rs
