/root/repo/target/debug/deps/fairsched_core-dd5f63334bb68c23.d: crates/core/src/lib.rs crates/core/src/gantt.rs crates/core/src/policy.rs crates/core/src/report.rs crates/core/src/runner.rs crates/core/src/sweep.rs Cargo.toml

/root/repo/target/debug/deps/libfairsched_core-dd5f63334bb68c23.rmeta: crates/core/src/lib.rs crates/core/src/gantt.rs crates/core/src/policy.rs crates/core/src/report.rs crates/core/src/runner.rs crates/core/src/sweep.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/gantt.rs:
crates/core/src/policy.rs:
crates/core/src/report.rs:
crates/core/src/runner.rs:
crates/core/src/sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
