/root/repo/target/debug/deps/ablation_sweeps-1cb8ece74f9e0967.d: crates/experiments/src/bin/ablation_sweeps.rs

/root/repo/target/debug/deps/ablation_sweeps-1cb8ece74f9e0967: crates/experiments/src/bin/ablation_sweeps.rs

crates/experiments/src/bin/ablation_sweeps.rs:
