/root/repo/target/debug/deps/proptest-dbae7e771a70f8b0.d: vendor/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-dbae7e771a70f8b0.rmeta: vendor/proptest/src/lib.rs Cargo.toml

vendor/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
