/root/repo/target/debug/deps/fairsched_metrics-821b9b5a2450afb0.d: crates/metrics/src/lib.rs crates/metrics/src/fairness/mod.rs crates/metrics/src/fairness/consp.rs crates/metrics/src/fairness/equality.rs crates/metrics/src/fairness/fst.rs crates/metrics/src/fairness/hybrid.rs crates/metrics/src/fairness/jain.rs crates/metrics/src/fairness/peruser.rs crates/metrics/src/fairness/resilience.rs crates/metrics/src/fairness/sabin.rs crates/metrics/src/system.rs crates/metrics/src/user.rs Cargo.toml

/root/repo/target/debug/deps/libfairsched_metrics-821b9b5a2450afb0.rmeta: crates/metrics/src/lib.rs crates/metrics/src/fairness/mod.rs crates/metrics/src/fairness/consp.rs crates/metrics/src/fairness/equality.rs crates/metrics/src/fairness/fst.rs crates/metrics/src/fairness/hybrid.rs crates/metrics/src/fairness/jain.rs crates/metrics/src/fairness/peruser.rs crates/metrics/src/fairness/resilience.rs crates/metrics/src/fairness/sabin.rs crates/metrics/src/system.rs crates/metrics/src/user.rs Cargo.toml

crates/metrics/src/lib.rs:
crates/metrics/src/fairness/mod.rs:
crates/metrics/src/fairness/consp.rs:
crates/metrics/src/fairness/equality.rs:
crates/metrics/src/fairness/fst.rs:
crates/metrics/src/fairness/hybrid.rs:
crates/metrics/src/fairness/jain.rs:
crates/metrics/src/fairness/peruser.rs:
crates/metrics/src/fairness/resilience.rs:
crates/metrics/src/fairness/sabin.rs:
crates/metrics/src/system.rs:
crates/metrics/src/user.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
