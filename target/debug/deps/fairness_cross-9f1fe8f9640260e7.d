/root/repo/target/debug/deps/fairness_cross-9f1fe8f9640260e7.d: tests/fairness_cross.rs Cargo.toml

/root/repo/target/debug/deps/libfairness_cross-9f1fe8f9640260e7.rmeta: tests/fairness_cross.rs Cargo.toml

tests/fairness_cross.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
