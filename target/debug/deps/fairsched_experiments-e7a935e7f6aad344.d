/root/repo/target/debug/deps/fairsched_experiments-e7a935e7f6aad344.d: crates/experiments/src/lib.rs crates/experiments/src/ablations.rs crates/experiments/src/characterization.rs crates/experiments/src/figures.rs

/root/repo/target/debug/deps/libfairsched_experiments-e7a935e7f6aad344.rlib: crates/experiments/src/lib.rs crates/experiments/src/ablations.rs crates/experiments/src/characterization.rs crates/experiments/src/figures.rs

/root/repo/target/debug/deps/libfairsched_experiments-e7a935e7f6aad344.rmeta: crates/experiments/src/lib.rs crates/experiments/src/ablations.rs crates/experiments/src/characterization.rs crates/experiments/src/figures.rs

crates/experiments/src/lib.rs:
crates/experiments/src/ablations.rs:
crates/experiments/src/characterization.rs:
crates/experiments/src/figures.rs:
