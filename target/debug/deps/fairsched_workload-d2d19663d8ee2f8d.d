/root/repo/target/debug/deps/fairsched_workload-d2d19663d8ee2f8d.d: crates/workload/src/lib.rs crates/workload/src/categories.rs crates/workload/src/estimate.rs crates/workload/src/job.rs crates/workload/src/models.rs crates/workload/src/stats.rs crates/workload/src/swf.rs crates/workload/src/synthetic.rs crates/workload/src/tables.rs crates/workload/src/time.rs

/root/repo/target/debug/deps/libfairsched_workload-d2d19663d8ee2f8d.rlib: crates/workload/src/lib.rs crates/workload/src/categories.rs crates/workload/src/estimate.rs crates/workload/src/job.rs crates/workload/src/models.rs crates/workload/src/stats.rs crates/workload/src/swf.rs crates/workload/src/synthetic.rs crates/workload/src/tables.rs crates/workload/src/time.rs

/root/repo/target/debug/deps/libfairsched_workload-d2d19663d8ee2f8d.rmeta: crates/workload/src/lib.rs crates/workload/src/categories.rs crates/workload/src/estimate.rs crates/workload/src/job.rs crates/workload/src/models.rs crates/workload/src/stats.rs crates/workload/src/swf.rs crates/workload/src/synthetic.rs crates/workload/src/tables.rs crates/workload/src/time.rs

crates/workload/src/lib.rs:
crates/workload/src/categories.rs:
crates/workload/src/estimate.rs:
crates/workload/src/job.rs:
crates/workload/src/models.rs:
crates/workload/src/stats.rs:
crates/workload/src/swf.rs:
crates/workload/src/synthetic.rs:
crates/workload/src/tables.rs:
crates/workload/src/time.rs:
