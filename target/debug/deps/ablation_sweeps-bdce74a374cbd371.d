/root/repo/target/debug/deps/ablation_sweeps-bdce74a374cbd371.d: crates/experiments/src/bin/ablation_sweeps.rs Cargo.toml

/root/repo/target/debug/deps/libablation_sweeps-bdce74a374cbd371.rmeta: crates/experiments/src/bin/ablation_sweeps.rs Cargo.toml

crates/experiments/src/bin/ablation_sweeps.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
