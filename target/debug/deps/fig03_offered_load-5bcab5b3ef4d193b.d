/root/repo/target/debug/deps/fig03_offered_load-5bcab5b3ef4d193b.d: crates/experiments/src/bin/fig03_offered_load.rs

/root/repo/target/debug/deps/fig03_offered_load-5bcab5b3ef4d193b: crates/experiments/src/bin/fig03_offered_load.rs

crates/experiments/src/bin/fig03_offered_load.rs:
