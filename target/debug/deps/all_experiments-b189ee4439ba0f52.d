/root/repo/target/debug/deps/all_experiments-b189ee4439ba0f52.d: crates/experiments/src/bin/all_experiments.rs

/root/repo/target/debug/deps/all_experiments-b189ee4439ba0f52: crates/experiments/src/bin/all_experiments.rs

crates/experiments/src/bin/all_experiments.rs:
