/root/repo/target/debug/deps/fig03_offered_load-d0bfc6cb9ce99c83.d: crates/experiments/src/bin/fig03_offered_load.rs

/root/repo/target/debug/deps/fig03_offered_load-d0bfc6cb9ce99c83: crates/experiments/src/bin/fig03_offered_load.rs

crates/experiments/src/bin/fig03_offered_load.rs:
