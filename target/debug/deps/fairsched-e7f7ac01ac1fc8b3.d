/root/repo/target/debug/deps/fairsched-e7f7ac01ac1fc8b3.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libfairsched-e7f7ac01ac1fc8b3.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
