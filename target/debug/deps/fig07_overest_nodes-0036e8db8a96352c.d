/root/repo/target/debug/deps/fig07_overest_nodes-0036e8db8a96352c.d: crates/experiments/src/bin/fig07_overest_nodes.rs Cargo.toml

/root/repo/target/debug/deps/libfig07_overest_nodes-0036e8db8a96352c.rmeta: crates/experiments/src/bin/fig07_overest_nodes.rs Cargo.toml

crates/experiments/src/bin/fig07_overest_nodes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
