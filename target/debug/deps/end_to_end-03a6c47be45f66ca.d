/root/repo/target/debug/deps/end_to_end-03a6c47be45f66ca.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-03a6c47be45f66ca: tests/end_to_end.rs

tests/end_to_end.rs:
