/root/repo/target/debug/deps/metamorphic-ff7b88e2e30b38b7.d: tests/metamorphic.rs

/root/repo/target/debug/deps/metamorphic-ff7b88e2e30b38b7: tests/metamorphic.rs

tests/metamorphic.rs:
