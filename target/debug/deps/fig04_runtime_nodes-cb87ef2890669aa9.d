/root/repo/target/debug/deps/fig04_runtime_nodes-cb87ef2890669aa9.d: crates/experiments/src/bin/fig04_runtime_nodes.rs

/root/repo/target/debug/deps/fig04_runtime_nodes-cb87ef2890669aa9: crates/experiments/src/bin/fig04_runtime_nodes.rs

crates/experiments/src/bin/fig04_runtime_nodes.rs:
