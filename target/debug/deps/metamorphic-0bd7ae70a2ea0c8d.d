/root/repo/target/debug/deps/metamorphic-0bd7ae70a2ea0c8d.d: tests/metamorphic.rs Cargo.toml

/root/repo/target/debug/deps/libmetamorphic-0bd7ae70a2ea0c8d.rmeta: tests/metamorphic.rs Cargo.toml

tests/metamorphic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
