/root/repo/target/debug/deps/fairsched_workload-851b095d946700e5.d: crates/workload/src/lib.rs crates/workload/src/categories.rs crates/workload/src/estimate.rs crates/workload/src/job.rs crates/workload/src/models.rs crates/workload/src/stats.rs crates/workload/src/swf.rs crates/workload/src/synthetic.rs crates/workload/src/tables.rs crates/workload/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libfairsched_workload-851b095d946700e5.rmeta: crates/workload/src/lib.rs crates/workload/src/categories.rs crates/workload/src/estimate.rs crates/workload/src/job.rs crates/workload/src/models.rs crates/workload/src/stats.rs crates/workload/src/swf.rs crates/workload/src/synthetic.rs crates/workload/src/tables.rs crates/workload/src/time.rs Cargo.toml

crates/workload/src/lib.rs:
crates/workload/src/categories.rs:
crates/workload/src/estimate.rs:
crates/workload/src/job.rs:
crates/workload/src/models.rs:
crates/workload/src/stats.rs:
crates/workload/src/swf.rs:
crates/workload/src/synthetic.rs:
crates/workload/src/tables.rs:
crates/workload/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
