/root/repo/target/debug/deps/ablation_sweeps-91b0dd0064f2b017.d: crates/experiments/src/bin/ablation_sweeps.rs

/root/repo/target/debug/deps/ablation_sweeps-91b0dd0064f2b017: crates/experiments/src/bin/ablation_sweeps.rs

crates/experiments/src/bin/ablation_sweeps.rs:
