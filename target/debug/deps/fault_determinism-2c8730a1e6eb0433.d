/root/repo/target/debug/deps/fault_determinism-2c8730a1e6eb0433.d: tests/fault_determinism.rs

/root/repo/target/debug/deps/fault_determinism-2c8730a1e6eb0433: tests/fault_determinism.rs

tests/fault_determinism.rs:
