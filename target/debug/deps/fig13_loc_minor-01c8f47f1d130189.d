/root/repo/target/debug/deps/fig13_loc_minor-01c8f47f1d130189.d: crates/experiments/src/bin/fig13_loc_minor.rs

/root/repo/target/debug/deps/fig13_loc_minor-01c8f47f1d130189: crates/experiments/src/bin/fig13_loc_minor.rs

crates/experiments/src/bin/fig13_loc_minor.rs:
