/root/repo/target/debug/deps/fig10_miss_by_width_minor-c67e3affdd034bb6.d: crates/experiments/src/bin/fig10_miss_by_width_minor.rs

/root/repo/target/debug/deps/fig10_miss_by_width_minor-c67e3affdd034bb6: crates/experiments/src/bin/fig10_miss_by_width_minor.rs

crates/experiments/src/bin/fig10_miss_by_width_minor.rs:
