/root/repo/target/debug/deps/fig11_turnaround_minor-6b14bd02f65684cb.d: crates/experiments/src/bin/fig11_turnaround_minor.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_turnaround_minor-6b14bd02f65684cb.rmeta: crates/experiments/src/bin/fig11_turnaround_minor.rs Cargo.toml

crates/experiments/src/bin/fig11_turnaround_minor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
