/root/repo/target/debug/deps/fairsched_bench-7a9e69f71b1d7383.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libfairsched_bench-7a9e69f71b1d7383.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libfairsched_bench-7a9e69f71b1d7383.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
