/root/repo/target/debug/deps/fig06_overest_runtime-ee06b9c00a96f277.d: crates/experiments/src/bin/fig06_overest_runtime.rs

/root/repo/target/debug/deps/fig06_overest_runtime-ee06b9c00a96f277: crates/experiments/src/bin/fig06_overest_runtime.rs

crates/experiments/src/bin/fig06_overest_runtime.rs:
