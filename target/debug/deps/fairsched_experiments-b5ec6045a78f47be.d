/root/repo/target/debug/deps/fairsched_experiments-b5ec6045a78f47be.d: crates/experiments/src/lib.rs crates/experiments/src/ablations.rs crates/experiments/src/characterization.rs crates/experiments/src/figures.rs

/root/repo/target/debug/deps/fairsched_experiments-b5ec6045a78f47be: crates/experiments/src/lib.rs crates/experiments/src/ablations.rs crates/experiments/src/characterization.rs crates/experiments/src/figures.rs

crates/experiments/src/lib.rs:
crates/experiments/src/ablations.rs:
crates/experiments/src/characterization.rs:
crates/experiments/src/figures.rs:
