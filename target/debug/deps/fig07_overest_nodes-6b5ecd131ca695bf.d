/root/repo/target/debug/deps/fig07_overest_nodes-6b5ecd131ca695bf.d: crates/experiments/src/bin/fig07_overest_nodes.rs

/root/repo/target/debug/deps/fig07_overest_nodes-6b5ecd131ca695bf: crates/experiments/src/bin/fig07_overest_nodes.rs

crates/experiments/src/bin/fig07_overest_nodes.rs:
