/root/repo/target/debug/deps/fig11_turnaround_minor-d98c8a9e48bd956f.d: crates/experiments/src/bin/fig11_turnaround_minor.rs

/root/repo/target/debug/deps/fig11_turnaround_minor-d98c8a9e48bd956f: crates/experiments/src/bin/fig11_turnaround_minor.rs

crates/experiments/src/bin/fig11_turnaround_minor.rs:
