/root/repo/target/debug/deps/fairness_cross-be3fbbe532070998.d: tests/fairness_cross.rs

/root/repo/target/debug/deps/fairness_cross-be3fbbe532070998: tests/fairness_cross.rs

tests/fairness_cross.rs:
