/root/repo/target/debug/deps/fairsched_experiments-5445db6fd47786fb.d: crates/experiments/src/lib.rs crates/experiments/src/ablations.rs crates/experiments/src/characterization.rs crates/experiments/src/figures.rs

/root/repo/target/debug/deps/libfairsched_experiments-5445db6fd47786fb.rlib: crates/experiments/src/lib.rs crates/experiments/src/ablations.rs crates/experiments/src/characterization.rs crates/experiments/src/figures.rs

/root/repo/target/debug/deps/libfairsched_experiments-5445db6fd47786fb.rmeta: crates/experiments/src/lib.rs crates/experiments/src/ablations.rs crates/experiments/src/characterization.rs crates/experiments/src/figures.rs

crates/experiments/src/lib.rs:
crates/experiments/src/ablations.rs:
crates/experiments/src/characterization.rs:
crates/experiments/src/figures.rs:
