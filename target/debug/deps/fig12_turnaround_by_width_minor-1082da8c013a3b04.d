/root/repo/target/debug/deps/fig12_turnaround_by_width_minor-1082da8c013a3b04.d: crates/experiments/src/bin/fig12_turnaround_by_width_minor.rs

/root/repo/target/debug/deps/fig12_turnaround_by_width_minor-1082da8c013a3b04: crates/experiments/src/bin/fig12_turnaround_by_width_minor.rs

crates/experiments/src/bin/fig12_turnaround_by_width_minor.rs:
