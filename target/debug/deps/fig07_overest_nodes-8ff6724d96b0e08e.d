/root/repo/target/debug/deps/fig07_overest_nodes-8ff6724d96b0e08e.d: crates/experiments/src/bin/fig07_overest_nodes.rs

/root/repo/target/debug/deps/fig07_overest_nodes-8ff6724d96b0e08e: crates/experiments/src/bin/fig07_overest_nodes.rs

crates/experiments/src/bin/fig07_overest_nodes.rs:
