/root/repo/target/debug/deps/ablation_sweeps-c502d3f920adc8e5.d: crates/experiments/src/bin/ablation_sweeps.rs

/root/repo/target/debug/deps/ablation_sweeps-c502d3f920adc8e5: crates/experiments/src/bin/ablation_sweeps.rs

crates/experiments/src/bin/ablation_sweeps.rs:
