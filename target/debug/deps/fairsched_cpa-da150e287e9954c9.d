/root/repo/target/debug/deps/fairsched_cpa-da150e287e9954c9.d: crates/cpa/src/lib.rs crates/cpa/src/alloc.rs crates/cpa/src/frag.rs crates/cpa/src/linear.rs Cargo.toml

/root/repo/target/debug/deps/libfairsched_cpa-da150e287e9954c9.rmeta: crates/cpa/src/lib.rs crates/cpa/src/alloc.rs crates/cpa/src/frag.rs crates/cpa/src/linear.rs Cargo.toml

crates/cpa/src/lib.rs:
crates/cpa/src/alloc.rs:
crates/cpa/src/frag.rs:
crates/cpa/src/linear.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
