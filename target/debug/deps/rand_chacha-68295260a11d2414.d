/root/repo/target/debug/deps/rand_chacha-68295260a11d2414.d: vendor/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/rand_chacha-68295260a11d2414: vendor/rand_chacha/src/lib.rs

vendor/rand_chacha/src/lib.rs:
