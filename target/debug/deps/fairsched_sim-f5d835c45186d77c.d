/root/repo/target/debug/deps/fairsched_sim-f5d835c45186d77c.d: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/event.rs crates/sim/src/fairshare.rs crates/sim/src/faults.rs crates/sim/src/listsched.rs crates/sim/src/profile.rs crates/sim/src/simulator.rs crates/sim/src/starvation.rs crates/sim/src/state.rs

/root/repo/target/debug/deps/libfairsched_sim-f5d835c45186d77c.rlib: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/event.rs crates/sim/src/fairshare.rs crates/sim/src/faults.rs crates/sim/src/listsched.rs crates/sim/src/profile.rs crates/sim/src/simulator.rs crates/sim/src/starvation.rs crates/sim/src/state.rs

/root/repo/target/debug/deps/libfairsched_sim-f5d835c45186d77c.rmeta: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/event.rs crates/sim/src/fairshare.rs crates/sim/src/faults.rs crates/sim/src/listsched.rs crates/sim/src/profile.rs crates/sim/src/simulator.rs crates/sim/src/starvation.rs crates/sim/src/state.rs

crates/sim/src/lib.rs:
crates/sim/src/config.rs:
crates/sim/src/engine.rs:
crates/sim/src/event.rs:
crates/sim/src/fairshare.rs:
crates/sim/src/faults.rs:
crates/sim/src/listsched.rs:
crates/sim/src/profile.rs:
crates/sim/src/simulator.rs:
crates/sim/src/starvation.rs:
crates/sim/src/state.rs:
