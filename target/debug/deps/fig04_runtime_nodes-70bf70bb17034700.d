/root/repo/target/debug/deps/fig04_runtime_nodes-70bf70bb17034700.d: crates/experiments/src/bin/fig04_runtime_nodes.rs

/root/repo/target/debug/deps/fig04_runtime_nodes-70bf70bb17034700: crates/experiments/src/bin/fig04_runtime_nodes.rs

crates/experiments/src/bin/fig04_runtime_nodes.rs:
