/root/repo/target/debug/deps/fig03_offered_load-49901dfd11877837.d: crates/experiments/src/bin/fig03_offered_load.rs Cargo.toml

/root/repo/target/debug/deps/libfig03_offered_load-49901dfd11877837.rmeta: crates/experiments/src/bin/fig03_offered_load.rs Cargo.toml

crates/experiments/src/bin/fig03_offered_load.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
