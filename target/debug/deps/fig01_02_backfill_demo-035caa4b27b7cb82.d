/root/repo/target/debug/deps/fig01_02_backfill_demo-035caa4b27b7cb82.d: crates/experiments/src/bin/fig01_02_backfill_demo.rs Cargo.toml

/root/repo/target/debug/deps/libfig01_02_backfill_demo-035caa4b27b7cb82.rmeta: crates/experiments/src/bin/fig01_02_backfill_demo.rs Cargo.toml

crates/experiments/src/bin/fig01_02_backfill_demo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
