/root/repo/target/debug/deps/fig13_loc_minor-9721c74f85208163.d: crates/experiments/src/bin/fig13_loc_minor.rs Cargo.toml

/root/repo/target/debug/deps/libfig13_loc_minor-9721c74f85208163.rmeta: crates/experiments/src/bin/fig13_loc_minor.rs Cargo.toml

crates/experiments/src/bin/fig13_loc_minor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
