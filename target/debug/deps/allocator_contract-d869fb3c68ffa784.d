/root/repo/target/debug/deps/allocator_contract-d869fb3c68ffa784.d: crates/cpa/tests/allocator_contract.rs Cargo.toml

/root/repo/target/debug/deps/liballocator_contract-d869fb3c68ffa784.rmeta: crates/cpa/tests/allocator_contract.rs Cargo.toml

crates/cpa/tests/allocator_contract.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
