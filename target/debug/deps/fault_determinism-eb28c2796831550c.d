/root/repo/target/debug/deps/fault_determinism-eb28c2796831550c.d: tests/fault_determinism.rs Cargo.toml

/root/repo/target/debug/deps/libfault_determinism-eb28c2796831550c.rmeta: tests/fault_determinism.rs Cargo.toml

tests/fault_determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
