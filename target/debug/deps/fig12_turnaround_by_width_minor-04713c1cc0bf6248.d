/root/repo/target/debug/deps/fig12_turnaround_by_width_minor-04713c1cc0bf6248.d: crates/experiments/src/bin/fig12_turnaround_by_width_minor.rs

/root/repo/target/debug/deps/fig12_turnaround_by_width_minor-04713c1cc0bf6248: crates/experiments/src/bin/fig12_turnaround_by_width_minor.rs

crates/experiments/src/bin/fig12_turnaround_by_width_minor.rs:
