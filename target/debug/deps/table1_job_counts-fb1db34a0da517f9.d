/root/repo/target/debug/deps/table1_job_counts-fb1db34a0da517f9.d: crates/experiments/src/bin/table1_job_counts.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_job_counts-fb1db34a0da517f9.rmeta: crates/experiments/src/bin/table1_job_counts.rs Cargo.toml

crates/experiments/src/bin/table1_job_counts.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
