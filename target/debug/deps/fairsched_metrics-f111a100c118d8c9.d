/root/repo/target/debug/deps/fairsched_metrics-f111a100c118d8c9.d: crates/metrics/src/lib.rs crates/metrics/src/fairness/mod.rs crates/metrics/src/fairness/consp.rs crates/metrics/src/fairness/equality.rs crates/metrics/src/fairness/fst.rs crates/metrics/src/fairness/hybrid.rs crates/metrics/src/fairness/jain.rs crates/metrics/src/fairness/peruser.rs crates/metrics/src/fairness/resilience.rs crates/metrics/src/fairness/sabin.rs crates/metrics/src/system.rs crates/metrics/src/user.rs

/root/repo/target/debug/deps/libfairsched_metrics-f111a100c118d8c9.rlib: crates/metrics/src/lib.rs crates/metrics/src/fairness/mod.rs crates/metrics/src/fairness/consp.rs crates/metrics/src/fairness/equality.rs crates/metrics/src/fairness/fst.rs crates/metrics/src/fairness/hybrid.rs crates/metrics/src/fairness/jain.rs crates/metrics/src/fairness/peruser.rs crates/metrics/src/fairness/resilience.rs crates/metrics/src/fairness/sabin.rs crates/metrics/src/system.rs crates/metrics/src/user.rs

/root/repo/target/debug/deps/libfairsched_metrics-f111a100c118d8c9.rmeta: crates/metrics/src/lib.rs crates/metrics/src/fairness/mod.rs crates/metrics/src/fairness/consp.rs crates/metrics/src/fairness/equality.rs crates/metrics/src/fairness/fst.rs crates/metrics/src/fairness/hybrid.rs crates/metrics/src/fairness/jain.rs crates/metrics/src/fairness/peruser.rs crates/metrics/src/fairness/resilience.rs crates/metrics/src/fairness/sabin.rs crates/metrics/src/system.rs crates/metrics/src/user.rs

crates/metrics/src/lib.rs:
crates/metrics/src/fairness/mod.rs:
crates/metrics/src/fairness/consp.rs:
crates/metrics/src/fairness/equality.rs:
crates/metrics/src/fairness/fst.rs:
crates/metrics/src/fairness/hybrid.rs:
crates/metrics/src/fairness/jain.rs:
crates/metrics/src/fairness/peruser.rs:
crates/metrics/src/fairness/resilience.rs:
crates/metrics/src/fairness/sabin.rs:
crates/metrics/src/system.rs:
crates/metrics/src/user.rs:
