/root/repo/target/debug/deps/fig17_turnaround_all-fd836797fb873df3.d: crates/experiments/src/bin/fig17_turnaround_all.rs Cargo.toml

/root/repo/target/debug/deps/libfig17_turnaround_all-fd836797fb873df3.rmeta: crates/experiments/src/bin/fig17_turnaround_all.rs Cargo.toml

crates/experiments/src/bin/fig17_turnaround_all.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
