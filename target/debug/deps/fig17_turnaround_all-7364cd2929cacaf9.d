/root/repo/target/debug/deps/fig17_turnaround_all-7364cd2929cacaf9.d: crates/experiments/src/bin/fig17_turnaround_all.rs

/root/repo/target/debug/deps/fig17_turnaround_all-7364cd2929cacaf9: crates/experiments/src/bin/fig17_turnaround_all.rs

crates/experiments/src/bin/fig17_turnaround_all.rs:
