/root/repo/target/debug/deps/fig16_miss_by_width_cons-cf58ae9f9e8d9d2e.d: crates/experiments/src/bin/fig16_miss_by_width_cons.rs Cargo.toml

/root/repo/target/debug/deps/libfig16_miss_by_width_cons-cf58ae9f9e8d9d2e.rmeta: crates/experiments/src/bin/fig16_miss_by_width_cons.rs Cargo.toml

crates/experiments/src/bin/fig16_miss_by_width_cons.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
