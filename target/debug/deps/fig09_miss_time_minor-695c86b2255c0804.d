/root/repo/target/debug/deps/fig09_miss_time_minor-695c86b2255c0804.d: crates/experiments/src/bin/fig09_miss_time_minor.rs

/root/repo/target/debug/deps/fig09_miss_time_minor-695c86b2255c0804: crates/experiments/src/bin/fig09_miss_time_minor.rs

crates/experiments/src/bin/fig09_miss_time_minor.rs:
