/root/repo/target/debug/deps/fig14_percent_unfair_all-becb9c52f2cfb375.d: crates/experiments/src/bin/fig14_percent_unfair_all.rs Cargo.toml

/root/repo/target/debug/deps/libfig14_percent_unfair_all-becb9c52f2cfb375.rmeta: crates/experiments/src/bin/fig14_percent_unfair_all.rs Cargo.toml

crates/experiments/src/bin/fig14_percent_unfair_all.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
