/root/repo/target/debug/deps/fault_sensitivity-1381dc7696de88de.d: crates/experiments/src/bin/fault_sensitivity.rs

/root/repo/target/debug/deps/fault_sensitivity-1381dc7696de88de: crates/experiments/src/bin/fault_sensitivity.rs

crates/experiments/src/bin/fault_sensitivity.rs:
