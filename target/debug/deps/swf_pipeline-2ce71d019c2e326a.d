/root/repo/target/debug/deps/swf_pipeline-2ce71d019c2e326a.d: tests/swf_pipeline.rs

/root/repo/target/debug/deps/swf_pipeline-2ce71d019c2e326a: tests/swf_pipeline.rs

tests/swf_pipeline.rs:
