/root/repo/target/debug/deps/fairsched_cpa-a2403d34fd9fa064.d: crates/cpa/src/lib.rs crates/cpa/src/alloc.rs crates/cpa/src/frag.rs crates/cpa/src/linear.rs

/root/repo/target/debug/deps/fairsched_cpa-a2403d34fd9fa064: crates/cpa/src/lib.rs crates/cpa/src/alloc.rs crates/cpa/src/frag.rs crates/cpa/src/linear.rs

crates/cpa/src/lib.rs:
crates/cpa/src/alloc.rs:
crates/cpa/src/frag.rs:
crates/cpa/src/linear.rs:
