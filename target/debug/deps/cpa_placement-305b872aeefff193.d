/root/repo/target/debug/deps/cpa_placement-305b872aeefff193.d: crates/experiments/src/bin/cpa_placement.rs

/root/repo/target/debug/deps/cpa_placement-305b872aeefff193: crates/experiments/src/bin/cpa_placement.rs

crates/experiments/src/bin/cpa_placement.rs:
