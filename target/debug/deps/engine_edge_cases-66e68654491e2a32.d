/root/repo/target/debug/deps/engine_edge_cases-66e68654491e2a32.d: crates/sim/tests/engine_edge_cases.rs Cargo.toml

/root/repo/target/debug/deps/libengine_edge_cases-66e68654491e2a32.rmeta: crates/sim/tests/engine_edge_cases.rs Cargo.toml

crates/sim/tests/engine_edge_cases.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
