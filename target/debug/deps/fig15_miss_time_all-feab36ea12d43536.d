/root/repo/target/debug/deps/fig15_miss_time_all-feab36ea12d43536.d: crates/experiments/src/bin/fig15_miss_time_all.rs

/root/repo/target/debug/deps/fig15_miss_time_all-feab36ea12d43536: crates/experiments/src/bin/fig15_miss_time_all.rs

crates/experiments/src/bin/fig15_miss_time_all.rs:
