/root/repo/target/debug/deps/cpa_placement-3dcffbfda3ff908e.d: crates/experiments/src/bin/cpa_placement.rs Cargo.toml

/root/repo/target/debug/deps/libcpa_placement-3dcffbfda3ff908e.rmeta: crates/experiments/src/bin/cpa_placement.rs Cargo.toml

crates/experiments/src/bin/cpa_placement.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
