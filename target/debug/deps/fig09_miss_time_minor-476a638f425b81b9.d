/root/repo/target/debug/deps/fig09_miss_time_minor-476a638f425b81b9.d: crates/experiments/src/bin/fig09_miss_time_minor.rs Cargo.toml

/root/repo/target/debug/deps/libfig09_miss_time_minor-476a638f425b81b9.rmeta: crates/experiments/src/bin/fig09_miss_time_minor.rs Cargo.toml

crates/experiments/src/bin/fig09_miss_time_minor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
