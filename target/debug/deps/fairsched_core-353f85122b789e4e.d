/root/repo/target/debug/deps/fairsched_core-353f85122b789e4e.d: crates/core/src/lib.rs crates/core/src/gantt.rs crates/core/src/policy.rs crates/core/src/report.rs crates/core/src/runner.rs crates/core/src/sweep.rs

/root/repo/target/debug/deps/libfairsched_core-353f85122b789e4e.rlib: crates/core/src/lib.rs crates/core/src/gantt.rs crates/core/src/policy.rs crates/core/src/report.rs crates/core/src/runner.rs crates/core/src/sweep.rs

/root/repo/target/debug/deps/libfairsched_core-353f85122b789e4e.rmeta: crates/core/src/lib.rs crates/core/src/gantt.rs crates/core/src/policy.rs crates/core/src/report.rs crates/core/src/runner.rs crates/core/src/sweep.rs

crates/core/src/lib.rs:
crates/core/src/gantt.rs:
crates/core/src/policy.rs:
crates/core/src/report.rs:
crates/core/src/runner.rs:
crates/core/src/sweep.rs:
