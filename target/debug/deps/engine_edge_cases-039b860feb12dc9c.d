/root/repo/target/debug/deps/engine_edge_cases-039b860feb12dc9c.d: crates/sim/tests/engine_edge_cases.rs

/root/repo/target/debug/deps/engine_edge_cases-039b860feb12dc9c: crates/sim/tests/engine_edge_cases.rs

crates/sim/tests/engine_edge_cases.rs:
