/root/repo/target/debug/deps/fig06_overest_runtime-e5263b65cea041bd.d: crates/experiments/src/bin/fig06_overest_runtime.rs Cargo.toml

/root/repo/target/debug/deps/libfig06_overest_runtime-e5263b65cea041bd.rmeta: crates/experiments/src/bin/fig06_overest_runtime.rs Cargo.toml

crates/experiments/src/bin/fig06_overest_runtime.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
