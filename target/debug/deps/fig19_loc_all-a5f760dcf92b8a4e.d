/root/repo/target/debug/deps/fig19_loc_all-a5f760dcf92b8a4e.d: crates/experiments/src/bin/fig19_loc_all.rs Cargo.toml

/root/repo/target/debug/deps/libfig19_loc_all-a5f760dcf92b8a4e.rmeta: crates/experiments/src/bin/fig19_loc_all.rs Cargo.toml

crates/experiments/src/bin/fig19_loc_all.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
