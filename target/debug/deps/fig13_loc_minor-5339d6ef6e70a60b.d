/root/repo/target/debug/deps/fig13_loc_minor-5339d6ef6e70a60b.d: crates/experiments/src/bin/fig13_loc_minor.rs Cargo.toml

/root/repo/target/debug/deps/libfig13_loc_minor-5339d6ef6e70a60b.rmeta: crates/experiments/src/bin/fig13_loc_minor.rs Cargo.toml

crates/experiments/src/bin/fig13_loc_minor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
