/root/repo/target/debug/deps/swf_pipeline-8e0b4acc2c8f9323.d: tests/swf_pipeline.rs

/root/repo/target/debug/deps/swf_pipeline-8e0b4acc2c8f9323: tests/swf_pipeline.rs

tests/swf_pipeline.rs:
