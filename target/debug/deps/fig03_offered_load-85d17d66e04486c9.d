/root/repo/target/debug/deps/fig03_offered_load-85d17d66e04486c9.d: crates/experiments/src/bin/fig03_offered_load.rs

/root/repo/target/debug/deps/fig03_offered_load-85d17d66e04486c9: crates/experiments/src/bin/fig03_offered_load.rs

crates/experiments/src/bin/fig03_offered_load.rs:
