/root/repo/target/debug/deps/fig05_estimates-3d629ba36f2b069c.d: crates/experiments/src/bin/fig05_estimates.rs Cargo.toml

/root/repo/target/debug/deps/libfig05_estimates-3d629ba36f2b069c.rmeta: crates/experiments/src/bin/fig05_estimates.rs Cargo.toml

crates/experiments/src/bin/fig05_estimates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
