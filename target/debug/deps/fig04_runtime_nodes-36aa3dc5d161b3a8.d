/root/repo/target/debug/deps/fig04_runtime_nodes-36aa3dc5d161b3a8.d: crates/experiments/src/bin/fig04_runtime_nodes.rs Cargo.toml

/root/repo/target/debug/deps/libfig04_runtime_nodes-36aa3dc5d161b3a8.rmeta: crates/experiments/src/bin/fig04_runtime_nodes.rs Cargo.toml

crates/experiments/src/bin/fig04_runtime_nodes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
