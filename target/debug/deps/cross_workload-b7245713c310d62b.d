/root/repo/target/debug/deps/cross_workload-b7245713c310d62b.d: tests/cross_workload.rs

/root/repo/target/debug/deps/cross_workload-b7245713c310d62b: tests/cross_workload.rs

tests/cross_workload.rs:
