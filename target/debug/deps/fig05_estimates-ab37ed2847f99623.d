/root/repo/target/debug/deps/fig05_estimates-ab37ed2847f99623.d: crates/experiments/src/bin/fig05_estimates.rs

/root/repo/target/debug/deps/fig05_estimates-ab37ed2847f99623: crates/experiments/src/bin/fig05_estimates.rs

crates/experiments/src/bin/fig05_estimates.rs:
