/root/repo/target/debug/deps/engine_edge_cases-29eb76685ffd3310.d: crates/sim/tests/engine_edge_cases.rs

/root/repo/target/debug/deps/engine_edge_cases-29eb76685ffd3310: crates/sim/tests/engine_edge_cases.rs

crates/sim/tests/engine_edge_cases.rs:
