/root/repo/target/debug/deps/fig12_turnaround_by_width_minor-285f3eeffbafa1c5.d: crates/experiments/src/bin/fig12_turnaround_by_width_minor.rs

/root/repo/target/debug/deps/fig12_turnaround_by_width_minor-285f3eeffbafa1c5: crates/experiments/src/bin/fig12_turnaround_by_width_minor.rs

crates/experiments/src/bin/fig12_turnaround_by_width_minor.rs:
