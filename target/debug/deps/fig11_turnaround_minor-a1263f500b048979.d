/root/repo/target/debug/deps/fig11_turnaround_minor-a1263f500b048979.d: crates/experiments/src/bin/fig11_turnaround_minor.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_turnaround_minor-a1263f500b048979.rmeta: crates/experiments/src/bin/fig11_turnaround_minor.rs Cargo.toml

crates/experiments/src/bin/fig11_turnaround_minor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
