/root/repo/target/debug/deps/peruser_fairness-4a854e32fd57b712.d: crates/experiments/src/bin/peruser_fairness.rs Cargo.toml

/root/repo/target/debug/deps/libperuser_fairness-4a854e32fd57b712.rmeta: crates/experiments/src/bin/peruser_fairness.rs Cargo.toml

crates/experiments/src/bin/peruser_fairness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
