/root/repo/target/debug/deps/fairsched_bench-766fdf13cb2c2380.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/fairsched_bench-766fdf13cb2c2380: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
