/root/repo/target/debug/deps/peruser_fairness-5a4f9d0845ddcf2e.d: crates/experiments/src/bin/peruser_fairness.rs Cargo.toml

/root/repo/target/debug/deps/libperuser_fairness-5a4f9d0845ddcf2e.rmeta: crates/experiments/src/bin/peruser_fairness.rs Cargo.toml

crates/experiments/src/bin/peruser_fairness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
