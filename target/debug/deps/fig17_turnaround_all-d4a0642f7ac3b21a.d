/root/repo/target/debug/deps/fig17_turnaround_all-d4a0642f7ac3b21a.d: crates/experiments/src/bin/fig17_turnaround_all.rs

/root/repo/target/debug/deps/fig17_turnaround_all-d4a0642f7ac3b21a: crates/experiments/src/bin/fig17_turnaround_all.rs

crates/experiments/src/bin/fig17_turnaround_all.rs:
