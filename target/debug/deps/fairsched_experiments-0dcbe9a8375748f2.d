/root/repo/target/debug/deps/fairsched_experiments-0dcbe9a8375748f2.d: crates/experiments/src/lib.rs crates/experiments/src/ablations.rs crates/experiments/src/characterization.rs crates/experiments/src/figures.rs

/root/repo/target/debug/deps/fairsched_experiments-0dcbe9a8375748f2: crates/experiments/src/lib.rs crates/experiments/src/ablations.rs crates/experiments/src/characterization.rs crates/experiments/src/figures.rs

crates/experiments/src/lib.rs:
crates/experiments/src/ablations.rs:
crates/experiments/src/characterization.rs:
crates/experiments/src/figures.rs:
