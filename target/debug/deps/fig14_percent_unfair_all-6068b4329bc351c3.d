/root/repo/target/debug/deps/fig14_percent_unfair_all-6068b4329bc351c3.d: crates/experiments/src/bin/fig14_percent_unfair_all.rs

/root/repo/target/debug/deps/fig14_percent_unfair_all-6068b4329bc351c3: crates/experiments/src/bin/fig14_percent_unfair_all.rs

crates/experiments/src/bin/fig14_percent_unfair_all.rs:
