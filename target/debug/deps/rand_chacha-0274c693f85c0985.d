/root/repo/target/debug/deps/rand_chacha-0274c693f85c0985.d: vendor/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/librand_chacha-0274c693f85c0985.rlib: vendor/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/librand_chacha-0274c693f85c0985.rmeta: vendor/rand_chacha/src/lib.rs

vendor/rand_chacha/src/lib.rs:
