/root/repo/target/debug/deps/peruser_fairness-1473a121f1e90d5d.d: crates/experiments/src/bin/peruser_fairness.rs

/root/repo/target/debug/deps/peruser_fairness-1473a121f1e90d5d: crates/experiments/src/bin/peruser_fairness.rs

crates/experiments/src/bin/peruser_fairness.rs:
