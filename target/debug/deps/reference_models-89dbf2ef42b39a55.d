/root/repo/target/debug/deps/reference_models-89dbf2ef42b39a55.d: crates/sim/tests/reference_models.rs

/root/repo/target/debug/deps/reference_models-89dbf2ef42b39a55: crates/sim/tests/reference_models.rs

crates/sim/tests/reference_models.rs:
