/root/repo/target/debug/deps/fig11_turnaround_minor-fa6b64242276c34b.d: crates/experiments/src/bin/fig11_turnaround_minor.rs

/root/repo/target/debug/deps/fig11_turnaround_minor-fa6b64242276c34b: crates/experiments/src/bin/fig11_turnaround_minor.rs

crates/experiments/src/bin/fig11_turnaround_minor.rs:
