/root/repo/target/debug/deps/fig08_percent_unfair_minor-8789b8878cc6a6bd.d: crates/experiments/src/bin/fig08_percent_unfair_minor.rs

/root/repo/target/debug/deps/fig08_percent_unfair_minor-8789b8878cc6a6bd: crates/experiments/src/bin/fig08_percent_unfair_minor.rs

crates/experiments/src/bin/fig08_percent_unfair_minor.rs:
