/root/repo/target/debug/deps/fig08_percent_unfair_minor-6e17a88ad34c1df4.d: crates/experiments/src/bin/fig08_percent_unfair_minor.rs

/root/repo/target/debug/deps/fig08_percent_unfair_minor-6e17a88ad34c1df4: crates/experiments/src/bin/fig08_percent_unfair_minor.rs

crates/experiments/src/bin/fig08_percent_unfair_minor.rs:
