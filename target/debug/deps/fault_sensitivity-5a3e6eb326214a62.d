/root/repo/target/debug/deps/fault_sensitivity-5a3e6eb326214a62.d: crates/experiments/src/bin/fault_sensitivity.rs Cargo.toml

/root/repo/target/debug/deps/libfault_sensitivity-5a3e6eb326214a62.rmeta: crates/experiments/src/bin/fault_sensitivity.rs Cargo.toml

crates/experiments/src/bin/fault_sensitivity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
