/root/repo/target/debug/deps/fig08_percent_unfair_minor-5dfd9d152110ab43.d: crates/experiments/src/bin/fig08_percent_unfair_minor.rs Cargo.toml

/root/repo/target/debug/deps/libfig08_percent_unfair_minor-5dfd9d152110ab43.rmeta: crates/experiments/src/bin/fig08_percent_unfair_minor.rs Cargo.toml

crates/experiments/src/bin/fig08_percent_unfair_minor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
