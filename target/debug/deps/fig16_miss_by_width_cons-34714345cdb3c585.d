/root/repo/target/debug/deps/fig16_miss_by_width_cons-34714345cdb3c585.d: crates/experiments/src/bin/fig16_miss_by_width_cons.rs

/root/repo/target/debug/deps/fig16_miss_by_width_cons-34714345cdb3c585: crates/experiments/src/bin/fig16_miss_by_width_cons.rs

crates/experiments/src/bin/fig16_miss_by_width_cons.rs:
