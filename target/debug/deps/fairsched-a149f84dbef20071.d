/root/repo/target/debug/deps/fairsched-a149f84dbef20071.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/fairsched-a149f84dbef20071: crates/cli/src/main.rs

crates/cli/src/main.rs:
