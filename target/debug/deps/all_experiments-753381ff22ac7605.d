/root/repo/target/debug/deps/all_experiments-753381ff22ac7605.d: crates/experiments/src/bin/all_experiments.rs Cargo.toml

/root/repo/target/debug/deps/liball_experiments-753381ff22ac7605.rmeta: crates/experiments/src/bin/all_experiments.rs Cargo.toml

crates/experiments/src/bin/all_experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
