/root/repo/target/debug/deps/all_experiments-bb232c05c92cff40.d: crates/experiments/src/bin/all_experiments.rs

/root/repo/target/debug/deps/all_experiments-bb232c05c92cff40: crates/experiments/src/bin/all_experiments.rs

crates/experiments/src/bin/all_experiments.rs:
