/root/repo/target/debug/deps/fig07_overest_nodes-bd3dbd09d7bed2b6.d: crates/experiments/src/bin/fig07_overest_nodes.rs

/root/repo/target/debug/deps/fig07_overest_nodes-bd3dbd09d7bed2b6: crates/experiments/src/bin/fig07_overest_nodes.rs

crates/experiments/src/bin/fig07_overest_nodes.rs:
