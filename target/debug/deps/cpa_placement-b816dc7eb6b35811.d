/root/repo/target/debug/deps/cpa_placement-b816dc7eb6b35811.d: crates/experiments/src/bin/cpa_placement.rs

/root/repo/target/debug/deps/cpa_placement-b816dc7eb6b35811: crates/experiments/src/bin/cpa_placement.rs

crates/experiments/src/bin/cpa_placement.rs:
