/root/repo/target/debug/deps/fairsched-c41e6f03ea1f2fd4.d: src/lib.rs

/root/repo/target/debug/deps/fairsched-c41e6f03ea1f2fd4: src/lib.rs

src/lib.rs:
