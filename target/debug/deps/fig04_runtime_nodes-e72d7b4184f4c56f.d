/root/repo/target/debug/deps/fig04_runtime_nodes-e72d7b4184f4c56f.d: crates/experiments/src/bin/fig04_runtime_nodes.rs

/root/repo/target/debug/deps/fig04_runtime_nodes-e72d7b4184f4c56f: crates/experiments/src/bin/fig04_runtime_nodes.rs

crates/experiments/src/bin/fig04_runtime_nodes.rs:
