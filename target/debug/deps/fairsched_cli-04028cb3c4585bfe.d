/root/repo/target/debug/deps/fairsched_cli-04028cb3c4585bfe.d: crates/cli/src/lib.rs

/root/repo/target/debug/deps/fairsched_cli-04028cb3c4585bfe: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
