/root/repo/target/debug/deps/fig06_overest_runtime-5aa76e362a95682b.d: crates/experiments/src/bin/fig06_overest_runtime.rs

/root/repo/target/debug/deps/fig06_overest_runtime-5aa76e362a95682b: crates/experiments/src/bin/fig06_overest_runtime.rs

crates/experiments/src/bin/fig06_overest_runtime.rs:
