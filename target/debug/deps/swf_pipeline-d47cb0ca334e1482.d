/root/repo/target/debug/deps/swf_pipeline-d47cb0ca334e1482.d: tests/swf_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libswf_pipeline-d47cb0ca334e1482.rmeta: tests/swf_pipeline.rs Cargo.toml

tests/swf_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
