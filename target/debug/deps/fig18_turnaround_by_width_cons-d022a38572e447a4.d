/root/repo/target/debug/deps/fig18_turnaround_by_width_cons-d022a38572e447a4.d: crates/experiments/src/bin/fig18_turnaround_by_width_cons.rs

/root/repo/target/debug/deps/fig18_turnaround_by_width_cons-d022a38572e447a4: crates/experiments/src/bin/fig18_turnaround_by_width_cons.rs

crates/experiments/src/bin/fig18_turnaround_by_width_cons.rs:
