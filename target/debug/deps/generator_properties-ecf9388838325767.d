/root/repo/target/debug/deps/generator_properties-ecf9388838325767.d: crates/workload/tests/generator_properties.rs

/root/repo/target/debug/deps/generator_properties-ecf9388838325767: crates/workload/tests/generator_properties.rs

crates/workload/tests/generator_properties.rs:
