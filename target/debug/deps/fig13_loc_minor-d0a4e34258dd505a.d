/root/repo/target/debug/deps/fig13_loc_minor-d0a4e34258dd505a.d: crates/experiments/src/bin/fig13_loc_minor.rs

/root/repo/target/debug/deps/fig13_loc_minor-d0a4e34258dd505a: crates/experiments/src/bin/fig13_loc_minor.rs

crates/experiments/src/bin/fig13_loc_minor.rs:
