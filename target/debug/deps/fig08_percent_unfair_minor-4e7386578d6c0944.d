/root/repo/target/debug/deps/fig08_percent_unfair_minor-4e7386578d6c0944.d: crates/experiments/src/bin/fig08_percent_unfair_minor.rs

/root/repo/target/debug/deps/fig08_percent_unfair_minor-4e7386578d6c0944: crates/experiments/src/bin/fig08_percent_unfair_minor.rs

crates/experiments/src/bin/fig08_percent_unfair_minor.rs:
