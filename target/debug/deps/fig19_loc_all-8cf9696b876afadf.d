/root/repo/target/debug/deps/fig19_loc_all-8cf9696b876afadf.d: crates/experiments/src/bin/fig19_loc_all.rs

/root/repo/target/debug/deps/fig19_loc_all-8cf9696b876afadf: crates/experiments/src/bin/fig19_loc_all.rs

crates/experiments/src/bin/fig19_loc_all.rs:
