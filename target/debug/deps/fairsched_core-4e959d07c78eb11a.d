/root/repo/target/debug/deps/fairsched_core-4e959d07c78eb11a.d: crates/core/src/lib.rs crates/core/src/gantt.rs crates/core/src/policy.rs crates/core/src/report.rs crates/core/src/runner.rs crates/core/src/sweep.rs

/root/repo/target/debug/deps/fairsched_core-4e959d07c78eb11a: crates/core/src/lib.rs crates/core/src/gantt.rs crates/core/src/policy.rs crates/core/src/report.rs crates/core/src/runner.rs crates/core/src/sweep.rs

crates/core/src/lib.rs:
crates/core/src/gantt.rs:
crates/core/src/policy.rs:
crates/core/src/report.rs:
crates/core/src/runner.rs:
crates/core/src/sweep.rs:
