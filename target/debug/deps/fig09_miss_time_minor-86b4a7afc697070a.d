/root/repo/target/debug/deps/fig09_miss_time_minor-86b4a7afc697070a.d: crates/experiments/src/bin/fig09_miss_time_minor.rs

/root/repo/target/debug/deps/fig09_miss_time_minor-86b4a7afc697070a: crates/experiments/src/bin/fig09_miss_time_minor.rs

crates/experiments/src/bin/fig09_miss_time_minor.rs:
