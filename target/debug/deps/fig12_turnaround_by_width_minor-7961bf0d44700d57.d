/root/repo/target/debug/deps/fig12_turnaround_by_width_minor-7961bf0d44700d57.d: crates/experiments/src/bin/fig12_turnaround_by_width_minor.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_turnaround_by_width_minor-7961bf0d44700d57.rmeta: crates/experiments/src/bin/fig12_turnaround_by_width_minor.rs Cargo.toml

crates/experiments/src/bin/fig12_turnaround_by_width_minor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
