/root/repo/target/debug/deps/table1_job_counts-7c1ab51a58262aa6.d: crates/experiments/src/bin/table1_job_counts.rs

/root/repo/target/debug/deps/table1_job_counts-7c1ab51a58262aa6: crates/experiments/src/bin/table1_job_counts.rs

crates/experiments/src/bin/table1_job_counts.rs:
