/root/repo/target/debug/deps/fairsched-8f191050ae23aaad.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/fairsched-8f191050ae23aaad: crates/cli/src/main.rs

crates/cli/src/main.rs:
