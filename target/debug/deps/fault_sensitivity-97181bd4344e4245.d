/root/repo/target/debug/deps/fault_sensitivity-97181bd4344e4245.d: crates/experiments/src/bin/fault_sensitivity.rs

/root/repo/target/debug/deps/fault_sensitivity-97181bd4344e4245: crates/experiments/src/bin/fault_sensitivity.rs

crates/experiments/src/bin/fault_sensitivity.rs:
