/root/repo/target/debug/deps/ablation_sweeps-0885219556dd0cd0.d: crates/experiments/src/bin/ablation_sweeps.rs Cargo.toml

/root/repo/target/debug/deps/libablation_sweeps-0885219556dd0cd0.rmeta: crates/experiments/src/bin/ablation_sweeps.rs Cargo.toml

crates/experiments/src/bin/ablation_sweeps.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
