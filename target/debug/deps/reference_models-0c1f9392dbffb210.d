/root/repo/target/debug/deps/reference_models-0c1f9392dbffb210.d: crates/sim/tests/reference_models.rs Cargo.toml

/root/repo/target/debug/deps/libreference_models-0c1f9392dbffb210.rmeta: crates/sim/tests/reference_models.rs Cargo.toml

crates/sim/tests/reference_models.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
