/root/repo/target/debug/deps/fig10_miss_by_width_minor-f048a94383592e57.d: crates/experiments/src/bin/fig10_miss_by_width_minor.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_miss_by_width_minor-f048a94383592e57.rmeta: crates/experiments/src/bin/fig10_miss_by_width_minor.rs Cargo.toml

crates/experiments/src/bin/fig10_miss_by_width_minor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
