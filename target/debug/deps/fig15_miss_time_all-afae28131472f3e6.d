/root/repo/target/debug/deps/fig15_miss_time_all-afae28131472f3e6.d: crates/experiments/src/bin/fig15_miss_time_all.rs Cargo.toml

/root/repo/target/debug/deps/libfig15_miss_time_all-afae28131472f3e6.rmeta: crates/experiments/src/bin/fig15_miss_time_all.rs Cargo.toml

crates/experiments/src/bin/fig15_miss_time_all.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
