/root/repo/target/debug/deps/fig18_turnaround_by_width_cons-9034d72241569790.d: crates/experiments/src/bin/fig18_turnaround_by_width_cons.rs Cargo.toml

/root/repo/target/debug/deps/libfig18_turnaround_by_width_cons-9034d72241569790.rmeta: crates/experiments/src/bin/fig18_turnaround_by_width_cons.rs Cargo.toml

crates/experiments/src/bin/fig18_turnaround_by_width_cons.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
