/root/repo/target/debug/deps/cross_workload-58323518b380db61.d: tests/cross_workload.rs

/root/repo/target/debug/deps/cross_workload-58323518b380db61: tests/cross_workload.rs

tests/cross_workload.rs:
