/root/repo/target/debug/deps/fairsched-454de5e409133423.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libfairsched-454de5e409133423.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
