/root/repo/target/debug/deps/fig19_loc_all-bcc62b872c2b04c6.d: crates/experiments/src/bin/fig19_loc_all.rs

/root/repo/target/debug/deps/fig19_loc_all-bcc62b872c2b04c6: crates/experiments/src/bin/fig19_loc_all.rs

crates/experiments/src/bin/fig19_loc_all.rs:
