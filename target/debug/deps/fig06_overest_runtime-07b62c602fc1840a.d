/root/repo/target/debug/deps/fig06_overest_runtime-07b62c602fc1840a.d: crates/experiments/src/bin/fig06_overest_runtime.rs Cargo.toml

/root/repo/target/debug/deps/libfig06_overest_runtime-07b62c602fc1840a.rmeta: crates/experiments/src/bin/fig06_overest_runtime.rs Cargo.toml

crates/experiments/src/bin/fig06_overest_runtime.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
