/root/repo/target/debug/deps/fig18_turnaround_by_width_cons-7b34990221525659.d: crates/experiments/src/bin/fig18_turnaround_by_width_cons.rs

/root/repo/target/debug/deps/fig18_turnaround_by_width_cons-7b34990221525659: crates/experiments/src/bin/fig18_turnaround_by_width_cons.rs

crates/experiments/src/bin/fig18_turnaround_by_width_cons.rs:
