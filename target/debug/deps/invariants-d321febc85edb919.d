/root/repo/target/debug/deps/invariants-d321febc85edb919.d: tests/invariants.rs

/root/repo/target/debug/deps/invariants-d321febc85edb919: tests/invariants.rs

tests/invariants.rs:
