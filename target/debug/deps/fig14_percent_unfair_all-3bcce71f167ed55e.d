/root/repo/target/debug/deps/fig14_percent_unfair_all-3bcce71f167ed55e.d: crates/experiments/src/bin/fig14_percent_unfair_all.rs

/root/repo/target/debug/deps/fig14_percent_unfair_all-3bcce71f167ed55e: crates/experiments/src/bin/fig14_percent_unfair_all.rs

crates/experiments/src/bin/fig14_percent_unfair_all.rs:
