/root/repo/target/debug/deps/fig05_estimates-1076c9c3c702310f.d: crates/experiments/src/bin/fig05_estimates.rs

/root/repo/target/debug/deps/fig05_estimates-1076c9c3c702310f: crates/experiments/src/bin/fig05_estimates.rs

crates/experiments/src/bin/fig05_estimates.rs:
