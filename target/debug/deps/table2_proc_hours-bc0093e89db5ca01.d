/root/repo/target/debug/deps/table2_proc_hours-bc0093e89db5ca01.d: crates/experiments/src/bin/table2_proc_hours.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_proc_hours-bc0093e89db5ca01.rmeta: crates/experiments/src/bin/table2_proc_hours.rs Cargo.toml

crates/experiments/src/bin/table2_proc_hours.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
