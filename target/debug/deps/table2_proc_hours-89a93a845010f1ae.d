/root/repo/target/debug/deps/table2_proc_hours-89a93a845010f1ae.d: crates/experiments/src/bin/table2_proc_hours.rs

/root/repo/target/debug/deps/table2_proc_hours-89a93a845010f1ae: crates/experiments/src/bin/table2_proc_hours.rs

crates/experiments/src/bin/table2_proc_hours.rs:
