/root/repo/target/debug/deps/fig06_overest_runtime-54c0b50ad5e4e769.d: crates/experiments/src/bin/fig06_overest_runtime.rs

/root/repo/target/debug/deps/fig06_overest_runtime-54c0b50ad5e4e769: crates/experiments/src/bin/fig06_overest_runtime.rs

crates/experiments/src/bin/fig06_overest_runtime.rs:
