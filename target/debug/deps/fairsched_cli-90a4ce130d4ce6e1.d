/root/repo/target/debug/deps/fairsched_cli-90a4ce130d4ce6e1.d: crates/cli/src/lib.rs

/root/repo/target/debug/deps/libfairsched_cli-90a4ce130d4ce6e1.rlib: crates/cli/src/lib.rs

/root/repo/target/debug/deps/libfairsched_cli-90a4ce130d4ce6e1.rmeta: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
