/root/repo/target/debug/deps/fig09_miss_time_minor-88e1cd782638f560.d: crates/experiments/src/bin/fig09_miss_time_minor.rs

/root/repo/target/debug/deps/fig09_miss_time_minor-88e1cd782638f560: crates/experiments/src/bin/fig09_miss_time_minor.rs

crates/experiments/src/bin/fig09_miss_time_minor.rs:
