/root/repo/target/debug/deps/ablation_benches-5a4026b5b4bd9d25.d: crates/bench/benches/ablation_benches.rs Cargo.toml

/root/repo/target/debug/deps/libablation_benches-5a4026b5b4bd9d25.rmeta: crates/bench/benches/ablation_benches.rs Cargo.toml

crates/bench/benches/ablation_benches.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
