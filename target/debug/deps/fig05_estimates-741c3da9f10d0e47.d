/root/repo/target/debug/deps/fig05_estimates-741c3da9f10d0e47.d: crates/experiments/src/bin/fig05_estimates.rs Cargo.toml

/root/repo/target/debug/deps/libfig05_estimates-741c3da9f10d0e47.rmeta: crates/experiments/src/bin/fig05_estimates.rs Cargo.toml

crates/experiments/src/bin/fig05_estimates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
