/root/repo/target/debug/deps/fairsched-3bc60ccc632169a3.d: src/lib.rs

/root/repo/target/debug/deps/libfairsched-3bc60ccc632169a3.rlib: src/lib.rs

/root/repo/target/debug/deps/libfairsched-3bc60ccc632169a3.rmeta: src/lib.rs

src/lib.rs:
