/root/repo/target/debug/deps/fairsched_cli-c6a8ce0cc1e2459f.d: crates/cli/src/lib.rs

/root/repo/target/debug/deps/fairsched_cli-c6a8ce0cc1e2459f: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
