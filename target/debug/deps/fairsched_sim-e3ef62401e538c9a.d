/root/repo/target/debug/deps/fairsched_sim-e3ef62401e538c9a.d: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/event.rs crates/sim/src/fairshare.rs crates/sim/src/faults.rs crates/sim/src/listsched.rs crates/sim/src/profile.rs crates/sim/src/simulator.rs crates/sim/src/starvation.rs crates/sim/src/state.rs Cargo.toml

/root/repo/target/debug/deps/libfairsched_sim-e3ef62401e538c9a.rmeta: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/event.rs crates/sim/src/fairshare.rs crates/sim/src/faults.rs crates/sim/src/listsched.rs crates/sim/src/profile.rs crates/sim/src/simulator.rs crates/sim/src/starvation.rs crates/sim/src/state.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/config.rs:
crates/sim/src/engine.rs:
crates/sim/src/event.rs:
crates/sim/src/fairshare.rs:
crates/sim/src/faults.rs:
crates/sim/src/listsched.rs:
crates/sim/src/profile.rs:
crates/sim/src/simulator.rs:
crates/sim/src/starvation.rs:
crates/sim/src/state.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
