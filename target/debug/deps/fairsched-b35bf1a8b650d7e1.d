/root/repo/target/debug/deps/fairsched-b35bf1a8b650d7e1.d: src/lib.rs

/root/repo/target/debug/deps/libfairsched-b35bf1a8b650d7e1.rlib: src/lib.rs

/root/repo/target/debug/deps/libfairsched-b35bf1a8b650d7e1.rmeta: src/lib.rs

src/lib.rs:
