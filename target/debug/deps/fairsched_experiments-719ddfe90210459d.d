/root/repo/target/debug/deps/fairsched_experiments-719ddfe90210459d.d: crates/experiments/src/lib.rs crates/experiments/src/ablations.rs crates/experiments/src/characterization.rs crates/experiments/src/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfairsched_experiments-719ddfe90210459d.rmeta: crates/experiments/src/lib.rs crates/experiments/src/ablations.rs crates/experiments/src/characterization.rs crates/experiments/src/figures.rs Cargo.toml

crates/experiments/src/lib.rs:
crates/experiments/src/ablations.rs:
crates/experiments/src/characterization.rs:
crates/experiments/src/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
