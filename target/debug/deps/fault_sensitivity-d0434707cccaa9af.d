/root/repo/target/debug/deps/fault_sensitivity-d0434707cccaa9af.d: crates/experiments/src/bin/fault_sensitivity.rs Cargo.toml

/root/repo/target/debug/deps/libfault_sensitivity-d0434707cccaa9af.rmeta: crates/experiments/src/bin/fault_sensitivity.rs Cargo.toml

crates/experiments/src/bin/fault_sensitivity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
