/root/repo/target/debug/deps/invariants-31da344e8e3aaa6e.d: tests/invariants.rs

/root/repo/target/debug/deps/invariants-31da344e8e3aaa6e: tests/invariants.rs

tests/invariants.rs:
