/root/repo/target/debug/deps/invariants-feb606aabbcf2e10.d: tests/invariants.rs Cargo.toml

/root/repo/target/debug/deps/libinvariants-feb606aabbcf2e10.rmeta: tests/invariants.rs Cargo.toml

tests/invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
