/root/repo/target/debug/deps/cross_workload-6a5d6c3c5b0e1cbf.d: tests/cross_workload.rs Cargo.toml

/root/repo/target/debug/deps/libcross_workload-6a5d6c3c5b0e1cbf.rmeta: tests/cross_workload.rs Cargo.toml

tests/cross_workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
