/root/repo/target/debug/deps/allocator_contract-091c96d461c4396e.d: crates/cpa/tests/allocator_contract.rs

/root/repo/target/debug/deps/allocator_contract-091c96d461c4396e: crates/cpa/tests/allocator_contract.rs

crates/cpa/tests/allocator_contract.rs:
