/root/repo/target/debug/deps/fairsched_metrics-a53fd6091bdb1ba2.d: crates/metrics/src/lib.rs crates/metrics/src/fairness/mod.rs crates/metrics/src/fairness/consp.rs crates/metrics/src/fairness/equality.rs crates/metrics/src/fairness/fst.rs crates/metrics/src/fairness/hybrid.rs crates/metrics/src/fairness/jain.rs crates/metrics/src/fairness/peruser.rs crates/metrics/src/fairness/sabin.rs crates/metrics/src/system.rs crates/metrics/src/user.rs

/root/repo/target/debug/deps/fairsched_metrics-a53fd6091bdb1ba2: crates/metrics/src/lib.rs crates/metrics/src/fairness/mod.rs crates/metrics/src/fairness/consp.rs crates/metrics/src/fairness/equality.rs crates/metrics/src/fairness/fst.rs crates/metrics/src/fairness/hybrid.rs crates/metrics/src/fairness/jain.rs crates/metrics/src/fairness/peruser.rs crates/metrics/src/fairness/sabin.rs crates/metrics/src/system.rs crates/metrics/src/user.rs

crates/metrics/src/lib.rs:
crates/metrics/src/fairness/mod.rs:
crates/metrics/src/fairness/consp.rs:
crates/metrics/src/fairness/equality.rs:
crates/metrics/src/fairness/fst.rs:
crates/metrics/src/fairness/hybrid.rs:
crates/metrics/src/fairness/jain.rs:
crates/metrics/src/fairness/peruser.rs:
crates/metrics/src/fairness/sabin.rs:
crates/metrics/src/system.rs:
crates/metrics/src/user.rs:
