/root/repo/target/debug/deps/conservative_benches-93df75bf7336f4ba.d: crates/bench/benches/conservative_benches.rs Cargo.toml

/root/repo/target/debug/deps/libconservative_benches-93df75bf7336f4ba.rmeta: crates/bench/benches/conservative_benches.rs Cargo.toml

crates/bench/benches/conservative_benches.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
