/root/repo/target/debug/deps/fairsched_bench-3459e004e0edea38.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/fairsched_bench-3459e004e0edea38: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
