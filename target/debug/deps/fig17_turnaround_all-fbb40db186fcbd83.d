/root/repo/target/debug/deps/fig17_turnaround_all-fbb40db186fcbd83.d: crates/experiments/src/bin/fig17_turnaround_all.rs

/root/repo/target/debug/deps/fig17_turnaround_all-fbb40db186fcbd83: crates/experiments/src/bin/fig17_turnaround_all.rs

crates/experiments/src/bin/fig17_turnaround_all.rs:
