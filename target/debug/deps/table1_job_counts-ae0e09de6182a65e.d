/root/repo/target/debug/deps/table1_job_counts-ae0e09de6182a65e.d: crates/experiments/src/bin/table1_job_counts.rs

/root/repo/target/debug/deps/table1_job_counts-ae0e09de6182a65e: crates/experiments/src/bin/table1_job_counts.rs

crates/experiments/src/bin/table1_job_counts.rs:
