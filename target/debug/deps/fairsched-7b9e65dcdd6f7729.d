/root/repo/target/debug/deps/fairsched-7b9e65dcdd6f7729.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libfairsched-7b9e65dcdd6f7729.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
