/root/repo/target/debug/deps/fairsched_cli-7628689ea57f1991.d: crates/cli/src/lib.rs

/root/repo/target/debug/deps/libfairsched_cli-7628689ea57f1991.rlib: crates/cli/src/lib.rs

/root/repo/target/debug/deps/libfairsched_cli-7628689ea57f1991.rmeta: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
