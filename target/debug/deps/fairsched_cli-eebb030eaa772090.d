/root/repo/target/debug/deps/fairsched_cli-eebb030eaa772090.d: crates/cli/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libfairsched_cli-eebb030eaa772090.rmeta: crates/cli/src/lib.rs Cargo.toml

crates/cli/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
