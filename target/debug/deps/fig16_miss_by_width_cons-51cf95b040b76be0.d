/root/repo/target/debug/deps/fig16_miss_by_width_cons-51cf95b040b76be0.d: crates/experiments/src/bin/fig16_miss_by_width_cons.rs

/root/repo/target/debug/deps/fig16_miss_by_width_cons-51cf95b040b76be0: crates/experiments/src/bin/fig16_miss_by_width_cons.rs

crates/experiments/src/bin/fig16_miss_by_width_cons.rs:
