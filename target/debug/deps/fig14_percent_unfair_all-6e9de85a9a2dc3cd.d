/root/repo/target/debug/deps/fig14_percent_unfair_all-6e9de85a9a2dc3cd.d: crates/experiments/src/bin/fig14_percent_unfair_all.rs Cargo.toml

/root/repo/target/debug/deps/libfig14_percent_unfair_all-6e9de85a9a2dc3cd.rmeta: crates/experiments/src/bin/fig14_percent_unfair_all.rs Cargo.toml

crates/experiments/src/bin/fig14_percent_unfair_all.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
