/root/repo/target/debug/deps/fairness_cross-432e48880f6d2cbe.d: tests/fairness_cross.rs

/root/repo/target/debug/deps/fairness_cross-432e48880f6d2cbe: tests/fairness_cross.rs

tests/fairness_cross.rs:
