/root/repo/target/debug/deps/fairsched_experiments-4383a6c592b7cf37.d: crates/experiments/src/lib.rs crates/experiments/src/ablations.rs crates/experiments/src/characterization.rs crates/experiments/src/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfairsched_experiments-4383a6c592b7cf37.rmeta: crates/experiments/src/lib.rs crates/experiments/src/ablations.rs crates/experiments/src/characterization.rs crates/experiments/src/figures.rs Cargo.toml

crates/experiments/src/lib.rs:
crates/experiments/src/ablations.rs:
crates/experiments/src/characterization.rs:
crates/experiments/src/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
