/root/repo/target/debug/deps/all_experiments-ca69f31296a53c68.d: crates/experiments/src/bin/all_experiments.rs

/root/repo/target/debug/deps/all_experiments-ca69f31296a53c68: crates/experiments/src/bin/all_experiments.rs

crates/experiments/src/bin/all_experiments.rs:
