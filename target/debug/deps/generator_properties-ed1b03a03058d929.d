/root/repo/target/debug/deps/generator_properties-ed1b03a03058d929.d: crates/workload/tests/generator_properties.rs Cargo.toml

/root/repo/target/debug/deps/libgenerator_properties-ed1b03a03058d929.rmeta: crates/workload/tests/generator_properties.rs Cargo.toml

crates/workload/tests/generator_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
