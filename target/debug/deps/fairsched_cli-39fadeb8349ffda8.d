/root/repo/target/debug/deps/fairsched_cli-39fadeb8349ffda8.d: crates/cli/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libfairsched_cli-39fadeb8349ffda8.rmeta: crates/cli/src/lib.rs Cargo.toml

crates/cli/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
