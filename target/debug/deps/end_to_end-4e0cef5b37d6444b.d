/root/repo/target/debug/deps/end_to_end-4e0cef5b37d6444b.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-4e0cef5b37d6444b: tests/end_to_end.rs

tests/end_to_end.rs:
