/root/repo/target/debug/deps/fig13_loc_minor-3fd0bd93d40cd6be.d: crates/experiments/src/bin/fig13_loc_minor.rs

/root/repo/target/debug/deps/fig13_loc_minor-3fd0bd93d40cd6be: crates/experiments/src/bin/fig13_loc_minor.rs

crates/experiments/src/bin/fig13_loc_minor.rs:
