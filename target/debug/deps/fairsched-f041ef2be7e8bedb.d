/root/repo/target/debug/deps/fairsched-f041ef2be7e8bedb.d: src/lib.rs

/root/repo/target/debug/deps/fairsched-f041ef2be7e8bedb: src/lib.rs

src/lib.rs:
