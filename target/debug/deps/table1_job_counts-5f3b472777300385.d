/root/repo/target/debug/deps/table1_job_counts-5f3b472777300385.d: crates/experiments/src/bin/table1_job_counts.rs

/root/repo/target/debug/deps/table1_job_counts-5f3b472777300385: crates/experiments/src/bin/table1_job_counts.rs

crates/experiments/src/bin/table1_job_counts.rs:
