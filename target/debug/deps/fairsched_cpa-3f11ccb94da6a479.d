/root/repo/target/debug/deps/fairsched_cpa-3f11ccb94da6a479.d: crates/cpa/src/lib.rs crates/cpa/src/alloc.rs crates/cpa/src/frag.rs crates/cpa/src/linear.rs

/root/repo/target/debug/deps/libfairsched_cpa-3f11ccb94da6a479.rlib: crates/cpa/src/lib.rs crates/cpa/src/alloc.rs crates/cpa/src/frag.rs crates/cpa/src/linear.rs

/root/repo/target/debug/deps/libfairsched_cpa-3f11ccb94da6a479.rmeta: crates/cpa/src/lib.rs crates/cpa/src/alloc.rs crates/cpa/src/frag.rs crates/cpa/src/linear.rs

crates/cpa/src/lib.rs:
crates/cpa/src/alloc.rs:
crates/cpa/src/frag.rs:
crates/cpa/src/linear.rs:
