/root/repo/target/debug/deps/metric_benches-b1659ded5948773e.d: crates/bench/benches/metric_benches.rs Cargo.toml

/root/repo/target/debug/deps/libmetric_benches-b1659ded5948773e.rmeta: crates/bench/benches/metric_benches.rs Cargo.toml

crates/bench/benches/metric_benches.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
