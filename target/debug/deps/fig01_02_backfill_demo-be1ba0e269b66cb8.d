/root/repo/target/debug/deps/fig01_02_backfill_demo-be1ba0e269b66cb8.d: crates/experiments/src/bin/fig01_02_backfill_demo.rs

/root/repo/target/debug/deps/fig01_02_backfill_demo-be1ba0e269b66cb8: crates/experiments/src/bin/fig01_02_backfill_demo.rs

crates/experiments/src/bin/fig01_02_backfill_demo.rs:
