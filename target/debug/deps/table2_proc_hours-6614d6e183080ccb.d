/root/repo/target/debug/deps/table2_proc_hours-6614d6e183080ccb.d: crates/experiments/src/bin/table2_proc_hours.rs

/root/repo/target/debug/deps/table2_proc_hours-6614d6e183080ccb: crates/experiments/src/bin/table2_proc_hours.rs

crates/experiments/src/bin/table2_proc_hours.rs:
