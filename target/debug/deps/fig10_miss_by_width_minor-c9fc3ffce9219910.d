/root/repo/target/debug/deps/fig10_miss_by_width_minor-c9fc3ffce9219910.d: crates/experiments/src/bin/fig10_miss_by_width_minor.rs

/root/repo/target/debug/deps/fig10_miss_by_width_minor-c9fc3ffce9219910: crates/experiments/src/bin/fig10_miss_by_width_minor.rs

crates/experiments/src/bin/fig10_miss_by_width_minor.rs:
