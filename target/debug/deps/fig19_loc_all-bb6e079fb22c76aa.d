/root/repo/target/debug/deps/fig19_loc_all-bb6e079fb22c76aa.d: crates/experiments/src/bin/fig19_loc_all.rs

/root/repo/target/debug/deps/fig19_loc_all-bb6e079fb22c76aa: crates/experiments/src/bin/fig19_loc_all.rs

crates/experiments/src/bin/fig19_loc_all.rs:
