/root/repo/target/debug/deps/fairsched_core-52b1589a0486dd67.d: crates/core/src/lib.rs crates/core/src/gantt.rs crates/core/src/policy.rs crates/core/src/report.rs crates/core/src/runner.rs crates/core/src/sweep.rs

/root/repo/target/debug/deps/libfairsched_core-52b1589a0486dd67.rlib: crates/core/src/lib.rs crates/core/src/gantt.rs crates/core/src/policy.rs crates/core/src/report.rs crates/core/src/runner.rs crates/core/src/sweep.rs

/root/repo/target/debug/deps/libfairsched_core-52b1589a0486dd67.rmeta: crates/core/src/lib.rs crates/core/src/gantt.rs crates/core/src/policy.rs crates/core/src/report.rs crates/core/src/runner.rs crates/core/src/sweep.rs

crates/core/src/lib.rs:
crates/core/src/gantt.rs:
crates/core/src/policy.rs:
crates/core/src/report.rs:
crates/core/src/runner.rs:
crates/core/src/sweep.rs:
