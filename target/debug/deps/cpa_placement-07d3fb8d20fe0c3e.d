/root/repo/target/debug/deps/cpa_placement-07d3fb8d20fe0c3e.d: crates/experiments/src/bin/cpa_placement.rs

/root/repo/target/debug/deps/cpa_placement-07d3fb8d20fe0c3e: crates/experiments/src/bin/cpa_placement.rs

crates/experiments/src/bin/cpa_placement.rs:
