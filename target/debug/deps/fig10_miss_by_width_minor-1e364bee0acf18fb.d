/root/repo/target/debug/deps/fig10_miss_by_width_minor-1e364bee0acf18fb.d: crates/experiments/src/bin/fig10_miss_by_width_minor.rs

/root/repo/target/debug/deps/fig10_miss_by_width_minor-1e364bee0acf18fb: crates/experiments/src/bin/fig10_miss_by_width_minor.rs

crates/experiments/src/bin/fig10_miss_by_width_minor.rs:
