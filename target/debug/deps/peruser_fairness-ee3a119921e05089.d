/root/repo/target/debug/deps/peruser_fairness-ee3a119921e05089.d: crates/experiments/src/bin/peruser_fairness.rs

/root/repo/target/debug/deps/peruser_fairness-ee3a119921e05089: crates/experiments/src/bin/peruser_fairness.rs

crates/experiments/src/bin/peruser_fairness.rs:
