/root/repo/target/debug/deps/fig05_estimates-d914def3a90b507c.d: crates/experiments/src/bin/fig05_estimates.rs

/root/repo/target/debug/deps/fig05_estimates-d914def3a90b507c: crates/experiments/src/bin/fig05_estimates.rs

crates/experiments/src/bin/fig05_estimates.rs:
