/root/repo/target/debug/deps/fig10_miss_by_width_minor-1fe051166b9f6387.d: crates/experiments/src/bin/fig10_miss_by_width_minor.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_miss_by_width_minor-1fe051166b9f6387.rmeta: crates/experiments/src/bin/fig10_miss_by_width_minor.rs Cargo.toml

crates/experiments/src/bin/fig10_miss_by_width_minor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
