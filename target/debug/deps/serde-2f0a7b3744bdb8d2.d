/root/repo/target/debug/deps/serde-2f0a7b3744bdb8d2.d: vendor/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-2f0a7b3744bdb8d2.rmeta: vendor/serde/src/lib.rs Cargo.toml

vendor/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
