/root/repo/target/debug/deps/fig18_turnaround_by_width_cons-51b87a3f64492469.d: crates/experiments/src/bin/fig18_turnaround_by_width_cons.rs

/root/repo/target/debug/deps/fig18_turnaround_by_width_cons-51b87a3f64492469: crates/experiments/src/bin/fig18_turnaround_by_width_cons.rs

crates/experiments/src/bin/fig18_turnaround_by_width_cons.rs:
