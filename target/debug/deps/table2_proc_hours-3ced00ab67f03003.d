/root/repo/target/debug/deps/table2_proc_hours-3ced00ab67f03003.d: crates/experiments/src/bin/table2_proc_hours.rs

/root/repo/target/debug/deps/table2_proc_hours-3ced00ab67f03003: crates/experiments/src/bin/table2_proc_hours.rs

crates/experiments/src/bin/table2_proc_hours.rs:
