/root/repo/target/debug/deps/rand_chacha-b1e4d6c2934b8138.d: vendor/rand_chacha/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand_chacha-b1e4d6c2934b8138.rmeta: vendor/rand_chacha/src/lib.rs Cargo.toml

vendor/rand_chacha/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
