/root/repo/target/debug/deps/fairsched_bench-6c8505ec32f930bc.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libfairsched_bench-6c8505ec32f930bc.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libfairsched_bench-6c8505ec32f930bc.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
