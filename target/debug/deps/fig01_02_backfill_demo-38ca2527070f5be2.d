/root/repo/target/debug/deps/fig01_02_backfill_demo-38ca2527070f5be2.d: crates/experiments/src/bin/fig01_02_backfill_demo.rs

/root/repo/target/debug/deps/fig01_02_backfill_demo-38ca2527070f5be2: crates/experiments/src/bin/fig01_02_backfill_demo.rs

crates/experiments/src/bin/fig01_02_backfill_demo.rs:
