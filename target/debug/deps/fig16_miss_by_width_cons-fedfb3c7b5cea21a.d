/root/repo/target/debug/deps/fig16_miss_by_width_cons-fedfb3c7b5cea21a.d: crates/experiments/src/bin/fig16_miss_by_width_cons.rs

/root/repo/target/debug/deps/fig16_miss_by_width_cons-fedfb3c7b5cea21a: crates/experiments/src/bin/fig16_miss_by_width_cons.rs

crates/experiments/src/bin/fig16_miss_by_width_cons.rs:
