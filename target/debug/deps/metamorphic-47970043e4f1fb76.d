/root/repo/target/debug/deps/metamorphic-47970043e4f1fb76.d: tests/metamorphic.rs

/root/repo/target/debug/deps/metamorphic-47970043e4f1fb76: tests/metamorphic.rs

tests/metamorphic.rs:
