/root/repo/target/debug/deps/table2_proc_hours-eb716d96c7649a98.d: crates/experiments/src/bin/table2_proc_hours.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_proc_hours-eb716d96c7649a98.rmeta: crates/experiments/src/bin/table2_proc_hours.rs Cargo.toml

crates/experiments/src/bin/table2_proc_hours.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
