/root/repo/target/debug/deps/proptest-fc91f30fb59b7b07.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-fc91f30fb59b7b07.rlib: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-fc91f30fb59b7b07.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
