/root/repo/target/debug/deps/criterion-c1083eb0ea6523ca.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-c1083eb0ea6523ca.rlib: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-c1083eb0ea6523ca.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
