/root/repo/target/debug/deps/fairsched-403ed4ff29a0533a.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libfairsched-403ed4ff29a0533a.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
