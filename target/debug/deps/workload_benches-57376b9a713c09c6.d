/root/repo/target/debug/deps/workload_benches-57376b9a713c09c6.d: crates/bench/benches/workload_benches.rs Cargo.toml

/root/repo/target/debug/deps/libworkload_benches-57376b9a713c09c6.rmeta: crates/bench/benches/workload_benches.rs Cargo.toml

crates/bench/benches/workload_benches.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
