/root/repo/target/debug/deps/reference_models-41ab9628d05e9938.d: crates/sim/tests/reference_models.rs

/root/repo/target/debug/deps/reference_models-41ab9628d05e9938: crates/sim/tests/reference_models.rs

crates/sim/tests/reference_models.rs:
