/root/repo/target/debug/deps/fig15_miss_time_all-88d9376e234eb440.d: crates/experiments/src/bin/fig15_miss_time_all.rs

/root/repo/target/debug/deps/fig15_miss_time_all-88d9376e234eb440: crates/experiments/src/bin/fig15_miss_time_all.rs

crates/experiments/src/bin/fig15_miss_time_all.rs:
