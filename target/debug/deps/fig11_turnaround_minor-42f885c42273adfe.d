/root/repo/target/debug/deps/fig11_turnaround_minor-42f885c42273adfe.d: crates/experiments/src/bin/fig11_turnaround_minor.rs

/root/repo/target/debug/deps/fig11_turnaround_minor-42f885c42273adfe: crates/experiments/src/bin/fig11_turnaround_minor.rs

crates/experiments/src/bin/fig11_turnaround_minor.rs:
