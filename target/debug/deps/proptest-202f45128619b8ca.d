/root/repo/target/debug/deps/proptest-202f45128619b8ca.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-202f45128619b8ca: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
