/root/repo/target/debug/deps/fig12_turnaround_by_width_minor-de68d4c4109fd87f.d: crates/experiments/src/bin/fig12_turnaround_by_width_minor.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_turnaround_by_width_minor-de68d4c4109fd87f.rmeta: crates/experiments/src/bin/fig12_turnaround_by_width_minor.rs Cargo.toml

crates/experiments/src/bin/fig12_turnaround_by_width_minor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
