/root/repo/target/debug/deps/policy_benches-6d971a482d805b65.d: crates/bench/benches/policy_benches.rs Cargo.toml

/root/repo/target/debug/deps/libpolicy_benches-6d971a482d805b65.rmeta: crates/bench/benches/policy_benches.rs Cargo.toml

crates/bench/benches/policy_benches.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
