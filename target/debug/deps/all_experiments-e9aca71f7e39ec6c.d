/root/repo/target/debug/deps/all_experiments-e9aca71f7e39ec6c.d: crates/experiments/src/bin/all_experiments.rs Cargo.toml

/root/repo/target/debug/deps/liball_experiments-e9aca71f7e39ec6c.rmeta: crates/experiments/src/bin/all_experiments.rs Cargo.toml

crates/experiments/src/bin/all_experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
