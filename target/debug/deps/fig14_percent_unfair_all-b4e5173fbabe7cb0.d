/root/repo/target/debug/deps/fig14_percent_unfair_all-b4e5173fbabe7cb0.d: crates/experiments/src/bin/fig14_percent_unfair_all.rs

/root/repo/target/debug/deps/fig14_percent_unfair_all-b4e5173fbabe7cb0: crates/experiments/src/bin/fig14_percent_unfair_all.rs

crates/experiments/src/bin/fig14_percent_unfair_all.rs:
