/root/repo/target/debug/deps/fig19_loc_all-2b07b27813f388dd.d: crates/experiments/src/bin/fig19_loc_all.rs Cargo.toml

/root/repo/target/debug/deps/libfig19_loc_all-2b07b27813f388dd.rmeta: crates/experiments/src/bin/fig19_loc_all.rs Cargo.toml

crates/experiments/src/bin/fig19_loc_all.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
