/root/repo/target/debug/deps/fig15_miss_time_all-df1af69e7e1964ae.d: crates/experiments/src/bin/fig15_miss_time_all.rs

/root/repo/target/debug/deps/fig15_miss_time_all-df1af69e7e1964ae: crates/experiments/src/bin/fig15_miss_time_all.rs

crates/experiments/src/bin/fig15_miss_time_all.rs:
