/root/repo/target/debug/deps/peruser_fairness-ba27a4632af78cf3.d: crates/experiments/src/bin/peruser_fairness.rs

/root/repo/target/debug/deps/peruser_fairness-ba27a4632af78cf3: crates/experiments/src/bin/peruser_fairness.rs

crates/experiments/src/bin/peruser_fairness.rs:
