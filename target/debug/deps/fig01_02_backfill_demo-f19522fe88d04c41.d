/root/repo/target/debug/deps/fig01_02_backfill_demo-f19522fe88d04c41.d: crates/experiments/src/bin/fig01_02_backfill_demo.rs

/root/repo/target/debug/deps/fig01_02_backfill_demo-f19522fe88d04c41: crates/experiments/src/bin/fig01_02_backfill_demo.rs

crates/experiments/src/bin/fig01_02_backfill_demo.rs:
