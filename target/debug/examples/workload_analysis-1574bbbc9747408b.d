/root/repo/target/debug/examples/workload_analysis-1574bbbc9747408b.d: examples/workload_analysis.rs

/root/repo/target/debug/examples/workload_analysis-1574bbbc9747408b: examples/workload_analysis.rs

examples/workload_analysis.rs:
