/root/repo/target/debug/examples/fairness_audit-ec1bbe52f1400981.d: examples/fairness_audit.rs

/root/repo/target/debug/examples/fairness_audit-ec1bbe52f1400981: examples/fairness_audit.rs

examples/fairness_audit.rs:
