/root/repo/target/debug/examples/quickstart-5c037ee29305175a.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-5c037ee29305175a: examples/quickstart.rs

examples/quickstart.rs:
