/root/repo/target/debug/examples/fairness_audit-b5e87a4f9c126996.d: examples/fairness_audit.rs

/root/repo/target/debug/examples/fairness_audit-b5e87a4f9c126996: examples/fairness_audit.rs

examples/fairness_audit.rs:
