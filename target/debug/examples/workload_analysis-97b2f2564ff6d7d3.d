/root/repo/target/debug/examples/workload_analysis-97b2f2564ff6d7d3.d: examples/workload_analysis.rs

/root/repo/target/debug/examples/workload_analysis-97b2f2564ff6d7d3: examples/workload_analysis.rs

examples/workload_analysis.rs:
