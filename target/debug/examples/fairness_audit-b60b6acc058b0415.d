/root/repo/target/debug/examples/fairness_audit-b60b6acc058b0415.d: examples/fairness_audit.rs Cargo.toml

/root/repo/target/debug/examples/libfairness_audit-b60b6acc058b0415.rmeta: examples/fairness_audit.rs Cargo.toml

examples/fairness_audit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
