/root/repo/target/debug/examples/quickstart-d8de784ab1f7f9f2.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-d8de784ab1f7f9f2: examples/quickstart.rs

examples/quickstart.rs:
