/root/repo/target/debug/examples/policy_comparison-9edb0ea44799ee85.d: examples/policy_comparison.rs

/root/repo/target/debug/examples/policy_comparison-9edb0ea44799ee85: examples/policy_comparison.rs

examples/policy_comparison.rs:
