/root/repo/target/debug/examples/workload_analysis-c4a9b8535d5de536.d: examples/workload_analysis.rs Cargo.toml

/root/repo/target/debug/examples/libworkload_analysis-c4a9b8535d5de536.rmeta: examples/workload_analysis.rs Cargo.toml

examples/workload_analysis.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
