/root/repo/target/debug/examples/policy_comparison-cc72325d26a4c5e5.d: examples/policy_comparison.rs

/root/repo/target/debug/examples/policy_comparison-cc72325d26a4c5e5: examples/policy_comparison.rs

examples/policy_comparison.rs:
