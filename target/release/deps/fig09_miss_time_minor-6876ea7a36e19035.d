/root/repo/target/release/deps/fig09_miss_time_minor-6876ea7a36e19035.d: crates/experiments/src/bin/fig09_miss_time_minor.rs

/root/repo/target/release/deps/fig09_miss_time_minor-6876ea7a36e19035: crates/experiments/src/bin/fig09_miss_time_minor.rs

crates/experiments/src/bin/fig09_miss_time_minor.rs:
