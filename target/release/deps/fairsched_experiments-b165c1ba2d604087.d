/root/repo/target/release/deps/fairsched_experiments-b165c1ba2d604087.d: crates/experiments/src/lib.rs crates/experiments/src/ablations.rs crates/experiments/src/characterization.rs crates/experiments/src/figures.rs

/root/repo/target/release/deps/libfairsched_experiments-b165c1ba2d604087.rlib: crates/experiments/src/lib.rs crates/experiments/src/ablations.rs crates/experiments/src/characterization.rs crates/experiments/src/figures.rs

/root/repo/target/release/deps/libfairsched_experiments-b165c1ba2d604087.rmeta: crates/experiments/src/lib.rs crates/experiments/src/ablations.rs crates/experiments/src/characterization.rs crates/experiments/src/figures.rs

crates/experiments/src/lib.rs:
crates/experiments/src/ablations.rs:
crates/experiments/src/characterization.rs:
crates/experiments/src/figures.rs:
