/root/repo/target/release/deps/fig07_overest_nodes-d24bfb10f3eb8842.d: crates/experiments/src/bin/fig07_overest_nodes.rs

/root/repo/target/release/deps/fig07_overest_nodes-d24bfb10f3eb8842: crates/experiments/src/bin/fig07_overest_nodes.rs

crates/experiments/src/bin/fig07_overest_nodes.rs:
