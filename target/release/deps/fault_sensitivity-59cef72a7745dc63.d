/root/repo/target/release/deps/fault_sensitivity-59cef72a7745dc63.d: crates/experiments/src/bin/fault_sensitivity.rs

/root/repo/target/release/deps/fault_sensitivity-59cef72a7745dc63: crates/experiments/src/bin/fault_sensitivity.rs

crates/experiments/src/bin/fault_sensitivity.rs:
