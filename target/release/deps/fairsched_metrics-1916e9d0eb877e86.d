/root/repo/target/release/deps/fairsched_metrics-1916e9d0eb877e86.d: crates/metrics/src/lib.rs crates/metrics/src/fairness/mod.rs crates/metrics/src/fairness/consp.rs crates/metrics/src/fairness/equality.rs crates/metrics/src/fairness/fst.rs crates/metrics/src/fairness/hybrid.rs crates/metrics/src/fairness/jain.rs crates/metrics/src/fairness/peruser.rs crates/metrics/src/fairness/sabin.rs crates/metrics/src/system.rs crates/metrics/src/user.rs

/root/repo/target/release/deps/libfairsched_metrics-1916e9d0eb877e86.rlib: crates/metrics/src/lib.rs crates/metrics/src/fairness/mod.rs crates/metrics/src/fairness/consp.rs crates/metrics/src/fairness/equality.rs crates/metrics/src/fairness/fst.rs crates/metrics/src/fairness/hybrid.rs crates/metrics/src/fairness/jain.rs crates/metrics/src/fairness/peruser.rs crates/metrics/src/fairness/sabin.rs crates/metrics/src/system.rs crates/metrics/src/user.rs

/root/repo/target/release/deps/libfairsched_metrics-1916e9d0eb877e86.rmeta: crates/metrics/src/lib.rs crates/metrics/src/fairness/mod.rs crates/metrics/src/fairness/consp.rs crates/metrics/src/fairness/equality.rs crates/metrics/src/fairness/fst.rs crates/metrics/src/fairness/hybrid.rs crates/metrics/src/fairness/jain.rs crates/metrics/src/fairness/peruser.rs crates/metrics/src/fairness/sabin.rs crates/metrics/src/system.rs crates/metrics/src/user.rs

crates/metrics/src/lib.rs:
crates/metrics/src/fairness/mod.rs:
crates/metrics/src/fairness/consp.rs:
crates/metrics/src/fairness/equality.rs:
crates/metrics/src/fairness/fst.rs:
crates/metrics/src/fairness/hybrid.rs:
crates/metrics/src/fairness/jain.rs:
crates/metrics/src/fairness/peruser.rs:
crates/metrics/src/fairness/sabin.rs:
crates/metrics/src/system.rs:
crates/metrics/src/user.rs:
