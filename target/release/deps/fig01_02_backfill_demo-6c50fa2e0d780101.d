/root/repo/target/release/deps/fig01_02_backfill_demo-6c50fa2e0d780101.d: crates/experiments/src/bin/fig01_02_backfill_demo.rs

/root/repo/target/release/deps/fig01_02_backfill_demo-6c50fa2e0d780101: crates/experiments/src/bin/fig01_02_backfill_demo.rs

crates/experiments/src/bin/fig01_02_backfill_demo.rs:
