/root/repo/target/release/deps/fairsched-8fb245451fd1180d.d: crates/cli/src/main.rs

/root/repo/target/release/deps/fairsched-8fb245451fd1180d: crates/cli/src/main.rs

crates/cli/src/main.rs:
