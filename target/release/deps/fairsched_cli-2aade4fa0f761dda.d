/root/repo/target/release/deps/fairsched_cli-2aade4fa0f761dda.d: crates/cli/src/lib.rs

/root/repo/target/release/deps/libfairsched_cli-2aade4fa0f761dda.rlib: crates/cli/src/lib.rs

/root/repo/target/release/deps/libfairsched_cli-2aade4fa0f761dda.rmeta: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
