/root/repo/target/release/deps/rand_chacha-8d01167e62d8fd66.d: vendor/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-8d01167e62d8fd66.rlib: vendor/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-8d01167e62d8fd66.rmeta: vendor/rand_chacha/src/lib.rs

vendor/rand_chacha/src/lib.rs:
