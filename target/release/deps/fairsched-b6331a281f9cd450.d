/root/repo/target/release/deps/fairsched-b6331a281f9cd450.d: src/lib.rs

/root/repo/target/release/deps/libfairsched-b6331a281f9cd450.rlib: src/lib.rs

/root/repo/target/release/deps/libfairsched-b6331a281f9cd450.rmeta: src/lib.rs

src/lib.rs:
