/root/repo/target/release/deps/fig05_estimates-8e7884c53b412bf7.d: crates/experiments/src/bin/fig05_estimates.rs

/root/repo/target/release/deps/fig05_estimates-8e7884c53b412bf7: crates/experiments/src/bin/fig05_estimates.rs

crates/experiments/src/bin/fig05_estimates.rs:
