/root/repo/target/release/deps/fig16_miss_by_width_cons-b72d18d5f2651463.d: crates/experiments/src/bin/fig16_miss_by_width_cons.rs

/root/repo/target/release/deps/fig16_miss_by_width_cons-b72d18d5f2651463: crates/experiments/src/bin/fig16_miss_by_width_cons.rs

crates/experiments/src/bin/fig16_miss_by_width_cons.rs:
