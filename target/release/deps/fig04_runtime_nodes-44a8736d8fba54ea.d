/root/repo/target/release/deps/fig04_runtime_nodes-44a8736d8fba54ea.d: crates/experiments/src/bin/fig04_runtime_nodes.rs

/root/repo/target/release/deps/fig04_runtime_nodes-44a8736d8fba54ea: crates/experiments/src/bin/fig04_runtime_nodes.rs

crates/experiments/src/bin/fig04_runtime_nodes.rs:
