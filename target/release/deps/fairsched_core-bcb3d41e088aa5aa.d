/root/repo/target/release/deps/fairsched_core-bcb3d41e088aa5aa.d: crates/core/src/lib.rs crates/core/src/gantt.rs crates/core/src/policy.rs crates/core/src/report.rs crates/core/src/runner.rs crates/core/src/sweep.rs

/root/repo/target/release/deps/libfairsched_core-bcb3d41e088aa5aa.rlib: crates/core/src/lib.rs crates/core/src/gantt.rs crates/core/src/policy.rs crates/core/src/report.rs crates/core/src/runner.rs crates/core/src/sweep.rs

/root/repo/target/release/deps/libfairsched_core-bcb3d41e088aa5aa.rmeta: crates/core/src/lib.rs crates/core/src/gantt.rs crates/core/src/policy.rs crates/core/src/report.rs crates/core/src/runner.rs crates/core/src/sweep.rs

crates/core/src/lib.rs:
crates/core/src/gantt.rs:
crates/core/src/policy.rs:
crates/core/src/report.rs:
crates/core/src/runner.rs:
crates/core/src/sweep.rs:
