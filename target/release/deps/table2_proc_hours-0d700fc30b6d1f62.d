/root/repo/target/release/deps/table2_proc_hours-0d700fc30b6d1f62.d: crates/experiments/src/bin/table2_proc_hours.rs

/root/repo/target/release/deps/table2_proc_hours-0d700fc30b6d1f62: crates/experiments/src/bin/table2_proc_hours.rs

crates/experiments/src/bin/table2_proc_hours.rs:
