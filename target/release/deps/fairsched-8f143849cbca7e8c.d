/root/repo/target/release/deps/fairsched-8f143849cbca7e8c.d: src/lib.rs

/root/repo/target/release/deps/libfairsched-8f143849cbca7e8c.rlib: src/lib.rs

/root/repo/target/release/deps/libfairsched-8f143849cbca7e8c.rmeta: src/lib.rs

src/lib.rs:
