/root/repo/target/release/deps/fig13_loc_minor-8520ba5fc73970e3.d: crates/experiments/src/bin/fig13_loc_minor.rs

/root/repo/target/release/deps/fig13_loc_minor-8520ba5fc73970e3: crates/experiments/src/bin/fig13_loc_minor.rs

crates/experiments/src/bin/fig13_loc_minor.rs:
