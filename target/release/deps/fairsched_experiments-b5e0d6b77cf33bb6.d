/root/repo/target/release/deps/fairsched_experiments-b5e0d6b77cf33bb6.d: crates/experiments/src/lib.rs crates/experiments/src/ablations.rs crates/experiments/src/characterization.rs crates/experiments/src/figures.rs

/root/repo/target/release/deps/libfairsched_experiments-b5e0d6b77cf33bb6.rlib: crates/experiments/src/lib.rs crates/experiments/src/ablations.rs crates/experiments/src/characterization.rs crates/experiments/src/figures.rs

/root/repo/target/release/deps/libfairsched_experiments-b5e0d6b77cf33bb6.rmeta: crates/experiments/src/lib.rs crates/experiments/src/ablations.rs crates/experiments/src/characterization.rs crates/experiments/src/figures.rs

crates/experiments/src/lib.rs:
crates/experiments/src/ablations.rs:
crates/experiments/src/characterization.rs:
crates/experiments/src/figures.rs:
