/root/repo/target/release/deps/fairsched_core-da3098f7aa05b9cc.d: crates/core/src/lib.rs crates/core/src/gantt.rs crates/core/src/policy.rs crates/core/src/report.rs crates/core/src/runner.rs crates/core/src/sweep.rs

/root/repo/target/release/deps/libfairsched_core-da3098f7aa05b9cc.rlib: crates/core/src/lib.rs crates/core/src/gantt.rs crates/core/src/policy.rs crates/core/src/report.rs crates/core/src/runner.rs crates/core/src/sweep.rs

/root/repo/target/release/deps/libfairsched_core-da3098f7aa05b9cc.rmeta: crates/core/src/lib.rs crates/core/src/gantt.rs crates/core/src/policy.rs crates/core/src/report.rs crates/core/src/runner.rs crates/core/src/sweep.rs

crates/core/src/lib.rs:
crates/core/src/gantt.rs:
crates/core/src/policy.rs:
crates/core/src/report.rs:
crates/core/src/runner.rs:
crates/core/src/sweep.rs:
