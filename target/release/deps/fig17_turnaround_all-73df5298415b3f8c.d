/root/repo/target/release/deps/fig17_turnaround_all-73df5298415b3f8c.d: crates/experiments/src/bin/fig17_turnaround_all.rs

/root/repo/target/release/deps/fig17_turnaround_all-73df5298415b3f8c: crates/experiments/src/bin/fig17_turnaround_all.rs

crates/experiments/src/bin/fig17_turnaround_all.rs:
