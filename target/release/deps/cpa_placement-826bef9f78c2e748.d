/root/repo/target/release/deps/cpa_placement-826bef9f78c2e748.d: crates/experiments/src/bin/cpa_placement.rs

/root/repo/target/release/deps/cpa_placement-826bef9f78c2e748: crates/experiments/src/bin/cpa_placement.rs

crates/experiments/src/bin/cpa_placement.rs:
