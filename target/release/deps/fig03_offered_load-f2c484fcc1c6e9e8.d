/root/repo/target/release/deps/fig03_offered_load-f2c484fcc1c6e9e8.d: crates/experiments/src/bin/fig03_offered_load.rs

/root/repo/target/release/deps/fig03_offered_load-f2c484fcc1c6e9e8: crates/experiments/src/bin/fig03_offered_load.rs

crates/experiments/src/bin/fig03_offered_load.rs:
