/root/repo/target/release/deps/rand-731d3389450a19e0.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-731d3389450a19e0.rlib: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-731d3389450a19e0.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
