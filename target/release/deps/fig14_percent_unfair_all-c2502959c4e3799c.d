/root/repo/target/release/deps/fig14_percent_unfair_all-c2502959c4e3799c.d: crates/experiments/src/bin/fig14_percent_unfair_all.rs

/root/repo/target/release/deps/fig14_percent_unfair_all-c2502959c4e3799c: crates/experiments/src/bin/fig14_percent_unfair_all.rs

crates/experiments/src/bin/fig14_percent_unfair_all.rs:
