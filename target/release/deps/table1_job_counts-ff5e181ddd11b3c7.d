/root/repo/target/release/deps/table1_job_counts-ff5e181ddd11b3c7.d: crates/experiments/src/bin/table1_job_counts.rs

/root/repo/target/release/deps/table1_job_counts-ff5e181ddd11b3c7: crates/experiments/src/bin/table1_job_counts.rs

crates/experiments/src/bin/table1_job_counts.rs:
