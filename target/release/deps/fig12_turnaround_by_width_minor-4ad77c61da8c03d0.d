/root/repo/target/release/deps/fig12_turnaround_by_width_minor-4ad77c61da8c03d0.d: crates/experiments/src/bin/fig12_turnaround_by_width_minor.rs

/root/repo/target/release/deps/fig12_turnaround_by_width_minor-4ad77c61da8c03d0: crates/experiments/src/bin/fig12_turnaround_by_width_minor.rs

crates/experiments/src/bin/fig12_turnaround_by_width_minor.rs:
