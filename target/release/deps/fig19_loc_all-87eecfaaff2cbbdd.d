/root/repo/target/release/deps/fig19_loc_all-87eecfaaff2cbbdd.d: crates/experiments/src/bin/fig19_loc_all.rs

/root/repo/target/release/deps/fig19_loc_all-87eecfaaff2cbbdd: crates/experiments/src/bin/fig19_loc_all.rs

crates/experiments/src/bin/fig19_loc_all.rs:
