/root/repo/target/release/deps/fairsched_cpa-ad7c2799517bf0da.d: crates/cpa/src/lib.rs crates/cpa/src/alloc.rs crates/cpa/src/frag.rs crates/cpa/src/linear.rs

/root/repo/target/release/deps/libfairsched_cpa-ad7c2799517bf0da.rlib: crates/cpa/src/lib.rs crates/cpa/src/alloc.rs crates/cpa/src/frag.rs crates/cpa/src/linear.rs

/root/repo/target/release/deps/libfairsched_cpa-ad7c2799517bf0da.rmeta: crates/cpa/src/lib.rs crates/cpa/src/alloc.rs crates/cpa/src/frag.rs crates/cpa/src/linear.rs

crates/cpa/src/lib.rs:
crates/cpa/src/alloc.rs:
crates/cpa/src/frag.rs:
crates/cpa/src/linear.rs:
