/root/repo/target/release/deps/fairsched_workload-49a0b4d6b3a9a4f3.d: crates/workload/src/lib.rs crates/workload/src/categories.rs crates/workload/src/estimate.rs crates/workload/src/job.rs crates/workload/src/models.rs crates/workload/src/stats.rs crates/workload/src/swf.rs crates/workload/src/synthetic.rs crates/workload/src/tables.rs crates/workload/src/time.rs

/root/repo/target/release/deps/libfairsched_workload-49a0b4d6b3a9a4f3.rlib: crates/workload/src/lib.rs crates/workload/src/categories.rs crates/workload/src/estimate.rs crates/workload/src/job.rs crates/workload/src/models.rs crates/workload/src/stats.rs crates/workload/src/swf.rs crates/workload/src/synthetic.rs crates/workload/src/tables.rs crates/workload/src/time.rs

/root/repo/target/release/deps/libfairsched_workload-49a0b4d6b3a9a4f3.rmeta: crates/workload/src/lib.rs crates/workload/src/categories.rs crates/workload/src/estimate.rs crates/workload/src/job.rs crates/workload/src/models.rs crates/workload/src/stats.rs crates/workload/src/swf.rs crates/workload/src/synthetic.rs crates/workload/src/tables.rs crates/workload/src/time.rs

crates/workload/src/lib.rs:
crates/workload/src/categories.rs:
crates/workload/src/estimate.rs:
crates/workload/src/job.rs:
crates/workload/src/models.rs:
crates/workload/src/stats.rs:
crates/workload/src/swf.rs:
crates/workload/src/synthetic.rs:
crates/workload/src/tables.rs:
crates/workload/src/time.rs:
