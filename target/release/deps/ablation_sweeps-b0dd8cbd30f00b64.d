/root/repo/target/release/deps/ablation_sweeps-b0dd8cbd30f00b64.d: crates/experiments/src/bin/ablation_sweeps.rs

/root/repo/target/release/deps/ablation_sweeps-b0dd8cbd30f00b64: crates/experiments/src/bin/ablation_sweeps.rs

crates/experiments/src/bin/ablation_sweeps.rs:
