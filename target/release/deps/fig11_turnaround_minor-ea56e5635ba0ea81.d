/root/repo/target/release/deps/fig11_turnaround_minor-ea56e5635ba0ea81.d: crates/experiments/src/bin/fig11_turnaround_minor.rs

/root/repo/target/release/deps/fig11_turnaround_minor-ea56e5635ba0ea81: crates/experiments/src/bin/fig11_turnaround_minor.rs

crates/experiments/src/bin/fig11_turnaround_minor.rs:
