/root/repo/target/release/deps/fig18_turnaround_by_width_cons-136b67d396fc6d2c.d: crates/experiments/src/bin/fig18_turnaround_by_width_cons.rs

/root/repo/target/release/deps/fig18_turnaround_by_width_cons-136b67d396fc6d2c: crates/experiments/src/bin/fig18_turnaround_by_width_cons.rs

crates/experiments/src/bin/fig18_turnaround_by_width_cons.rs:
