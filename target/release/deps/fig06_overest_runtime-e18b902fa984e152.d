/root/repo/target/release/deps/fig06_overest_runtime-e18b902fa984e152.d: crates/experiments/src/bin/fig06_overest_runtime.rs

/root/repo/target/release/deps/fig06_overest_runtime-e18b902fa984e152: crates/experiments/src/bin/fig06_overest_runtime.rs

crates/experiments/src/bin/fig06_overest_runtime.rs:
