/root/repo/target/release/deps/peruser_fairness-475859f09452fbb0.d: crates/experiments/src/bin/peruser_fairness.rs

/root/repo/target/release/deps/peruser_fairness-475859f09452fbb0: crates/experiments/src/bin/peruser_fairness.rs

crates/experiments/src/bin/peruser_fairness.rs:
