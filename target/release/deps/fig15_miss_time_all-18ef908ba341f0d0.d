/root/repo/target/release/deps/fig15_miss_time_all-18ef908ba341f0d0.d: crates/experiments/src/bin/fig15_miss_time_all.rs

/root/repo/target/release/deps/fig15_miss_time_all-18ef908ba341f0d0: crates/experiments/src/bin/fig15_miss_time_all.rs

crates/experiments/src/bin/fig15_miss_time_all.rs:
