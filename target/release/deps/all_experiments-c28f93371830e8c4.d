/root/repo/target/release/deps/all_experiments-c28f93371830e8c4.d: crates/experiments/src/bin/all_experiments.rs

/root/repo/target/release/deps/all_experiments-c28f93371830e8c4: crates/experiments/src/bin/all_experiments.rs

crates/experiments/src/bin/all_experiments.rs:
