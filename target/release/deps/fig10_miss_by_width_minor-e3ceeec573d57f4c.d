/root/repo/target/release/deps/fig10_miss_by_width_minor-e3ceeec573d57f4c.d: crates/experiments/src/bin/fig10_miss_by_width_minor.rs

/root/repo/target/release/deps/fig10_miss_by_width_minor-e3ceeec573d57f4c: crates/experiments/src/bin/fig10_miss_by_width_minor.rs

crates/experiments/src/bin/fig10_miss_by_width_minor.rs:
