/root/repo/target/release/deps/fairsched_sim-9a4c1bdcc5b363eb.d: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/event.rs crates/sim/src/fairshare.rs crates/sim/src/listsched.rs crates/sim/src/profile.rs crates/sim/src/simulator.rs crates/sim/src/starvation.rs crates/sim/src/state.rs

/root/repo/target/release/deps/libfairsched_sim-9a4c1bdcc5b363eb.rlib: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/event.rs crates/sim/src/fairshare.rs crates/sim/src/listsched.rs crates/sim/src/profile.rs crates/sim/src/simulator.rs crates/sim/src/starvation.rs crates/sim/src/state.rs

/root/repo/target/release/deps/libfairsched_sim-9a4c1bdcc5b363eb.rmeta: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/event.rs crates/sim/src/fairshare.rs crates/sim/src/listsched.rs crates/sim/src/profile.rs crates/sim/src/simulator.rs crates/sim/src/starvation.rs crates/sim/src/state.rs

crates/sim/src/lib.rs:
crates/sim/src/config.rs:
crates/sim/src/engine.rs:
crates/sim/src/event.rs:
crates/sim/src/fairshare.rs:
crates/sim/src/listsched.rs:
crates/sim/src/profile.rs:
crates/sim/src/simulator.rs:
crates/sim/src/starvation.rs:
crates/sim/src/state.rs:
