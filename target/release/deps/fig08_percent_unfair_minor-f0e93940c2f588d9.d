/root/repo/target/release/deps/fig08_percent_unfair_minor-f0e93940c2f588d9.d: crates/experiments/src/bin/fig08_percent_unfair_minor.rs

/root/repo/target/release/deps/fig08_percent_unfair_minor-f0e93940c2f588d9: crates/experiments/src/bin/fig08_percent_unfair_minor.rs

crates/experiments/src/bin/fig08_percent_unfair_minor.rs:
