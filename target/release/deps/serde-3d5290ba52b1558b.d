/root/repo/target/release/deps/serde-3d5290ba52b1558b.d: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-3d5290ba52b1558b.rlib: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-3d5290ba52b1558b.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
