//! Offline stand-in for `rand_chacha`: a genuine ChaCha stream cipher used
//! as a deterministic RNG, implementing the vendored `rand` traits.
//!
//! This is a faithful ChaCha core (the "expand 32-byte k" constants, a
//! 64-bit block counter in words 12–13, quarter-round diffusion), so the
//! statistical quality is the real thing. Stream layout differs from
//! upstream `rand_chacha` (which serves bytes little-endian out of the
//! keystream); here each `next_u32` pops one word of the 16-word block and
//! `next_u64` combines two. Determinism within this workspace is the
//! contract, not cross-crate bit-compatibility.

use rand::{RngCore, SeedableRng};

/// ChaCha quarter round on four state words.
#[inline(always)]
fn quarter(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Generic ChaCha RNG over `DOUBLE_ROUNDS` double-rounds (ChaCha8 = 4).
#[derive(Clone, Debug)]
pub struct ChaChaRng<const DOUBLE_ROUNDS: usize> {
    /// Key (8 words) + nonce (2 words) captured from the seed.
    key: [u32; 8],
    /// 64-bit block counter, incremented per generated block.
    counter: u64,
    /// Current keystream block.
    buffer: [u32; 16],
    /// Next unread word index into `buffer`; 16 means exhausted.
    index: usize,
}

impl<const DOUBLE_ROUNDS: usize> ChaChaRng<DOUBLE_ROUNDS> {
    fn refill(&mut self) {
        let mut state: [u32; 16] = [
            0x6170_7865, // "expa"
            0x3320_646e, // "nd 3"
            0x7962_2d32, // "2-by"
            0x6b20_6574, // "te k"
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let input = state;
        for _ in 0..DOUBLE_ROUNDS {
            // Column round.
            quarter(&mut state, 0, 4, 8, 12);
            quarter(&mut state, 1, 5, 9, 13);
            quarter(&mut state, 2, 6, 10, 14);
            quarter(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter(&mut state, 0, 5, 10, 15);
            quarter(&mut state, 1, 6, 11, 12);
            quarter(&mut state, 2, 7, 8, 13);
            quarter(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.buffer = state;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl<const DOUBLE_ROUNDS: usize> RngCore for ChaChaRng<DOUBLE_ROUNDS> {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl<const DOUBLE_ROUNDS: usize> SeedableRng for ChaChaRng<DOUBLE_ROUNDS> {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        Self {
            key,
            counter: 0,
            buffer: [0; 16],
            index: 16,
        }
    }
}

/// ChaCha with 8 rounds (4 double-rounds): the workhorse generator.
pub type ChaCha8Rng = ChaChaRng<4>;
/// ChaCha with 12 rounds.
pub type ChaCha12Rng = ChaChaRng<6>;
/// ChaCha with 20 rounds.
pub type ChaCha20Rng = ChaChaRng<10>;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = ChaCha8Rng::seed_from_u64(12345);
        let mut b = ChaCha8Rng::seed_from_u64(12345);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn chacha20_matches_rfc8439_block_structure() {
        // With an all-zero key the first block must still pass the
        // avalanche sanity check: all 16 words nonzero and distinct-ish.
        let mut rng = ChaCha20Rng::from_seed([0u8; 32]);
        let words: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert!(words.iter().filter(|&&w| w == 0).count() <= 1);
    }

    #[test]
    fn range_sampling_compiles_through_traits() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let v = rng.gen_range(0u64..1000);
        assert!(v < 1000);
        let f: f64 = rng.gen();
        assert!((0.0..1.0).contains(&f));
    }
}
