//! No-op `Serialize`/`Deserialize` derives for the vendored serde stub.
//!
//! The real trait impls come from blanket impls in the `serde` stub, so
//! these derives only need to swallow the annotation (and any `#[serde]`
//! attributes) without emitting code.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
