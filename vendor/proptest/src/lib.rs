//! Offline stand-in for `proptest`.
//!
//! A miniature property-testing harness covering exactly the strategy and
//! macro surface this workspace uses: integer/float range strategies,
//! tuples, `collection::vec`, `sample::select`, `option::of`, a tiny
//! `{lo,hi}`-suffix string pattern, `prop_map`, `prop_oneof!`, and the
//! `proptest!`/`prop_assert*` macros. Differences from upstream are
//! deliberate simplifications:
//!
//! - **No shrinking.** A failing case reports its generated inputs (the
//!   harness Debug-formats them before running the body) and panics.
//! - **Deterministic.** The case RNG is seeded from the test name, so runs
//!   are reproducible without a persistence file.
//! - **No `Arbitrary`.** Tests here build strategies explicitly.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The RNG driving test-case generation.
pub type TestRng = ChaCha8Rng;

/// Builds the deterministic per-test RNG: seed = FNV-1a of the test name.
pub fn test_rng(test_name: &str) -> TestRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    TestRng::seed_from_u64(hash)
}

/// A test-case failure raised from inside a property body (the `?` path).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failed case with the given reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        Self(reason.into())
    }

    /// A rejected case (treated as a failure here: no global rejection
    /// budget in the stub).
    pub fn reject(reason: impl Into<String>) -> Self {
        Self(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Run configuration: how many cases each property runs.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The generated value type.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Post-processes generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (needed by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.generate(rng)))
    }
}

/// A [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Uniform choice among alternative strategies (`prop_oneof!`).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Builds a union over the given alternatives.
    pub fn new(alternatives: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !alternatives.is_empty(),
            "prop_oneof! needs at least one arm"
        );
        Self(alternatives)
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.0.len());
        self.0[idx].generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

/// A string pattern strategy: only the `{lo,hi}`-suffixed character-class
/// shorthand this workspace uses (e.g. `"\\PC{0,400}"`) is honoured; the
/// class itself is approximated by printable ASCII plus a few multibyte
/// code points (all non-control, satisfying `\PC`).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (lo, hi) = parse_repeat_suffix(self).unwrap_or((0, 16));
        let len = rng.gen_range(lo..=hi);
        (0..len)
            .map(|_| match rng.gen_range(0u32..20) {
                0 => '\u{00e9}', // é — exercise multibyte
                1 => '\u{2603}', // ☃
                _ => char::from_u32(rng.gen_range(0x20u32..0x7f)).unwrap(),
            })
            .collect()
    }
}

/// Parses a trailing `{lo,hi}` repetition from a pattern string.
fn parse_repeat_suffix(pattern: &str) -> Option<(usize, usize)> {
    let body = pattern.strip_suffix('}')?;
    let brace = body.rfind('{')?;
    let (lo, hi) = body[brace + 1..].split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::*;

    /// Size specification for [`vec`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use super::*;

    /// Uniform choice from a fixed list.
    pub fn select<T: Clone + Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select over empty list");
        Select(options)
    }

    /// See [`select`].
    pub struct Select<T>(Vec<T>);

    impl<T: Clone + Debug> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.gen_range(0..self.0.len())].clone()
        }
    }
}

/// Option strategies (`prop::option`).
pub mod option {
    use super::*;

    /// `None` one time in four, otherwise `Some` of the inner strategy.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    /// See [`of`].
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_range(0u32..4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

/// Everything a test module needs in scope.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, ProptestConfig,
        Strategy, TestCaseError,
    };

    /// Mirrors `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::{collection, option, sample};
    }
}

/// Asserts a condition inside a property; failure reports the generated
/// inputs (via the harness) and fails the test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `assert_eq!` inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `assert_ne!` inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// The property-test harness macro: expands each `fn name(x in strat, ...)`
/// into a `#[test]`-able function running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$attr:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let values = ($($crate::Strategy::generate(&($strat), &mut rng),)+);
                    // Snapshot the inputs before the body may move them.
                    let rendered = format!("{:#?}", values);
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(move || {
                            let ($($pat,)+) = values;
                            // Upstream semantics: the body may `?` or
                            // `return Ok(())` with a TestCaseError.
                            #[allow(clippy::redundant_closure_call)]
                            let res: ::std::result::Result<(), $crate::TestCaseError> =
                                (|| {
                                    $body
                                    ::std::result::Result::Ok(())
                                })();
                            res
                        }),
                    );
                    let report = |rendered: &str| {
                        eprintln!(
                            "proptest stub: {} failed at case {}/{} with inputs:\n{}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            rendered
                        );
                    };
                    match outcome {
                        Ok(Ok(())) => {}
                        Ok(Err(err)) => {
                            report(&rendered);
                            panic!("test case failed: {err}");
                        }
                        Err(payload) => {
                            report(&rendered);
                            ::std::panic::resume_unwind(payload);
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn repeat_suffix_parses() {
        assert_eq!(super::parse_repeat_suffix("\\PC{0,400}"), Some((0, 400)));
        assert_eq!(super::parse_repeat_suffix("abc"), None);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_tuples_generate_in_bounds(
            a in 1u32..=16,
            (b, c) in (0u64..100, 0.0f64..1.0),
            v in prop::collection::vec(0usize..5, 1..8),
            s in "\\PC{0,40}",
            o in prop::option::of(1u64..10),
            pick in prop::sample::select(vec![2u32, 4, 8]),
        ) {
            prop_assert!((1..=16).contains(&a));
            prop_assert!(b < 100 && (0.0..1.0).contains(&c));
            prop_assert!(!v.is_empty() && v.len() < 8 && v.iter().all(|&x| x < 5));
            prop_assert!(s.chars().count() <= 40);
            if let Some(x) = o {
                prop_assert!((1..10).contains(&x));
            }
            prop_assert!([2, 4, 8].contains(&pick));
        }

        #[test]
        fn oneof_and_map_compose(x in prop_oneof![(0u32..5).prop_map(|v| v * 10), 100u32..105]) {
            prop_assert!(x < 50 && x % 10 == 0 || (100..105).contains(&x));
        }
    }

    #[test]
    fn determinism_same_name_same_stream() {
        let mut a = super::test_rng("x");
        let mut b = super::test_rng("x");
        use rand::RngCore;
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
