//! Offline stand-in for `serde`.
//!
//! Nothing in this workspace serializes through serde at runtime (output
//! formats are hand-rolled SWF/CSV writers); the dependency exists only so
//! `#[derive(Serialize, Deserialize)]` annotations compile. The traits are
//! empty markers and the derives (from the sibling `serde_derive` stub)
//! expand to nothing.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

/// Blanket impls so the marker traits never constrain anything.
impl<T: ?Sized> Serialize for T {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
