//! Offline stand-in for `criterion`.
//!
//! The build environment has no crates.io access, so bench targets link
//! against this API-compatible shell instead. Unlike a pure no-op stub it
//! understands the three ways cargo invokes a `harness = false` bench
//! binary and picks a [`Mode`] from the arguments:
//!
//! * no flag (plain `cargo test` building/running the target) — **Skip**:
//!   closures are registered but never executed, so the test suite stays
//!   fast;
//! * `--test` (CI smoke, `cargo bench -- --test`) — **Test**: every
//!   closure runs exactly once, proving the benches still work;
//! * `--bench` (`cargo bench`) — **Measure**: closures are timed with
//!   `std::time::Instant`, bounded by the configured sample size and
//!   measurement budget.
//!
//! Measured results accumulate in a process-wide registry; when the
//! `CRITERION_JSON` environment variable names a path, the
//! [`criterion_main!`] entry point writes them there as JSON via
//! [`finalize`].

use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value passthrough.
#[inline]
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// What a bench invocation should do with its closures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Register only; never execute (plain `cargo test`).
    Skip,
    /// Execute each routine once, unmeasured (`--test`).
    Test,
    /// Time the routines (`--bench`).
    Measure,
}

fn mode_from_args() -> Mode {
    let mut mode = Mode::Skip;
    for arg in std::env::args().skip(1) {
        if arg == "--test" {
            return Mode::Test;
        }
        if arg == "--bench" {
            mode = Mode::Measure;
        }
    }
    mode
}

/// One measured benchmark: its id and the per-iteration wall times.
#[derive(Debug, Clone)]
struct BenchRecord {
    id: String,
    samples_ns: Vec<f64>,
}

static RESULTS: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());

fn record(id: String, samples_ns: Vec<f64>) {
    let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
    eprintln!(
        "bench {id}: mean {:.3} ms over {} sample(s)",
        mean / 1e6,
        samples_ns.len()
    );
    RESULTS
        .lock()
        .expect("results registry poisoned")
        .push(BenchRecord { id, samples_ns });
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Writes every measured result to the path in `CRITERION_JSON`, if set.
/// Called automatically by [`criterion_main!`]; a no-op in Skip/Test modes
/// (nothing was measured) or when the variable is absent.
pub fn finalize() {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    let results = RESULTS.lock().expect("results registry poisoned");
    let mut out = String::from("{\n  \"generated_by\": \"vendored criterion stub (Instant-based)\",\n  \"benchmarks\": [\n");
    for (i, r) in results.iter().enumerate() {
        let n = r.samples_ns.len() as f64;
        let mean = r.samples_ns.iter().sum::<f64>() / n;
        let min = r.samples_ns.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = r.samples_ns.iter().cloned().fold(0.0f64, f64::max);
        out.push_str(&format!(
            "    {{\"id\": \"{}\", \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"max_ns\": {:.1}, \"samples\": {}}}{}\n",
            json_escape(&r.id),
            mean,
            min,
            max,
            r.samples_ns.len(),
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("criterion stub: cannot write {path}: {e}");
    }
}

/// Stand-in for `criterion::Criterion`.
pub struct Criterion {
    mode: Mode,
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion::manual(mode_from_args())
    }
}

impl Criterion {
    /// A criterion pinned to an explicit mode, ignoring process arguments.
    pub fn manual(mode: Mode) -> Self {
        Criterion {
            mode,
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
        }
    }

    /// Upper bound on timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Soft wall-time budget per benchmark: sampling stops at the first
    /// sample that crosses it, so one expensive closure costs one run.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Opens a benchmark group; its benches are prefixed `name/`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            criterion: self,
        }
    }

    /// Registers a benchmark (and runs/measures it per the mode).
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            self.mode,
            self.sample_size,
            self.measurement_time,
            id.to_string(),
            &mut f,
        );
        self
    }
}

fn run_one<F>(mode: Mode, sample_size: usize, budget: Duration, id: String, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    if mode == Mode::Skip {
        return;
    }
    let mut bencher = Bencher {
        mode,
        sample_size,
        budget,
        samples_ns: Vec::new(),
    };
    f(&mut bencher);
    if mode == Mode::Measure && !bencher.samples_ns.is_empty() {
        record(id, bencher.samples_ns);
    }
}

/// Stand-in for `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Upper bound on timed iterations per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Soft wall-time budget per benchmark in this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Registers a benchmark under `group/id`.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            self.criterion.mode,
            self.sample_size,
            self.measurement_time,
            format!("{}/{id}", self.name),
            &mut f,
        );
        self
    }

    /// Registers a parameterized benchmark under `group/id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            self.criterion.mode,
            self.sample_size,
            self.measurement_time,
            format!("{}/{id}", self.name),
            &mut |b: &mut Bencher| f(b, input),
        );
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Stand-in for `criterion::Bencher`.
pub struct Bencher {
    mode: Mode,
    sample_size: usize,
    budget: Duration,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Runs (Test) or times (Measure) the routine; no-op in Skip mode.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            Mode::Skip => {}
            Mode::Test => {
                black_box(routine());
            }
            Mode::Measure => {
                let started = Instant::now();
                while self.samples_ns.len() < self.sample_size {
                    let t = Instant::now();
                    black_box(routine());
                    self.samples_ns.push(t.elapsed().as_secs_f64() * 1e9);
                    if started.elapsed() >= self.budget {
                        break;
                    }
                }
            }
        }
    }

    /// Like [`Bencher::iter`] with untimed per-iteration setup.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        match self.mode {
            Mode::Skip => {}
            Mode::Test => {
                black_box(routine(setup()));
            }
            Mode::Measure => {
                let started = Instant::now();
                while self.samples_ns.len() < self.sample_size {
                    let input = setup();
                    let t = Instant::now();
                    black_box(routine(input));
                    self.samples_ns.push(t.elapsed().as_secs_f64() * 1e9);
                    if started.elapsed() >= self.budget {
                        break;
                    }
                }
            }
        }
    }
}

/// Batch sizing hints (ignored; setup is always per-iteration).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh input every iteration.
    PerIteration,
}

/// Benchmark identifier.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// A function/parameter id pair.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            text: format!("{}/{}", function.into(), parameter),
        }
    }

    /// A parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Declares a benchmark group: both the positional and `name =`/`config =`
/// forms of the upstream macro are accepted. What the registered closures
/// do is mode-dependent — see the crate docs.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point; flushes measured results to
/// `CRITERION_JSON` (if set) after every group has run.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skip_mode_compiles_the_surface_and_never_runs_closures() {
        let mut c = Criterion::manual(Mode::Skip).sample_size(20);
        let mut ran = false;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(10);
            g.bench_function("a", |b| b.iter(|| ran = true));
            g.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &n| {
                b.iter(|| ran = n > 0)
            });
            g.finish();
        }
        c.bench_function(BenchmarkId::new("f", "p"), |b| {
            b.iter_batched(|| 1u32, |x| x + 1, BatchSize::LargeInput)
        });
        assert!(!ran, "skip mode must not execute bench closures");
        assert_eq!(black_box(3) + 1, 4);
    }

    #[test]
    fn test_mode_runs_each_closure_exactly_once() {
        let mut c = Criterion::manual(Mode::Test);
        let mut runs = 0u32;
        c.bench_function("once", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
        let mut batched = 0u32;
        c.bench_function("batched", |b| {
            b.iter_batched(|| 2u32, |x| batched += x, BatchSize::SmallInput)
        });
        assert_eq!(batched, 2);
    }

    #[test]
    fn measure_mode_collects_bounded_samples() {
        let mut c = Criterion::manual(Mode::Measure).sample_size(4);
        let mut runs = 0u32;
        c.bench_function("counted", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 4, "sample_size bounds the iterations");
        let results = RESULTS.lock().unwrap();
        let rec = results
            .iter()
            .find(|r| r.id == "counted")
            .expect("measured result registered");
        assert_eq!(rec.samples_ns.len(), 4);
        assert!(rec.samples_ns.iter().all(|&ns| ns >= 0.0));
    }

    #[test]
    fn json_escaping_handles_quotes_and_controls() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny"), "x\\u000ay");
    }
}
