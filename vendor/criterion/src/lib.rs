//! Offline stand-in for `criterion`.
//!
//! The build environment has no crates.io access, so bench targets link
//! against this API-compatible shell instead. It deliberately does **not**
//! execute benchmark closures: `cargo test` builds and runs `harness =
//! false` bench binaries, and running real policy sweeps there would make
//! the test suite minutes slower for zero signal. `cargo bench` therefore
//! currently verifies that benches compile, not timings.

use std::fmt::Display;

/// Opaque-to-the-optimizer value passthrough.
#[inline]
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// No-op stand-in for `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepted and ignored.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Accepted and ignored.
    pub fn measurement_time(self, _d: std::time::Duration) -> Self {
        self
    }

    /// Opens a (no-op) benchmark group.
    pub fn benchmark_group(&mut self, _name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self }
    }

    /// Registers a (never-run) benchmark.
    pub fn bench_function<F>(&mut self, _id: impl Display, _f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self
    }
}

/// No-op stand-in for `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted and ignored.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted and ignored.
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    /// Registers a (never-run) benchmark.
    pub fn bench_function<F>(&mut self, _id: impl Display, _f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self
    }

    /// Registers a (never-run) parameterized benchmark.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        _id: BenchmarkId,
        _input: &I,
        _f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// No-op stand-in for `criterion::Bencher`.
pub struct Bencher {
    _private: (),
}

impl Bencher {
    /// Accepted and ignored — the routine is never executed.
    pub fn iter<O, R: FnMut() -> O>(&mut self, _routine: R) {}

    /// Accepted and ignored — setup and routine are never executed.
    pub fn iter_batched<I, O, S, R>(&mut self, _setup: S, _routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
    }
}

/// Batch sizing hints (ignored).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh input every iteration.
    PerIteration,
}

/// Benchmark identifier.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// A function/parameter id pair.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            text: format!("{}/{}", function.into(), parameter),
        }
    }

    /// A parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Declares a benchmark group: both the positional and `name =`/`config =`
/// forms of the upstream macro are accepted; registered functions are
/// invoked once with a no-op `Criterion` so their setup code type-checks,
/// but their measured closures never run.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn surface_compiles_and_closures_never_run() {
        let mut c = Criterion::default().sample_size(20);
        let mut ran = false;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(10);
            g.bench_function("a", |b| b.iter(|| ran = true));
            g.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &n| {
                b.iter(|| ran = n > 0)
            });
            g.finish();
        }
        c.bench_function(BenchmarkId::new("f", "p"), |b| {
            b.iter_batched(|| 1u32, |x| x + 1, BatchSize::LargeInput)
        });
        assert!(!ran, "criterion stub must not execute bench closures");
        assert_eq!(black_box(3) + 1, 4);
    }
}
