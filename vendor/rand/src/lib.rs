//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the narrow slice of `rand` it actually uses: the [`RngCore`],
//! [`Rng`], and [`SeedableRng`] traits plus uniform range sampling for the
//! integer and float types the workload generator needs.
//!
//! The sampling algorithms deliberately mirror upstream `rand` 0.8
//! bit-for-bit for the call patterns in this workspace — Lemire
//! widening-multiply rejection for `gen_range` over integers (with the
//! same per-type draw widths: 32-bit types consume one `next_u32`, 64-bit
//! types one `next_u64`), the `[1, 2)` 52-bit-mantissa method for float
//! ranges, and the 53-bit multiply method for `gen::<f64>()`. Combined
//! with the vendored ChaCha generator this keeps seeded synthetic traces
//! identical to ones produced with the real crates, so figure regressions
//! stay comparable across environments.

/// The core of a random number generator: raw word output.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator constructible from a fixed seed.
pub trait SeedableRng: Sized {
    /// The seed byte array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via a PCG32 stream — the exact
    /// expansion `rand_core` 0.6 ships, so `seed_from_u64` produces the
    /// same seed bytes as upstream.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_exact_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            chunk.copy_from_slice(&xorshifted.rotate_right(rot).to_le_bytes());
        }
        Self::from_seed(seed)
    }
}

/// Types samplable uniformly over their "standard" domain (`gen`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Multiply-based method, 53 bits of precision, `[0, 1)` — as upstream.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    /// Most-significant bit of a `u32`, as upstream.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() as i32) < 0
    }
}

/// Ranges usable with [`Rng::gen_range`]. Generic over the output type so
/// the target type can be inferred from the call site (matching upstream:
/// `let n: u32 = rng.gen_range(1..=8)` works with an untyped literal).
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Upstream `UniformInt` sampling: unbiased Lemire widening-multiply with
/// the conservative `leading_zeros` rejection zone for ≥32-bit types and
/// the exact modulus zone for sub-32-bit types. `$draw` picks the same
/// word width upstream uses for its `$u_large`, which is what keeps the
/// consumed stream identical.
macro_rules! int_range {
    ($($t:ty => $unsigned:ty, $u_large:ty, $wide:ty, $draw:ident);* $(;)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                (self.start..=self.end - 1).sample_from(rng)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (low, high) = (*self.start(), *self.end());
                assert!(low <= high, "cannot sample empty range");
                let range = (high as $unsigned)
                    .wrapping_sub(low as $unsigned)
                    .wrapping_add(1) as $u_large;
                if range == 0 {
                    // The range spans the full type domain.
                    return rng.$draw() as $t;
                }
                let zone = if (<$unsigned>::MAX as u128) <= u16::MAX as u128 {
                    let ints_to_reject = (<$u_large>::MAX - range + 1) % range;
                    <$u_large>::MAX - ints_to_reject
                } else {
                    (range << range.leading_zeros()).wrapping_sub(1)
                };
                loop {
                    let v = rng.$draw() as $u_large;
                    let wide = (v as $wide) * (range as $wide);
                    let hi = (wide >> <$u_large>::BITS) as $u_large;
                    let lo = wide as $u_large;
                    if lo <= zone {
                        return low.wrapping_add(hi as $t);
                    }
                }
            }
        }
    )*};
}

int_range! {
    u8 => u8, u32, u64, next_u32;
    u16 => u16, u32, u64, next_u32;
    u32 => u32, u32, u64, next_u32;
    u64 => u64, u64, u128, next_u64;
    usize => usize, u64, u128, next_u64;
    i8 => u8, u32, u64, next_u32;
    i16 => u16, u32, u64, next_u32;
    i32 => u32, u32, u64, next_u32;
    i64 => u64, u64, u128, next_u64;
    isize => usize, u64, u128, next_u64;
}

/// Upstream `UniformFloat` building block: a value in `[1, 2)` with 52
/// random mantissa bits, shifted to `[0, 1)`.
fn value0_1_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    let value1_2 = f64::from_bits((1023u64 << 52) | (rng.next_u64() >> 12));
    value1_2 - 1.0
}

impl SampleRange<f64> for core::ops::Range<f64> {
    /// Upstream `sample_single`: redraw on the (rare) rounding hit of the
    /// open upper bound.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (low, high) = (self.start, self.end);
        assert!(low < high, "cannot sample empty range");
        let scale = high - low;
        loop {
            let res = value0_1_f64(rng) * scale + low;
            if res < high {
                return res;
            }
        }
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    /// Upstream `new_inclusive` + `sample`: scale chosen so the maximum
    /// mantissa value maps at or below `high`, stepped down by ulps if
    /// rounding overshoots.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (low, high) = (*self.start(), *self.end());
        assert!(low <= high, "cannot sample empty range");
        let max_rand = f64::from_bits((1023u64 << 52) | (u64::MAX >> 12)) - 1.0;
        let mut scale = (high - low) / max_rand;
        while scale * max_rand + low > high {
            // One ulp toward zero.
            scale = f64::from_bits(scale.to_bits() - 1);
        }
        value0_1_f64(rng) * scale + low
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let (low, high) = (self.start, self.end);
        assert!(low < high, "cannot sample empty range");
        let scale = high - low;
        loop {
            let value1_2 = f32::from_bits((127u32 << 23) | (rng.next_u32() >> 9));
            let res = (value1_2 - 1.0) * scale + low;
            if res < high {
                return res;
            }
        }
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws uniformly from a range.
    fn gen_range<T, Range: SampleRange<T>>(&mut self, range: Range) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` (upstream's fixed-point compare
    /// against one `u64` draw).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        if p >= 1.0 {
            return true;
        }
        let p_int = (p * (2.0 * (1u64 << 63) as f64)) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = Counter(42);
        for _ in 0..2000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let x: u32 = rng.gen_range(1..=8);
            assert!((1..=8).contains(&x));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let g = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(g > 0.0 && g < 1.0);
            let h = rng.gen_range(-2.0f64..=3.0);
            assert!((-2.0..=3.0).contains(&h));
        }
    }

    #[test]
    fn all_values_of_a_small_range_are_reachable() {
        let mut rng = Counter(7);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(1..=8);
            seen[(v - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn unit_samples_are_in_the_half_open_interval() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn degenerate_inclusive_float_range_returns_the_point() {
        let mut rng = Counter(9);
        assert_eq!(rng.gen_range(2.5f64..=2.5), 2.5);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = Counter(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn seed_from_u64_expansion_matches_rand_core() {
        struct Capture([u8; 32]);
        impl SeedableRng for Capture {
            type Seed = [u8; 32];
            fn from_seed(seed: [u8; 32]) -> Self {
                Capture(seed)
            }
        }
        let a = Capture::seed_from_u64(0).0;
        assert_eq!(a, Capture::seed_from_u64(0).0);
        assert_ne!(a, Capture::seed_from_u64(1).0);
        // First word sanity: one PCG step of the documented constants.
        let state = 0u64
            .wrapping_mul(6364136223846793005)
            .wrapping_add(11634580027462260723);
        let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
        let expected = xorshifted.rotate_right((state >> 59) as u32).to_le_bytes();
        assert_eq!(&a[..4], &expected);
    }
}
