//! 1-D placement strategies for the CPlant node line.
//!
//! CPlant's interconnect made communication cost grow with the spatial
//! spread of an allocation, so the CPA picked node sets that were compact
//! along a one-dimensional ordering of the machine (Leung et al.). Three
//! strategies are implemented:
//!
//! * [`PlacementStrategy::FirstFit`] — first contiguous free run large
//!   enough; scatters greedily (lowest-numbered free nodes) when no single
//!   run fits.
//! * [`PlacementStrategy::BestFit`] — smallest sufficient contiguous run
//!   (minimizes leftover splinters); same scatter fallback.
//! * [`PlacementStrategy::MinSpan`] — the CPlant approach: choose the set of
//!   `k` free nodes minimizing the *span* (distance between the first and
//!   last allocated node), contiguous or not, via a sliding window over the
//!   free-node list.
//!
//! All strategies satisfy the [`Allocator`] contract: a request succeeds iff
//! enough nodes are free *anywhere* — fragmentation degrades placement
//! quality (span), never placement success.

use crate::alloc::{AllocError, AllocId, Allocation, Allocator};
use std::collections::HashMap;

/// How [`LinearAllocator`] picks nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlacementStrategy {
    /// First contiguous run that fits; greedy scatter fallback.
    FirstFit,
    /// Smallest contiguous run that fits; greedy scatter fallback.
    BestFit,
    /// Minimum-span window over free nodes (CPlant's strategy).
    MinSpan,
}

/// A 1-D machine with per-node occupancy and a placement strategy.
///
/// ```
/// use fairsched_cpa::{Allocator, LinearAllocator, PlacementStrategy};
///
/// let mut cpa = LinearAllocator::new(16, PlacementStrategy::MinSpan);
/// let a = cpa.allocate(4).unwrap();
/// assert_eq!(a.nodes, vec![0, 1, 2, 3]); // contiguous on an empty machine
/// cpa.release(a.id).unwrap();
/// assert_eq!(cpa.free(), 16);
/// ```
#[derive(Debug, Clone)]
pub struct LinearAllocator {
    strategy: PlacementStrategy,
    /// `true` = free. Indexed by node number. Down nodes are *not* free.
    free: Vec<bool>,
    free_count: u32,
    /// `true` = failed and awaiting repair; neither free nor allocated.
    /// Down nodes leave holes in the line, so fragmentation under failure
    /// is visible to every placement strategy.
    down: Vec<bool>,
    live: HashMap<AllocId, Vec<u32>>,
    next_id: AllocId,
}

impl LinearAllocator {
    /// An empty machine of `size` nodes using the given strategy.
    pub fn new(size: u32, strategy: PlacementStrategy) -> Self {
        LinearAllocator {
            strategy,
            free: vec![true; size as usize],
            free_count: size,
            down: vec![false; size as usize],
            live: HashMap::new(),
            next_id: 0,
        }
    }

    /// The strategy in use.
    pub fn strategy(&self) -> PlacementStrategy {
        self.strategy
    }

    /// Takes an idle node out of service. The node must currently be free;
    /// fault injection evicts any resident job before calling this.
    pub fn mark_down(&mut self, node: u32) -> Result<(), AllocError> {
        let i = node as usize;
        if i >= self.free.len() || !self.free[i] {
            return Err(AllocError::NodeNotFree(node));
        }
        self.free[i] = false;
        self.down[i] = true;
        self.free_count -= 1;
        Ok(())
    }

    /// Returns a repaired node to service.
    pub fn mark_up(&mut self, node: u32) -> Result<(), AllocError> {
        let i = node as usize;
        if i >= self.down.len() || !self.down[i] {
            return Err(AllocError::NodeNotDown(node));
        }
        self.down[i] = false;
        self.free[i] = true;
        self.free_count += 1;
        Ok(())
    }

    /// Whether `node` is currently down.
    pub fn is_down(&self, node: u32) -> bool {
        self.down.get(node as usize).copied().unwrap_or(false)
    }

    /// Number of nodes currently down.
    pub fn down_count(&self) -> u32 {
        self.down.iter().filter(|&&d| d).count() as u32
    }

    /// The node set held by a live allocation, ascending.
    pub fn nodes_of(&self, id: AllocId) -> Option<&[u32]> {
        self.live.get(&id).map(|v| v.as_slice())
    }

    /// The `r`-th free node in ascending order (0-based), if any — how
    /// fault injection maps a uniform victim draw onto a concrete idle
    /// node.
    pub fn nth_free(&self, r: u32) -> Option<u32> {
        self.free
            .iter()
            .enumerate()
            .filter(|&(_, &f)| f)
            .nth(r as usize)
            .map(|(i, _)| i as u32)
    }

    /// Free contiguous runs as `(start, len)`, ascending.
    pub fn free_runs(&self) -> Vec<(u32, u32)> {
        let mut runs = Vec::new();
        let mut i = 0usize;
        while i < self.free.len() {
            if self.free[i] {
                let start = i;
                while i < self.free.len() && self.free[i] {
                    i += 1;
                }
                runs.push((start as u32, (i - start) as u32));
            } else {
                i += 1;
            }
        }
        runs
    }

    /// Indices of all free nodes, ascending.
    fn free_indices(&self) -> Vec<u32> {
        self.free
            .iter()
            .enumerate()
            .filter_map(|(i, &f)| f.then_some(i as u32))
            .collect()
    }

    fn pick_nodes(&self, count: u32) -> Vec<u32> {
        debug_assert!(count <= self.free_count && count > 0);
        let k = count as usize;
        match self.strategy {
            PlacementStrategy::FirstFit => {
                for (start, len) in self.free_runs() {
                    if len >= count {
                        return (start..start + count).collect();
                    }
                }
                // Scatter: lowest-numbered free nodes.
                let mut idx = self.free_indices();
                idx.truncate(k);
                idx
            }
            PlacementStrategy::BestFit => {
                let best = self
                    .free_runs()
                    .into_iter()
                    .filter(|&(_, len)| len >= count)
                    .min_by_key(|&(_, len)| len);
                if let Some((start, _)) = best {
                    return (start..start + count).collect();
                }
                let mut idx = self.free_indices();
                idx.truncate(k);
                idx
            }
            PlacementStrategy::MinSpan => {
                // Sliding window of k consecutive *free* nodes minimizing the
                // physical distance between the window's ends.
                let idx = self.free_indices();
                let mut best_at = 0usize;
                let mut best_span = u32::MAX;
                for w in 0..=(idx.len() - k) {
                    let span = idx[w + k - 1] - idx[w];
                    if span < best_span {
                        best_span = span;
                        best_at = w;
                        if span == count - 1 {
                            break; // contiguous: cannot do better
                        }
                    }
                }
                idx[best_at..best_at + k].to_vec()
            }
        }
    }
}

impl Allocator for LinearAllocator {
    fn size(&self) -> u32 {
        self.free.len() as u32
    }

    fn free(&self) -> u32 {
        self.free_count
    }

    fn allocate(&mut self, count: u32) -> Result<Allocation, AllocError> {
        if count == 0 {
            return Err(AllocError::ZeroNodes);
        }
        if count > self.free_count {
            return Err(AllocError::InsufficientCapacity {
                requested: count,
                free: self.free_count,
            });
        }
        let nodes = self.pick_nodes(count);
        debug_assert_eq!(nodes.len(), count as usize);
        for &n in &nodes {
            debug_assert!(self.free[n as usize]);
            self.free[n as usize] = false;
        }
        self.free_count -= count;
        let id = self.next_id;
        self.next_id += 1;
        self.live.insert(id, nodes.clone());
        Ok(Allocation { id, count, nodes })
    }

    fn release(&mut self, id: AllocId) -> Result<(), AllocError> {
        let nodes = self
            .live
            .remove(&id)
            .ok_or(AllocError::UnknownAllocation(id))?;
        for n in nodes {
            debug_assert!(!self.free[n as usize]);
            self.free[n as usize] = true;
            self.free_count += 1;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frag::span;

    fn strategies() -> [PlacementStrategy; 3] {
        [
            PlacementStrategy::FirstFit,
            PlacementStrategy::BestFit,
            PlacementStrategy::MinSpan,
        ]
    }

    #[test]
    fn empty_machine_gives_contiguous_prefix_under_all_strategies() {
        for s in strategies() {
            let mut a = LinearAllocator::new(16, s);
            let alloc = a.allocate(4).unwrap();
            assert_eq!(alloc.nodes, vec![0, 1, 2, 3], "{s:?}");
        }
    }

    #[test]
    fn allocation_succeeds_iff_count_fits() {
        for s in strategies() {
            let mut a = LinearAllocator::new(8, s);
            let _x = a.allocate(5).unwrap();
            // 3 free but scattered or not — 3 must fit, 4 must not.
            assert!(a.allocate(4).is_err(), "{s:?}");
            assert!(a.allocate(3).is_ok(), "{s:?}");
            assert_eq!(a.free(), 0);
        }
    }

    #[test]
    fn release_makes_nodes_reusable() {
        for s in strategies() {
            let mut a = LinearAllocator::new(8, s);
            let x = a.allocate(8).unwrap();
            a.release(x.id).unwrap();
            assert_eq!(a.free(), 8);
            let y = a.allocate(8).unwrap();
            assert_eq!(y.nodes.len(), 8);
        }
    }

    /// Build the classic fragmentation picture: holes of size 2 and 4 with a
    /// big free tail.
    ///
    /// Layout after setup (F = free, X = used), size 16:
    /// `X X F F X X F F F F X X F F F F` — wait, we construct precisely below.
    fn fragmented() -> (LinearAllocator, Vec<AllocId>) {
        let mut a = LinearAllocator::new(16, PlacementStrategy::FirstFit);
        // Allocate the whole machine in pieces, then free some to leave
        // holes: [0,2) used, [2,4) free, [4,8) used, [8,12) free, [12,16) used.
        let p0 = a.allocate(2).unwrap(); // 0-1
        let p1 = a.allocate(2).unwrap(); // 2-3
        let p2 = a.allocate(4).unwrap(); // 4-7
        let p3 = a.allocate(4).unwrap(); // 8-11
        let p4 = a.allocate(4).unwrap(); // 12-15
        a.release(p1.id).unwrap();
        a.release(p3.id).unwrap();
        (a, vec![p0.id, p2.id, p4.id])
    }

    #[test]
    fn first_fit_takes_the_first_hole_that_fits() {
        let (mut a, _) = fragmented();
        // Holes: [2,4) len 2 and [8,12) len 4. A 3-node job skips the first.
        let alloc = a.allocate(3).unwrap();
        assert_eq!(alloc.nodes, vec![8, 9, 10]);
        // A 2-node job takes the first hole.
        let alloc2 = a.allocate(2).unwrap();
        assert_eq!(alloc2.nodes, vec![2, 3]);
    }

    #[test]
    fn best_fit_takes_the_tightest_hole() {
        let (a, _) = fragmented();
        let mut b = LinearAllocator::new(16, PlacementStrategy::BestFit);
        // Recreate the same occupancy in the BestFit allocator.
        let mut ids = Vec::new();
        for run in [2u32, 2, 4, 4, 4] {
            ids.push(b.allocate(run).unwrap());
        }
        b.release(ids[1].id).unwrap();
        b.release(ids[3].id).unwrap();
        drop(a);
        // A 2-node job goes to the len-2 hole even though the len-4 hole is
        // also available earlier-by-number? ([2,4) is the len-2 hole and it
        // comes first anyway — so make the tight hole come second.)
        let x = b.allocate(2).unwrap();
        assert_eq!(x.nodes, vec![2, 3]);
        // Now only the len-4 hole remains; a 4-node fits exactly.
        let y = b.allocate(4).unwrap();
        assert_eq!(y.nodes, vec![8, 9, 10, 11]);
    }

    #[test]
    fn best_fit_prefers_tighter_later_hole() {
        let mut b = LinearAllocator::new(16, PlacementStrategy::BestFit);
        // [0,6) free? Construct: use 6, free them → hole len 6 at 0;
        // use rest, free last 2 → hole len 2 at 14.
        let h1 = b.allocate(6).unwrap();
        let _mid = b.allocate(8).unwrap();
        let h2 = b.allocate(2).unwrap();
        b.release(h1.id).unwrap();
        b.release(h2.id).unwrap();
        // 2-node job must take the len-2 hole at 14 (tighter), not offset 0.
        let x = b.allocate(2).unwrap();
        assert_eq!(x.nodes, vec![14, 15]);
    }

    #[test]
    fn min_span_beats_greedy_scatter() {
        // Free pattern: nodes {0, 7, 8, 9} free. Greedy lowest-numbered for
        // k=3 would take {0,7,8} (span 8); MinSpan takes {7,8,9} (span 2).
        let mut a = LinearAllocator::new(10, PlacementStrategy::MinSpan);
        let all = a.allocate(10).unwrap();
        a.release(all.id).unwrap();
        // Occupy everything except 0,7,8,9: allocate 10, release, then
        // allocate [0..10) one at a time and free the targets.
        let singles: Vec<_> = (0..10).map(|_| a.allocate(1).unwrap()).collect();
        for i in [0usize, 7, 8, 9] {
            a.release(singles[i].id).unwrap();
        }
        let x = a.allocate(3).unwrap();
        assert_eq!(x.nodes, vec![7, 8, 9]);
        assert_eq!(span(&x.nodes), 2);
    }

    #[test]
    fn min_span_short_circuits_on_contiguous_window() {
        let mut a = LinearAllocator::new(64, PlacementStrategy::MinSpan);
        let x = a.allocate(16).unwrap();
        assert_eq!(span(&x.nodes), 15);
    }

    #[test]
    fn free_runs_reports_holes_in_order() {
        let (a, _) = fragmented();
        assert_eq!(a.free_runs(), vec![(2, 2), (8, 4)]);
    }

    #[test]
    fn down_nodes_leave_holes_and_come_back() {
        let mut a = LinearAllocator::new(8, PlacementStrategy::FirstFit);
        a.mark_down(2).unwrap();
        assert!(a.is_down(2));
        assert_eq!(a.free(), 7);
        assert_eq!(a.down_count(), 1);
        // A 3-node job must skip the hole at 2.
        let x = a.allocate(3).unwrap();
        assert_eq!(x.nodes, vec![3, 4, 5]);
        // Contiguity broken: the remaining free nodes are {0, 1, 6, 7}.
        assert_eq!(a.free_runs(), vec![(0, 2), (6, 2)]);
        a.mark_up(2).unwrap();
        assert!(!a.is_down(2));
        assert_eq!(a.free(), 5);
        assert_eq!(a.nth_free(2), Some(2));
    }

    #[test]
    fn node_state_transitions_are_checked() {
        let mut a = LinearAllocator::new(4, PlacementStrategy::FirstFit);
        let x = a.allocate(1).unwrap(); // occupies node 0
        assert_eq!(a.mark_down(0), Err(AllocError::NodeNotFree(0)));
        assert_eq!(a.mark_down(9), Err(AllocError::NodeNotFree(9)));
        assert_eq!(a.mark_up(1), Err(AllocError::NodeNotDown(1)));
        a.mark_down(1).unwrap();
        assert_eq!(a.mark_down(1), Err(AllocError::NodeNotFree(1)));
        a.release(x.id).unwrap();
        // Released node is free again; down node still is not.
        assert_eq!(a.free(), 3);
        assert_eq!(a.nth_free(0), Some(0));
        assert_eq!(a.nth_free(1), Some(2));
    }

    #[test]
    fn scatter_fallback_still_grants_fitting_requests() {
        let (mut a, _) = fragmented();
        // 6 free total (2 + 4), no single hole of 6: must scatter.
        let x = a.allocate(6).unwrap();
        assert_eq!(x.nodes.len(), 6);
        assert_eq!(a.free(), 0);
    }
}
