//! # fairsched-cpa
//!
//! The Compute Process Allocator (CPA) substrate.
//!
//! The paper's introduction notes that alongside the scheduler, Sandia ran a
//! separate CPA whose job was to keep allocations "not too fragmented in
//! order to maximize throughput"; the CPlant allocation work it references
//! (Leung et al., *Processor allocation on CPlant*) treats the machine as a
//! **1-D line of nodes** and picks node sets that minimize spatial spread.
//!
//! This crate implements that substrate:
//!
//! * [`alloc`] — the [`alloc::Allocator`] trait and the
//!   [`alloc::CountingAllocator`], the pure-capacity
//!   allocator the paper's simulator (and ours, by default) uses;
//! * [`linear`] — 1-D placement strategies: contiguous first-fit /
//!   best-fit and the span-minimizing scatter strategy CPlant actually used;
//! * [`frag`] — fragmentation metrics (free-fragment count, largest free
//!   block, external fragmentation, allocation span and pairwise distance).
//!
//! The scheduler crates only need "do `k` nodes fit?", so the counting
//! allocator is the default; the linear allocators exist to study how much
//! fragmentation pressure the scheduling policies induce (the CPA ablation
//! bench).

pub mod alloc;
pub mod frag;
pub mod linear;

pub use alloc::{AllocError, Allocation, Allocator, CountingAllocator};
pub use linear::{LinearAllocator, PlacementStrategy};
