//! Fragmentation and placement-quality metrics.
//!
//! The CPA exists to keep allocations compact; these metrics quantify how
//! well it is doing. Machine-level metrics read the free map; per-allocation
//! metrics score a granted node set.

/// Physical span of an allocation: distance between its lowest and highest
/// node (0 for a single node). Sorted or unsorted input accepted.
pub fn span(nodes: &[u32]) -> u32 {
    match (nodes.iter().min(), nodes.iter().max()) {
        (Some(&lo), Some(&hi)) => hi - lo,
        _ => 0,
    }
}

/// Sum of pairwise distances between allocated nodes — the objective the
/// CPlant allocation papers optimize (proxy for total communication cost).
pub fn pairwise_distance_sum(nodes: &[u32]) -> u64 {
    // For sorted values x_1..x_n, Σ_{i<j} (x_j - x_i) =
    // Σ_i x_i * (2i - n + 1), computable in one pass after sorting.
    let mut sorted: Vec<u32> = nodes.to_vec();
    sorted.sort_unstable();
    let n = sorted.len() as i64;
    sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| x as i64 * (2 * i as i64 - n + 1))
        .sum::<i64>()
        .max(0) as u64
}

/// Number of maximal contiguous free runs.
pub fn fragment_count(runs: &[(u32, u32)]) -> usize {
    runs.len()
}

/// Size of the largest contiguous free run (0 when the machine is full).
pub fn largest_free_block(runs: &[(u32, u32)]) -> u32 {
    runs.iter().map(|&(_, len)| len).max().unwrap_or(0)
}

/// External fragmentation in `[0, 1]`: `1 − largest_free_block / total_free`.
/// 0 when all free space is one block (or nothing is free); approaches 1 as
/// free space shatters.
pub fn external_fragmentation(runs: &[(u32, u32)]) -> f64 {
    let total: u32 = runs.iter().map(|&(_, len)| len).sum();
    if total == 0 {
        return 0.0;
    }
    1.0 - largest_free_block(runs) as f64 / total as f64
}

/// A compactness score for an allocation in `[0, 1]`: 1 for perfectly
/// contiguous, falling toward 0 as the span grows relative to the minimum
/// possible (`count − 1`).
pub fn compactness(nodes: &[u32]) -> f64 {
    if nodes.len() <= 1 {
        return 1.0;
    }
    let min_span = (nodes.len() - 1) as f64;
    min_span / span(nodes).max(nodes.len() as u32 - 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_of_contiguous_and_scattered() {
        assert_eq!(span(&[3, 4, 5]), 2);
        assert_eq!(span(&[10, 0, 5]), 10);
        assert_eq!(span(&[7]), 0);
        assert_eq!(span(&[]), 0);
    }

    #[test]
    fn pairwise_distance_matches_brute_force() {
        let cases: [&[u32]; 5] = [&[0, 1, 2], &[0, 10], &[5], &[], &[3, 9, 1, 14, 7]];
        for nodes in cases {
            let brute: u64 = nodes
                .iter()
                .flat_map(|&a| {
                    nodes
                        .iter()
                        .map(move |&b| (a as i64 - b as i64).unsigned_abs())
                })
                .sum::<u64>()
                / 2;
            assert_eq!(pairwise_distance_sum(nodes), brute, "{nodes:?}");
        }
    }

    #[test]
    fn external_fragmentation_extremes() {
        // One big block: no external fragmentation.
        assert_eq!(external_fragmentation(&[(0, 16)]), 0.0);
        // Fully occupied machine: defined as 0.
        assert_eq!(external_fragmentation(&[]), 0.0);
        // Four singletons out of 4 free: 1 - 1/4.
        let runs = [(0, 1), (2, 1), (4, 1), (6, 1)];
        assert!((external_fragmentation(&runs) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn largest_block_and_count() {
        let runs = [(0u32, 3u32), (8, 5), (20, 1)];
        assert_eq!(fragment_count(&runs), 3);
        assert_eq!(largest_free_block(&runs), 5);
        assert_eq!(largest_free_block(&[]), 0);
    }

    #[test]
    fn compactness_is_one_for_contiguous() {
        assert_eq!(compactness(&[4, 5, 6, 7]), 1.0);
        assert_eq!(compactness(&[9]), 1.0);
        assert_eq!(compactness(&[]), 1.0);
        // {0, 9} for k=2: min span 1, actual 9.
        assert!((compactness(&[0, 9]) - 1.0 / 9.0).abs() < 1e-12);
    }
}
