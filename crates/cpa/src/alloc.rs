//! The allocator abstraction and the counting (capacity-only) allocator.
//!
//! Schedulers ask two questions: *can a `k`-node job be placed right now?*
//! and *place it / release it*. The [`Allocator`] trait answers both; which
//! concrete nodes are chosen is the CPA's business, not the scheduler's.

use std::collections::HashMap;
use std::fmt;

/// An opaque token identifying a placed job inside an allocator.
pub type AllocId = u64;

/// The node set handed to a job. For the counting allocator the vector is
/// empty (only the count is tracked); linear allocators list concrete node
/// indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allocation {
    /// Allocator-internal identity, needed to release.
    pub id: AllocId,
    /// Number of nodes granted (always the number requested).
    pub count: u32,
    /// Concrete node indices, sorted ascending; empty when the allocator
    /// does not track placement.
    pub nodes: Vec<u32>,
}

/// Why an allocation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// Fewer than `requested` nodes are free anywhere in the machine.
    InsufficientCapacity {
        /// Nodes asked for.
        requested: u32,
        /// Nodes currently free.
        free: u32,
    },
    /// A zero-node request (always a caller bug).
    ZeroNodes,
    /// The token was not live (double release or forged id).
    UnknownAllocation(AllocId),
    /// A node asked to go down was not free (fault injection may only take
    /// idle nodes down; the scheduler evicts the job first).
    NodeNotFree(u32),
    /// A node asked to come back up was not down.
    NodeNotDown(u32),
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::InsufficientCapacity { requested, free } => {
                write!(f, "requested {requested} nodes, only {free} free")
            }
            AllocError::ZeroNodes => write!(f, "zero-node allocation request"),
            AllocError::UnknownAllocation(id) => write!(f, "unknown allocation {id}"),
            AllocError::NodeNotFree(n) => write!(f, "node {n} is not free"),
            AllocError::NodeNotDown(n) => write!(f, "node {n} is not down"),
        }
    }
}

impl std::error::Error for AllocError {}

/// A node allocator for a fixed-size machine.
///
/// Invariants every implementation upholds (checked by the shared
/// property-test suite in this crate):
/// * `free() + in_use() == size()` at all times;
/// * `allocate(k)` succeeds **iff** `k <= free()` — CPlant's CPA never
///   refuses a job that fits by count (it scatters when it must), so
///   fragmentation shows up in placement quality, not placement failure;
/// * released nodes become reusable immediately.
pub trait Allocator {
    /// Total machine size in nodes.
    fn size(&self) -> u32;

    /// Nodes currently free.
    fn free(&self) -> u32;

    /// Nodes currently allocated.
    fn in_use(&self) -> u32 {
        self.size() - self.free()
    }

    /// Places a `count`-node job, returning the granted allocation.
    fn allocate(&mut self, count: u32) -> Result<Allocation, AllocError>;

    /// Releases a previously granted allocation.
    fn release(&mut self, id: AllocId) -> Result<(), AllocError>;
}

/// The capacity-only allocator: tracks *how many* nodes each job holds and
/// nothing about *which*. This is what the paper's event-driven simulator
/// models (it reports loss of capacity, not fragmentation).
#[derive(Debug, Clone, Default)]
pub struct CountingAllocator {
    size: u32,
    free: u32,
    live: HashMap<AllocId, u32>,
    next_id: AllocId,
}

impl CountingAllocator {
    /// An empty machine of `size` nodes.
    pub fn new(size: u32) -> Self {
        CountingAllocator {
            size,
            free: size,
            live: HashMap::new(),
            next_id: 0,
        }
    }
}

impl Allocator for CountingAllocator {
    fn size(&self) -> u32 {
        self.size
    }

    fn free(&self) -> u32 {
        self.free
    }

    fn allocate(&mut self, count: u32) -> Result<Allocation, AllocError> {
        if count == 0 {
            return Err(AllocError::ZeroNodes);
        }
        if count > self.free {
            return Err(AllocError::InsufficientCapacity {
                requested: count,
                free: self.free,
            });
        }
        self.free -= count;
        let id = self.next_id;
        self.next_id += 1;
        self.live.insert(id, count);
        Ok(Allocation {
            id,
            count,
            nodes: Vec::new(),
        })
    }

    fn release(&mut self, id: AllocId) -> Result<(), AllocError> {
        let count = self
            .live
            .remove(&id)
            .ok_or(AllocError::UnknownAllocation(id))?;
        self.free += count;
        debug_assert!(self.free <= self.size);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_allocator_tracks_capacity() {
        let mut a = CountingAllocator::new(100);
        assert_eq!(a.size(), 100);
        assert_eq!(a.free(), 100);
        assert_eq!(a.in_use(), 0);

        let x = a.allocate(60).unwrap();
        assert_eq!(x.count, 60);
        assert!(x.nodes.is_empty());
        assert_eq!(a.free(), 40);

        let y = a.allocate(40).unwrap();
        assert_eq!(a.free(), 0);

        a.release(x.id).unwrap();
        assert_eq!(a.free(), 60);
        a.release(y.id).unwrap();
        assert_eq!(a.free(), 100);
    }

    #[test]
    fn allocate_fails_exactly_when_over_capacity() {
        let mut a = CountingAllocator::new(10);
        assert_eq!(
            a.allocate(11),
            Err(AllocError::InsufficientCapacity {
                requested: 11,
                free: 10
            })
        );
        let x = a.allocate(10).unwrap();
        assert_eq!(
            a.allocate(1),
            Err(AllocError::InsufficientCapacity {
                requested: 1,
                free: 0
            })
        );
        a.release(x.id).unwrap();
        assert!(a.allocate(10).is_ok());
    }

    #[test]
    fn zero_node_requests_are_rejected() {
        let mut a = CountingAllocator::new(10);
        assert_eq!(a.allocate(0), Err(AllocError::ZeroNodes));
    }

    #[test]
    fn double_release_is_an_error() {
        let mut a = CountingAllocator::new(10);
        let x = a.allocate(5).unwrap();
        a.release(x.id).unwrap();
        assert_eq!(a.release(x.id), Err(AllocError::UnknownAllocation(x.id)));
        assert_eq!(a.free(), 10);
    }

    #[test]
    fn allocation_ids_are_unique() {
        let mut a = CountingAllocator::new(10);
        let x = a.allocate(1).unwrap();
        let y = a.allocate(1).unwrap();
        assert_ne!(x.id, y.id);
    }
}
