//! Property-based contract tests every [`Allocator`] implementation must
//! satisfy, run against the counting allocator and all three linear
//! strategies with randomized allocate/release workloads.

use fairsched_cpa::alloc::AllocId;
use fairsched_cpa::{Allocator, CountingAllocator, LinearAllocator, PlacementStrategy};
use proptest::prelude::*;
use std::collections::HashSet;

const SIZE: u32 = 64;

#[derive(Debug, Clone)]
enum Op {
    /// Allocate `count` nodes.
    Alloc(u32),
    /// Release the `i`-th oldest live allocation (no-op when none).
    Release(usize),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (1u32..=SIZE).prop_map(Op::Alloc),
            (0usize..8).prop_map(Op::Release),
        ],
        1..200,
    )
}

/// Drives an allocator through an op sequence, checking the contract at
/// every step. Returns the number of successful allocations.
fn drive(alloc: &mut dyn Allocator, ops: &[Op]) -> Result<usize, TestCaseError> {
    let mut live: Vec<(AllocId, u32, Vec<u32>)> = Vec::new();
    let mut successes = 0usize;
    for op in ops {
        match *op {
            Op::Alloc(count) => {
                let free_before = alloc.free();
                match alloc.allocate(count) {
                    Ok(a) => {
                        successes += 1;
                        // Success iff it fit by count.
                        prop_assert!(count <= free_before);
                        prop_assert_eq!(a.count, count);
                        prop_assert_eq!(alloc.free(), free_before - count);
                        if !a.nodes.is_empty() {
                            // Linear allocators return exactly `count`
                            // distinct, in-range, previously-free nodes.
                            prop_assert_eq!(a.nodes.len(), count as usize);
                            let set: HashSet<u32> = a.nodes.iter().copied().collect();
                            prop_assert_eq!(set.len(), a.nodes.len());
                            prop_assert!(a.nodes.iter().all(|&n| n < SIZE));
                            for (_, _, held) in &live {
                                for n in &a.nodes {
                                    prop_assert!(!held.contains(n), "node {n} double-booked");
                                }
                            }
                        }
                        live.push((a.id, count, a.nodes));
                    }
                    Err(_) => {
                        // Failure iff it did NOT fit by count.
                        prop_assert!(count > free_before);
                        prop_assert_eq!(alloc.free(), free_before);
                    }
                }
            }
            Op::Release(i) => {
                if !live.is_empty() {
                    let (id, count, _) = live.remove(i % live.len());
                    let free_before = alloc.free();
                    alloc.release(id).expect("live allocation releases");
                    prop_assert_eq!(alloc.free(), free_before + count);
                }
            }
        }
        // Conservation at every step.
        let held: u32 = live.iter().map(|(_, c, _)| c).sum();
        prop_assert_eq!(alloc.free() + held, SIZE);
    }
    Ok(successes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn counting_allocator_honours_the_contract(ops in arb_ops()) {
        let mut a = CountingAllocator::new(SIZE);
        drive(&mut a, &ops)?;
    }

    #[test]
    fn first_fit_honours_the_contract(ops in arb_ops()) {
        let mut a = LinearAllocator::new(SIZE, PlacementStrategy::FirstFit);
        drive(&mut a, &ops)?;
    }

    #[test]
    fn best_fit_honours_the_contract(ops in arb_ops()) {
        let mut a = LinearAllocator::new(SIZE, PlacementStrategy::BestFit);
        drive(&mut a, &ops)?;
    }

    #[test]
    fn min_span_honours_the_contract(ops in arb_ops()) {
        let mut a = LinearAllocator::new(SIZE, PlacementStrategy::MinSpan);
        drive(&mut a, &ops)?;
    }

    #[test]
    fn all_strategies_admit_exactly_the_same_requests(ops in arb_ops()) {
        // Placement differs; admission must not (the CPA contract: success
        // depends only on counts). Drive all four through the same ops and
        // compare success tallies step by step via the returned count.
        let mut counting = CountingAllocator::new(SIZE);
        let n0 = drive(&mut counting, &ops)?;
        for strategy in [
            PlacementStrategy::FirstFit,
            PlacementStrategy::BestFit,
            PlacementStrategy::MinSpan,
        ] {
            let mut a = LinearAllocator::new(SIZE, strategy);
            let n = drive(&mut a, &ops)?;
            prop_assert_eq!(n, n0, "{:?} admitted differently", strategy);
        }
    }

    #[test]
    fn min_span_is_never_wider_than_greedy_scatter(count in 1u32..=SIZE, holes in prop::collection::vec(0u32..SIZE, 0..32)) {
        // Free exactly the nodes in `holes` (dedup) on an otherwise-full
        // machine, then allocate `count` if possible; MinSpan's span must be
        // minimal over any window — in particular ≤ the greedy lowest-k
        // choice FirstFit falls back to.
        let free: std::collections::BTreeSet<u32> = holes.into_iter().collect();
        if (free.len() as u32) < count {
            return Ok(());
        }
        let occupy = |strategy| {
            let mut a = LinearAllocator::new(SIZE, strategy);
            let singles: Vec<_> = (0..SIZE).map(|_| a.allocate(1).unwrap()).collect();
            for (i, s) in singles.iter().enumerate() {
                if free.contains(&(i as u32)) {
                    a.release(s.id).unwrap();
                }
            }
            a.allocate(count).unwrap().nodes
        };
        let span = |nodes: &[u32]| nodes.iter().max().unwrap() - nodes.iter().min().unwrap();
        let minspan_nodes = occupy(PlacementStrategy::MinSpan);
        let greedy_nodes = occupy(PlacementStrategy::FirstFit);
        prop_assert!(span(&minspan_nodes) <= span(&greedy_nodes));
    }
}
