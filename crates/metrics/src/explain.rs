//! Explaining one job's wait from a decision trace.
//!
//! A [`fairsched_obs::TraceRecord`] stream plus the resulting `Schedule`
//! is enough to answer the question the unfairness figures raise: *why*
//! did this job start late? [`explain_wait`] replays the trace and splits
//! the job's wait `[submit, start)` into three named components that sum
//! exactly to the actual wait:
//!
//! * **capacity wait** — intervals where the machine had fewer free nodes
//!   than the job needs; no scheduler could have started it.
//! * **reservation wait** — intervals where the job would have fit but
//!   held a conservative-backfilling reservation for a later time
//!   (including slippage after the reservation was shifted).
//! * **policy wait** — intervals where the job would have fit and held no
//!   reservation; it waited purely on queue order, user-concurrency
//!   caps, or jobs backfilled past it.
//!
//! The exactness of the split rests on the simulator's sampling contract:
//! a `QueueSample` is emitted after every event batch's scheduling
//! fixpoint, and machine state is constant between batches, so the free
//! node level over `[submit, start)` is a step function the samples
//! describe completely.
//!
//! Alongside the time split, the breakdown lists the discrete decisions
//! that touched the job: which backfilled jobs bypassed it, how its
//! reservation moved, when the starvation queue promoted it, and — for
//! crash retries — which fault put it in the queue in the first place.

use crate::fairness::fst::FstReport;
use fairsched_obs::{StartCause, TraceRecord};
use fairsched_sim::Schedule;
use fairsched_workload::job::JobId;
use fairsched_workload::time::Time;
use std::fmt;

/// One backfilled job jumping past the explained job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BypassEvent {
    /// When the bypassing job started.
    pub at: Time,
    /// The job that jumped ahead.
    pub by: JobId,
}

/// One movement of the explained job's conservative reservation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReservationEvent {
    /// When the reservation was (re)placed.
    pub at: Time,
    /// The previously promised start, if this replaces one.
    pub from: Option<Time>,
    /// The promised start after this event.
    pub to: Time,
}

/// One virtual-schedule inversion against the explained job: a moment a
/// size-based policy (FSP/LAS/HFSP) ranked another job ahead of it even
/// though the explained job arrived first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InversionEvent {
    /// When the inversion was first observed.
    pub at: Time,
    /// The job the virtual schedule put ahead.
    pub by: JobId,
}

/// Why a crash retry exists at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultDelay {
    /// The original trace job heading the chain.
    pub origin: JobId,
    /// The submission whose crash produced this retry.
    pub crashed: JobId,
    /// When the retry entered the queue (the crash instant).
    pub requeued_at: Time,
    /// Executed seconds the crash threw away.
    pub lost: Time,
    /// How long after the original submission this retry was queued.
    pub chain_delay: Time,
}

/// One job's wait, decomposed. Produced by [`explain_wait`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaitBreakdown {
    /// The explained submission.
    pub job: JobId,
    /// Width in nodes.
    pub nodes: u32,
    /// When it entered the queue.
    pub submit: Time,
    /// When it started.
    pub start: Time,
    /// Wait spent with too few free nodes for this width.
    pub capacity_wait: Time,
    /// Wait spent fitting but promised to a reservation.
    pub reservation_wait: Time,
    /// Wait spent fitting with no reservation: pure queue-order/backfill
    /// holding.
    pub policy_wait: Time,
    /// How the job ultimately started, if the trace recorded it.
    pub cause: Option<StartCause>,
    /// Backfilled jobs that jumped past it, in start order.
    pub bypassed_by: Vec<BypassEvent>,
    /// Jobs a size-based virtual schedule ranked ahead of it despite its
    /// earlier arrival, in observation order. Empty under arrival-ordered
    /// policies.
    pub virtual_inversions: Vec<InversionEvent>,
    /// Its reservation timeline, in placement order.
    pub reservations: Vec<ReservationEvent>,
    /// When the starvation queue promoted it, if it did.
    pub promoted_at: Option<Time>,
    /// The fault that created it, when it is a crash retry.
    pub fault: Option<FaultDelay>,
}

impl WaitBreakdown {
    /// The actual wait; always equals
    /// `capacity_wait + reservation_wait + policy_wait`.
    pub fn wait(&self) -> Time {
        self.start - self.submit
    }
}

/// Decomposes `job`'s wait from a decision trace and the schedule it
/// produced. Returns `None` when the schedule has no record of `job`.
/// `records` must come from the same traced run as `schedule`.
pub fn explain_wait(
    records: &[TraceRecord],
    schedule: &Schedule,
    job: JobId,
) -> Option<WaitBreakdown> {
    let rec = schedule.records.iter().find(|r| r.id == job)?;
    let (submit, start) = (rec.submit, rec.start);

    let mut cause = None;
    let mut bypassed_by = Vec::new();
    let mut virtual_inversions = Vec::new();
    let mut reservations: Vec<ReservationEvent> = Vec::new();
    let mut promoted_at = None;
    let mut fault = None;
    // The free-node step function over time, described completely by the
    // per-batch samples.
    let mut samples: Vec<(Time, u32)> = Vec::new();
    for r in records {
        match r {
            TraceRecord::JobStarted {
                at,
                job: started,
                cause: c,
                ..
            } => {
                if *started == job {
                    cause = Some(c.clone());
                } else if let StartCause::Backfilled { bypassed } = c {
                    if bypassed.contains(&job) {
                        bypassed_by.push(BypassEvent {
                            at: *at,
                            by: *started,
                        });
                    }
                }
            }
            TraceRecord::ReservationMade {
                at,
                job: j,
                start: to,
            } if *j == job => reservations.push(ReservationEvent {
                at: *at,
                from: None,
                to: *to,
            }),
            TraceRecord::ReservationShifted {
                at,
                job: j,
                from,
                to,
            } if *j == job => {
                reservations.push(ReservationEvent {
                    at: *at,
                    from: Some(*from),
                    to: *to,
                });
            }
            TraceRecord::VirtualInversion {
                at,
                job: head,
                displaced,
                ..
            } if *displaced == job => {
                virtual_inversions.push(InversionEvent { at: *at, by: *head });
            }
            TraceRecord::StarvationPromoted { at, job: j, .. } if *j == job => {
                promoted_at.get_or_insert(*at);
            }
            TraceRecord::FaultRequeued {
                at,
                origin,
                job: crashed,
                retry,
                lost,
            } if *retry == job => {
                fault = Some(FaultDelay {
                    origin: *origin,
                    crashed: *crashed,
                    requeued_at: *at,
                    lost: *lost,
                    chain_delay: submit.saturating_sub(rec.origin_submit),
                });
            }
            TraceRecord::QueueSample { at, free_nodes, .. } => samples.push((*at, *free_nodes)),
            _ => {}
        }
    }

    // Tile [submit, start) with the sample step function. Every boundary
    // is a sample time (arrivals and starts are events, and each event
    // batch samples once), so the segments sum to the wait exactly.
    let free_at = |t: Time| -> u32 {
        samples
            .iter()
            .take_while(|&&(at, _)| at <= t)
            .last()
            .map(|&(_, free)| free)
            .unwrap_or(0)
    };
    let reserved_at = |t: Time| -> bool {
        reservations
            .iter()
            .any(|r| r.at <= t && r.to < fairsched_sim::FAR_FUTURE)
    };
    let mut boundaries = vec![submit];
    boundaries.extend(
        samples
            .iter()
            .map(|&(at, _)| at)
            .filter(|&at| at > submit && at < start),
    );
    boundaries.push(start);
    let (mut capacity, mut reservation, mut policy) = (0, 0, 0);
    for pair in boundaries.windows(2) {
        let (b, e) = (pair[0], pair[1]);
        if e <= b {
            continue;
        }
        let seg = e - b;
        if free_at(b) < rec.nodes {
            capacity += seg;
        } else if reserved_at(b) {
            reservation += seg;
        } else {
            policy += seg;
        }
    }

    Some(WaitBreakdown {
        job,
        nodes: rec.nodes,
        submit,
        start,
        capacity_wait: capacity,
        reservation_wait: reservation,
        policy_wait: policy,
        cause,
        bypassed_by,
        virtual_inversions,
        reservations,
        promoted_at,
        fault,
    })
}

/// The job with the largest fair-start miss in `report` (smallest id on
/// ties), or `None` for an empty report — the natural candidate to
/// explain.
pub fn worst_miss(report: &FstReport) -> Option<JobId> {
    report
        .entries
        .iter()
        .max_by_key(|e| (e.miss(), std::cmp::Reverse(e.id)))
        .map(|e| e.id)
}

impl fmt::Display for WaitBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} ({} nodes): submitted t={}, started t={} — waited {}s",
            self.job,
            self.nodes,
            self.submit,
            self.start,
            self.wait()
        )?;
        writeln!(
            f,
            "  capacity wait     {:>8}s  (machine too full for {} nodes)",
            self.capacity_wait, self.nodes
        )?;
        writeln!(
            f,
            "  reservation wait  {:>8}s  (fit free, held for its reservation)",
            self.reservation_wait
        )?;
        writeln!(
            f,
            "  policy wait       {:>8}s  (fit free, held by queue order/backfill)",
            self.policy_wait
        )?;
        match &self.cause {
            Some(StartCause::Fcfs) => writeln!(f, "  started: in queue order")?,
            Some(StartCause::Backfilled { bypassed }) => writeln!(
                f,
                "  started: backfilled past {} waiting job(s)",
                bypassed.len()
            )?,
            Some(StartCause::Reservation) => writeln!(f, "  started: at its reservation")?,
            Some(StartCause::StarvationGuard) => {
                writeln!(f, "  started: via the starvation guard")?
            }
            None => writeln!(f, "  started: (no start record in trace)")?,
        }
        if !self.bypassed_by.is_empty() {
            let shown: Vec<String> = self
                .bypassed_by
                .iter()
                .take(8)
                .map(|b| format!("{}@t={}", b.by, b.at))
                .collect();
            let more = self.bypassed_by.len().saturating_sub(8);
            write!(
                f,
                "  bypassed {} time(s): {}",
                self.bypassed_by.len(),
                shown.join(", ")
            )?;
            if more > 0 {
                write!(f, " (+{more} more)")?;
            }
            writeln!(f)?;
        }
        if !self.virtual_inversions.is_empty() {
            let shown: Vec<String> = self
                .virtual_inversions
                .iter()
                .take(8)
                .map(|v| format!("{}@t={}", v.by, v.at))
                .collect();
            let more = self.virtual_inversions.len().saturating_sub(8);
            write!(
                f,
                "  virtual schedule ranked {} later arrival(s) ahead: {}",
                self.virtual_inversions.len(),
                shown.join(", ")
            )?;
            if more > 0 {
                write!(f, " (+{more} more)")?;
            }
            writeln!(f)?;
        }
        for r in &self.reservations {
            match r.from {
                None => writeln!(f, "  reservation made at t={} for t={}", r.at, r.to)?,
                Some(from) => writeln!(
                    f,
                    "  reservation shifted at t={}: t={} -> t={}",
                    r.at, from, r.to
                )?,
            }
        }
        if let Some(at) = self.promoted_at {
            writeln!(f, "  promoted by the starvation queue at t={at}")?;
        }
        if let Some(fd) = &self.fault {
            writeln!(
                f,
                "  crash retry of {} (chain {}): requeued at t={}, {}s of work lost, {}s after the original submission",
                fd.crashed, fd.origin, fd.requeued_at, fd.lost, fd.chain_delay
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairsched_sim::{simulate, EngineKind, NullObserver, SimConfig, SimOptions};
    use fairsched_workload::job::Job;

    fn traced_run(trace: &[Job], cfg: &SimConfig) -> (Vec<TraceRecord>, Schedule) {
        let mut records: Vec<TraceRecord> = Vec::new();
        let schedule = simulate(
            trace,
            cfg,
            &mut NullObserver,
            SimOptions::new().trace(&mut records),
        )
        .unwrap();
        (records, schedule)
    }

    #[test]
    fn components_sum_to_the_actual_wait() {
        // 10 nodes; a long 8-wide job, then an 8-wide job that must wait
        // for capacity, with a narrow backfill slipping past it.
        let trace = vec![
            Job::new(1, 1, 1, 0, 8, 100, 100),
            Job::new(2, 2, 1, 5, 8, 100, 100),
            Job::new(3, 3, 1, 6, 2, 10, 10),
        ];
        let cfg = SimConfig {
            nodes: 10,
            engine: EngineKind::Easy,
            ..Default::default()
        };
        let (records, schedule) = traced_run(&trace, &cfg);
        for job in [JobId(1), JobId(2), JobId(3)] {
            let b = explain_wait(&records, &schedule, job).unwrap();
            assert_eq!(
                b.capacity_wait + b.reservation_wait + b.policy_wait,
                b.wait(),
                "components must sum to the wait for {job}"
            );
        }
        // Job 2 waits for job 1's 8 nodes: pure capacity wait.
        let b2 = explain_wait(&records, &schedule, JobId(2)).unwrap();
        assert_eq!(b2.wait(), 95);
        assert_eq!(b2.capacity_wait, 95);
        // Job 3 backfills past job 2.
        assert_eq!(
            b2.bypassed_by,
            vec![BypassEvent {
                at: 6,
                by: JobId(3)
            }]
        );
        let b3 = explain_wait(&records, &schedule, JobId(3)).unwrap();
        assert!(matches!(b3.cause, Some(StartCause::Backfilled { .. })));
    }

    #[test]
    fn conservative_wait_shows_reservation_holding() {
        let trace = vec![
            Job::new(1, 1, 1, 0, 8, 100, 100),
            Job::new(2, 2, 1, 5, 8, 100, 100),
        ];
        let cfg = SimConfig {
            nodes: 10,
            engine: EngineKind::Conservative { dynamic: false },
            ..Default::default()
        };
        let (records, schedule) = traced_run(&trace, &cfg);
        let b2 = explain_wait(&records, &schedule, JobId(2)).unwrap();
        assert!(!b2.reservations.is_empty(), "conservative reserves job 2");
        assert_eq!(b2.cause, Some(StartCause::Reservation));
        assert_eq!(
            b2.capacity_wait + b2.reservation_wait + b2.policy_wait,
            b2.wait()
        );
    }

    #[test]
    fn unknown_jobs_explain_to_none() {
        let trace = vec![Job::new(1, 1, 1, 0, 1, 10, 10)];
        let cfg = SimConfig {
            nodes: 10,
            ..Default::default()
        };
        let (records, schedule) = traced_run(&trace, &cfg);
        assert!(explain_wait(&records, &schedule, JobId(99)).is_none());
    }

    #[test]
    fn worst_miss_picks_the_largest_offender() {
        use crate::fairness::fst::FstEntry;
        let report = FstReport::new(vec![
            FstEntry {
                id: JobId(1),
                nodes: 1,
                fst: 10,
                start: 15,
            },
            FstEntry {
                id: JobId(2),
                nodes: 1,
                fst: 10,
                start: 40,
            },
            FstEntry {
                id: JobId(3),
                nodes: 1,
                fst: 10,
                start: 5,
            },
        ]);
        assert_eq!(worst_miss(&report), Some(JobId(2)));
        assert_eq!(worst_miss(&FstReport::default()), None);
    }

    #[test]
    fn display_renders_the_decomposition() {
        let b = WaitBreakdown {
            job: JobId(7),
            nodes: 4,
            submit: 100,
            start: 400,
            capacity_wait: 200,
            reservation_wait: 60,
            policy_wait: 40,
            cause: Some(StartCause::Reservation),
            bypassed_by: vec![BypassEvent {
                at: 150,
                by: JobId(9),
            }],
            virtual_inversions: vec![InversionEvent {
                at: 160,
                by: JobId(11),
            }],
            reservations: vec![ReservationEvent {
                at: 100,
                from: None,
                to: 380,
            }],
            promoted_at: None,
            fault: None,
        };
        let text = b.to_string();
        assert!(text.contains("waited 300s"));
        assert!(text.contains("capacity wait"));
        assert!(text.contains("at its reservation"));
        assert!(text.contains("job#9@t=150") || text.contains("9@t=150"));
        assert!(text.contains("ranked 1 later arrival(s) ahead"), "{text}");
        assert!(text.contains("11@t=160"), "{text}");
    }

    #[test]
    fn size_based_runs_explain_their_inversions() {
        // Under FSP a small late arrival is ranked ahead of a big earlier
        // one; the big job's breakdown names the inversion. Job 1 occupies
        // the machine so both stay queued long enough to be compared.
        let trace = vec![
            Job::new(1, 1, 1, 0, 10, 100, 100),
            Job::new(2, 2, 1, 5, 8, 500, 500),
            Job::new(3, 3, 1, 10, 2, 10, 10),
        ];
        let cfg = SimConfig {
            nodes: 10,
            engine: EngineKind::Fsp,
            ..Default::default()
        };
        let (records, schedule) = traced_run(&trace, &cfg);
        let b2 = explain_wait(&records, &schedule, JobId(2)).unwrap();
        assert_eq!(
            b2.virtual_inversions,
            vec![InversionEvent {
                at: 10,
                by: JobId(3)
            }],
            "job 3's smaller virtual size displaces job 2 at its arrival"
        );
        assert_eq!(
            b2.capacity_wait + b2.reservation_wait + b2.policy_wait,
            b2.wait()
        );
        // The displacing job itself sees no inversion against it.
        let b3 = explain_wait(&records, &schedule, JobId(3)).unwrap();
        assert!(b3.virtual_inversions.is_empty());
    }
}
