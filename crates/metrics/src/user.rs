//! User metrics (§3.2.1): wait time, turnaround time, bounded slowdown —
//! overall and broken down by the paper's width categories.
//!
//! All user metrics are computed over *original jobs* ([`OriginalOutcome`]):
//! when runtime limits chop a job into chunks, the user experiences one job
//! submitted once and finished when its last chunk completes, so turnaround
//! spans the whole chain.

use fairsched_sim::OriginalOutcome;
use fairsched_workload::categories::{WidthCategory, WIDTH_BUCKETS};
use fairsched_workload::time::Time;

/// Average wait time (first start − submit), seconds.
pub fn average_wait(jobs: &[OriginalOutcome]) -> f64 {
    mean(jobs.iter().map(|o| (o.first_start - o.submit) as f64))
}

/// Average turnaround time per Equation 1 (completion − submit), seconds.
pub fn average_turnaround(jobs: &[OriginalOutcome]) -> f64 {
    mean(jobs.iter().map(|o| o.turnaround() as f64))
}

/// Average bounded slowdown: `max(1, turnaround / max(runtime, bound))`.
/// The bound (conventionally 10 s) stops sub-second jobs from dominating.
pub fn average_bounded_slowdown(jobs: &[OriginalOutcome], bound: Time) -> f64 {
    mean(jobs.iter().map(|o| {
        let service = o.executed.max(bound) as f64;
        (o.turnaround() as f64 / service).max(1.0)
    }))
}

/// Average turnaround per width category (Figures 12 and 18). Buckets with
/// no jobs report 0.
pub fn turnaround_by_width(jobs: &[OriginalOutcome]) -> [f64; WIDTH_BUCKETS] {
    by_width(jobs, |o| o.turnaround() as f64)
}

/// Average wait per width category.
pub fn wait_by_width(jobs: &[OriginalOutcome]) -> [f64; WIDTH_BUCKETS] {
    by_width(jobs, |o| (o.first_start - o.submit) as f64)
}

/// Averages an arbitrary per-job value per width category.
pub fn by_width(
    jobs: &[OriginalOutcome],
    mut value: impl FnMut(&OriginalOutcome) -> f64,
) -> [f64; WIDTH_BUCKETS] {
    let mut sums = [0.0; WIDTH_BUCKETS];
    let mut counts = [0usize; WIDTH_BUCKETS];
    for o in jobs {
        let w = WidthCategory::of(o.nodes).0;
        sums[w] += value(o);
        counts[w] += 1;
    }
    let mut out = [0.0; WIDTH_BUCKETS];
    for i in 0..WIDTH_BUCKETS {
        if counts[i] > 0 {
            out[i] = sums[i] / counts[i] as f64;
        }
    }
    out
}

/// Restricts jobs to a measurement window by submit time: `[from, to)`.
///
/// Simulation studies conventionally trim a warm-up prefix (the machine
/// starts empty, which no real week does) and a cool-down suffix (the last
/// arrivals drain into an artificially emptying machine). All aggregate
/// functions in this module compose with this filter.
pub fn in_window(jobs: &[OriginalOutcome], from: Time, to: Time) -> Vec<OriginalOutcome> {
    jobs.iter()
        .filter(|o| o.submit >= from && o.submit < to)
        .copied()
        .collect()
}

/// Per-job turnaround values (seconds) — the raw series behind the
/// distribution statistics (stddev, Jain index, percentiles).
pub fn turnarounds(jobs: &[OriginalOutcome]) -> Vec<f64> {
    jobs.iter().map(|o| o.turnaround() as f64).collect()
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairsched_workload::job::{JobId, UserId};

    fn outcome(origin: u32, nodes: u32, submit: Time, start: Time, end: Time) -> OriginalOutcome {
        OriginalOutcome {
            origin: JobId(origin),
            user: UserId(1),
            nodes,
            submit,
            first_start: start,
            completion: end,
            executed: end - start,
            chunks: 1,
            killed: false,
            interrupted: false,
        }
    }

    #[test]
    fn averages_of_known_jobs() {
        let jobs = vec![
            outcome(1, 1, 0, 10, 110),  // wait 10, turnaround 110
            outcome(2, 1, 50, 90, 140), // wait 40, turnaround 90
        ];
        assert!((average_wait(&jobs) - 25.0).abs() < 1e-12);
        assert!((average_turnaround(&jobs) - 100.0).abs() < 1e-12);
    }

    #[test]
    fn empty_input_yields_zero_not_nan() {
        assert_eq!(average_wait(&[]), 0.0);
        assert_eq!(average_turnaround(&[]), 0.0);
        assert_eq!(average_bounded_slowdown(&[], 10), 0.0);
    }

    #[test]
    fn bounded_slowdown_floors_service_time_and_ratio() {
        // Tiny job: executed 1 s, turnaround 100 s → bounded by 10 s
        // service: slowdown 10, not 100.
        let jobs = vec![outcome(1, 1, 0, 99, 100)];
        assert!((average_bounded_slowdown(&jobs, 10) - 10.0).abs() < 1e-12);
        // A 1-second job that waited 999 s: service floored at 10 s, so
        // slowdown is 1000/10 = 100 rather than 1000.
        let mut tiny = outcome(2, 1, 0, 999, 1000);
        tiny.executed = 1;
        assert!((average_bounded_slowdown(&[tiny], 10) - 100.0).abs() < 1e-9);
        // A job faster than its own turnaround floor still reports ≥ 1.
        let over = vec![outcome(3, 1, 0, 0, 5)];
        assert!((average_bounded_slowdown(&over, 10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn by_width_buckets_independently() {
        let jobs = vec![
            outcome(1, 1, 0, 0, 100),   // width bucket 0
            outcome(2, 1, 0, 0, 300),   // width bucket 0
            outcome(3, 16, 0, 0, 1000), // width bucket 4 (9-16)
        ];
        let t = turnaround_by_width(&jobs);
        assert!((t[0] - 200.0).abs() < 1e-12);
        assert!((t[4] - 1000.0).abs() < 1e-12);
        assert_eq!(t[10], 0.0); // empty bucket
    }

    #[test]
    fn in_window_filters_by_submit_half_open() {
        let jobs = vec![
            outcome(1, 1, 0, 5, 10),
            outcome(2, 1, 100, 105, 110),
            outcome(3, 1, 200, 205, 210),
        ];
        let w = in_window(&jobs, 100, 200);
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].origin.0, 2);
        // Full-range window keeps everything; empty window nothing.
        assert_eq!(in_window(&jobs, 0, 1000).len(), 3);
        assert!(in_window(&jobs, 300, 400).is_empty());
        // Windowed aggregates compose with the ordinary ones.
        assert!((average_turnaround(&w) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn turnarounds_extracts_the_raw_series() {
        let jobs = vec![outcome(1, 1, 0, 5, 10), outcome(2, 1, 0, 10, 30)];
        assert_eq!(turnarounds(&jobs), vec![10.0, 30.0]);
    }

    #[test]
    fn chain_turnaround_spans_submit_to_last_completion() {
        let mut o = outcome(1, 4, 100, 200, 5000);
        o.chunks = 3;
        assert_eq!(o.turnaround(), 4900);
        assert!((average_turnaround(&[o]) - 4900.0).abs() < 1e-12);
    }
}
