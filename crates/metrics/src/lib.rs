//! # fairsched-metrics
//!
//! User, system, and fairness metrics for parallel job schedules — §3.2 and
//! §4 of the paper.
//!
//! * [`user`] — wait time, turnaround time (Equation 1), bounded slowdown,
//!   and per-width-category breakdowns (Figures 10, 12, 16, 18).
//! * [`system`] — utilization (Equation 2), makespan (Equation 3), and loss
//!   of capacity (Equation 4), recomputed from records as a cross-check of
//!   the simulator's exact integrals.
//! * [`fairness`] — the fairness-metric family §4 surveys plus the paper's
//!   contribution:
//!   [`fairness::hybrid`] (the hybrid fairshare fair-start-time metric,
//!   §4.1), [`fairness::consp`] (Srinivasan's CONS_P baseline),
//!   [`fairness::sabin`] (Sabin & Sadayappan's scheduler-dependent FST),
//!   [`fairness::equality`] (the resource-equality 1/N metric), and
//!   [`fairness::jain`] (Jain's index and turnaround standard deviation,
//!   the strawmen §4 argues against).
//! * [`explain`] — joins a `fairsched-obs` decision trace with a schedule
//!   (and an [`FstReport`]) to decompose one job's wait into capacity,
//!   reservation, and policy components that sum to the actual wait.
//!
//! Every fairness family ships an observer form ([`HybridFstObserver`],
//! [`EqualityObserver`], [`PerUserObserver`], [`ResilienceObserver`]) so a
//! single `simulate` run — via `fairsched_sim::ObserverSet` — can feed
//! all of them at once instead of one simulation per metric.

pub mod explain;
pub mod fairness;
pub mod system;
pub mod user;

pub use explain::{explain_wait, worst_miss, WaitBreakdown};
pub use fairness::equality::{EqualityObserver, EqualityReport};
pub use fairness::fst::{FstEntry, FstReport};
pub use fairness::hybrid::HybridFstObserver;
pub use fairness::peruser::{PerUserObserver, UserFairness};
pub use fairness::resilience::{ResilienceObserver, ResilienceReport};
