//! System metrics (§3.2.2): utilization, makespan, loss of capacity.
//!
//! The simulator already produces exact integrals for LOC and busy time
//! ([`Schedule::loss_of_capacity`] / [`Schedule::utilization`]); this module
//! recomputes utilization and makespan *from the records alone* so tests can
//! cross-check the two paths, and provides Figure 3's weekly series.

use fairsched_sim::Schedule;
use fairsched_workload::time::Time;

/// Makespan recomputed from records (Equation 3:
/// `MaxCompletionTime − MinStartTime`).
pub fn makespan_from_records(schedule: &Schedule) -> Time {
    let min_start = schedule.records.iter().map(|r| r.start).min().unwrap_or(0);
    let max_end = schedule.records.iter().map(|r| r.end).max().unwrap_or(0);
    max_end.saturating_sub(min_start)
}

/// Utilization recomputed from records (Equation 2): executed node-seconds
/// over makespan × machine size.
pub fn utilization_from_records(schedule: &Schedule) -> f64 {
    let makespan = makespan_from_records(schedule);
    if makespan == 0 {
        return 0.0;
    }
    let busy: f64 = schedule
        .records
        .iter()
        .map(|r| r.nodes as f64 * r.executed() as f64)
        .sum();
    busy / (makespan as f64 * schedule.nodes as f64)
}

/// Figure 3's two series: per-week (offered load, actual utilization).
/// Offered load comes from the trace (submission-weighted); utilization from
/// the schedule's exact weekly busy integral. The shorter series is padded
/// with zeros.
pub fn weekly_load_and_utilization(offered: &[f64], schedule: &Schedule) -> Vec<(f64, f64)> {
    let util = schedule.weekly_utilization();
    let weeks = offered.len().max(util.len());
    (0..weeks)
        .map(|w| {
            (
                offered.get(w).copied().unwrap_or(0.0),
                util.get(w).copied().unwrap_or(0.0),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairsched_sim::{simulate, EngineKind, NullObserver, SimConfig, SimOptions};
    use fairsched_workload::job::Job;
    use fairsched_workload::stats::weekly_offered_load;
    use fairsched_workload::synthetic::random_trace;

    fn sim(trace: &[Job]) -> Schedule {
        let cfg = SimConfig {
            nodes: 32,
            engine: EngineKind::NoGuarantee,
            ..Default::default()
        };
        simulate(trace, &cfg, &mut NullObserver, SimOptions::new()).unwrap()
    }

    #[test]
    fn record_recomputation_matches_simulator_integrals() {
        let trace = random_trace(3, 300, 32, 20_000);
        let s = sim(&trace);
        assert_eq!(makespan_from_records(&s), s.makespan());
        let u1 = utilization_from_records(&s);
        let u2 = s.utilization();
        assert!(
            (u1 - u2).abs() < 1e-9,
            "records say {u1}, integral says {u2}"
        );
    }

    #[test]
    fn empty_schedule_is_all_zeros() {
        let s = sim(&[]);
        assert_eq!(makespan_from_records(&s), 0);
        assert_eq!(utilization_from_records(&s), 0.0);
    }

    #[test]
    fn weekly_series_pairs_offered_with_utilization() {
        let trace = random_trace(9, 100, 32, 50_000);
        let s = sim(&trace);
        let offered = weekly_offered_load(&trace, 32, 4);
        let pairs = weekly_load_and_utilization(&offered, &s);
        assert!(pairs.len() >= s.weekly_utilization().len());
        assert!(pairs.len() >= 4);
        // Offered load column comes straight from the trace.
        assert!((pairs[0].0 - offered[0]).abs() < 1e-12);
        // Utilization is in [0, 1].
        for (_, u) in &pairs {
            assert!((0.0..=1.0 + 1e-9).contains(u));
        }
    }
}
