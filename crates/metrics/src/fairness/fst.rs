//! Fair-start-time reports and the aggregates the paper plots.
//!
//! Every FST-family metric produces a per-job `(fair start, actual start)`
//! pair; a job is *unfair* when it started after its fair start. The paper
//! reports the percentage of unfair jobs (Figures 8, 14) and the average
//! miss time per Equation 5 — the miss summed over **all** jobs and divided
//! by the total job count, so a few badly-treated jobs show up even when
//! most jobs are fine.

use fairsched_workload::categories::{WidthCategory, WIDTH_BUCKETS};
use fairsched_workload::job::JobId;
use fairsched_workload::time::Time;

/// One job's fairness outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FstEntry {
    /// The submission this entry scores.
    pub id: JobId,
    /// Width in nodes (for by-width breakdowns).
    pub nodes: u32,
    /// The fair start time assigned by the metric.
    pub fst: Time,
    /// The start the scheduler under test actually delivered.
    pub start: Time,
}

impl FstEntry {
    /// Seconds by which the job missed its fair start (0 if it started at
    /// or before it).
    pub fn miss(&self) -> Time {
        self.start.saturating_sub(self.fst)
    }

    /// Whether the job was treated unfairly (strictly missed its FST).
    pub fn unfair(&self) -> bool {
        self.start > self.fst
    }
}

/// A complete per-job fairness report for one schedule.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FstReport {
    /// One entry per scored submission.
    pub entries: Vec<FstEntry>,
}

impl FstReport {
    /// Builds a report, sorting entries by id for determinism.
    pub fn new(mut entries: Vec<FstEntry>) -> Self {
        entries.sort_by_key(|e| e.id);
        FstReport { entries }
    }

    /// Fraction of jobs that missed their fair start (Figures 8, 14).
    pub fn percent_unfair(&self) -> f64 {
        if self.entries.is_empty() {
            return 0.0;
        }
        self.entries.iter().filter(|e| e.unfair()).count() as f64 / self.entries.len() as f64
    }

    /// Average miss time per Equation 5: `Σ max(0, start − FST) / N` over
    /// all jobs (Figures 9, 15), seconds.
    pub fn average_miss_time(&self) -> f64 {
        if self.entries.is_empty() {
            return 0.0;
        }
        self.entries.iter().map(|e| e.miss() as f64).sum::<f64>() / self.entries.len() as f64
    }

    /// Average miss time among only the unfair jobs (how badly the missed
    /// jobs are hurt — the effect Figure 10 highlights).
    pub fn average_miss_of_unfair(&self) -> f64 {
        let misses: Vec<f64> = self
            .entries
            .iter()
            .filter(|e| e.unfair())
            .map(|e| e.miss() as f64)
            .collect();
        if misses.is_empty() {
            return 0.0;
        }
        misses.iter().sum::<f64>() / misses.len() as f64
    }

    /// Average miss time per width category (Figures 10, 16). Buckets with
    /// no jobs report 0.
    pub fn miss_by_width(&self) -> [f64; WIDTH_BUCKETS] {
        let mut sums = [0.0; WIDTH_BUCKETS];
        let mut counts = [0usize; WIDTH_BUCKETS];
        for e in &self.entries {
            let w = WidthCategory::of(e.nodes).0;
            sums[w] += e.miss() as f64;
            counts[w] += 1;
        }
        let mut out = [0.0; WIDTH_BUCKETS];
        for i in 0..WIDTH_BUCKETS {
            if counts[i] > 0 {
                out[i] = sums[i] / counts[i] as f64;
            }
        }
        out
    }

    /// Total missed seconds (the "total unfairness" aggregate of §4).
    pub fn total_miss(&self) -> u64 {
        self.entries.iter().map(|e| e.miss()).sum()
    }

    /// A sub-report over the entries matching `keep` (order preserved).
    ///
    /// Used for alternative aggregations — e.g. restricting a chunked
    /// schedule's report to first-chunk submissions to score fairness per
    /// *original* job (the analysis behind EXPERIMENTS.md's divergence
    /// note), or slicing by width for custom breakdowns.
    pub fn filtered(&self, mut keep: impl FnMut(&FstEntry) -> bool) -> FstReport {
        FstReport {
            entries: self.entries.iter().copied().filter(|e| keep(e)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: u32, nodes: u32, fst: Time, start: Time) -> FstEntry {
        FstEntry {
            id: JobId(id),
            nodes,
            fst,
            start,
        }
    }

    #[test]
    fn miss_is_one_sided() {
        assert_eq!(entry(1, 1, 100, 150).miss(), 50);
        assert_eq!(entry(1, 1, 100, 100).miss(), 0);
        // Starting EARLY is not a miss (benign backfilling).
        assert_eq!(entry(1, 1, 100, 20).miss(), 0);
        assert!(!entry(1, 1, 100, 20).unfair());
    }

    #[test]
    fn aggregates_on_a_known_report() {
        let r = FstReport::new(vec![
            entry(1, 1, 100, 150),  // miss 50
            entry(2, 1, 100, 100),  // fair
            entry(3, 16, 0, 250),   // miss 250
            entry(4, 16, 500, 100), // early, fair
        ]);
        assert!((r.percent_unfair() - 0.5).abs() < 1e-12);
        assert!((r.average_miss_time() - 75.0).abs() < 1e-12);
        assert!((r.average_miss_of_unfair() - 150.0).abs() < 1e-12);
        assert_eq!(r.total_miss(), 300);
        let byw = r.miss_by_width();
        assert!((byw[0] - 25.0).abs() < 1e-12); // jobs 1,2
        assert!((byw[4] - 125.0).abs() < 1e-12); // jobs 3,4 (9-16 bucket)
    }

    #[test]
    fn empty_report_is_all_zero() {
        let r = FstReport::default();
        assert_eq!(r.percent_unfair(), 0.0);
        assert_eq!(r.average_miss_time(), 0.0);
        assert_eq!(r.average_miss_of_unfair(), 0.0);
    }

    #[test]
    fn filtered_sub_reports_aggregate_independently() {
        let r = FstReport::new(vec![
            entry(1, 1, 100, 150),  // narrow, miss 50
            entry(2, 64, 100, 600), // wide, miss 500
            entry(3, 64, 100, 100), // wide, fair
        ]);
        let wide = r.filtered(|e| e.nodes > 32);
        assert_eq!(wide.entries.len(), 2);
        assert!((wide.percent_unfair() - 0.5).abs() < 1e-12);
        assert!((wide.average_miss_time() - 250.0).abs() < 1e-12);
        // The original report is untouched.
        assert_eq!(r.entries.len(), 3);
        // An empty filter gives the zero report.
        assert_eq!(r.filtered(|_| false).percent_unfair(), 0.0);
    }

    #[test]
    fn entries_are_sorted_by_id() {
        let r = FstReport::new(vec![entry(5, 1, 0, 0), entry(2, 1, 0, 0)]);
        let ids: Vec<u32> = r.entries.iter().map(|e| e.id.0).collect();
        assert_eq!(ids, vec![2, 5]);
    }
}
