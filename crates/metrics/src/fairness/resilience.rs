//! Fairness under failure: splitting an FST report by crash exposure.
//!
//! The fault layer (sim's `faults` module) interrupts jobs with node
//! failures and crashes. A natural robustness question the paper never had
//! to ask: *are interrupted jobs treated as fairly as clean ones?* Under
//! `RequeueFromScratch` an interrupted job loses work but its fairshare
//! usage stays charged, so fairshare-priority policies push it down the
//! queue exactly when it needs to rerun — a double penalty this report
//! makes visible.
//!
//! [`ResilienceReport::split`] partitions any [`FstReport`] into the
//! entries whose *original* job was interrupted at least once and those
//! that ran clean, using the schedule's per-submission records as ground
//! truth. Both halves expose the usual aggregates (percent unfair, average
//! miss), and the summary carries the schedule-level goodput so one row
//! describes a (policy, fault level) cell of a sensitivity sweep.

use std::collections::HashSet;

use fairsched_sim::{ArrivalView, JobRecord, Observer, Schedule};
use fairsched_workload::job::JobId;
use fairsched_workload::time::Time;

use super::fst::FstReport;
use super::hybrid::HybridFstObserver;

/// An [`FstReport`] partitioned by whether the scored job's origin was
/// ever interrupted by a fault.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceReport {
    /// Entries whose original job had at least one interrupted submission.
    pub interrupted: FstReport,
    /// Entries whose original job ran to completion without interruption.
    pub clean: FstReport,
    /// Useful work over total capacity for the whole schedule — work that
    /// was executed and then lost to `RequeueFromScratch` does not count.
    pub goodput: f64,
}

impl ResilienceReport {
    /// Splits `report` using `schedule`'s records as ground truth.
    ///
    /// Classification is per *origin*: a report scoring chunked
    /// submissions individually puts every chunk of an interrupted job in
    /// the interrupted half, because all of them competed for service
    /// while the job carried its failure history. Entries whose id does
    /// not appear in the schedule (none, for reports built from the same
    /// run) are treated as clean.
    pub fn split(report: &FstReport, schedule: &Schedule) -> Self {
        Self::split_records(report, &schedule.records, schedule.goodput())
    }

    /// The metric's core: splits `report` using raw records, pairing the
    /// halves with an externally-computed `goodput`. Shared by
    /// [`ResilienceReport::split`] and [`ResilienceObserver`], so
    /// single-pass collection is byte-identical to post-hoc scoring.
    pub fn split_records(report: &FstReport, records: &[JobRecord], goodput: f64) -> Self {
        let interrupted_origins: HashSet<JobId> = records
            .iter()
            .filter(|r| r.interrupted)
            .map(|r| r.origin)
            .collect();
        let origin_of = |id: JobId| records.iter().find(|r| r.id == id).map_or(id, |r| r.origin);
        let interrupted = report.filtered(|e| interrupted_origins.contains(&origin_of(e.id)));
        let clean = report.filtered(|e| !interrupted_origins.contains(&origin_of(e.id)));
        ResilienceReport {
            interrupted,
            clean,
            goodput,
        }
    }

    /// Number of scored entries in the interrupted half.
    pub fn interrupted_count(&self) -> usize {
        self.interrupted.entries.len()
    }

    /// Number of scored entries in the clean half.
    pub fn clean_count(&self) -> usize {
        self.clean.entries.len()
    }

    /// Extra average miss time an interrupted job suffers over a clean one
    /// (seconds; negative when interrupted jobs are actually served
    /// better, e.g. under requeue-boosting policies).
    pub fn interruption_penalty(&self) -> f64 {
        self.interrupted.average_miss_time() - self.clean.average_miss_time()
    }
}

/// Observer form of the resilience audit: attach to one `simulate` run
/// (alone or inside an [`fairsched_sim::ObserverSet`]) and collect the
/// interrupted-vs-clean split without a second simulation.
///
/// Internally drives a [`HybridFstObserver`] for the fair start times, then
/// splits the report in [`Observer::on_finish`] via
/// [`ResilienceReport::split`] — byte-identical to running the hybrid
/// observer alone and splitting afterwards.
#[derive(Debug, Default)]
pub struct ResilienceObserver {
    hybrid: HybridFstObserver,
    report: Option<ResilienceReport>,
}

impl ResilienceObserver {
    /// A fresh observer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the observer into its report.
    ///
    /// # Panics
    /// If the observer was never attached to a completed simulation.
    pub fn into_report(self) -> ResilienceReport {
        self.report
            .expect("ResilienceObserver must observe a completed simulation")
    }
}

impl Observer for ResilienceObserver {
    fn on_arrival(&mut self, view: &ArrivalView<'_>) {
        self.hybrid.on_arrival(view);
    }

    fn on_start(&mut self, id: JobId, now: Time) {
        self.hybrid.on_start(id, now);
    }

    fn on_finish(&mut self, schedule: &Schedule) {
        let fairness = std::mem::take(&mut self.hybrid).into_report();
        self.report = Some(ResilienceReport::split(&fairness, schedule));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairsched_sim::JobRecord;
    use fairsched_workload::job::{GroupId, UserId};

    use crate::fairness::fst::FstEntry;

    fn record(id: u32, origin: u32, interrupted: bool) -> JobRecord {
        JobRecord {
            id: JobId(id),
            origin: JobId(origin),
            chunk_index: 0,
            user: UserId(1),
            group: GroupId(1),
            nodes: 1,
            submit: 0,
            origin_submit: 0,
            start: 0,
            end: 100,
            estimate: 100,
            killed: false,
            interrupted,
        }
    }

    fn schedule(records: Vec<JobRecord>) -> Schedule {
        Schedule {
            nodes: 10,
            records,
            waste_nodeseconds: 0.0,
            busy_nodeseconds: 500.0,
            down_nodeseconds: 0.0,
            lost_nodeseconds: 200.0,
            weekly_busy: vec![],
            min_start: 0,
            max_completion: 100,
            placement: None,
            queue_stats: Default::default(),
        }
    }

    fn entry(id: u32, fst: u64, start: u64) -> FstEntry {
        FstEntry {
            id: JobId(id),
            nodes: 1,
            fst,
            start,
        }
    }

    #[test]
    fn split_follows_origin_not_submission() {
        // Job 1 has two chunks (ids 1 and 10); chunk 10 crashed. Job 2 is
        // clean. Both chunks of job 1 land in the interrupted half.
        let s = schedule(vec![
            record(1, 1, false),
            record(10, 1, true),
            record(2, 2, false),
        ]);
        let r = FstReport::new(vec![
            entry(1, 100, 150),
            entry(10, 100, 400),
            entry(2, 100, 100),
        ]);
        let split = ResilienceReport::split(&r, &s);
        assert_eq!(split.interrupted_count(), 2);
        assert_eq!(split.clean_count(), 1);
        assert!((split.interrupted.average_miss_time() - 175.0).abs() < 1e-12);
        assert_eq!(split.clean.average_miss_time(), 0.0);
        assert!(split.interruption_penalty() > 0.0);
        // goodput = (busy - lost) / (makespan * nodes) = 300 / 1000
        assert!((split.goodput - 0.3).abs() < 1e-12);
    }

    #[test]
    fn observer_matches_post_hoc_split_under_faults() {
        use fairsched_sim::{simulate, FaultConfig, SimConfig, SimOptions};
        use fairsched_workload::synthetic::random_trace;
        let trace = random_trace(5, 60, 16, 3000);
        let cfg = SimConfig {
            nodes: 16,
            faults: FaultConfig {
                job_crash_rate: 0.3,
                seed: 9,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut hybrid = HybridFstObserver::new();
        let s = simulate(&trace, &cfg, &mut hybrid, SimOptions::new()).unwrap();
        let expected = ResilienceReport::split(&hybrid.into_report(), &s);
        let mut obs = ResilienceObserver::new();
        simulate(&trace, &cfg, &mut obs, SimOptions::new()).unwrap();
        assert_eq!(obs.into_report(), expected);
    }

    #[test]
    fn fault_free_schedule_puts_everything_in_clean() {
        let s = schedule(vec![record(1, 1, false), record(2, 2, false)]);
        let r = FstReport::new(vec![entry(1, 0, 10), entry(2, 0, 0)]);
        let split = ResilienceReport::split(&r, &s);
        assert_eq!(split.interrupted_count(), 0);
        assert_eq!(split.clean_count(), 2);
        assert_eq!(split.interrupted.percent_unfair(), 0.0);
        assert!((split.clean.percent_unfair() - 0.5).abs() < 1e-12);
    }
}
