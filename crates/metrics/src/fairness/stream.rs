//! Streaming fairness: the batch verdict, maintained event-by-event.
//!
//! The paper computes fairness after the fact, over a finished schedule.
//! An online scheduler (`fairschedd`) cannot wait for the fact: an
//! operator needs to see *now* whether the live policy is starving
//! anyone. [`StreamingFairness`] is an [`Observer`] that keeps the
//! fairness verdict current at every simulator event, cheap enough to sit
//! permanently inside the serving loop:
//!
//! * the hybrid FST verdict rides along unchanged — the embedded
//!   [`HybridFstObserver`] sees the same hooks it would in a batch run,
//!   so at seal [`StreamingFairness::report`] is **identical** to the
//!   batch report (the convergence guarantee, pinned by a property test
//!   at the workspace root);
//! * per-user aggregates accumulate in order-independent integer
//!   arithmetic, so [`StreamingFairness::users`] reproduces
//!   [`per_user_of`]'s rows exactly (bit-for-bit while sums stay below
//!   2^53 — far beyond any real trace) without replaying records;
//! * live gauges — queue depth, busy nodes, utilization-so-far,
//!   starvation age, and how far past their fair start the currently
//!   queued jobs are — come from O(1)-maintained maps, snapshotted on
//!   demand by [`StreamingFairness::snapshot`].
//!
//! Nothing here feeds back into scheduling: the observer only reads the
//! hooks, so an instrumented run produces a byte-identical schedule.

use crate::fairness::fst::FstReport;
use crate::fairness::hybrid::HybridFstObserver;
use crate::fairness::peruser::UserFairness;
use fairsched_sim::{ArrivalView, JobRecord, Observer, Schedule};
use fairsched_workload::job::{JobId, UserId};
use fairsched_workload::time::Time;
use std::collections::HashMap;

/// Per-user running totals in overflow-safe integer arithmetic (converted
/// to the [`UserFairness`] f64 fields only when rows are requested).
#[derive(Debug, Clone, Copy, Default)]
struct UserAgg {
    jobs: u64,
    proc_nodeseconds: u64,
    wait_sum: u64,
    total_miss: u64,
    unfair_jobs: u64,
}

#[derive(Debug, Clone, Copy)]
struct QueuedInfo {
    arrival: Time,
    nodes: u32,
}

/// A point-in-time reading of every live fairness gauge.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FairnessSnapshot {
    /// The simulated-time frontier the gauges are current at.
    pub now: Time,
    /// Submissions observed (arrivals).
    pub arrivals: u64,
    /// Jobs that have started.
    pub started: u64,
    /// Submissions that have finished (completions + kills).
    pub completed: u64,
    /// Finished submissions that were killed.
    pub killed: u64,
    /// Jobs currently waiting in the queue.
    pub queue_depth: u64,
    /// Jobs currently running.
    pub running_jobs: u64,
    /// Nodes currently occupied by running jobs.
    pub busy_nodes: u64,
    /// Busy node-seconds so far divided by capacity since the first
    /// start — the live analogue of `Schedule::utilization`.
    pub utilization: f64,
    /// Started jobs scored against their fair start so far.
    pub scored: u64,
    /// Scored jobs that missed their fair start.
    pub unfair_jobs: u64,
    /// Fraction of scored jobs that missed their fair start.
    pub percent_unfair: f64,
    /// Total seconds of fair-start miss accumulated so far.
    pub total_miss: u64,
    /// Mean miss over scored jobs (Equation 5, live).
    pub average_miss: f64,
    /// Mean queue wait over finished submissions, seconds.
    pub mean_wait: f64,
    /// Mean bounded slowdown over finished submissions.
    pub mean_slowdown: f64,
    /// Queued jobs currently past their fair start time.
    pub live_fst_misses: u64,
    /// The worst current overshoot: max over queued jobs of
    /// `now − fst`, seconds. Unlike `total_miss` this can still shrink
    /// to nothing being *recorded* if the scheduler catches up — it
    /// measures pressure, not verdicts.
    pub worst_live_miss: Time,
    /// Age of the oldest queued job, seconds. The starvation gauge: a
    /// healthy scheduler keeps this bounded.
    pub starvation_age: Time,
}

/// An always-on fairness observer for online scheduling. Attach to every
/// `SteppedSim::step` call (it implements [`Observer`]) and read gauges
/// whenever asked.
#[derive(Debug, Default)]
pub struct StreamingFairness {
    hybrid: HybridFstObserver,
    total_nodes: u32,
    now: Time,
    first_start: Option<Time>,
    busy_nodes: u64,
    busy_integral: f64,
    queued: HashMap<JobId, QueuedInfo>,
    running: HashMap<JobId, u32>,
    users: HashMap<UserId, UserAgg>,
    arrivals: u64,
    started: u64,
    completed: u64,
    killed: u64,
    scored: u64,
    unfair: u64,
    total_miss: u64,
    wait_sum: u64,
    slowdown_sum: f64,
}

impl StreamingFairness {
    /// A fresh observer for a machine of `total_nodes` nodes (used by the
    /// utilization gauge; the event stream supplies everything else).
    pub fn new(total_nodes: u32) -> Self {
        StreamingFairness {
            total_nodes,
            ..Default::default()
        }
    }

    /// Advances the busy-nodes integral to `to`. Hooks arrive with
    /// non-decreasing times, so this is a pure forward integration.
    fn advance(&mut self, to: Time) {
        if to > self.now {
            self.busy_integral += self.busy_nodes as f64 * (to - self.now) as f64;
            self.now = to;
        }
    }

    /// The fair-start verdict over jobs started so far. After a drained
    /// run this equals the batch [`HybridFstObserver::into_report`] for
    /// the same trace — both observers saw the same hooks.
    pub fn report(&self) -> FstReport {
        self.hybrid.report()
    }

    /// Per-user rows, heaviest consumers first — the same rows
    /// [`per_user_of`] computes from the finished schedule, produced from
    /// the running totals instead.
    ///
    /// [`per_user_of`]: crate::fairness::peruser::per_user_of
    pub fn users(&self) -> Vec<UserFairness> {
        let mut out: Vec<UserFairness> = self
            .users
            .iter()
            .map(|(&user, agg)| UserFairness {
                user,
                jobs: agg.jobs as usize,
                proc_seconds: agg.proc_nodeseconds as f64,
                total_miss: agg.total_miss as f64,
                unfair_jobs: agg.unfair_jobs as usize,
                mean_wait: if agg.jobs == 0 {
                    0.0
                } else {
                    agg.wait_sum as f64 / agg.jobs as f64
                },
            })
            .collect();
        out.sort_by(|a, b| {
            b.proc_seconds
                .total_cmp(&a.proc_seconds)
                .then(a.user.cmp(&b.user))
        });
        out
    }

    /// Reads every gauge at the current frontier.
    pub fn snapshot(&self) -> FairnessSnapshot {
        let elapsed = self
            .first_start
            .map(|t0| self.now.saturating_sub(t0))
            .unwrap_or(0);
        let capacity = elapsed as f64 * self.total_nodes as f64;
        let mut live_fst_misses = 0u64;
        let mut worst_live_miss: Time = 0;
        let mut starvation_age: Time = 0;
        for (&id, info) in &self.queued {
            starvation_age = starvation_age.max(self.now.saturating_sub(info.arrival));
            if let Some(fst) = self.hybrid.fst_of(id) {
                if self.now > fst {
                    live_fst_misses += 1;
                    worst_live_miss = worst_live_miss.max(self.now - fst);
                }
            }
        }
        FairnessSnapshot {
            now: self.now,
            arrivals: self.arrivals,
            started: self.started,
            completed: self.completed,
            killed: self.killed,
            queue_depth: self.queued.len() as u64,
            running_jobs: self.running.len() as u64,
            busy_nodes: self.busy_nodes,
            utilization: if capacity == 0.0 {
                0.0
            } else {
                self.busy_integral / capacity
            },
            scored: self.scored,
            unfair_jobs: self.unfair,
            percent_unfair: if self.scored == 0 {
                0.0
            } else {
                self.unfair as f64 / self.scored as f64
            },
            total_miss: self.total_miss,
            average_miss: if self.scored == 0 {
                0.0
            } else {
                self.total_miss as f64 / self.scored as f64
            },
            mean_wait: if self.completed == 0 {
                0.0
            } else {
                self.wait_sum as f64 / self.completed as f64
            },
            mean_slowdown: if self.completed == 0 {
                0.0
            } else {
                self.slowdown_sum / self.completed as f64
            },
            live_fst_misses,
            worst_live_miss,
            starvation_age,
        }
    }
}

impl Observer for StreamingFairness {
    fn on_arrival(&mut self, view: &ArrivalView<'_>) {
        self.advance(view.now);
        if self.total_nodes == 0 {
            self.total_nodes = view.total_nodes;
        }
        self.hybrid.on_arrival(view);
        self.queued.insert(
            view.job.id,
            QueuedInfo {
                arrival: view.now,
                nodes: view.job.nodes,
            },
        );
        self.arrivals += 1;
    }

    fn on_start(&mut self, id: JobId, now: Time) {
        self.advance(now);
        self.hybrid.on_start(id, now);
        let nodes = self
            .queued
            .remove(&id)
            .map(|info| info.nodes)
            .unwrap_or_default();
        self.busy_nodes += u64::from(nodes);
        self.running.insert(id, nodes);
        self.started += 1;
        self.first_start.get_or_insert(now);
    }

    fn on_complete(&mut self, id: JobId, now: Time, killed: bool) {
        self.advance(now);
        if let Some(nodes) = self.running.remove(&id) {
            self.busy_nodes -= u64::from(nodes);
        }
        if killed {
            self.killed += 1;
        }
    }

    fn on_record(&mut self, record: &JobRecord) {
        self.completed += 1;
        self.wait_sum += record.wait();
        let executed = record.executed().max(1) as f64;
        self.slowdown_sum += (record.wait() as f64 + executed) / executed;

        let agg = self.users.entry(record.user).or_default();
        agg.jobs += 1;
        agg.proc_nodeseconds += u64::from(record.nodes) * record.executed();
        agg.wait_sum += record.wait();
        if let Some(fst) = self.hybrid.fst_of(record.id) {
            let miss = record.start.saturating_sub(fst);
            agg.total_miss += miss;
            self.total_miss += miss;
            self.scored += 1;
            if miss > 0 {
                agg.unfair_jobs += 1;
                self.unfair += 1;
            }
        }
    }

    fn on_finish(&mut self, schedule: &Schedule) {
        // Close the integral at the end of the run; the batch schedule's
        // makespan ends at the last completion, which `advance` has
        // already reached through the completion hooks.
        self.advance(schedule.max_completion);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fairness::peruser::per_user_of;
    use fairsched_sim::{simulate, KillPolicy, SimConfig, SimOptions, StarvationConfig};
    use fairsched_workload::job::Job;

    fn job(id: u32, user: u32, submit: Time, nodes: u32, runtime: Time) -> Job {
        Job::new(id, user, 1, submit, nodes, runtime, runtime)
    }

    fn cfg(nodes: u32) -> SimConfig {
        SimConfig {
            nodes,
            kill: KillPolicy::Never,
            starvation: Some(StarvationConfig::default()),
            ..Default::default()
        }
    }

    #[test]
    fn converges_to_the_batch_verdict_on_a_full_run() {
        let trace = fairsched_workload::synthetic::random_trace(17, 200, 10, 2000);
        let cfg = cfg(10);

        let mut batch = HybridFstObserver::new();
        let schedule = simulate(&trace, &cfg, &mut batch, SimOptions::new()).unwrap();
        let batch_report = batch.into_report();

        let mut stream = StreamingFairness::new(cfg.nodes);
        let schedule2 = simulate(&trace, &cfg, &mut stream, SimOptions::new()).unwrap();
        assert_eq!(schedule, schedule2, "observer must not perturb the run");

        assert_eq!(stream.report(), batch_report);
        assert_eq!(
            stream.users(),
            per_user_of(&schedule.records, &batch_report)
        );

        let snap = stream.snapshot();
        assert_eq!(snap.arrivals as usize, trace.len());
        assert_eq!(snap.completed as usize, schedule.records.len());
        assert_eq!(snap.queue_depth, 0);
        assert_eq!(snap.running_jobs, 0);
        assert_eq!(snap.busy_nodes, 0);
        assert!(
            (snap.utilization - schedule.utilization()).abs() < 1e-9,
            "stream {} vs batch {}",
            snap.utilization,
            schedule.utilization()
        );
        assert_eq!(
            snap.unfair_jobs as usize,
            batch_report.entries.iter().filter(|e| e.unfair()).count()
        );
        assert_eq!(snap.total_miss, batch_report.total_miss());
    }

    #[test]
    fn live_gauges_track_queue_pressure_mid_run() {
        // Machine full until t=100; two more jobs queue behind it.
        let trace = [
            job(1, 1, 0, 10, 100),
            job(2, 2, 5, 10, 50),
            job(3, 3, 10, 10, 50),
        ];
        let mut stream = StreamingFairness::new(10);
        let _ = simulate(&trace, &cfg(10), &mut stream, SimOptions::new()).unwrap();
        // After the full run everything drained.
        let end = stream.snapshot();
        assert_eq!(end.queue_depth, 0);
        assert_eq!(end.starvation_age, 0);
        assert_eq!(end.live_fst_misses, 0);
        assert_eq!(end.started, 3);
        // Jobs 2 and 3 each waited; the wait gauge saw it.
        assert!(end.mean_wait > 0.0);
        assert!(end.mean_slowdown > 1.0);
    }

    #[test]
    fn mid_run_snapshot_reports_starvation_and_live_misses() {
        // Drive hooks by hand to freeze a mid-run state: a job queues at
        // t=5 with fst 100, and the clock reaches t=400 without it
        // starting. The unit here is the gauge arithmetic, so feed the
        // observer directly instead of driving a simulation.
        let mut stream = StreamingFairness::new(10);
        stream.queued.insert(
            JobId(2),
            QueuedInfo {
                arrival: 5,
                nodes: 10,
            },
        );
        stream.hybrid.insert_fst(JobId(2), 100, 10);
        stream.advance(400);
        let snap = stream.snapshot();
        assert_eq!(snap.queue_depth, 1);
        assert_eq!(snap.starvation_age, 395);
        assert_eq!(snap.live_fst_misses, 1);
        assert_eq!(snap.worst_live_miss, 300);
    }

    #[test]
    fn empty_stream_snapshots_to_zero() {
        let snap = StreamingFairness::new(64).snapshot();
        assert_eq!(snap, FairnessSnapshot::default());
    }
}
