//! Jain's fairness index and turnaround standard deviation — the
//! conventional fairness measures §4 argues are wrong for bursty parallel
//! workloads (a job arriving at 3 a.m. *should* get a much better turnaround
//! than one arriving mid-morning; penalizing that variance is not fairness).
//!
//! Included as baselines so the experiment harness can show what they say
//! about the same schedules the FST metrics score.

/// Jain's fairness index over non-negative allocations:
/// `(Σx)² / (n · Σx²)`. 1 when all equal; `1/n` when one job gets
/// everything. Empty or all-zero inputs report 1 (vacuously fair).
pub fn jain_index(values: &[f64]) -> f64 {
    debug_assert!(
        values.iter().all(|&v| v >= 0.0),
        "Jain index needs non-negative values"
    );
    let n = values.len();
    if n == 0 {
        return 1.0;
    }
    let sum: f64 = values.iter().sum();
    let sq: f64 = values.iter().map(|v| v * v).sum();
    if sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (n as f64 * sq)
}

/// Population standard deviation (the §4 strawman applied to turnaround).
pub fn stddev(values: &[f64]) -> f64 {
    let n = values.len();
    if n == 0 {
        return 0.0;
    }
    let mean: f64 = values.iter().sum::<f64>() / n as f64;
    (values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jain_is_one_for_equal_allocations() {
        assert!((jain_index(&[5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jain_is_one_over_n_for_total_monopoly() {
        let v = [10.0, 0.0, 0.0, 0.0];
        assert!((jain_index(&v) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn jain_of_known_mixed_allocation() {
        // Classic example: {1, 2, 3} → 36 / (3 × 14) = 6/7.
        assert!((jain_index(&[1.0, 2.0, 3.0]) - 6.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn jain_degenerate_inputs_are_vacuously_fair() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn stddev_of_known_sample() {
        assert!((stddev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) - 2.0).abs() < 1e-12);
        assert_eq!(stddev(&[]), 0.0);
        assert_eq!(stddev(&[3.0]), 0.0);
    }

    #[test]
    fn jain_punishes_desirable_burst_variance() {
        // The §4 critique in miniature: a night job with turnaround 10 and a
        // rush-hour job with turnaround 1000 may both be perfectly fair, yet
        // Jain's index over turnarounds tanks.
        let idx = jain_index(&[10.0, 1000.0]);
        assert!(idx < 0.6, "Jain index {idx} fails to flag the variance");
    }
}
