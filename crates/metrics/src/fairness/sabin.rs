//! Sabin & Sadayappan's scheduler-dependent fair start time (§4).
//!
//! For each job `j`, re-run the *scheduler under test* on the trace with
//! every job arriving after `j` deleted; `j`'s start in that counterfactual
//! run is its FST. This measures exactly "was `j` affected by a later
//! arrival?", allowing benign backfilling, but each schedule defines its own
//! FSTs, so numbers are not comparable across policies — the drawback the
//! hybrid metric trades against.
//!
//! Cost: one full simulation per scored job (`O(n)` simulations of `O(n)`
//! events) when computed naively. [`sabin_fsts_parallel`] collapses that two
//! ways at once: for configurations
//! [`fairsched_sim::warm_start_supported`] certifies, ONE master
//! [`PrefixSimulator`] advances serially and is forked at each chunk
//! boundary, with forks shipped to a scoped worker pool (no worker replays
//! the prefix from scratch); ineligible configurations stripe from-scratch
//! prefix queries over the same pool. Both paths produce FSTs identical to
//! the serial [`sabin_fsts`].

use crate::fairness::fst::{FstEntry, FstReport};
use fairsched_sim::prefix::PrefixSimulator;
use fairsched_sim::{
    simulate, warm_start_supported, NullObserver, Schedule, SimConfig, SimOptions,
};
use fairsched_workload::job::{Job, JobId};
use fairsched_workload::time::Time;
use std::collections::{HashMap, HashSet};
use std::sync::{mpsc, Mutex, PoisonError};

/// Computes the scheduler-dependent FST for every job: its start when the
/// trace is truncated right after its own arrival.
pub fn sabin_fsts(trace: &[Job], cfg: &SimConfig) -> HashMap<JobId, Time> {
    sabin_fsts_for(trace, cfg, trace.iter().map(|j| j.id))
}

/// Computes scheduler-dependent FSTs for every `stride`-th job (1-in-stride
/// systematic sample, deterministic).
pub fn sabin_fsts_sampled(trace: &[Job], cfg: &SimConfig, stride: usize) -> HashMap<JobId, Time> {
    assert!(stride >= 1);
    sabin_fsts_for(trace, cfg, trace.iter().step_by(stride).map(|j| j.id))
}

/// [`sabin_fsts`] fanned across `threads` workers (defaulting to the
/// machine's available parallelism), each owning a contiguous stripe of
/// prefix targets.
///
/// When the configuration is [`warm_start_supported`], each worker keeps a
/// warm [`PrefixSimulator`]: admitting one arrival advances a shared master
/// state instead of replaying the whole prefix, so the stripe costs one
/// incremental pass plus one early-exiting clone per target; stateful
/// ledgers (static conservative) ride along by forking the master engine.
/// Ineligible configurations (dynamic conservative, faults, runtime limits)
/// fall back to from-scratch prefix simulations — still striped, still
/// exact. Results are identical to [`sabin_fsts`] in every case (and
/// independent of the thread count).
pub fn sabin_fsts_parallel(
    trace: &[Job],
    cfg: &SimConfig,
    threads: Option<usize>,
) -> HashMap<JobId, Time> {
    let targets: HashSet<JobId> = trace.iter().map(|j| j.id).collect();
    sabin_fsts_parallel_for(trace, cfg, &targets, threads)
}

/// [`sabin_fsts_sampled`] fanned across `threads` workers; same sample as
/// the serial version (every `stride`-th job in trace order), same results.
pub fn sabin_fsts_parallel_sampled(
    trace: &[Job],
    cfg: &SimConfig,
    stride: usize,
    threads: Option<usize>,
) -> HashMap<JobId, Time> {
    assert!(stride >= 1);
    let targets: HashSet<JobId> = trace.iter().step_by(stride).map(|j| j.id).collect();
    sabin_fsts_parallel_for(trace, cfg, &targets, threads)
}

fn sabin_fsts_for(
    trace: &[Job],
    cfg: &SimConfig,
    jobs: impl Iterator<Item = JobId>,
) -> HashMap<JobId, Time> {
    let by_id: HashMap<JobId, &Job> = trace.iter().map(|j| (j.id, j)).collect();
    jobs.map(|id| {
        let target = by_id[&id];
        // Jobs arriving strictly after `target` are deleted; simultaneous
        // arrivals with smaller id are "earlier" per the trace order.
        let prefix: Vec<Job> = trace
            .iter()
            .filter(|j| (j.submit, j.id) <= (target.submit, target.id))
            .cloned()
            .collect();
        let schedule = simulate(&prefix, cfg, &mut NullObserver, SimOptions::new())
            .unwrap_or_else(|e| panic!("prefix simulation failed: {e}"));
        let start = schedule
            .records
            .iter()
            .find(|r| r.id == id)
            .map(|r| r.start)
            .expect("target job is in its own prefix");
        (id, start)
    })
    .collect()
}

fn sabin_fsts_parallel_for(
    trace: &[Job],
    cfg: &SimConfig,
    targets: &HashSet<JobId>,
    threads: Option<usize>,
) -> HashMap<JobId, Time> {
    let mut ordered: Vec<&Job> = trace.iter().collect();
    ordered.sort_by_key(|j| (j.submit, j.id));
    let n = ordered.len();
    if n == 0 || targets.is_empty() {
        return HashMap::new();
    }
    let workers = threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        })
        .clamp(1, n);

    // Warm-start-eligible multi-worker runs take the fork pipeline: the
    // naive striping below would have every worker rebuild its own prefix
    // from scratch — O(workers · events) of pure replay, which is why
    // BENCH_5 showed the "parallel" path losing to one thread.
    if workers > 1 && warm_start_supported(cfg) {
        return warm_forked_fsts(cfg, &ordered, targets, workers)
            .into_iter()
            .collect();
    }

    // Contiguous stripes of the (submit, id)-sorted prefix order: worker w
    // owns ordered[lo..hi]. Stripes are independent pure functions of the
    // shared immutable trace, so scoped borrows suffice — same fencing
    // pattern as the policy sweep, with worker panics re-raised after every
    // stripe has been joined (no stripe is silently dropped).
    let stripe_results: Vec<std::thread::Result<Vec<(JobId, Time)>>> =
        std::thread::scope(|scope| {
            let ordered = &ordered;
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let lo = w * n / workers;
                    let hi = (w + 1) * n / workers;
                    scope.spawn(move || stripe_fsts(cfg, ordered, targets, lo, hi))
                })
                .collect();
            handles.into_iter().map(|h| h.join()).collect()
        });
    stripe_results
        .into_iter()
        .flat_map(|r| match r {
            Ok(pairs) => pairs,
            Err(payload) => std::panic::resume_unwind(payload),
        })
        .collect()
}

/// The warm-start fan-out: ONE master [`PrefixSimulator`] advances serially
/// on this thread; right after each target is admitted the master is forked
/// and the fork shipped to a worker, which runs only the scratch query
/// ([`PrefixSimulator::resolve_start`]) — the dominant cost, since every
/// target pays one partial re-simulation but the advance happens once.
/// Total simulator work equals the serial warm path exactly (the old
/// striping paid a from-scratch prefix replay per stripe on top); the
/// queries fan out across workers. FSTs are identical to the serial path: a
/// fork taken right after admission is byte-for-byte the scratch state
/// [`PrefixSimulator::start_of`] clones.
fn warm_forked_fsts(
    cfg: &SimConfig,
    ordered: &[&Job],
    targets: &HashSet<JobId>,
    workers: usize,
) -> Vec<(JobId, Time)> {
    // Bounded queue: forks are whole simulator states, so backpressure
    // keeps at most ~3 per worker alive (queued + in flight) when the
    // master outpaces the query workers.
    let (tx, rx) = mpsc::sync_channel::<(PrefixSimulator<'_>, JobId, Time)>(2 * workers);
    let rx = Mutex::new(rx);
    let results: Vec<std::thread::Result<Vec<(JobId, Time)>>> = std::thread::scope(|scope| {
        let rx = &rx;
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        // Hold the lock only for the recv: queries are
                        // claimed first-come rather than pre-assigned, so
                        // one slow query does not idle the other workers.
                        let msg = rx.lock().unwrap_or_else(PoisonError::into_inner).recv();
                        let Ok((fork, id, submit)) = msg else {
                            return out;
                        };
                        let start = fork
                            .resolve_start(id, submit)
                            .unwrap_or_else(|e| panic!("prefix simulation failed: {e}"));
                        out.push((id, start));
                    }
                })
            })
            .collect();
        let mut master = PrefixSimulator::new(cfg).expect("eligibility checked by caller");
        for job in ordered {
            master.admit(job).expect("jobs admitted in sorted order");
            if targets.contains(&job.id) {
                fairsched_obs::counters::record_warm_start(true);
                // A send only fails if every worker is gone (panicked); the
                // join below re-raises whatever killed them.
                let _ = tx.send((master.fork(), job.id, job.submit));
            }
        }
        drop(tx);
        handles.into_iter().map(|h| h.join()).collect()
    });
    results
        .into_iter()
        .flat_map(|r| match r {
            Ok(pairs) => pairs,
            Err(payload) => std::panic::resume_unwind(payload),
        })
        .collect()
}

/// FSTs of the targets within `ordered[lo..hi]`, where `ordered` is the
/// whole trace sorted by `(submit, id)`.
fn stripe_fsts(
    cfg: &SimConfig,
    ordered: &[&Job],
    targets: &HashSet<JobId>,
    lo: usize,
    hi: usize,
) -> Vec<(JobId, Time)> {
    if !ordered[lo..hi].iter().any(|j| targets.contains(&j.id)) {
        return Vec::new();
    }
    let mut out = Vec::new();
    if warm_start_supported(cfg) {
        let mut prefix = PrefixSimulator::new(cfg).expect("eligibility just checked");
        for job in &ordered[..lo] {
            prefix.admit(job).expect("jobs admitted in sorted order");
        }
        for job in &ordered[lo..hi] {
            if targets.contains(&job.id) {
                let start = prefix
                    .start_of(job)
                    .unwrap_or_else(|e| panic!("prefix simulation failed: {e}"));
                out.push((job.id, start));
            } else {
                prefix.admit(job).expect("jobs admitted in sorted order");
            }
        }
    } else {
        // Stateful or faulted configuration: every prefix run must replay
        // its own history so engine-internal state matches the serial
        // definition exactly.
        for (i, job) in ordered.iter().enumerate().take(hi).skip(lo) {
            if !targets.contains(&job.id) {
                continue;
            }
            fairsched_obs::counters::record_warm_start(false);
            let prefix: Vec<Job> = ordered[..=i].iter().map(|j| (*j).clone()).collect();
            let schedule = simulate(&prefix, cfg, &mut NullObserver, SimOptions::new())
                .unwrap_or_else(|e| panic!("prefix simulation failed: {e}"));
            let start = schedule
                .records
                .iter()
                .find(|r| r.id == job.id)
                .map(|r| r.start)
                .expect("target job is in its own prefix");
            out.push((job.id, start));
        }
    }
    out
}

/// Scores a schedule against scheduler-dependent FSTs (jobs missing from
/// `fsts` — e.g. outside the sample — are skipped).
pub fn sabin_report(schedule: &Schedule, fsts: &HashMap<JobId, Time>) -> FstReport {
    let entries = schedule
        .records
        .iter()
        .filter_map(|r| {
            fsts.get(&r.id).map(|&fst| FstEntry {
                id: r.id,
                nodes: r.nodes,
                fst,
                start: r.start,
            })
        })
        .collect();
    FstReport::new(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairsched_sim::{EngineKind, KillPolicy};
    use fairsched_workload::synthetic::random_trace;

    fn cfg() -> SimConfig {
        SimConfig {
            nodes: 16,
            engine: EngineKind::NoGuarantee,
            kill: KillPolicy::Never,
            ..Default::default()
        }
    }

    fn job(id: u32, user: u32, submit: Time, nodes: u32, runtime: Time, estimate: Time) -> Job {
        Job::new(id, user, 1, submit, nodes, runtime, estimate)
    }

    #[test]
    fn last_job_fst_equals_its_actual_start() {
        // The final arrival's counterfactual run IS the real run.
        let trace = random_trace(7, 60, 16, 3000);
        let fsts = sabin_fsts(&trace, &cfg());
        let schedule = simulate(&trace, &cfg(), &mut NullObserver, SimOptions::new()).unwrap();
        let last = trace.iter().max_by_key(|j| (j.submit, j.id)).unwrap();
        let actual = schedule
            .records
            .iter()
            .find(|r| r.id == last.id)
            .unwrap()
            .start;
        assert_eq!(fsts[&last.id], actual);
    }

    #[test]
    fn detects_displacement_by_a_later_arrival() {
        // Machine busy till 1000. Job 2 (heavy user) queued; job 3 (idle
        // user) arrives later and jumps ahead in fairshare order, pushing
        // job 2 back. Sabin FST of job 2 (computed without job 3) is 1000;
        // actual start is 2000 → miss.
        let trace = [
            job(1, 1, 0, 16, 1000, 1000),
            job(2, 1, 10, 16, 1000, 1000),
            job(3, 2, 20, 16, 1000, 1000),
        ];
        let fsts = sabin_fsts(&trace, &cfg());
        let schedule = simulate(&trace, &cfg(), &mut NullObserver, SimOptions::new()).unwrap();
        let report = sabin_report(&schedule, &fsts);
        let e2 = report.entries.iter().find(|e| e.id == JobId(2)).unwrap();
        assert_eq!(e2.fst, 1000);
        assert_eq!(e2.start, 2000);
        assert_eq!(e2.miss(), 1000);
        // Job 3 itself is fair (it started exactly when its prefix run says).
        let e3 = report.entries.iter().find(|e| e.id == JobId(3)).unwrap();
        assert!(!e3.unfair());
    }

    #[test]
    fn benign_backfilling_is_not_punished() {
        // A narrow later job that backfills without delaying anyone: every
        // job starts exactly at its prefix-run start.
        let trace = [
            job(1, 1, 0, 12, 1000, 1000),
            job(2, 2, 5, 16, 500, 500),
            job(3, 3, 10, 4, 100, 100), // fits beside job 1
        ];
        let fsts = sabin_fsts(&trace, &cfg());
        let schedule = simulate(&trace, &cfg(), &mut NullObserver, SimOptions::new()).unwrap();
        let report = sabin_report(&schedule, &fsts);
        assert_eq!(report.percent_unfair(), 0.0);
        let e3 = report.entries.iter().find(|e| e.id == JobId(3)).unwrap();
        assert_eq!(e3.start, 10);
    }

    #[test]
    fn sampling_scores_a_subset() {
        let trace = random_trace(15, 40, 16, 3000);
        let fsts = sabin_fsts_sampled(&trace, &cfg(), 4);
        assert_eq!(fsts.len(), trace.len().div_ceil(4));
        let schedule = simulate(&trace, &cfg(), &mut NullObserver, SimOptions::new()).unwrap();
        let report = sabin_report(&schedule, &fsts);
        assert_eq!(report.entries.len(), fsts.len());
    }

    #[test]
    fn parallel_warm_start_matches_serial_exactly() {
        // Warm-start-eligible config: same FSTs and the same FstReport from
        // the parallel engine as from serial from-scratch, for several
        // thread counts (including stripes smaller than the trace).
        let trace = random_trace(3, 90, 16, 4000);
        let c = cfg();
        assert!(warm_start_supported(&c));
        let serial = sabin_fsts(&trace, &c);
        let schedule = simulate(&trace, &c, &mut NullObserver, SimOptions::new()).unwrap();
        let serial_report = sabin_report(&schedule, &serial);
        for threads in [Some(1), Some(3), Some(7), None] {
            let parallel = sabin_fsts_parallel(&trace, &c, threads);
            assert_eq!(parallel, serial, "threads={threads:?}");
            assert_eq!(sabin_report(&schedule, &parallel), serial_report);
        }
    }

    #[test]
    fn parallel_fallback_matches_serial_for_dynamic_conservative() {
        // Dynamic conservative is not warm-start eligible; the parallel
        // path must fall back to from-scratch prefixes and still agree.
        let trace = random_trace(19, 50, 16, 3000);
        let c = SimConfig {
            nodes: 16,
            engine: EngineKind::Conservative { dynamic: true },
            kill: KillPolicy::Never,
            ..Default::default()
        };
        assert!(!warm_start_supported(&c));
        let serial = sabin_fsts(&trace, &c);
        let parallel = sabin_fsts_parallel(&trace, &c, Some(4));
        assert_eq!(parallel, serial);
    }

    #[test]
    fn parallel_warm_start_matches_serial_for_static_conservative() {
        // Static conservative is warm-start eligible since the ledger forks:
        // the parallel engine takes the warm path and must still reproduce
        // the serial from-scratch FSTs exactly.
        let trace = random_trace(31, 50, 16, 3000);
        let c = SimConfig {
            nodes: 16,
            engine: EngineKind::Conservative { dynamic: false },
            kill: KillPolicy::Never,
            ..Default::default()
        };
        assert!(warm_start_supported(&c));
        let serial = sabin_fsts(&trace, &c);
        for threads in [Some(1), Some(4)] {
            let parallel = sabin_fsts_parallel(&trace, &c, threads);
            assert_eq!(parallel, serial, "threads={threads:?}");
        }
    }

    #[test]
    fn parallel_sampled_matches_serial_sampled() {
        let trace = random_trace(27, 70, 16, 4000);
        let c = cfg();
        let serial = sabin_fsts_sampled(&trace, &c, 5);
        let parallel = sabin_fsts_parallel_sampled(&trace, &c, 5, Some(3));
        assert_eq!(parallel, serial);
    }

    #[test]
    fn parallel_empty_trace_is_empty() {
        assert!(sabin_fsts_parallel(&[], &cfg(), None).is_empty());
    }
}
