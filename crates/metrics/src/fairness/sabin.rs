//! Sabin & Sadayappan's scheduler-dependent fair start time (§4).
//!
//! For each job `j`, re-run the *scheduler under test* on the trace with
//! every job arriving after `j` deleted; `j`'s start in that counterfactual
//! run is its FST. This measures exactly "was `j` affected by a later
//! arrival?", allowing benign backfilling, but each schedule defines its own
//! FSTs, so numbers are not comparable across policies — the drawback the
//! hybrid metric trades against.
//!
//! Cost: one full simulation per scored job (`O(n)` simulations of `O(n)`
//! events). Fine for scaled-down traces and targeted audits; for the full
//! 13 k-job trace use [`sabin_fsts_sampled`] or prefer the hybrid metric.

use crate::fairness::fst::{FstEntry, FstReport};
use fairsched_sim::{simulate, NullObserver, Schedule, SimConfig};
use fairsched_workload::job::{Job, JobId};
use fairsched_workload::time::Time;
use std::collections::HashMap;

/// Computes the scheduler-dependent FST for every job: its start when the
/// trace is truncated right after its own arrival.
pub fn sabin_fsts(trace: &[Job], cfg: &SimConfig) -> HashMap<JobId, Time> {
    sabin_fsts_for(trace, cfg, trace.iter().map(|j| j.id))
}

/// Computes scheduler-dependent FSTs for every `stride`-th job (1-in-stride
/// systematic sample, deterministic).
pub fn sabin_fsts_sampled(trace: &[Job], cfg: &SimConfig, stride: usize) -> HashMap<JobId, Time> {
    assert!(stride >= 1);
    sabin_fsts_for(trace, cfg, trace.iter().step_by(stride).map(|j| j.id))
}

fn sabin_fsts_for(
    trace: &[Job],
    cfg: &SimConfig,
    jobs: impl Iterator<Item = JobId>,
) -> HashMap<JobId, Time> {
    let by_id: HashMap<JobId, &Job> = trace.iter().map(|j| (j.id, j)).collect();
    jobs.map(|id| {
        let target = by_id[&id];
        // Jobs arriving strictly after `target` are deleted; simultaneous
        // arrivals with smaller id are "earlier" per the trace order.
        let prefix: Vec<Job> = trace
            .iter()
            .filter(|j| (j.submit, j.id) <= (target.submit, target.id))
            .cloned()
            .collect();
        let schedule = simulate(&prefix, cfg, &mut NullObserver);
        let start = schedule
            .records
            .iter()
            .find(|r| r.id == id)
            .map(|r| r.start)
            .expect("target job is in its own prefix");
        (id, start)
    })
    .collect()
}

/// Scores a schedule against scheduler-dependent FSTs (jobs missing from
/// `fsts` — e.g. outside the sample — are skipped).
pub fn sabin_report(schedule: &Schedule, fsts: &HashMap<JobId, Time>) -> FstReport {
    let entries = schedule
        .records
        .iter()
        .filter_map(|r| {
            fsts.get(&r.id).map(|&fst| FstEntry {
                id: r.id,
                nodes: r.nodes,
                fst,
                start: r.start,
            })
        })
        .collect();
    FstReport::new(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairsched_sim::{EngineKind, KillPolicy};
    use fairsched_workload::synthetic::random_trace;

    fn cfg() -> SimConfig {
        SimConfig {
            nodes: 16,
            engine: EngineKind::NoGuarantee,
            kill: KillPolicy::Never,
            ..Default::default()
        }
    }

    fn job(id: u32, user: u32, submit: Time, nodes: u32, runtime: Time, estimate: Time) -> Job {
        Job::new(id, user, 1, submit, nodes, runtime, estimate)
    }

    #[test]
    fn last_job_fst_equals_its_actual_start() {
        // The final arrival's counterfactual run IS the real run.
        let trace = random_trace(7, 60, 16, 3000);
        let fsts = sabin_fsts(&trace, &cfg());
        let schedule = simulate(&trace, &cfg(), &mut NullObserver);
        let last = trace.iter().max_by_key(|j| (j.submit, j.id)).unwrap();
        let actual = schedule
            .records
            .iter()
            .find(|r| r.id == last.id)
            .unwrap()
            .start;
        assert_eq!(fsts[&last.id], actual);
    }

    #[test]
    fn detects_displacement_by_a_later_arrival() {
        // Machine busy till 1000. Job 2 (heavy user) queued; job 3 (idle
        // user) arrives later and jumps ahead in fairshare order, pushing
        // job 2 back. Sabin FST of job 2 (computed without job 3) is 1000;
        // actual start is 2000 → miss.
        let trace = [
            job(1, 1, 0, 16, 1000, 1000),
            job(2, 1, 10, 16, 1000, 1000),
            job(3, 2, 20, 16, 1000, 1000),
        ];
        let fsts = sabin_fsts(&trace, &cfg());
        let schedule = simulate(&trace, &cfg(), &mut NullObserver);
        let report = sabin_report(&schedule, &fsts);
        let e2 = report.entries.iter().find(|e| e.id == JobId(2)).unwrap();
        assert_eq!(e2.fst, 1000);
        assert_eq!(e2.start, 2000);
        assert_eq!(e2.miss(), 1000);
        // Job 3 itself is fair (it started exactly when its prefix run says).
        let e3 = report.entries.iter().find(|e| e.id == JobId(3)).unwrap();
        assert!(!e3.unfair());
    }

    #[test]
    fn benign_backfilling_is_not_punished() {
        // A narrow later job that backfills without delaying anyone: every
        // job starts exactly at its prefix-run start.
        let trace = [
            job(1, 1, 0, 12, 1000, 1000),
            job(2, 2, 5, 16, 500, 500),
            job(3, 3, 10, 4, 100, 100), // fits beside job 1
        ];
        let fsts = sabin_fsts(&trace, &cfg());
        let schedule = simulate(&trace, &cfg(), &mut NullObserver);
        let report = sabin_report(&schedule, &fsts);
        assert_eq!(report.percent_unfair(), 0.0);
        let e3 = report.entries.iter().find(|e| e.id == JobId(3)).unwrap();
        assert_eq!(e3.start, 10);
    }

    #[test]
    fn sampling_scores_a_subset() {
        let trace = random_trace(15, 40, 16, 3000);
        let fsts = sabin_fsts_sampled(&trace, &cfg(), 4);
        assert_eq!(fsts.len(), trace.len().div_ceil(4));
        let schedule = simulate(&trace, &cfg(), &mut NullObserver);
        let report = sabin_report(&schedule, &fsts);
        assert_eq!(report.entries.len(), fsts.len());
    }
}
