//! Per-user fairness accounting.
//!
//! The fairshare priority and §5.2's heavy-user bar exist because fairness
//! on CPlant is ultimately *between users*, not jobs. This module folds a
//! schedule plus an FST report into per-user aggregates, so a policy can be
//! audited for the question the figures only answer indirectly: did heavy
//! users gain their advantage at the expense of light ones?

use crate::fairness::fst::FstReport;
use crate::fairness::hybrid::HybridFstObserver;
use fairsched_sim::{ArrivalView, JobRecord, Observer, Schedule};
use fairsched_workload::job::{JobId, UserId};
use fairsched_workload::time::Time;
use std::collections::HashMap;

/// One user's aggregate treatment under a schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UserFairness {
    /// The user.
    pub user: UserId,
    /// Submissions scored.
    pub jobs: usize,
    /// Processor-seconds the user's jobs executed.
    pub proc_seconds: f64,
    /// Total seconds the user's jobs missed their fair starts.
    pub total_miss: f64,
    /// Count of the user's jobs that missed their fair starts.
    pub unfair_jobs: usize,
    /// Mean queue wait of the user's jobs, seconds.
    pub mean_wait: f64,
}

impl UserFairness {
    /// Mean miss over all the user's jobs, seconds.
    pub fn mean_miss(&self) -> f64 {
        if self.jobs == 0 {
            0.0
        } else {
            self.total_miss / self.jobs as f64
        }
    }

    /// Fraction of the user's jobs treated unfairly.
    pub fn percent_unfair(&self) -> f64 {
        if self.jobs == 0 {
            0.0
        } else {
            self.unfair_jobs as f64 / self.jobs as f64
        }
    }
}

/// Folds a schedule and its FST report into per-user aggregates, sorted by
/// descending processor-seconds (heaviest consumers first).
pub fn per_user(schedule: &Schedule, fairness: &FstReport) -> Vec<UserFairness> {
    per_user_of(&schedule.records, fairness)
}

/// The metric's core: folds raw records and an FST report into per-user
/// aggregates. Shared by [`per_user`] and [`PerUserObserver`], so
/// single-pass collection is byte-identical to post-hoc scoring.
pub fn per_user_of(records: &[JobRecord], fairness: &FstReport) -> Vec<UserFairness> {
    let miss_by_id: HashMap<_, _> = fairness.entries.iter().map(|e| (e.id, e.miss())).collect();
    let mut acc: HashMap<UserId, UserFairness> = HashMap::new();
    for r in records {
        let entry = acc.entry(r.user).or_insert(UserFairness {
            user: r.user,
            jobs: 0,
            proc_seconds: 0.0,
            total_miss: 0.0,
            unfair_jobs: 0,
            mean_wait: 0.0,
        });
        entry.jobs += 1;
        entry.proc_seconds += r.nodes as f64 * r.executed() as f64;
        entry.mean_wait += r.wait() as f64; // sum now, divide below
        if let Some(&miss) = miss_by_id.get(&r.id) {
            entry.total_miss += miss as f64;
            if miss > 0 {
                entry.unfair_jobs += 1;
            }
        }
    }
    let mut out: Vec<UserFairness> = acc
        .into_values()
        .map(|mut u| {
            if u.jobs > 0 {
                u.mean_wait /= u.jobs as f64;
            }
            u
        })
        .collect();
    out.sort_by(|a, b| {
        b.proc_seconds
            .total_cmp(&a.proc_seconds)
            .then(a.user.cmp(&b.user))
    });
    out
}

/// Splits users at a usage quantile and compares treatment: returns
/// `(heavy_mean_miss, light_mean_miss)` where "heavy" is the top
/// `heavy_fraction` of users by processor-seconds. The §5.2 question in one
/// number pair.
pub fn heavy_vs_light_miss(users: &[UserFairness], heavy_fraction: f64) -> (f64, f64) {
    assert!((0.0..=1.0).contains(&heavy_fraction));
    if users.is_empty() {
        return (0.0, 0.0);
    }
    // `users` is sorted heaviest-first.
    let heavy_n = ((users.len() as f64 * heavy_fraction).ceil() as usize).clamp(1, users.len());
    let mean = |slice: &[UserFairness]| -> f64 {
        let jobs: usize = slice.iter().map(|u| u.jobs).sum();
        if jobs == 0 {
            return 0.0;
        }
        slice.iter().map(|u| u.total_miss).sum::<f64>() / jobs as f64
    };
    (mean(&users[..heavy_n]), mean(&users[heavy_n..]))
}

/// Observer form of the per-user audit: attach to one `simulate` run
/// (alone or inside an [`fairsched_sim::ObserverSet`]) and collect the
/// [`UserFairness`] rows without a second simulation.
///
/// Internally drives a [`HybridFstObserver`] for the fair start times, then
/// folds the finished schedule through [`per_user`] in
/// [`Observer::on_finish`] — byte-identical to running the hybrid observer
/// alone and calling [`per_user`] afterwards.
#[derive(Debug, Default)]
pub struct PerUserObserver {
    hybrid: HybridFstObserver,
    users: Option<Vec<UserFairness>>,
}

impl PerUserObserver {
    /// A fresh observer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the observer into its per-user rows (heaviest users first).
    ///
    /// # Panics
    /// If the observer was never attached to a completed simulation.
    pub fn into_users(self) -> Vec<UserFairness> {
        self.users
            .expect("PerUserObserver must observe a completed simulation")
    }
}

impl Observer for PerUserObserver {
    fn on_arrival(&mut self, view: &ArrivalView<'_>) {
        self.hybrid.on_arrival(view);
    }

    fn on_start(&mut self, id: JobId, now: Time) {
        self.hybrid.on_start(id, now);
    }

    fn on_finish(&mut self, schedule: &Schedule) {
        let fairness = std::mem::take(&mut self.hybrid).into_report();
        self.users = Some(per_user(schedule, &fairness));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fairness::fst::FstEntry;
    use crate::fairness::hybrid::HybridFstObserver;
    use fairsched_sim::{simulate, SimConfig, SimOptions};
    use fairsched_sim::{JobRecord, Schedule};
    use fairsched_workload::job::GroupId;
    use fairsched_workload::job::JobId;
    use fairsched_workload::CplantModel;

    fn record(id: u32, user: u32, nodes: u32, submit: u64, start: u64, end: u64) -> JobRecord {
        JobRecord {
            id: JobId(id),
            origin: JobId(id),
            chunk_index: 0,
            user: UserId(user),
            group: GroupId(1),
            nodes,
            submit,
            origin_submit: submit,
            start,
            end,
            estimate: end - start,
            killed: false,
            interrupted: false,
        }
    }

    fn schedule(records: Vec<JobRecord>) -> Schedule {
        Schedule {
            nodes: 10,
            records,
            waste_nodeseconds: 0.0,
            busy_nodeseconds: 0.0,
            down_nodeseconds: 0.0,
            lost_nodeseconds: 0.0,
            weekly_busy: vec![],
            min_start: 0,
            max_completion: 0,
            placement: None,
            queue_stats: Default::default(),
        }
    }

    #[test]
    fn aggregates_group_by_user() {
        let s = schedule(vec![
            record(1, 1, 2, 0, 0, 100),  // user 1: 200 proc-s
            record(2, 1, 2, 0, 50, 150), // user 1: 200 proc-s, wait 50
            record(3, 2, 8, 0, 10, 110), // user 2: 800 proc-s, wait 10
        ]);
        let fairness = FstReport::new(vec![
            FstEntry {
                id: JobId(1),
                nodes: 2,
                fst: 0,
                start: 0,
            }, // fair
            FstEntry {
                id: JobId(2),
                nodes: 2,
                fst: 20,
                start: 50,
            }, // miss 30
            FstEntry {
                id: JobId(3),
                nodes: 8,
                fst: 10,
                start: 10,
            }, // fair
        ]);
        let users = per_user(&s, &fairness);
        // Sorted by proc-seconds: user 2 first.
        assert_eq!(users[0].user, UserId(2));
        assert_eq!(users[0].jobs, 1);
        assert_eq!(users[0].unfair_jobs, 0);
        assert_eq!(users[1].user, UserId(1));
        assert_eq!(users[1].jobs, 2);
        assert_eq!(users[1].unfair_jobs, 1);
        assert!((users[1].total_miss - 30.0).abs() < 1e-12);
        assert!((users[1].mean_miss() - 15.0).abs() < 1e-12);
        assert!((users[1].mean_wait - 25.0).abs() < 1e-12);
        assert!((users[1].percent_unfair() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn heavy_vs_light_splits_at_the_quantile() {
        let s = schedule(vec![
            record(1, 1, 10, 0, 0, 1000), // heavy user: 10000 proc-s
            record(2, 2, 1, 0, 0, 100),   // light
            record(3, 3, 1, 0, 0, 100),   // light
            record(4, 4, 1, 0, 0, 100),   // light
        ]);
        let fairness = FstReport::new(vec![
            FstEntry {
                id: JobId(1),
                nodes: 10,
                fst: 0,
                start: 0,
            },
            FstEntry {
                id: JobId(2),
                nodes: 1,
                fst: 0,
                start: 40,
            },
            FstEntry {
                id: JobId(3),
                nodes: 1,
                fst: 0,
                start: 80,
            },
            FstEntry {
                id: JobId(4),
                nodes: 1,
                fst: 0,
                start: 0,
            },
        ]);
        let users = per_user(&s, &fairness);
        let (heavy, light) = heavy_vs_light_miss(&users, 0.25);
        assert_eq!(heavy, 0.0);
        assert!((light - 40.0).abs() < 1e-12); // (40+80+0)/3
    }

    #[test]
    fn empty_inputs_are_fine() {
        let s = schedule(vec![]);
        let users = per_user(&s, &FstReport::default());
        assert!(users.is_empty());
        assert_eq!(heavy_vs_light_miss(&users, 0.1), (0.0, 0.0));
    }

    #[test]
    fn end_to_end_on_a_simulated_schedule() {
        let trace = CplantModel::new(5).with_scale(0.03).generate();
        let cfg = SimConfig::default();
        let mut obs = HybridFstObserver::new();
        let s = simulate(&trace, &cfg, &mut obs, SimOptions::new()).unwrap();
        let fairness = obs.into_report();
        let users = per_user(&s, &fairness);
        // The observer form collects the identical rows in the same run.
        let mut single = PerUserObserver::new();
        simulate(&trace, &cfg, &mut single, SimOptions::new()).unwrap();
        assert_eq!(single.into_users(), users);
        // Every trace user with jobs appears exactly once.
        let distinct: std::collections::HashSet<_> = trace.iter().map(|j| j.user).collect();
        assert_eq!(users.len(), distinct.len());
        // Job counts add back up.
        let total: usize = users.iter().map(|u| u.jobs).sum();
        assert_eq!(total, trace.len());
        // Sorted heaviest first.
        for pair in users.windows(2) {
            assert!(pair[0].proc_seconds >= pair[1].proc_seconds);
        }
    }
}
