//! The CONS_P fairness baseline (Srinivasan et al., §4).
//!
//! CONS_P declares the schedule produced by **FCFS conservative backfilling
//! with perfect estimates** to be fair, and scores any schedule under test
//! by how far each job's actual start falls behind its start in that one
//! blessed schedule.
//!
//! Its advantage is a single global FST set; its flaw — the reason the
//! hybrid metric exists — is that a scheduler with higher utilization than
//! the CONS_P schedule can run jobs deliberately out of order and still
//! look fair, because everybody beats the blessed schedule's starts.

use crate::fairness::fst::{FstEntry, FstReport};
use fairsched_sim::{
    simulate, EngineKind, KillPolicy, NullObserver, QueueOrder, Schedule, SimConfig, SimOptions,
};
use fairsched_workload::job::{Job, JobId};
use fairsched_workload::time::Time;
use std::collections::HashMap;

/// Computes the CONS_P fair start time of every job in `trace`: its start
/// under FCFS conservative backfilling with perfect estimates on a
/// `nodes`-wide machine.
pub fn consp_fsts(trace: &[Job], nodes: u32) -> HashMap<JobId, Time> {
    let perfect: Vec<Job> = trace
        .iter()
        .map(|j| Job {
            estimate: j.runtime,
            ..j.clone()
        })
        .collect();
    let cfg = SimConfig {
        nodes,
        engine: EngineKind::Conservative { dynamic: false },
        order: QueueOrder::Fcfs,
        kill: KillPolicy::Never,
        starvation: None,
        runtime_limit: None,
        ..Default::default()
    };
    let schedule = simulate(&perfect, &cfg, &mut NullObserver, SimOptions::new())
        .expect("CONS_P reference simulation is valid by construction");
    schedule.records.iter().map(|r| (r.id, r.start)).collect()
}

/// Scores a schedule against CONS_P fair start times. Only records whose id
/// appears in `fsts` are scored (chunked schedules change ids; CONS_P is
/// defined on the unchunked trace).
pub fn consp_report(schedule: &Schedule, fsts: &HashMap<JobId, Time>) -> FstReport {
    let entries = schedule
        .records
        .iter()
        .filter_map(|r| {
            fsts.get(&r.id).map(|&fst| FstEntry {
                id: r.id,
                nodes: r.nodes,
                fst,
                start: r.start,
            })
        })
        .collect();
    FstReport::new(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairsched_workload::synthetic::random_trace;

    fn job(id: u32, user: u32, submit: Time, nodes: u32, runtime: Time, estimate: Time) -> Job {
        Job::new(id, user, 1, submit, nodes, runtime, estimate)
    }

    #[test]
    fn consp_fst_is_the_fcfs_conservative_start() {
        let trace = [job(1, 1, 0, 10, 100, 500), job(2, 2, 5, 10, 100, 500)];
        let fsts = consp_fsts(&trace, 10);
        // Perfect estimates: job 1 runs [0,100), job 2 [100,200).
        assert_eq!(fsts[&JobId(1)], 0);
        assert_eq!(fsts[&JobId(2)], 100);
    }

    #[test]
    fn consp_judges_the_consp_schedule_itself_fair() {
        let trace = random_trace(21, 150, 16, 5000);
        let fsts = consp_fsts(&trace, 16);
        // Re-run the blessed schedule and score it against itself.
        let perfect: Vec<Job> = trace
            .iter()
            .map(|j| Job {
                estimate: j.runtime,
                ..j.clone()
            })
            .collect();
        let cfg = SimConfig {
            nodes: 16,
            engine: EngineKind::Conservative { dynamic: false },
            order: QueueOrder::Fcfs,
            kill: KillPolicy::Never,
            starvation: None,
            runtime_limit: None,
            ..Default::default()
        };
        let schedule = simulate(&perfect, &cfg, &mut NullObserver, SimOptions::new()).unwrap();
        let report = consp_report(&schedule, &fsts);
        assert_eq!(report.entries.len(), trace.len());
        assert_eq!(report.percent_unfair(), 0.0);
        assert_eq!(report.total_miss(), 0);
    }

    #[test]
    fn consp_blind_spot_out_of_order_but_early_looks_fair() {
        // The weakness §4.1 describes: two identical jobs run out of order
        // can both beat their CONS_P FSTs if utilization is higher than the
        // blessed schedule's. Construct it directly: CONS_P says starts
        // {0, 100}; a schedule that runs them {50, 0} — reversed! — shows
        // zero unfairness under CONS_P.
        let trace = [job(1, 1, 0, 10, 100, 100), job(2, 2, 5, 10, 100, 100)];
        let fsts = consp_fsts(&trace, 10);
        assert_eq!(fsts[&JobId(1)], 0);
        assert_eq!(fsts[&JobId(2)], 100);
        // Hand-build the reversed schedule's report.
        let report = FstReport::new(vec![
            FstEntry {
                id: JobId(1),
                nodes: 10,
                fst: fsts[&JobId(1)],
                start: 50,
            },
            FstEntry {
                id: JobId(2),
                nodes: 10,
                fst: fsts[&JobId(2)],
                start: 0,
            },
        ]);
        // Job 1 arrived first yet ran second — and CONS_P sees... job 1
        // missing by 50 but job 2 perfectly fair. With slightly earlier
        // starts {10, 0} both would look fair despite the inversion.
        let lax = FstReport::new(vec![
            FstEntry {
                id: JobId(1),
                nodes: 10,
                fst: 0,
                start: 0,
            },
            FstEntry {
                id: JobId(2),
                nodes: 10,
                fst: 100,
                start: 0,
            },
        ]);
        assert_eq!(lax.percent_unfair(), 0.0);
        drop(report);
    }

    #[test]
    fn inaccurate_estimate_schedules_can_miss_consp() {
        // Same trace with wild over-estimates under fairshare no-guarantee:
        // some jobs will land after their CONS_P fair starts.
        let trace = random_trace(33, 200, 16, 5000);
        let fsts = consp_fsts(&trace, 16);
        let cfg = SimConfig {
            nodes: 16,
            ..Default::default()
        };
        let schedule = simulate(&trace, &cfg, &mut NullObserver, SimOptions::new()).unwrap();
        let report = consp_report(&schedule, &fsts);
        assert_eq!(report.entries.len(), trace.len());
        // Not asserting a particular value — just that the pipeline scores
        // real schedules end to end and misses are plausible.
        assert!(report.average_miss_time() >= 0.0);
    }
}
