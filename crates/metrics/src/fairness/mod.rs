//! Fairness metrics for parallel job scheduling (§4).
//!
//! The paper surveys three families and contributes a fourth:
//!
//! | metric | module | character |
//! |---|---|---|
//! | turnaround stddev / Jain index | [`jain`] | strawmen: punish the *desirable* variance of bursty workloads |
//! | CONS_P fair start times | [`consp`] | one global FST set, but high-utilization schedules can cheat it |
//! | scheduler-dependent FST | [`sabin`] | measures later-arrival impact exactly, but FSTs differ per schedule |
//! | resource equality (1/N share) | [`equality`] | schedule-independent, no FST at all |
//! | **hybrid fairshare FST** | [`hybrid`] | §4.1: list-scheduler FST from the arrival-instant state, fairshare order |
//!
//! [`fst`] holds the shared report type and the aggregates the paper plots:
//! percent of unfair jobs (Figures 8, 14) and average miss time, overall and
//! by width (Figures 9–10, 15–16). [`resilience`] goes beyond the paper:
//! when the fault layer is enabled it splits any FST report into
//! interrupted-vs-clean halves to expose failure-induced unfairness.
//! [`stream`] keeps the hybrid verdict, per-user aggregates, and live
//! starvation gauges current event-by-event, for schedulers that run
//! online and cannot wait for the schedule to finish.

pub mod consp;
pub mod equality;
pub mod fst;
pub mod hybrid;
pub mod jain;
pub mod peruser;
pub mod resilience;
pub mod sabin;
pub mod stream;
