//! The resource-equality fairness metric (Sabin & Sadayappan's second
//! metric, §4; inspired by RAQFM-style queueing fairness).
//!
//! While a job is *live* (queued or running) it "deserves" `1/N(t)` of the
//! machine, where `N(t)` is the number of live jobs. Integrating over each
//! job's lifetime gives the node-seconds it deserved; comparing with what it
//! received gives a per-job *discrimination*:
//!
//! ```text
//! discrimination_j = received_j − deserved_j
//!                  = nodes_j · runtime_j − ∫_{live_j} SystemSize / N(t) dt
//! ```
//!
//! Positive values mean the job got more than its egalitarian share.
//! Discriminations sum to ≈ 0 when the machine is saturated; their spread
//! (or the total negative mass) measures inequality. The metric needs no
//! reference schedule, so unlike FST metrics it can compare any two
//! schedules directly.

use fairsched_sim::{JobRecord, Observer, Schedule};
use fairsched_workload::job::JobId;
use std::collections::HashMap;

/// Per-job discrimination values plus aggregates.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EqualityReport {
    /// `(job, received − deserved)` in node-seconds, sorted by job id.
    pub discrimination: Vec<(JobId, f64)>,
}

impl EqualityReport {
    /// Total negative discrimination (node-seconds of under-service); the
    /// headline inequality number — 0 means perfectly egalitarian.
    pub fn total_underservice(&self) -> f64 {
        self.discrimination
            .iter()
            .map(|&(_, d)| (-d).max(0.0))
            .sum()
    }

    /// Population standard deviation of discrimination.
    pub fn discrimination_stddev(&self) -> f64 {
        let n = self.discrimination.len();
        if n == 0 {
            return 0.0;
        }
        let mean: f64 = self.discrimination.iter().map(|&(_, d)| d).sum::<f64>() / n as f64;
        let var: f64 = self
            .discrimination
            .iter()
            .map(|&(_, d)| (d - mean) * (d - mean))
            .sum::<f64>()
            / n as f64;
        var.sqrt()
    }

    /// Discrimination of one job, if scored.
    pub fn of(&self, id: JobId) -> Option<f64> {
        self.discrimination
            .binary_search_by_key(&id, |&(i, _)| i)
            .ok()
            .map(|i| self.discrimination[i].1)
    }
}

/// Computes the resource-equality report for a schedule.
///
/// Convenience wrapper over [`equality_of`] using the schedule's machine
/// size and records.
pub fn equality_report(schedule: &Schedule) -> EqualityReport {
    equality_of(schedule.nodes, &schedule.records)
}

/// The metric's core: computes per-job discrimination from raw records on a
/// `nodes`-wide machine.
///
/// Builds the live-job count `N(t)` from the records' submit/end instants
/// and integrates each job's deserved share exactly (the step function
/// changes only at submits and ends). Shared by [`equality_report`] and
/// [`EqualityObserver`], so single-pass collection is byte-identical to a
/// dedicated scoring run.
pub fn equality_of(nodes: u32, records: &[JobRecord]) -> EqualityReport {
    if records.is_empty() {
        return EqualityReport::default();
    }

    // Breakpoints: +1 at submit, −1 at end.
    let mut deltas: Vec<(u64, i64)> = Vec::with_capacity(records.len() * 2);
    for r in records {
        deltas.push((r.submit, 1));
        deltas.push((r.end, -1));
    }
    deltas.sort_unstable();

    // Collapse into segments [t_i, t_{i+1}) with constant live count, and
    // record the cumulative "deserved-share integral per live job":
    // I(t) = ∫_0^t SystemSize / N(s) ds over regions where N > 0.
    let mut times = Vec::new();
    let mut integral = Vec::new(); // I at each time
    let mut live: i64 = 0;
    let mut acc = 0.0f64;
    let size = nodes as f64;
    let mut i = 0;
    let mut last_t = deltas[0].0;
    times.push(last_t);
    integral.push(0.0);
    while i < deltas.len() {
        let t = deltas[i].0;
        if t > last_t {
            if live > 0 {
                acc += size / live as f64 * (t - last_t) as f64;
            }
            times.push(t);
            integral.push(acc);
            last_t = t;
        }
        while i < deltas.len() && deltas[i].0 == t {
            live += deltas[i].1;
            i += 1;
        }
    }

    let lookup = |t: u64| -> f64 {
        match times.binary_search(&t) {
            Ok(idx) => integral[idx],
            Err(idx) => {
                // All record times are breakpoints, so this only happens for
                // t outside the observed range.
                if idx == 0 {
                    0.0
                } else {
                    integral[idx - 1]
                }
            }
        }
    };

    let mut discrimination: Vec<(JobId, f64)> = records
        .iter()
        .map(|r| {
            let deserved = lookup(r.end) - lookup(r.submit);
            let received = r.nodes as f64 * r.executed() as f64;
            (r.id, received - deserved)
        })
        .collect();
    discrimination.sort_by_key(|&(id, _)| id);
    EqualityReport { discrimination }
}

/// Deserved node-seconds per job (exposed for tests and analysis).
pub fn deserved_shares(schedule: &Schedule) -> HashMap<JobId, f64> {
    let report = equality_report(schedule);
    schedule
        .records
        .iter()
        .map(|r| {
            let received = r.nodes as f64 * r.executed() as f64;
            let disc = report.of(r.id).expect("every record scored");
            (r.id, received - disc)
        })
        .collect()
}

/// Observer form of the metric: attach to one `simulate` run (alone or
/// inside an [`fairsched_sim::ObserverSet`]) and collect the
/// [`EqualityReport`] without a second scoring pass over the schedule.
///
/// The report is computed in [`Observer::on_finish`] from the finished
/// schedule via [`equality_of`], so it is byte-identical to calling
/// [`equality_report`] on the same schedule afterwards.
#[derive(Debug, Default)]
pub struct EqualityObserver {
    report: Option<EqualityReport>,
}

impl EqualityObserver {
    /// A fresh observer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the observer into its report.
    ///
    /// # Panics
    /// If the observer was never attached to a completed simulation.
    pub fn into_report(self) -> EqualityReport {
        self.report
            .expect("EqualityObserver must observe a completed simulation")
    }
}

impl Observer for EqualityObserver {
    fn on_finish(&mut self, schedule: &Schedule) {
        self.report = Some(equality_report(schedule));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairsched_sim::{simulate, EngineKind, KillPolicy, NullObserver, SimConfig, SimOptions};
    use fairsched_workload::job::Job;
    use fairsched_workload::time::Time;

    fn cfg(nodes: u32) -> SimConfig {
        SimConfig {
            nodes,
            engine: EngineKind::NoGuarantee,
            kill: KillPolicy::Never,
            ..Default::default()
        }
    }

    fn job(id: u32, user: u32, submit: Time, nodes: u32, runtime: Time) -> Job {
        Job::new(id, user, 1, submit, nodes, runtime, runtime)
    }

    #[test]
    fn lone_job_deserves_the_whole_machine() {
        // One live job: deserves SystemSize × its lifetime = 10 × 100; it
        // received 4 × 100 → discrimination -600 (it could not use its whole
        // entitlement, which is fine — the metric is about *relative* shares).
        let s = simulate(
            &[job(1, 1, 0, 4, 100)],
            &cfg(10),
            &mut NullObserver,
            SimOptions::new(),
        )
        .unwrap();
        let r = equality_report(&s);
        assert!((r.of(JobId(1)).unwrap() - (400.0 - 1000.0)).abs() < 1e-9);
    }

    #[test]
    fn equal_concurrent_jobs_have_equal_discrimination() {
        // Two identical jobs, same submit, both fit: identical treatment.
        let trace = [job(1, 1, 0, 5, 100), job(2, 2, 0, 5, 100)];
        let s = simulate(&trace, &cfg(10), &mut NullObserver, SimOptions::new()).unwrap();
        let r = equality_report(&s);
        let d1 = r.of(JobId(1)).unwrap();
        let d2 = r.of(JobId(2)).unwrap();
        assert!((d1 - d2).abs() < 1e-9);
        // Each deserved 10/2 × 100 = 500 and received 500: zero.
        assert!(d1.abs() < 1e-9);
        assert_eq!(r.total_underservice(), 0.0);
    }

    #[test]
    fn queued_job_accrues_entitlement_it_does_not_receive() {
        // Job 2 waits 100 s behind job 1 on a full machine. While queued it
        // deserved a share it received none of → negative discrimination;
        // job 1, running alone-then-sharing, is positive.
        let trace = [job(1, 1, 0, 10, 100), job(2, 2, 0, 10, 100)];
        let s = simulate(&trace, &cfg(10), &mut NullObserver, SimOptions::new()).unwrap();
        let r = equality_report(&s);
        let d1 = r.of(JobId(1)).unwrap();
        let d2 = r.of(JobId(2)).unwrap();
        assert!(d1 > 0.0, "first job over-served: {d1}");
        assert!(d2 < 0.0, "queued job under-served: {d2}");
        // Shares are zero-sum here: both live over [0,200) total entitlement
        // = machine capacity over [0,200) = received total.
        assert!((d1 + d2).abs() < 1e-9);
        assert!((r.total_underservice() - d2.abs()) < 1e-9);
        assert!(r.discrimination_stddev() > 0.0);
    }

    #[test]
    fn empty_schedule_reports_nothing() {
        let s = simulate(&[], &cfg(10), &mut NullObserver, SimOptions::new()).unwrap();
        let r = equality_report(&s);
        assert!(r.discrimination.is_empty());
        assert_eq!(r.total_underservice(), 0.0);
        assert_eq!(r.discrimination_stddev(), 0.0);
    }

    #[test]
    fn observer_matches_post_hoc_scoring() {
        let trace = [job(1, 1, 0, 10, 100), job(2, 2, 0, 10, 100)];
        let mut obs = EqualityObserver::new();
        let s = simulate(&trace, &cfg(10), &mut obs, SimOptions::new()).unwrap();
        assert_eq!(obs.into_report(), equality_report(&s));
    }

    #[test]
    fn deserved_shares_reconstruct_received_minus_discrimination() {
        let trace = [job(1, 1, 0, 10, 100), job(2, 2, 0, 10, 100)];
        let s = simulate(&trace, &cfg(10), &mut NullObserver, SimOptions::new()).unwrap();
        let shares = deserved_shares(&s);
        // Job 1: live [0,100) sharing with job 2 → deserved 10/2×100 = 500.
        assert!((shares[&JobId(1)] - 500.0).abs() < 1e-9);
        // Job 2: live [0,200): shares [0,100) (500) + alone [100,200) (1000).
        assert!((shares[&JobId(2)] - 1500.0).abs() < 1e-9);
    }
}
