//! The hybrid "fairshare" fair-start-time metric — the paper's contribution
//! (§4.1).
//!
//! At each job arrival, take the scheduler's state as it stands (running
//! jobs until their actual ends, queued jobs) and build the schedule a
//! **no-backfill list scheduler** would produce if *no later job ever
//! arrived*, processing the queue in **fairshare priority order**. The
//! arriving job's start in that schedule is its fair start time:
//!
//! * it does not depend on the scheduler under test (unlike Sabin &
//!   Sadayappan's FST), so reports are comparable across policies;
//! * it does not bless one global CONS_P schedule, so high-utilization
//!   schedules cannot launder deliberate reordering;
//! * it encodes Sandia's own notion of social justice — "if all jobs were
//!   run in fairshare order, the scheduler is fair".
//!
//! [`HybridFstObserver`] implements the simulator's observer hook: it
//! computes the FST at every arrival (amortized `O((running + queued)·log)`
//! via the compressed [`NodeTimeline`]) and pairs it with the start the
//! scheduler eventually delivers.

use crate::fairness::fst::{FstEntry, FstReport};
use fairsched_sim::state::priority_order;
use fairsched_sim::{ArrivalView, NodeTimeline, Observer};
use fairsched_workload::job::JobId;
use fairsched_workload::time::Time;
use std::collections::HashMap;

/// Observer computing hybrid fairshare FSTs during a simulation run.
///
/// Attach to [`fairsched_sim::simulate`] (alone or inside an
/// [`fairsched_sim::ObserverSet`]), then call
/// [`HybridFstObserver::into_report`].
///
/// ```
/// use fairsched_metrics::fairness::hybrid::HybridFstObserver;
/// use fairsched_sim::{simulate, SimConfig, SimOptions};
/// use fairsched_workload::CplantModel;
///
/// let trace = CplantModel::new(1).with_scale(0.01).generate();
/// let cfg = SimConfig::default();
/// let mut observer = HybridFstObserver::new();
/// let _schedule = simulate(&trace, &cfg, &mut observer, SimOptions::new()).unwrap();
/// let report = observer.into_report();
/// assert_eq!(report.entries.len(), trace.len());
/// assert!(report.percent_unfair() <= 1.0);
/// ```
#[derive(Debug, Default)]
pub struct HybridFstObserver {
    fsts: HashMap<JobId, (Time, u32)>, // fst, nodes
    starts: HashMap<JobId, Time>,
}

impl HybridFstObserver {
    /// A fresh observer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the observer into a per-job report. Jobs that never started
    /// (impossible in a drained simulation) are dropped.
    pub fn into_report(self) -> FstReport {
        self.report()
    }

    /// A non-consuming snapshot of the report so far: entries for every
    /// job that has both an FST and a start. Mid-run this is the live
    /// verdict over started jobs; after a drained run it is identical to
    /// [`HybridFstObserver::into_report`].
    pub fn report(&self) -> FstReport {
        let entries = self
            .fsts
            .iter()
            .filter_map(|(&id, &(fst, nodes))| {
                self.starts.get(&id).map(|&start| FstEntry {
                    id,
                    nodes,
                    fst,
                    start,
                })
            })
            .collect();
        FstReport::new(entries)
    }

    /// The fair start time computed for `id` at its arrival, if any.
    pub fn fst_of(&self, id: JobId) -> Option<Time> {
        self.fsts.get(&id).map(|&(fst, _)| fst)
    }

    /// Injects a precomputed FST — test support for gauge arithmetic that
    /// wants a frozen mid-run state without driving a simulation.
    #[cfg(test)]
    pub(crate) fn insert_fst(&mut self, id: JobId, fst: Time, nodes: u32) {
        self.fsts.insert(id, (fst, nodes));
    }
}

impl Observer for HybridFstObserver {
    fn on_arrival(&mut self, view: &ArrivalView<'_>) {
        // State snapshot: running jobs occupy their nodes until their
        // *actual* scheduled ends (the perfect-estimate convention CONS_P
        // established and the hybrid metric keeps).
        let running: Vec<(Time, u32)> = view
            .running
            .iter()
            .map(|r| (r.scheduled_end, r.nodes))
            .collect();
        let mut timeline = NodeTimeline::with_running(view.total_nodes, view.now, &running);

        // List-schedule the queue (arriving job included) in the priority
        // order of the scheduler under test, with actual runtimes. Jobs
        // behind the arriving one cannot affect its placement, so stop there.
        let order = priority_order(view.queue, view.order, view.fairshare);
        for &i in &order {
            let q = &view.queue[i];
            let runtime = *view.runtimes.get(&q.id).expect("queued job has a runtime");
            let start = timeline.place(view.now, q.nodes, runtime);
            if q.id == view.job.id {
                self.fsts.insert(q.id, (start, q.nodes));
                return;
            }
        }
        unreachable!("arriving job is always in the queue");
    }

    fn on_start(&mut self, id: JobId, now: Time) {
        self.starts.insert(id, now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairsched_sim::{
        simulate, EngineKind, KillPolicy, QueueOrder, SimConfig, SimOptions, StarvationConfig,
    };
    use fairsched_workload::job::Job;
    use fairsched_workload::time::HOUR;

    fn cfg(nodes: u32, engine: EngineKind) -> SimConfig {
        SimConfig {
            nodes,
            engine,
            kill: KillPolicy::Never,
            starvation: Some(StarvationConfig::default()),
            ..Default::default()
        }
    }

    fn job(id: u32, user: u32, submit: Time, nodes: u32, runtime: Time, estimate: Time) -> Job {
        Job::new(id, user, 1, submit, nodes, runtime, estimate)
    }

    fn report(trace: &[Job], cfg: &SimConfig) -> FstReport {
        let mut obs = HybridFstObserver::new();
        simulate(trace, cfg, &mut obs, SimOptions::new()).unwrap();
        obs.into_report()
    }

    #[test]
    fn uncontended_jobs_are_fair() {
        let trace = [job(1, 1, 0, 4, 100, 100), job(2, 2, 500, 4, 100, 100)];
        let r = report(&trace, &cfg(10, EngineKind::NoGuarantee));
        assert_eq!(r.entries.len(), 2);
        assert_eq!(r.percent_unfair(), 0.0);
        // FST of an immediately-startable job is its arrival instant.
        assert_eq!(r.entries[0].fst, 0);
        assert_eq!(r.entries[1].fst, 500);
    }

    #[test]
    fn fst_accounts_for_work_already_queued() {
        // Machine full until 100; two 10-node jobs queued ahead with equal
        // fairshare (FCFS tie-break). The third arrival's FST stacks behind
        // both: 100 (runner) + 100 + 100 = start at 300.
        let trace = [
            job(1, 1, 0, 10, 100, 100),
            job(2, 2, 1, 10, 100, 100),
            job(3, 3, 2, 10, 100, 100),
            job(4, 4, 3, 10, 100, 100),
        ];
        let r = report(&trace, &cfg(10, EngineKind::NoGuarantee));
        let e4 = r.entries.iter().find(|e| e.id == JobId(4)).unwrap();
        assert_eq!(e4.fst, 300);
        assert_eq!(e4.start, 300);
        assert!(!e4.unfair());
    }

    #[test]
    fn fairshare_order_shapes_the_fst() {
        // User 1 has burned the machine; user 2 is idle. Both queue jobs
        // while the machine is full. In fairshare order user 2's job goes
        // first, so user 1's queued job has a LATER fst than FCFS would say.
        let trace = [
            job(1, 1, 0, 10, 10 * HOUR, 10 * HOUR), // builds user 1 usage
            job(2, 1, 100, 10, HOUR, HOUR),
            job(3, 2, 200, 10, HOUR, HOUR),
        ];
        let r = report(&trace, &cfg(10, EngineKind::NoGuarantee));
        let e2 = r.entries.iter().find(|e| e.id == JobId(2)).unwrap();
        let e3 = r.entries.iter().find(|e| e.id == JobId(3)).unwrap();
        // Job 3's FST: starts right when the runner ends. Job 2's FST was
        // computed at its own arrival (queue = {2}), so it also expected to
        // start at the runner's end — but the scheduler ran job 3 first.
        assert_eq!(e3.fst, 10 * HOUR);
        assert_eq!(e2.fst, 10 * HOUR);
        assert_eq!(e3.start, 10 * HOUR);
        assert_eq!(e2.start, 11 * HOUR);
        // Job 2 missed its FST: a later-arriving, higher-priority job
        // displaced it. The hybrid metric counts that as unfairness
        // *relative to the state at its arrival*.
        assert!(e2.unfair());
        assert_eq!(e2.miss(), HOUR);
    }

    #[test]
    fn backfilling_past_the_fst_is_benign() {
        // A narrow job that backfills ahead of its list-scheduled slot
        // starts BEFORE its FST: not unfair, miss 0.
        let trace = [
            job(1, 1, 0, 6, 1000, 1000),
            job(2, 2, 1, 8, 1000, 1000), // waits (needs 8, only 4 free)
            job(3, 3, 2, 4, 10, 10),     // backfills immediately
        ];
        let r = report(&trace, &cfg(10, EngineKind::NoGuarantee));
        let e3 = r.entries.iter().find(|e| e.id == JobId(3)).unwrap();
        // List scheduler (no holes): job 3 is placed after jobs 1 and 2
        // claim their nodes; its FST is later than its actual start.
        assert_eq!(e3.start, 2);
        assert!(e3.fst >= e3.start);
        assert!(!e3.unfair());
    }

    #[test]
    fn report_covers_every_submission() {
        let trace = fairsched_workload::synthetic::random_trace(11, 120, 10, 2000);
        let r = report(
            &trace,
            &cfg(10, EngineKind::Conservative { dynamic: false }),
        );
        assert_eq!(r.entries.len(), trace.len());
    }

    #[test]
    fn conservative_with_fcfs_and_perfect_estimates_is_nearly_fair() {
        // §4's observation: CONS with perfect estimates is socially just.
        // With FCFS order and perfect estimates, misses should be zero.
        let mut trace = fairsched_workload::synthetic::random_trace(13, 150, 10, 2000);
        for j in &mut trace {
            j.estimate = j.runtime;
        }
        let mut c = cfg(10, EngineKind::Conservative { dynamic: false });
        c.order = QueueOrder::Fcfs;
        let r = report(&trace, &c);
        // The list-scheduler FST is *more* conservative than backfilling, so
        // every job should start at or before its FST.
        assert_eq!(r.percent_unfair(), 0.0, "misses: {:?}", r.total_miss());
    }
}
