//! The evaluation figures (8–19): thin adapters from an [`Evaluation`] to
//! the exact rows each paper figure plots.

use crate::Evaluation;

/// Figure 8: percent of unfair jobs, minor-change policies.
pub fn fig08(e: &Evaluation) -> String {
    e.scalar_figure(
        "Figure 8: Percent of jobs that missed the fair start time (minor changes)",
        "%",
        &Evaluation::minor_indices(),
        |m| m.percent_unfair,
    )
}

/// Figure 9: average miss time, minor-change policies.
pub fn fig09(e: &Evaluation) -> String {
    e.scalar_figure(
        "Figure 9: Average fair start miss time (minor changes)",
        "seconds",
        &Evaluation::minor_indices(),
        |m| m.average_miss_time,
    )
}

/// Figure 10: average miss time by width, minor-change policies.
pub fn fig10(e: &Evaluation) -> String {
    e.width_figure(
        "Figure 10: Average fair start miss time by width (minor changes)",
        "seconds",
        &Evaluation::minor_indices(),
        |m| m.miss_by_width,
    )
}

/// Figure 11: average turnaround time, minor-change policies.
pub fn fig11(e: &Evaluation) -> String {
    e.scalar_figure(
        "Figure 11: Average turnaround time (minor changes)",
        "seconds",
        &Evaluation::minor_indices(),
        |m| m.average_turnaround,
    )
}

/// Figure 12: average turnaround time by width, minor-change policies.
pub fn fig12(e: &Evaluation) -> String {
    e.width_figure(
        "Figure 12: Average turnaround time by width (minor changes)",
        "seconds",
        &Evaluation::minor_indices(),
        |m| m.turnaround_by_width,
    )
}

/// Figure 13: loss of capacity, minor-change policies.
pub fn fig13(e: &Evaluation) -> String {
    e.scalar_figure(
        "Figure 13: Loss of capacity (minor changes)",
        "%",
        &Evaluation::minor_indices(),
        |m| m.loss_of_capacity,
    )
}

/// Figure 14: percent of unfair jobs, all nine policies.
pub fn fig14(e: &Evaluation) -> String {
    e.scalar_figure(
        "Figure 14: Percent of jobs that missed the fair start time (all policies)",
        "%",
        &Evaluation::all_indices(),
        |m| m.percent_unfair,
    )
}

/// Figure 15: average miss time, all nine policies.
pub fn fig15(e: &Evaluation) -> String {
    e.scalar_figure(
        "Figure 15: Average fair start miss time (all policies)",
        "seconds",
        &Evaluation::all_indices(),
        |m| m.average_miss_time,
    )
}

/// Figure 16: average miss time by width, conservative comparison set.
pub fn fig16(e: &Evaluation) -> String {
    e.width_figure(
        "Figure 16: Average miss time by width (conservative backfilling)",
        "seconds",
        &Evaluation::conservative_indices(),
        |m| m.miss_by_width,
    )
}

/// Figure 17: average turnaround time, all nine policies.
pub fn fig17(e: &Evaluation) -> String {
    e.scalar_figure(
        "Figure 17: Average turnaround time (all policies)",
        "seconds",
        &Evaluation::all_indices(),
        |m| m.average_turnaround,
    )
}

/// Figure 18: average turnaround time by width, conservative comparison set.
pub fn fig18(e: &Evaluation) -> String {
    e.width_figure(
        "Figure 18: Average turnaround time by width (conservative backfilling)",
        "seconds",
        &Evaluation::conservative_indices(),
        |m| m.turnaround_by_width,
    )
}

/// Figure 19: loss of capacity, all nine policies.
pub fn fig19(e: &Evaluation) -> String {
    e.scalar_figure(
        "Figure 19: Loss of capacity (all policies)",
        "%",
        &Evaluation::all_indices(),
        |m| m.loss_of_capacity,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{evaluate, ExperimentConfig};

    #[test]
    fn every_figure_renders_with_the_right_policy_count() {
        let e = evaluate(ExperimentConfig {
            seed: 5,
            scale: 0.015,
            nodes: 1024,
        });
        // Scalar figures: header + unit line + one row per policy.
        for (fig, n) in [
            (fig08(&e), 5),
            (fig09(&e), 5),
            (fig11(&e), 5),
            (fig13(&e), 5),
            (fig14(&e), 9),
            (fig15(&e), 9),
            (fig17(&e), 9),
            (fig19(&e), 9),
        ] {
            assert_eq!(fig.lines().count(), n + 2, "{fig}");
        }
        // Width figures: header + column line + one row per policy.
        for (fig, n) in [
            (fig10(&e), 5),
            (fig12(&e), 5),
            (fig16(&e), 5),
            (fig18(&e), 5),
        ] {
            assert_eq!(fig.lines().count(), n + 2, "{fig}");
        }
    }

    #[test]
    fn figure_titles_match_the_paper() {
        let e = evaluate(ExperimentConfig {
            seed: 5,
            scale: 0.01,
            nodes: 1024,
        });
        assert!(fig08(&e).contains("Figure 8"));
        assert!(fig16(&e).contains("conservative backfilling"));
        assert!(fig19(&e).contains("Loss of capacity"));
    }
}
