//! Regenerates turnaround_all (paper Figure 17).
fn main() {
    let cfg = fairsched_experiments::ExperimentConfig::from_env();
    let e = fairsched_experiments::evaluate(cfg);
    print!("{}", fairsched_experiments::figures::fig17(&e));
}
