//! Crash-safe design-space sweep over the paper's policy set.
//!
//! Runs seeds × the nine §5.5 policies × fault points through the durable
//! sweep harness ([`fairsched_core::run_sweep`]): every cell lands in an
//! append-only checksummed journal as it completes, a SIGKILLed run resumes
//! with `FAIRSCHED_SWEEP_RESUME=1` without re-simulating finished cells,
//! and hung or panicking cells degrade to typed rows instead of taking the
//! grid down.
//!
//! Extra environment knobs on top of the usual `FAIRSCHED_*` trio:
//!
//! | variable | default | meaning |
//! |---|---|---|
//! | `FAIRSCHED_SWEEP_JOURNAL` | `sweep.jsonl` | journal path |
//! | `FAIRSCHED_SWEEP_SEEDS` | the base seed | comma-separated seed list |
//! | `FAIRSCHED_SWEEP_TIMEOUT` | off | per-cell budget in seconds |
//! | `FAIRSCHED_SWEEP_RETRIES` | `1` | extra attempts after a timeout |
//! | `FAIRSCHED_SWEEP_RESUME` | `0` | `1`: resume an interrupted journal |
//! | `FAIRSCHED_CRASH_RATE` | `0` | adds a faulted grid slice when > 0 |
//! | `FAIRSCHED_FAULT_SEED` | `0` | base fault seed of that slice |

use fairsched_core::policy::PolicySpec;
use fairsched_core::{run_sweep, FaultPoint, SweepConfig, SweepPlan};
use fairsched_experiments::ExperimentConfig;
use fairsched_sim::FaultConfig;
use std::time::Duration;

fn env_parse<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let cfg = ExperimentConfig::from_env();
    let seeds: Vec<u64> = std::env::var("FAIRSCHED_SWEEP_SEEDS")
        .map(|s| {
            s.split(',')
                .filter(|p| !p.is_empty())
                .map(|p| p.parse().expect("FAIRSCHED_SWEEP_SEEDS: integer list"))
                .collect()
        })
        .unwrap_or_else(|_| vec![cfg.seed]);
    let crash_rate = env_parse("FAIRSCHED_CRASH_RATE", 0.0f64);
    let mut faults = vec![FaultPoint::clean()];
    if crash_rate > 0.0 {
        faults.push(FaultPoint {
            label: format!("crash{crash_rate}"),
            config: FaultConfig {
                job_crash_rate: crash_rate,
                seed: env_parse("FAIRSCHED_FAULT_SEED", 0u64),
                ..FaultConfig::default()
            },
        });
    }

    let sweep = SweepConfig {
        plan: SweepPlan {
            seeds,
            policies: PolicySpec::paper_policies(),
            faults,
            scale: cfg.scale,
            nodes: cfg.nodes,
            exact_estimates: false,
        },
        journal: std::env::var("FAIRSCHED_SWEEP_JOURNAL")
            .unwrap_or_else(|_| "sweep.jsonl".into())
            .into(),
        timeout_per_cell: std::env::var("FAIRSCHED_SWEEP_TIMEOUT")
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Duration::from_secs_f64),
        max_retries: env_parse("FAIRSCHED_SWEEP_RETRIES", 1u32),
        resume: env_parse("FAIRSCHED_SWEEP_RESUME", 0u32) == 1,
        threads: None,
    };
    println!(
        "design-space sweep: {} cells ({} seeds x {} policies x {} faults) scale={} nodes={}",
        sweep.plan.len(),
        sweep.plan.seeds.len(),
        sweep.plan.policies.len(),
        sweep.plan.faults.len(),
        sweep.plan.scale,
        sweep.plan.nodes,
    );

    let summary = run_sweep(&sweep).expect("sweep journal IO");
    println!(
        "{:<5} {:<22} {:>10} {:<12} {:>9} {:>8} {:>8} {:>10}",
        "cell", "policy", "seed", "fault", "status", "attempts", "unfair%", "miss(s)"
    );
    for r in &summary.rows {
        let (unfair, miss) = match &r.metrics {
            Some(m) => (
                format!("{:>7.2}%", 100.0 * m.percent_unfair),
                format!("{:>10.0}", m.average_miss_time),
            ),
            None => ("       -".into(), "         -".into()),
        };
        println!(
            "{:<5} {:<22} {:>10} {:<12} {:>9} {:>8} {unfair} {miss}",
            r.cell,
            r.policy,
            r.workload_seed,
            r.fault,
            r.status.as_str(),
            r.attempts,
        );
    }
    println!("{summary}");
    println!("journal: {}", sweep.journal.display());
}
