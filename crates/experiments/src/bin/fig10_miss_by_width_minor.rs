//! Regenerates miss_by_width_minor (paper Figure 10).
fn main() {
    let cfg = fairsched_experiments::ExperimentConfig::from_env();
    let e = fairsched_experiments::evaluate(cfg);
    print!("{}", fairsched_experiments::figures::fig10(&e));
}
