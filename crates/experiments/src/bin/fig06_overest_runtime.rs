//! Regenerates Figure 6: over-estimation factor vs runtime (decade grid).
fn main() {
    let cfg = fairsched_experiments::ExperimentConfig::from_env();
    let trace = cfg.trace();
    print!(
        "{}",
        fairsched_experiments::characterization::fig06_report(&trace)
    );
}
