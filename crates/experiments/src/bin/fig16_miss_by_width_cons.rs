//! Regenerates miss_by_width_cons (paper Figure 16).
fn main() {
    let cfg = fairsched_experiments::ExperimentConfig::from_env();
    let e = fairsched_experiments::evaluate(cfg);
    print!("{}", fairsched_experiments::figures::fig16(&e));
}
