//! Regenerates Figure 4: runtime vs node usage scatter (decade grid).
fn main() {
    let cfg = fairsched_experiments::ExperimentConfig::from_env();
    let trace = cfg.trace();
    print!(
        "{}",
        fairsched_experiments::characterization::fig04_report(&trace)
    );
}
