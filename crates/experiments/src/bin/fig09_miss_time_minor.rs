//! Regenerates miss_time_minor (paper Figure 09).
fn main() {
    let cfg = fairsched_experiments::ExperimentConfig::from_env();
    let e = fairsched_experiments::evaluate(cfg);
    print!("{}", fairsched_experiments::figures::fig09(&e));
}
