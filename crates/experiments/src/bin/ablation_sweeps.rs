//! Runs every sensitivity ablation DESIGN.md calls out and prints one
//! table per knob. Scale down via FAIRSCHED_SCALE for quick looks.
use fairsched_experiments::{ablations as ab, ExperimentConfig};

fn main() {
    fairsched_obs::log::quiet_from_env();
    let cfg = ExperimentConfig::from_env();
    fairsched_obs::log::info(format!(
        "workload: seed={} scale={} nodes={}",
        cfg.seed, cfg.scale, cfg.nodes
    ));
    let trace = cfg.trace();
    println!(
        "{}",
        ab::render(
            "fairshare decay factor",
            &ab::decay_factor_sweep(&trace, cfg.nodes)
        )
    );
    println!(
        "{}",
        ab::render(
            "starvation entry delay",
            &ab::starvation_delay_sweep(&trace, cfg.nodes)
        )
    );
    println!(
        "{}",
        ab::render(
            "maximum runtime limit",
            &ab::runtime_limit_sweep(&trace, cfg.nodes)
        )
    );
    println!(
        "{}",
        ab::render(
            "heavy-user threshold",
            &ab::heavy_threshold_sweep(&trace, cfg.nodes)
        )
    );
    println!(
        "{}",
        ab::render(
            "reservation depth",
            &ab::reservation_depth_sweep(&trace, cfg.nodes)
        )
    );
    println!(
        "{}",
        ab::render(
            "user concurrency (closed loop)",
            &ab::user_concurrency_sweep(&trace, cfg.nodes)
        )
    );
    println!(
        "{}",
        ab::render(
            "user width affinity",
            &ab::width_affinity_sweep(cfg.seed, cfg.scale, cfg.nodes)
        )
    );
    println!(
        "{}",
        ab::render("machine size", &ab::machine_size_sweep(cfg.seed, cfg.scale))
    );
}
