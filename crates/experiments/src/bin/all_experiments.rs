//! Regenerates every table and figure of the paper in one run: the nine
//! policy simulations execute once and every artifact prints in paper order.
use fairsched_experiments::{characterization as ch, figures as f};

fn main() {
    fairsched_obs::log::quiet_from_env();
    let cfg = fairsched_experiments::ExperimentConfig::from_env();
    fairsched_obs::log::info(format!(
        "workload: seed={} scale={} nodes={}",
        cfg.seed, cfg.scale, cfg.nodes
    ));
    let e = fairsched_experiments::evaluate(cfg);
    for failure in e.failures() {
        fairsched_obs::log::warn(format!("{failure} (its rows are skipped below)"));
    }
    println!("{}", ch::table1_report(&e.trace));
    println!("{}", ch::table2_report(&e.trace));
    println!("{}", ch::fig03_report(&e));
    println!("{}", ch::fig04_report(&e.trace));
    println!("{}", ch::fig05_report(&e.trace));
    println!("{}", ch::fig06_report(&e.trace));
    println!("{}", ch::fig07_report(&e.trace));
    for fig in [
        f::fig08(&e),
        f::fig09(&e),
        f::fig10(&e),
        f::fig11(&e),
        f::fig12(&e),
        f::fig13(&e),
        f::fig14(&e),
        f::fig15(&e),
        f::fig16(&e),
        f::fig17(&e),
        f::fig18(&e),
        f::fig19(&e),
    ] {
        println!("{fig}");
    }
}
