//! The size-based fairness study: FSP / LAS / HFSP against the paper's
//! nine policies, under both runtime-estimate models.
//!
//! The combined grid — nine §5.5 CPlant/conservative rows plus the six
//! size-based family rows — is crossed with two estimate-error models:
//!
//! * **modeled** — the calibrated Figure 5–7 over-estimation model the
//!   generator applies by default (what schedulers actually see);
//! * **exact** — every estimate replaced by the true runtime, the
//!   idealized bound size-based policies are usually evaluated at.
//!
//! Each model runs as one crash-safe sweep through the durable journal
//! harness (`fairsched_core::run_sweep`), so a killed study resumes with
//! `FAIRSCHED_SWEEP_RESUME=1`; the two journals differ in fingerprint (the
//! exact axis is part of it) and live side by side. After both grids
//! complete, the policies are ranked by %unfair under each model — the
//! table EXPERIMENTS.md quotes.
//!
//! Environment knobs beyond the usual `FAIRSCHED_*` trio:
//!
//! | variable | default | meaning |
//! |---|---|---|
//! | `FAIRSCHED_SWEEP_JOURNAL` | `size_based.jsonl` | journal stem; the exact-model journal appends `.exact` before the extension |
//! | `FAIRSCHED_SWEEP_SEEDS` | the base seed | comma-separated seed list |
//! | `FAIRSCHED_SWEEP_TIMEOUT` | off | per-cell budget in seconds |
//! | `FAIRSCHED_SWEEP_RETRIES` | `1` | extra attempts after a timeout |
//! | `FAIRSCHED_SWEEP_RESUME` | `0` | `1`: resume interrupted journals |

use fairsched_core::policy::PolicySpec;
use fairsched_core::{run_sweep, CellStatus, FaultPoint, SweepConfig, SweepPlan, SweepSummary};
use fairsched_experiments::ExperimentConfig;
use std::time::Duration;

fn env_parse<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// The study's policy axis: the paper's nine plus the size-based family.
fn combined_policies() -> Vec<PolicySpec> {
    let mut policies = PolicySpec::paper_policies();
    policies.extend(PolicySpec::size_based_policies());
    policies
}

fn run_grid(
    cfg: &ExperimentConfig,
    seeds: &[u64],
    journal: std::path::PathBuf,
    exact_estimates: bool,
) -> SweepSummary {
    let sweep = SweepConfig {
        plan: SweepPlan {
            seeds: seeds.to_vec(),
            policies: combined_policies(),
            faults: vec![FaultPoint::clean()],
            scale: cfg.scale,
            nodes: cfg.nodes,
            exact_estimates,
        },
        journal,
        timeout_per_cell: std::env::var("FAIRSCHED_SWEEP_TIMEOUT")
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Duration::from_secs_f64),
        max_retries: env_parse("FAIRSCHED_SWEEP_RETRIES", 1u32),
        resume: env_parse("FAIRSCHED_SWEEP_RESUME", 0u32) == 1,
        threads: None,
    };
    let model = if exact_estimates { "exact" } else { "modeled" };
    println!(
        "size-based grid [{model}]: {} cells ({} seeds x {} policies) scale={} nodes={} -> {}",
        sweep.plan.len(),
        sweep.plan.seeds.len(),
        sweep.plan.policies.len(),
        sweep.plan.scale,
        sweep.plan.nodes,
        sweep.journal.display(),
    );
    let summary = run_sweep(&sweep).expect("sweep journal IO");
    println!("{summary}");
    summary
}

/// Mean %unfair and miss over a journal's ok rows, keyed by policy id.
fn ranking(summary: &SweepSummary) -> Vec<(String, f64, f64)> {
    let mut rows: Vec<(String, f64, f64)> = combined_policies()
        .iter()
        .filter_map(|p| {
            let cells: Vec<_> = summary
                .rows
                .iter()
                .filter(|r| r.policy == p.id.as_ref() && r.status == CellStatus::Ok)
                .filter_map(|r| r.metrics.as_ref())
                .collect();
            if cells.is_empty() {
                return None;
            }
            let n = cells.len() as f64;
            let unfair = cells.iter().map(|m| m.percent_unfair).sum::<f64>() / n;
            let miss = cells.iter().map(|m| m.average_miss_time).sum::<f64>() / n;
            Some((p.id.to_string(), unfair, miss))
        })
        .collect();
    rows.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
    rows
}

fn main() {
    let cfg = ExperimentConfig::from_env();
    let seeds: Vec<u64> = std::env::var("FAIRSCHED_SWEEP_SEEDS")
        .map(|s| {
            s.split(',')
                .filter(|p| !p.is_empty())
                .map(|p| p.parse().expect("FAIRSCHED_SWEEP_SEEDS: integer list"))
                .collect()
        })
        .unwrap_or_else(|_| vec![cfg.seed]);

    let stem =
        std::env::var("FAIRSCHED_SWEEP_JOURNAL").unwrap_or_else(|_| "size_based.jsonl".into());
    let exact_journal = match stem.rsplit_once('.') {
        Some((base, ext)) => format!("{base}.exact.{ext}"),
        None => format!("{stem}.exact"),
    };

    let modeled = run_grid(&cfg, &seeds, stem.clone().into(), false);
    let exact = run_grid(&cfg, &seeds, exact_journal.clone().into(), true);

    println!();
    println!("ranking by %unfair (mean over seeds; modeled = Figure 5-7 over-estimation)");
    println!(
        "{:<6} {:<22} {:>14} {:>12}   {:<22} {:>14} {:>12}",
        "rank", "modeled", "unfair%", "miss(s)", "exact", "unfair%", "miss(s)"
    );
    let modeled_rank = ranking(&modeled);
    let exact_rank = ranking(&exact);
    for (i, pair) in modeled_rank.iter().zip(exact_rank.iter()).enumerate() {
        let ((mp, mu, mm), (ep, eu, em)) = pair;
        println!(
            "{:<6} {:<22} {:>13.2}% {:>12.0}   {:<22} {:>13.2}% {:>12.0}",
            i + 1,
            mp,
            100.0 * mu,
            mm,
            ep,
            100.0 * eu,
            em,
        );
    }
    println!();
    println!("journals: {stem} (modeled), {exact_journal} (exact)");
}
