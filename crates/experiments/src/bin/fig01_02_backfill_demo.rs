//! Reproduces the paper's Figures 1–2: the two-job example where strict
//! FCFS leaves jobB waiting although it fits, and backfilling starts it
//! immediately — plus the same comparison on a realistic workload slice.
use fairsched_core::policy::PolicySpec;
use fairsched_core::runner::run_policy;
use fairsched_workload::job::Job;
use fairsched_workload::CplantModel;

fn main() {
    // Figure 1/2 micro-example: 10 nodes; jobA (8 wide) heads the queue
    // behind a 6-wide runner, jobB (4 wide, short) fits beside the runner.
    let trace = vec![
        Job::new(1, 1, 0, 0, 6, 1000, 1000), // running work
        Job::new(2, 2, 0, 1, 8, 500, 500),   // jobA (stuck head)
        Job::new(3, 3, 0, 2, 4, 100, 100),   // jobB
    ];
    println!("== Figures 1-2: FCFS without vs with backfilling ==");
    for id in ["fcfs.nobackfill", "easy.nomax"] {
        let p = PolicySpec::by_id(id).unwrap();
        let out = run_policy(&trace, &p, 10);
        let start = |j: u32| {
            out.schedule
                .records
                .iter()
                .find(|r| r.id.0 == j)
                .unwrap()
                .start
        };
        println!(
            "{id:<16} jobA starts at {:>5}s, jobB starts at {:>5}s, utilization {:>5.1}%",
            start(2),
            start(3),
            100.0 * out.schedule.utilization(),
        );
        print!("{}", fairsched_core::gantt::gantt(&out.schedule, 48));
        println!();
    }

    // The same contrast at workload scale (§1's "low system utilization").
    println!("\n== FCFS strawman vs the CPlant baseline on a 10% workload ==");
    let nodes = 1024;
    let trace = CplantModel::new(42)
        .with_nodes(nodes)
        .with_scale(0.1)
        .generate();
    for id in ["fcfs.nobackfill", "cplant24.nomax.all"] {
        let p = PolicySpec::by_id(id).unwrap();
        let out = run_policy(&trace, &p, nodes);
        let m = out.metrics();
        println!(
            "{:<20} turnaround {:>9.0}s  LOC {:>6.2}%  unfair {:>5.2}%",
            out.policy,
            m.average_turnaround,
            100.0 * m.loss_of_capacity,
            100.0 * m.percent_unfair,
        );
    }
}
