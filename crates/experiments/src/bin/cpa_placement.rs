//! CPA placement ablation: the same baseline schedule under each 1-D
//! allocation strategy, reporting the placement quality the CPA exists to
//! optimize. Scheduling outcomes are identical by construction; only
//! compactness differs.
use fairsched_cpa::PlacementStrategy;
use fairsched_experiments::ExperimentConfig;
use fairsched_sim::{simulate, AllocationModel, NullObserver, SimConfig, SimOptions};

fn main() {
    fairsched_obs::log::quiet_from_env();
    let cfg = ExperimentConfig::from_env();
    let trace = cfg.trace();
    println!("== CPA placement strategies under the baseline policy ==");
    println!(
        "{:<10} {:>12} {:>12} {:>11} {:>11}",
        "strategy", "mean span", "compactness", "scattered", "ext frag"
    );
    for (name, strategy) in [
        ("FirstFit", PlacementStrategy::FirstFit),
        ("BestFit", PlacementStrategy::BestFit),
        ("MinSpan", PlacementStrategy::MinSpan),
    ] {
        let sim_cfg = SimConfig {
            nodes: cfg.nodes,
            allocation: AllocationModel::Linear(strategy),
            ..Default::default()
        };
        let s = match simulate(&trace, &sim_cfg, &mut NullObserver, SimOptions::new()) {
            Ok(s) => s,
            Err(e) => {
                fairsched_obs::log::warn(format!("{name}: simulation failed: {e}"));
                continue;
            }
        };
        let p = s.placement.expect("linear model reports stats");
        println!(
            "{name:<10} {:>12.1} {:>12.3} {:>11} {:>10.3}",
            p.mean_span, p.mean_compactness, p.scattered, p.mean_external_frag,
        );
    }
}
