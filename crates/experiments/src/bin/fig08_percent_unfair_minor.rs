//! Regenerates percent_unfair_minor (paper Figure 08).
fn main() {
    let cfg = fairsched_experiments::ExperimentConfig::from_env();
    let e = fairsched_experiments::evaluate(cfg);
    print!("{}", fairsched_experiments::figures::fig08(&e));
}
