//! Regenerates Figure 5: user estimates vs runtime (decade grid).
fn main() {
    let cfg = fairsched_experiments::ExperimentConfig::from_env();
    let trace = cfg.trace();
    print!(
        "{}",
        fairsched_experiments::characterization::fig05_report(&trace)
    );
}
