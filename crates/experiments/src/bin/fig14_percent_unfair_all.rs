//! Regenerates percent_unfair_all (paper Figure 14).
fn main() {
    let cfg = fairsched_experiments::ExperimentConfig::from_env();
    let e = fairsched_experiments::evaluate(cfg);
    print!("{}", fairsched_experiments::figures::fig14(&e));
}
