//! Regenerates loc_all (paper Figure 19).
fn main() {
    let cfg = fairsched_experiments::ExperimentConfig::from_env();
    let e = fairsched_experiments::evaluate(cfg);
    print!("{}", fairsched_experiments::figures::fig19(&e));
}
