//! Regenerates miss_time_all (paper Figure 15).
fn main() {
    let cfg = fairsched_experiments::ExperimentConfig::from_env();
    let e = fairsched_experiments::evaluate(cfg);
    print!("{}", fairsched_experiments::figures::fig15(&e));
}
