//! Regenerates Table 1: job counts per width × length category.
fn main() {
    let cfg = fairsched_experiments::ExperimentConfig::from_env();
    let trace = cfg.trace();
    print!(
        "{}",
        fairsched_experiments::characterization::table1_report(&trace)
    );
}
