//! Regenerates Table 2: processor-hours per width × length category.
fn main() {
    let cfg = fairsched_experiments::ExperimentConfig::from_env();
    let trace = cfg.trace();
    print!(
        "{}",
        fairsched_experiments::characterization::table2_report(&trace)
    );
}
