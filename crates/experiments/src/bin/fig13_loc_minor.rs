//! Regenerates loc_minor (paper Figure 13).
fn main() {
    let cfg = fairsched_experiments::ExperimentConfig::from_env();
    let e = fairsched_experiments::evaluate(cfg);
    print!("{}", fairsched_experiments::figures::fig13(&e));
}
