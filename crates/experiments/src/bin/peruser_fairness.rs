//! Per-user fairness audit (§5.2's subject): who actually bears the misses
//! under the baseline policy vs the paper's recommended fix, and whether
//! heavy users fare better than light ones.
use fairsched_core::policy::PolicySpec;
use fairsched_core::runner::{try_run_policy, RunOptions};
use fairsched_experiments::ExperimentConfig;
use fairsched_metrics::fairness::peruser::heavy_vs_light_miss;

fn main() {
    fairsched_obs::log::quiet_from_env();
    let cfg = ExperimentConfig::from_env();
    let trace = cfg.trace();
    let opts = RunOptions {
        per_user: true,
        ..Default::default()
    };
    for id in ["cplant24.nomax.all", "cplant24.nomax.fair", "cons.72max"] {
        let p = PolicySpec::by_id(id).unwrap();
        let run = match try_run_policy(&trace, &p, cfg.nodes, &opts) {
            Ok(run) => run,
            Err(e) => {
                fairsched_obs::log::warn(format!("{id}: simulation failed: {e}"));
                continue;
            }
        };
        let users = run.per_user.expect("requested in RunOptions");
        println!("== {id}: top users by consumption ==");
        println!(
            "{:<8} {:>6} {:>14} {:>9} {:>12} {:>10}",
            "user", "jobs", "proc-hours", "unfair%", "mean miss(s)", "wait(s)"
        );
        for u in users.iter().take(10) {
            println!(
                "{:<8} {:>6} {:>14.0} {:>8.1}% {:>12.0} {:>10.0}",
                u.user.to_string(),
                u.jobs,
                u.proc_seconds / 3600.0,
                100.0 * u.percent_unfair(),
                u.mean_miss(),
                u.mean_wait,
            );
        }
        let (heavy, light) = heavy_vs_light_miss(&users, 0.1);
        println!("top-10% users mean miss {heavy:.0}s vs everyone else {light:.0}s\n");
    }
}
