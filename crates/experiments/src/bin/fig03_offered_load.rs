//! Regenerates Figure 3: weekly offered load vs actual utilization.
fn main() {
    let cfg = fairsched_experiments::ExperimentConfig::from_env();
    let e = fairsched_experiments::evaluate(cfg);
    print!(
        "{}",
        fairsched_experiments::characterization::fig03_report(&e)
    );
}
