//! Regenerates turnaround_by_width_cons (paper Figure 18).
fn main() {
    let cfg = fairsched_experiments::ExperimentConfig::from_env();
    let e = fairsched_experiments::evaluate(cfg);
    print!("{}", fairsched_experiments::figures::fig18(&e));
}
