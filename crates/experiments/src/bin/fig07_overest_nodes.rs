//! Regenerates Figure 7: over-estimation factor vs nodes (decade grid).
fn main() {
    let cfg = fairsched_experiments::ExperimentConfig::from_env();
    let trace = cfg.trace();
    print!(
        "{}",
        fairsched_experiments::characterization::fig07_report(&trace)
    );
}
