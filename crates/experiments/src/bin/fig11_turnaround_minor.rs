//! Regenerates turnaround_minor (paper Figure 11).
fn main() {
    let cfg = fairsched_experiments::ExperimentConfig::from_env();
    let e = fairsched_experiments::evaluate(cfg);
    print!("{}", fairsched_experiments::figures::fig11(&e));
}
