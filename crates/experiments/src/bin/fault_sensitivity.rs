//! Fairness-under-failure sensitivity sweep (beyond the paper).
//!
//! Runs all nine §5.5 policies at several node-MTBF levels under both
//! resilience policies and prints, per (policy, fault level) cell, the
//! fairness aggregates split by crash exposure plus the goodput. The fault
//! timeline is a pure function of the fault seed, so every cell is exactly
//! reproducible.
//!
//! Extra environment knobs on top of the usual `FAIRSCHED_*` trio:
//!
//! | variable | default | meaning |
//! |---|---|---|
//! | `FAIRSCHED_CRASH_RATE` | `0.02` | per-submission crash probability |
//! | `FAIRSCHED_FAULT_SEED` | `0` | fault timeline seed |

use fairsched_core::policy::PolicySpec;
use fairsched_core::sweep::try_run_policies;
use fairsched_experiments::ExperimentConfig;
use fairsched_sim::{FaultConfig, ResiliencePolicy};
use fairsched_workload::time::{DAY, WEEK};

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let cfg = ExperimentConfig::from_env();
    let crash_rate = env_f64("FAIRSCHED_CRASH_RATE", 0.02);
    let fault_seed = env_u64("FAIRSCHED_FAULT_SEED", 0);
    let trace = cfg.trace();
    let policies = PolicySpec::paper_policies();

    // Per-node MTBF levels: none (control), then increasingly unreliable
    // hardware. On a 1024-node machine 4 weeks/node is a machine-level
    // failure roughly every 40 minutes.
    let mtbf_levels: [(&str, Option<u64>); 4] = [
        ("none", None),
        ("16w", Some(16 * WEEK)),
        ("4w", Some(4 * WEEK)),
        ("7d", Some(7 * DAY)),
    ];

    println!(
        "fault sensitivity: seed={} scale={} nodes={} crash_rate={} fault_seed={}",
        cfg.seed, cfg.scale, cfg.nodes, crash_rate, fault_seed
    );
    println!(
        "{:<22} {:>6} {:>8} {:>8} {:>11} {:>11} {:>9} {:>7}",
        "policy", "mtbf", "resil", "unfair%", "missI(s)", "missC(s)", "goodput%", "intr"
    );

    for (label, mtbf) in mtbf_levels {
        for resilience in [
            ResiliencePolicy::RequeueFromScratch,
            ResiliencePolicy::ChunkResume,
        ] {
            // Without any fault source the resilience policy is inert; run
            // the control row once.
            if mtbf.is_none() && crash_rate == 0.0 && resilience == ResiliencePolicy::ChunkResume {
                continue;
            }
            let faults = FaultConfig {
                node_mtbf: mtbf,
                job_crash_rate: crash_rate,
                resilience,
                seed: fault_seed,
                ..FaultConfig::default()
            };
            let resil = match resilience {
                ResiliencePolicy::RequeueFromScratch => "requeue",
                ResiliencePolicy::ChunkResume => "resume",
            };
            for result in try_run_policies(&trace, &policies, cfg.nodes, &faults) {
                match result {
                    Ok(outcome) => {
                        let split = outcome.resilience();
                        println!(
                            "{:<22} {:>6} {:>8} {:>7.2}% {:>11.0} {:>11.0} {:>8.2}% {:>7}",
                            outcome.policy,
                            label,
                            resil,
                            100.0 * outcome.fairness.percent_unfair(),
                            split.interrupted.average_miss_time(),
                            split.clean.average_miss_time(),
                            100.0 * split.goodput,
                            split.interrupted_count(),
                        );
                    }
                    Err(e) => println!(
                        "{:<22} {:>6} {:>8} FAILED: {}",
                        e.policy, label, resil, e.reason
                    ),
                }
            }
        }
    }
}
