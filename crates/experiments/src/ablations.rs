//! Sensitivity ablations for the design choices DESIGN.md calls out.
//!
//! The paper fixes several knobs the text does not justify numerically: the
//! fairshare decay factor, the starvation entry delay, the 72-hour limit
//! itself, the heavy-user threshold, and (in our reproduction) the machine
//! size. Each sweep here varies one knob on the baseline-or-relevant policy
//! and reports the four headline metrics, so the conclusions can be checked
//! for robustness rather than taken at a point.

use fairsched_core::runner::PolicyOutcome;
use fairsched_metrics::fairness::hybrid::HybridFstObserver;
use fairsched_sim::{
    simulate, EngineKind, FairshareConfig, HeavyUserRule, RuntimeLimit, SimConfig, SimOptions,
    StarvationConfig,
};
use fairsched_workload::job::Job;
use fairsched_workload::time::HOUR;
use fairsched_workload::CplantModel;
use std::fmt::Write as _;

/// One ablation row: a knob setting and the headline metrics under it.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// Human-readable knob setting, e.g. `"decay=0.5"`.
    pub setting: String,
    /// Fraction of submissions missing their fair start.
    pub percent_unfair: f64,
    /// Mean miss per Equation 5, seconds.
    pub average_miss: f64,
    /// Mean original-job turnaround, seconds.
    pub average_turnaround: f64,
    /// Loss of capacity.
    pub loss_of_capacity: f64,
}

fn run_with(trace: &[Job], setting: String, cfg: &SimConfig) -> AblationRow {
    let mut obs = HybridFstObserver::new();
    let schedule = simulate(trace, cfg, &mut obs, SimOptions::new())
        .unwrap_or_else(|e| panic!("ablation '{setting}' failed: {e}"));
    let outcome = PolicyOutcome {
        policy: setting.clone(),
        schedule,
        fairness: obs.into_report(),
    };
    let m = outcome.metrics();
    AblationRow {
        setting,
        percent_unfair: m.percent_unfair,
        average_miss: m.average_miss_time,
        average_turnaround: m.average_turnaround,
        loss_of_capacity: m.loss_of_capacity,
    }
}

/// Sweeps the fairshare decay factor on the baseline policy.
/// `1.0` disables decay entirely (pure lifetime usage).
pub fn decay_factor_sweep(trace: &[Job], nodes: u32) -> Vec<AblationRow> {
    [0.1f64, 0.25, 0.5, 0.75, 0.9, 1.0]
        .iter()
        .map(|&factor| {
            let cfg = SimConfig {
                nodes,
                fairshare: FairshareConfig {
                    decay_factor: factor,
                    ..Default::default()
                },
                ..Default::default()
            };
            run_with(trace, format!("decay={factor}"), &cfg)
        })
        .collect()
}

/// Sweeps the starvation-queue entry delay on the baseline policy
/// (§5.5 policy 1 generalized beyond 24 h / 72 h).
pub fn starvation_delay_sweep(trace: &[Job], nodes: u32) -> Vec<AblationRow> {
    [6u64, 12, 24, 48, 72, 168]
        .iter()
        .map(|&hours| {
            let cfg = SimConfig {
                nodes,
                starvation: Some(StarvationConfig {
                    entry_delay: hours * HOUR,
                    heavy_rule: None,
                }),
                ..Default::default()
            };
            run_with(trace, format!("delay={hours}h"), &cfg)
        })
        .collect()
}

/// Sweeps the maximum-runtime limit on the baseline engine (§5.1
/// generalized beyond 72 h).
pub fn runtime_limit_sweep(trace: &[Job], nodes: u32) -> Vec<AblationRow> {
    let mut rows = vec![run_with(
        trace,
        "limit=none".to_string(),
        &SimConfig {
            nodes,
            ..Default::default()
        },
    )];
    for hours in [24u64, 48, 72, 120, 168] {
        let cfg = SimConfig {
            nodes,
            runtime_limit: Some(RuntimeLimit {
                limit: hours * HOUR,
            }),
            ..Default::default()
        };
        rows.push(run_with(trace, format!("limit={hours}h"), &cfg));
    }
    rows
}

/// Sweeps the heavy-user threshold for the §5.2 starvation-queue bar.
pub fn heavy_threshold_sweep(trace: &[Job], nodes: u32) -> Vec<AblationRow> {
    [1.0f64, 1.5, 2.0, 4.0, 8.0]
        .iter()
        .map(|&mult| {
            let cfg = SimConfig {
                nodes,
                starvation: Some(StarvationConfig {
                    entry_delay: 24 * HOUR,
                    heavy_rule: Some(HeavyUserRule {
                        mean_multiple: mult,
                    }),
                }),
                ..Default::default()
            };
            run_with(trace, format!("heavy>{mult}x mean"), &cfg)
        })
        .collect()
}

/// Sweeps the reservation depth between aggressive and conservative
/// (the §1 "first n jobs get reservations" family).
pub fn reservation_depth_sweep(trace: &[Job], nodes: u32) -> Vec<AblationRow> {
    [0u32, 1, 2, 4, 8, 16, 64, 1024]
        .iter()
        .map(|&depth| {
            let cfg = SimConfig {
                nodes,
                engine: EngineKind::ReservationDepth(depth),
                starvation: None,
                ..Default::default()
            };
            run_with(trace, format!("depth={depth}"), &cfg)
        })
        .collect()
}

/// Sweeps the closed-loop user-concurrency cap on the baseline policy.
/// `None` is the open-loop replay the paper uses; finite caps model §2.2's
/// user back-off ("users submitting fewer jobs due to the extremely high
/// queue lengths").
pub fn user_concurrency_sweep(trace: &[Job], nodes: u32) -> Vec<AblationRow> {
    let mut rows = vec![run_with(
        trace,
        "open-loop".to_string(),
        &SimConfig {
            nodes,
            ..Default::default()
        },
    )];
    for cap in [1u32, 2, 4, 8, 16] {
        let cfg = SimConfig {
            nodes,
            user_concurrency: Some(cap),
            ..Default::default()
        };
        rows.push(run_with(trace, format!("cap={cap}"), &cfg));
    }
    rows
}

/// Sweeps the generator's per-user width affinity (regenerating the trace
/// per value): how much does conditioning users onto width niches change
/// the fairness picture? Affinity reshapes who competes with whom under
/// fairshare, so this doubles as a robustness check of the headline results
/// against workload-model assumptions.
pub fn width_affinity_sweep(seed: u64, scale: f64, nodes: u32) -> Vec<AblationRow> {
    [1.0f64, 2.0, 4.0, 8.0, 16.0]
        .iter()
        .map(|&boost| {
            let mut model = CplantModel::new(seed).with_nodes(nodes).with_scale(scale);
            model.width_affinity = boost;
            let trace = model.generate();
            let cfg = SimConfig {
                nodes,
                ..Default::default()
            };
            run_with(&trace, format!("affinity={boost}"), &cfg)
        })
        .collect()
}

/// Sweeps the machine size (the one free parameter of the substitution —
/// the paper never states Ross's node count). Regenerates the trace per
/// size so widths stay feasible.
pub fn machine_size_sweep(seed: u64, scale: f64) -> Vec<AblationRow> {
    [512u32, 768, 1024, 1536, 2048]
        .iter()
        .map(|&nodes| {
            let trace = CplantModel::new(seed)
                .with_nodes(nodes)
                .with_scale(scale)
                .generate();
            let cfg = SimConfig {
                nodes,
                ..Default::default()
            };
            run_with(&trace, format!("nodes={nodes}"), &cfg)
        })
        .collect()
}

/// Renders ablation rows as a fixed-width table.
pub fn render(title: &str, rows: &[AblationRow]) -> String {
    let mut out = format!("== Ablation: {title} ==\n");
    writeln!(
        out,
        "{:<18} {:>9} {:>12} {:>14} {:>8}",
        "setting", "unfair%", "avg miss(s)", "turnaround(s)", "LOC%"
    )
    .expect("write to String");
    for r in rows {
        writeln!(
            out,
            "{:<18} {:>8.2}% {:>12.0} {:>14.0} {:>7.2}%",
            r.setting,
            100.0 * r.percent_unfair,
            r.average_miss,
            r.average_turnaround,
            100.0 * r.loss_of_capacity,
        )
        .expect("write to String");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> Vec<Job> {
        CplantModel::new(3).with_scale(0.02).generate()
    }

    #[test]
    fn every_sweep_produces_finite_rows() {
        let t = trace();
        for rows in [
            decay_factor_sweep(&t, 1024),
            starvation_delay_sweep(&t, 1024),
            runtime_limit_sweep(&t, 1024),
            heavy_threshold_sweep(&t, 1024),
            reservation_depth_sweep(&t, 1024),
            user_concurrency_sweep(&t, 1024),
        ] {
            assert!(rows.len() >= 5);
            for r in &rows {
                assert!((0.0..=1.0).contains(&r.percent_unfair), "{:?}", r);
                assert!(r.average_miss.is_finite() && r.average_miss >= 0.0);
                assert!(r.average_turnaround.is_finite());
                assert!((0.0..=1.0).contains(&r.loss_of_capacity));
            }
        }
    }

    #[test]
    fn width_affinity_sweep_regenerates_per_boost() {
        let rows = width_affinity_sweep(3, 0.02, 1024);
        assert_eq!(rows.len(), 5);
        assert!(rows[0].setting.contains("affinity=1"));
        assert!(rows.iter().all(|r| r.average_turnaround.is_finite()));
    }

    #[test]
    fn machine_size_sweep_regenerates_per_size() {
        let rows = machine_size_sweep(3, 0.02);
        assert_eq!(rows.len(), 5);
        assert!(rows[0].setting.contains("512"));
    }

    #[test]
    fn render_produces_one_line_per_row() {
        let t = trace();
        let rows = decay_factor_sweep(&t, 1024);
        let text = render("fairshare decay", &rows);
        assert_eq!(text.lines().count(), rows.len() + 2);
        assert!(text.contains("decay=0.5"));
    }
}
