//! # fairsched-experiments
//!
//! Regeneration harness for every table and figure in the paper's
//! evaluation. Each `src/bin/` binary reproduces one artifact; this library
//! holds the shared machinery so the whole evaluation (nine policy
//! simulations plus fairness scoring) runs once per process.
//!
//! Configuration comes from environment variables so the same binaries
//! serve quick smoke runs and the full reproduction:
//!
//! | variable | default | meaning |
//! |---|---|---|
//! | `FAIRSCHED_SEED` | `42` | workload generator seed |
//! | `FAIRSCHED_SCALE` | `1.0` | fraction of the Table-1 job counts |
//! | `FAIRSCHED_NODES` | `1024` | machine size |

use fairsched_core::policy::PolicySpec;
use fairsched_core::report;
use fairsched_core::runner::{OutcomeMetrics, PolicyOutcome};
use fairsched_core::sweep::{try_run_policies, SweepError};
use fairsched_sim::FaultConfig;
use fairsched_workload::categories::WIDTH_BUCKETS;
use fairsched_workload::job::Job;
use fairsched_workload::synthetic::DEFAULT_NODES;
use fairsched_workload::CplantModel;

pub mod ablations;
pub mod characterization;
pub mod figures;

/// Workload / machine configuration for an evaluation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentConfig {
    /// Generator seed.
    pub seed: u64,
    /// Fraction of Table 1's job counts, in `(0, 1]`.
    pub scale: f64,
    /// Machine size in nodes.
    pub nodes: u32,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            seed: 42,
            scale: 1.0,
            nodes: DEFAULT_NODES,
        }
    }
}

impl ExperimentConfig {
    /// Reads `FAIRSCHED_SEED` / `FAIRSCHED_SCALE` / `FAIRSCHED_NODES`,
    /// falling back to the defaults. Malformed values fall back too (the
    /// binaries are reproduction tools, not input validators).
    pub fn from_env() -> Self {
        let mut cfg = ExperimentConfig::default();
        if let Ok(s) = std::env::var("FAIRSCHED_SEED") {
            if let Ok(v) = s.parse() {
                cfg.seed = v;
            }
        }
        if let Ok(s) = std::env::var("FAIRSCHED_SCALE") {
            if let Ok(v) = s.parse::<f64>() {
                if v > 0.0 && v <= 1.0 {
                    cfg.scale = v;
                }
            }
        }
        if let Ok(s) = std::env::var("FAIRSCHED_NODES") {
            if let Ok(v) = s.parse() {
                cfg.nodes = v;
            }
        }
        cfg
    }

    /// Generates the workload for this configuration.
    pub fn trace(&self) -> Vec<Job> {
        CplantModel::new(self.seed)
            .with_nodes(self.nodes)
            .with_scale(self.scale)
            .generate()
    }
}

/// A complete evaluation: the trace plus all nine policy results, computed
/// once and shared by every figure.
pub struct Evaluation {
    /// The configuration that produced this evaluation.
    pub cfg: ExperimentConfig,
    /// The generated workload.
    pub trace: Vec<Job>,
    /// Per-policy results of [`PolicySpec::paper_policies`], in the paper's
    /// order. A failed policy carries its fenced [`SweepError`] instead of
    /// aborting the process, so the surviving rows still render.
    pub results: Vec<Result<PolicyOutcome, SweepError>>,
    /// Scalar metrics per policy, same order; `None` where the run failed.
    pub metrics: Vec<Option<OutcomeMetrics>>,
}

/// Runs the full nine-policy evaluation (parallel across policies, each one
/// fenced so a single failure never takes down a figure binary).
pub fn evaluate(cfg: ExperimentConfig) -> Evaluation {
    let trace = cfg.trace();
    let policies = PolicySpec::paper_policies();
    let results = try_run_policies(&trace, &policies, cfg.nodes, &FaultConfig::default());
    let metrics = results
        .iter()
        .map(|r| r.as_ref().ok().map(|o| o.metrics()))
        .collect();
    Evaluation {
        cfg,
        trace,
        results,
        metrics,
    }
}

impl Evaluation {
    /// The outcome at paper index `i`, if that policy succeeded.
    pub fn outcome(&self, i: usize) -> Option<&PolicyOutcome> {
        self.results.get(i).and_then(|r| r.as_ref().ok())
    }

    /// Every policy that failed, with the fenced error explaining why.
    pub fn failures(&self) -> Vec<&SweepError> {
        self.results
            .iter()
            .filter_map(|r| r.as_ref().err())
            .collect()
    }

    /// Indices of the "minor changes" subset (Figures 8–13).
    pub fn minor_indices() -> [usize; 5] {
        [0, 1, 2, 3, 4]
    }

    /// Indices of the conservative comparison subset (Figures 16, 18).
    pub fn conservative_indices() -> [usize; 5] {
        [0, 5, 6, 7, 8]
    }

    /// Indices of all nine policies (Figures 14, 15, 17, 19).
    pub fn all_indices() -> [usize; 9] {
        [0, 1, 2, 3, 4, 5, 6, 7, 8]
    }

    /// `(policy, value)` rows for a scalar metric over a policy subset.
    /// Failed policies are silently skipped — their rows would be lies.
    pub fn scalar_rows(
        &self,
        indices: &[usize],
        value: impl Fn(&OutcomeMetrics) -> f64,
    ) -> Vec<(String, f64)> {
        indices
            .iter()
            .filter_map(|&i| {
                let o = self.outcome(i)?;
                let m = self.metrics[i].as_ref()?;
                Some((o.policy.clone(), value(m)))
            })
            .collect()
    }

    /// `(policy, by-width)` rows for a width-bucketed metric. Failed
    /// policies are skipped, as in [`Evaluation::scalar_rows`].
    pub fn width_rows(
        &self,
        indices: &[usize],
        value: impl Fn(&OutcomeMetrics) -> [f64; WIDTH_BUCKETS],
    ) -> Vec<(String, [f64; WIDTH_BUCKETS])> {
        indices
            .iter()
            .filter_map(|&i| {
                let o = self.outcome(i)?;
                let m = self.metrics[i].as_ref()?;
                Some((o.policy.clone(), value(m)))
            })
            .collect()
    }

    /// Renders a scalar-metric figure as text.
    pub fn scalar_figure(
        &self,
        title: &str,
        unit: &str,
        indices: &[usize],
        value: impl Fn(&OutcomeMetrics) -> f64,
    ) -> String {
        report::policy_table(title, unit, &self.scalar_rows(indices, value))
    }

    /// Renders a by-width figure as text.
    pub fn width_figure(
        &self,
        title: &str,
        unit: &str,
        indices: &[usize],
        value: impl Fn(&OutcomeMetrics) -> [f64; WIDTH_BUCKETS],
    ) -> String {
        report::width_matrix(title, unit, &self.width_rows(indices, value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Evaluation {
        evaluate(ExperimentConfig {
            seed: 7,
            scale: 0.015,
            nodes: 1024,
        })
    }

    #[test]
    fn evaluation_runs_all_nine_policies_in_order() {
        let e = tiny();
        assert!(e.failures().is_empty(), "no paper policy should fail");
        let names: Vec<&str> = (0..e.results.len())
            .map(|i| e.outcome(i).expect("succeeded").policy.as_str())
            .collect();
        assert_eq!(names[0], "cplant24.nomax.all");
        assert_eq!(names[8], "consdyn.72max");
        assert_eq!(e.results.len(), 9);
        assert_eq!(e.metrics.len(), 9);
        assert!(e.metrics.iter().all(|m| m.is_some()));
    }

    #[test]
    fn subsets_select_the_right_policies() {
        let e = tiny();
        let minor = e.scalar_rows(&Evaluation::minor_indices(), |m| m.percent_unfair);
        assert_eq!(minor.len(), 5);
        assert!(minor.iter().all(|(n, _)| n.starts_with("cplant")));
        let cons = e.scalar_rows(&Evaluation::conservative_indices(), |m| m.percent_unfair);
        assert_eq!(cons[0].0, "cplant24.nomax.all");
        assert!(cons[1..].iter().all(|(n, _)| n.starts_with("cons")));
    }

    #[test]
    fn figures_render_nonempty_text() {
        let e = tiny();
        let fig = e.scalar_figure("Fig 8", "%", &Evaluation::minor_indices(), |m| {
            m.percent_unfair
        });
        assert!(fig.contains("Fig 8"));
        assert_eq!(fig.lines().count(), 7);
        let wfig = e.width_figure("Fig 10", "seconds", &Evaluation::minor_indices(), |m| {
            m.miss_by_width
        });
        assert!(wfig.contains("513+"));
    }

    #[test]
    fn default_config_matches_the_paper_scale() {
        let cfg = ExperimentConfig::default();
        assert_eq!(cfg.seed, 42);
        assert_eq!(cfg.scale, 1.0);
        assert_eq!(cfg.nodes, DEFAULT_NODES);
    }
}
