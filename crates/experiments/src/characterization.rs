//! Workload characterization reports: Tables 1–2 and Figures 3–7.
//!
//! The scatter figures (4–7) are log-log point clouds in the paper; on a
//! terminal we render them as decade-binned occupancy grids, which preserves
//! exactly the structure the paper reads off them (clustering at standard
//! widths, the over-estimation wedge, its width-independence).

use crate::Evaluation;
use fairsched_metrics::system::weekly_load_and_utilization;
use fairsched_workload::categories::{LengthCategory, WidthCategory, LENGTH_LABELS, WIDTH_LABELS};
use fairsched_workload::job::Job;
use fairsched_workload::stats::weekly_offered_load;
use fairsched_workload::tables::{job_counts, proc_hours, table1_job_counts, table2_proc_hours};
use std::fmt::Write as _;

/// Table 1: generated job counts next to the published values.
pub fn table1_report(trace: &[Job]) -> String {
    let generated = job_counts(trace);
    let published = table1_job_counts();
    let mut out = String::from("== Table 1: Number of jobs in each length/width category ==\n");
    out.push_str("(each cell: generated/published)\n");
    write!(out, "{:<9}", "width").expect("write to String");
    for l in LENGTH_LABELS {
        write!(out, " {l:>12}").expect("write to String");
    }
    out.push('\n');
    for (wi, wlabel) in WIDTH_LABELS.iter().enumerate() {
        write!(out, "{wlabel:<9}").expect("write to String");
        for li in 0..LENGTH_LABELS.len() {
            let g = generated.get(WidthCategory(wi), LengthCategory(li));
            let p = published.get(WidthCategory(wi), LengthCategory(li));
            write!(out, " {:>12}", format!("{g}/{p}")).expect("write to String");
        }
        out.push('\n');
    }
    writeln!(
        out,
        "total: {} generated / {} published",
        generated.total(),
        published.total()
    )
    .expect("write to String");
    out
}

/// Table 2: generated processor-hours next to the published values.
pub fn table2_report(trace: &[Job]) -> String {
    let generated = proc_hours(trace);
    let published = table2_proc_hours();
    let mut out = String::from("== Table 2: Processor-hours in each length/width category ==\n");
    out.push_str("(each cell: generated/published, rounded)\n");
    write!(out, "{:<9}", "width").expect("write to String");
    for l in LENGTH_LABELS {
        write!(out, " {l:>15}").expect("write to String");
    }
    out.push('\n');
    for (wi, wlabel) in WIDTH_LABELS.iter().enumerate() {
        write!(out, "{wlabel:<9}").expect("write to String");
        for li in 0..LENGTH_LABELS.len() {
            let g = *generated.get(WidthCategory(wi), LengthCategory(li));
            let p = *published.get(WidthCategory(wi), LengthCategory(li));
            write!(out, " {:>15}", format!("{:.0}/{:.0}", g, p)).expect("write to String");
        }
        out.push('\n');
    }
    writeln!(
        out,
        "total: {:.0} generated / {:.0} published proc-hours",
        generated.total(),
        published.total()
    )
    .expect("write to String");
    out
}

/// Figure 3: weekly offered load vs actual utilization under the baseline
/// policy, with an ASCII bar per week.
pub fn fig03_report(eval: &Evaluation) -> String {
    let weeks = (eval.trace.last().map(|j| j.submit).unwrap_or(0) / fairsched_workload::time::WEEK)
        as usize
        + 1;
    let offered = weekly_offered_load(&eval.trace, eval.cfg.nodes, weeks);
    let Some(baseline) = eval.outcome(0) else {
        return String::from("== Figure 3: baseline policy failed; no utilization to report ==\n");
    };
    let pairs = weekly_load_and_utilization(&offered, &baseline.schedule);

    let mut out = String::from(
        "== Figure 3: Offered load and actual utilization (baseline cplant24.nomax.all) ==\n",
    );
    out.push_str("week  offered%   util%  (#=offered, o=utilization; 10%/char)\n");
    for (w, (off, util)) in pairs.iter().enumerate() {
        let obar = "#".repeat((off * 10.0).round() as usize);
        let ubar = "o".repeat((util * 10.0).round() as usize);
        writeln!(
            out,
            "{w:>4}  {:>7.1}  {:>6.1}  |{obar}\n{:>21}  |{ubar}",
            off * 100.0,
            util * 100.0,
            ""
        )
        .expect("write to String");
    }
    out
}

/// A decade-binned occupancy grid of two log-scaled quantities.
fn loglog_grid(
    title: &str,
    xlabel: &str,
    ylabel: &str,
    points: impl Iterator<Item = (f64, f64)>,
    xdecades: std::ops::Range<i32>,
    ydecades: std::ops::Range<i32>,
) -> String {
    let xs = xdecades.len();
    let ys = ydecades.len();
    let mut grid = vec![0u64; xs * ys];
    for (x, y) in points {
        if x <= 0.0 || y <= 0.0 {
            continue;
        }
        let xd = x.log10().floor() as i32;
        let yd = y.log10().floor() as i32;
        if xd >= xdecades.start && xd < xdecades.end && yd >= ydecades.start && yd < ydecades.end {
            grid[((yd - ydecades.start) as usize) * xs + (xd - xdecades.start) as usize] += 1;
        }
    }
    let mut out =
        format!("== {title} ==\n(job counts per decade cell; x = {xlabel}, y = {ylabel})\n");
    for yi in (0..ys).rev() {
        write!(out, "1e{:>2} |", ydecades.start + yi as i32).expect("write to String");
        for xi in 0..xs {
            let c = grid[yi * xs + xi];
            if c == 0 {
                out.push_str("     .");
            } else {
                write!(out, "{c:>6}").expect("write to String");
            }
        }
        out.push('\n');
    }
    out.push_str("      ");
    for xi in 0..xs {
        write!(out, "  1e{:>2}", xdecades.start + xi as i32).expect("write to String");
    }
    out.push('\n');
    out
}

/// Figure 4: runtime vs nodes occupancy grid.
pub fn fig04_report(trace: &[Job]) -> String {
    loglog_grid(
        "Figure 4: Runtime and node usage",
        "runtime (s)",
        "nodes",
        trace.iter().map(|j| (j.runtime as f64, j.nodes as f64)),
        0..8,
        0..4,
    )
}

/// Figure 5: runtime vs wall-clock limit, plus the over/under-estimate split.
pub fn fig05_report(trace: &[Job]) -> String {
    let mut out = loglog_grid(
        "Figure 5: User estimates vs runtime",
        "runtime (s)",
        "WCL (s)",
        trace.iter().map(|j| (j.runtime as f64, j.estimate as f64)),
        0..8,
        0..8,
    );
    let over = trace.iter().filter(|j| j.estimate >= j.runtime).count();
    let under = trace.len() - over;
    writeln!(
        out,
        "over-estimated (WCL ≥ runtime): {over} jobs; outlived WCL: {under} jobs ({:.1}%)",
        100.0 * under as f64 / trace.len().max(1) as f64
    )
    .expect("write to String");
    out
}

/// Figure 6: over-estimation factor vs runtime, with per-decade mean factor
/// (the correlation the paper reads off the wedge).
pub fn fig06_report(trace: &[Job]) -> String {
    let mut out = loglog_grid(
        "Figure 6: Over-estimation factor vs runtime",
        "over-estimation factor",
        "runtime (s)",
        trace
            .iter()
            .map(|j| (j.overestimation_factor(), j.runtime as f64)),
        -2..7,
        0..8,
    );
    out.push_str("mean log10(factor) by runtime decade: ");
    for d in 0..7 {
        let lo = 10f64.powi(d);
        let hi = 10f64.powi(d + 1);
        let sel: Vec<f64> = trace
            .iter()
            .filter(|j| (j.runtime as f64) >= lo && (j.runtime as f64) < hi)
            .map(|j| j.overestimation_factor().log10())
            .collect();
        if sel.is_empty() {
            out.push_str(" 1e_:--");
        } else {
            write!(
                out,
                " 1e{d}:{:.2}",
                sel.iter().sum::<f64>() / sel.len() as f64
            )
            .expect("write to String");
        }
    }
    out.push('\n');
    out
}

/// Figure 7: over-estimation factor vs nodes, with per-decade mean factor
/// (expected flat — estimates are unrelated to width).
pub fn fig07_report(trace: &[Job]) -> String {
    let mut out = loglog_grid(
        "Figure 7: Over-estimation factor vs nodes",
        "over-estimation factor",
        "nodes",
        trace
            .iter()
            .map(|j| (j.overestimation_factor(), j.nodes as f64)),
        -2..7,
        0..4,
    );
    out.push_str("mean log10(factor) by width decade: ");
    for d in 0..4 {
        let lo = 10f64.powi(d);
        let hi = 10f64.powi(d + 1);
        let sel: Vec<f64> = trace
            .iter()
            .filter(|j| (j.nodes as f64) >= lo && (j.nodes as f64) < hi)
            .map(|j| j.overestimation_factor().log10())
            .collect();
        if sel.is_empty() {
            out.push_str(" 1e_:--");
        } else {
            write!(
                out,
                " 1e{d}:{:.2}",
                sel.iter().sum::<f64>() / sel.len() as f64
            )
            .expect("write to String");
        }
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairsched_workload::CplantModel;

    fn trace() -> Vec<Job> {
        CplantModel::new(3).with_scale(0.05).generate()
    }

    #[test]
    fn table_reports_render_all_categories() {
        let t = trace();
        let t1 = table1_report(&t);
        for label in WIDTH_LABELS {
            assert!(t1.contains(label));
        }
        assert!(t1.contains("/681")); // a published cell value
        let t2 = table2_report(&t);
        assert!(t2.contains("/986649")); // the biggest published cell
    }

    #[test]
    fn scatter_grids_have_axes_and_data() {
        let t = trace();
        let f4 = fig04_report(&t);
        assert!(f4.contains("1e 0"));
        assert!(f4.contains("Figure 4"));
        let f5 = fig05_report(&t);
        assert!(f5.contains("outlived WCL"));
        let f6 = fig06_report(&t);
        assert!(f6.contains("mean log10(factor) by runtime decade"));
        let f7 = fig07_report(&t);
        assert!(f7.contains("mean log10(factor) by width decade"));
    }

    #[test]
    fn fig6_wedge_shows_in_the_per_decade_means() {
        // The generator's signature property must be visible in the report
        // data itself: short-job decades have larger mean factors.
        let t = CplantModel::new(3).generate();
        let short: Vec<f64> = t
            .iter()
            .filter(|j| j.runtime < 1000)
            .map(|j| j.overestimation_factor().log10())
            .collect();
        let long: Vec<f64> = t
            .iter()
            .filter(|j| j.runtime >= 100_000)
            .map(|j| j.overestimation_factor().log10())
            .collect();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        assert!(mean(&short) > mean(&long) + 0.5);
    }
}
