//! Property tests pinning the scheduling data structures against brute-force
//! reference models: the capacity [`Profile`] against a per-second scan, and
//! the compressed [`NodeTimeline`] against a literal per-node free-time
//! array.

use fairsched_sim::profile::Profile;
use fairsched_sim::NodeTimeline;
use proptest::prelude::*;

const CAPACITY: u32 = 16;
const HORIZON: u64 = 400;

/// Brute-force earliest fit: scan every second.
fn brute_earliest(rects: &[(u64, u64, u32)], from: u64, nodes: u32, duration: u64) -> u64 {
    let used_at = |t: u64| -> u32 {
        rects
            .iter()
            .filter(|&&(s, d, _)| t >= s && t < s + d)
            .map(|&(_, _, n)| n)
            .sum()
    };
    let mut start = from;
    'outer: loop {
        let window = start..start + duration;
        for t in window {
            if used_at(t) + nodes > CAPACITY {
                start = t + 1;
                continue 'outer;
            }
        }
        return start;
    }
}

/// Brute-force list scheduler: a literal array of per-node free times.
struct RefTimeline {
    free_at: Vec<u64>,
}

impl RefTimeline {
    fn new(total: u32, at: u64) -> Self {
        RefTimeline {
            free_at: vec![at; total as usize],
        }
    }

    fn place(&mut self, floor: u64, nodes: u32, runtime: u64) -> u64 {
        // Claim the `nodes` earliest-free nodes.
        let mut order: Vec<usize> = (0..self.free_at.len()).collect();
        order.sort_by_key(|&i| (self.free_at[i], i));
        let claimed = &order[..nodes as usize];
        let start = claimed
            .iter()
            .map(|&i| self.free_at[i])
            .max()
            .unwrap_or(floor)
            .max(floor);
        for &i in claimed {
            self.free_at[i] = start + runtime;
        }
        start
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn profile_earliest_start_matches_brute_force(
        rects in prop::collection::vec(
            (0u64..HORIZON, 1u64..60, 1u32..=CAPACITY), 0..12),
        from in 0u64..HORIZON,
        nodes in 1u32..=CAPACITY,
        duration in 1u64..80,
    ) {
        // Keep the profile physically meaningful (≤ capacity everywhere):
        // the brute-force model and earliest_start only need to agree on
        // feasible profiles, and oversubscribed behaviour is covered by the
        // unit tests.
        let mut feasible: Vec<(u64, u64, u32)> = Vec::new();
        let mut profile = Profile::new(CAPACITY);
        for (s, d, n) in rects {
            let peak = (s..s + d)
                .map(|t| {
                    feasible
                        .iter()
                        .filter(|&&(fs, fd, _)| t >= fs && t < fs + fd)
                        .map(|&(_, _, fn_)| fn_)
                        .sum::<u32>()
                })
                .max()
                .unwrap_or(0);
            if peak + n <= CAPACITY {
                feasible.push((s, d, n));
                profile.add(s, d, n);
            }
        }
        let got = profile.earliest_start(from, nodes, duration);
        let want = brute_earliest(&feasible, from, nodes, duration);
        prop_assert_eq!(got, Some(want), "rects: {:?}", feasible);
    }

    #[test]
    fn node_timeline_matches_per_node_reference(
        jobs in prop::collection::vec((1u32..=CAPACITY, 1u64..100), 1..40),
        floor in 0u64..50,
    ) {
        let mut fast = NodeTimeline::all_free(CAPACITY, 0);
        let mut reference = RefTimeline::new(CAPACITY, 0);
        for (nodes, runtime) in jobs {
            let got = fast.place(floor, nodes, runtime);
            let want = reference.place(floor, nodes, runtime);
            prop_assert_eq!(got, want);
        }
    }

    #[test]
    fn node_timeline_with_running_matches_reference(
        running in prop::collection::vec((0u64..200, 1u32..4), 0..5),
        jobs in prop::collection::vec((1u32..=CAPACITY, 1u64..100), 1..20),
        now in 0u64..100,
    ) {
        // Cap total running width at the machine.
        let mut total = 0u32;
        let running: Vec<(u64, u32)> = running
            .into_iter()
            .filter(|&(_, n)| {
                if total + n <= CAPACITY {
                    total += n;
                    true
                } else {
                    false
                }
            })
            .collect();
        let mut fast = NodeTimeline::with_running(CAPACITY, now, &running);
        let mut reference = RefTimeline::new(CAPACITY, now);
        // Mirror the running occupancy in the reference array.
        let mut idx = 0usize;
        for &(end, n) in &running {
            for _ in 0..n {
                reference.free_at[idx] = end.max(now);
                idx += 1;
            }
        }
        for (nodes, runtime) in jobs {
            let got = fast.place(now, nodes, runtime);
            let want = reference.place(now, nodes, runtime);
            prop_assert_eq!(got, want);
        }
    }

    #[test]
    fn earliest_is_consistent_with_place(
        jobs in prop::collection::vec((1u32..=CAPACITY, 1u64..100), 1..30),
        probe in 1u32..=CAPACITY,
    ) {
        let mut tl = NodeTimeline::all_free(CAPACITY, 0);
        for (nodes, runtime) in jobs {
            tl.place(0, nodes, runtime);
        }
        let predicted = tl.earliest(0, probe);
        let mut clone = tl.clone();
        let actual = clone.place(0, probe, 1);
        prop_assert_eq!(predicted, actual);
    }
}
