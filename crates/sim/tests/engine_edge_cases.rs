//! Edge-case integration tests for the scheduling engines: interactions
//! between wall-clock-limit surprises, reservations, the starvation queue,
//! and the heavy-user rule that the unit tests cover only in isolation.

use fairsched_sim::{
    simulate, EngineKind, HeavyUserRule, KillPolicy, NullObserver, QueueOrder, SimConfig,
    SimOptions, StarvationConfig,
};
use fairsched_workload::job::{Job, JobId};
use fairsched_workload::time::{Time, DAY, HOUR};

fn job(id: u32, user: u32, submit: Time, nodes: u32, runtime: Time, estimate: Time) -> Job {
    Job::new(id, user, 1, submit, nodes, runtime, estimate)
}

fn cfg(nodes: u32, engine: EngineKind) -> SimConfig {
    SimConfig {
        nodes,
        engine,
        ..Default::default()
    }
}

fn start_of(s: &fairsched_sim::Schedule, id: u32) -> Time {
    s.records
        .iter()
        .find(|r| r.id == JobId(id))
        .expect("record")
        .start
}

#[test]
fn conservative_survives_overdue_runners() {
    // Job 1 under-estimates massively and is never killed (empty queue at
    // its WCL, KillPolicy::Never). Job 2's reservation was built on the
    // estimate; when reality outruns it, the engine must keep re-improving
    // rather than starting job 2 into occupied nodes.
    let trace = [
        job(1, 1, 0, 10, 50_000, 100), // overdue almost immediately
        job(2, 2, 10, 10, 100, 100),
    ];
    let mut c = cfg(10, EngineKind::Conservative { dynamic: false });
    c.kill = KillPolicy::Never;
    let s = simulate(&trace, &c, &mut NullObserver, SimOptions::new()).unwrap();
    // Job 2 can only start when job 1 actually ends.
    assert_eq!(start_of(&s, 2), 50_000);
}

#[test]
fn conservative_dynamic_survives_overdue_runners() {
    let trace = [job(1, 1, 0, 10, 50_000, 100), job(2, 2, 10, 10, 100, 100)];
    let mut c = cfg(10, EngineKind::Conservative { dynamic: true });
    c.kill = KillPolicy::Never;
    let s = simulate(&trace, &c, &mut NullObserver, SimOptions::new()).unwrap();
    assert_eq!(start_of(&s, 2), 50_000);
}

#[test]
fn when_needed_kill_reclaims_overdue_nodes_for_conservative_reservations() {
    // Same setup with the CPlant kill rule: job 2's arrival creates demand,
    // so job 1 dies at its WCL and job 2 starts right then.
    let trace = [job(1, 1, 0, 10, 50_000, 100), job(2, 2, 10, 10, 100, 100)];
    let c = cfg(10, EngineKind::Conservative { dynamic: false }); // default kill: WhenNeeded
    let s = simulate(&trace, &c, &mut NullObserver, SimOptions::new()).unwrap();
    let r1 = s.records.iter().find(|r| r.id == JobId(1)).unwrap();
    assert!(r1.killed);
    assert_eq!(r1.end, 100);
    assert_eq!(start_of(&s, 2), 100);
}

#[test]
fn multiple_overdue_jobs_are_all_reclaimed_at_once() {
    // Two over-running narrow jobs; a wide arrival needs both of their node
    // sets. Both must be killed at the arrival.
    let trace = [
        job(1, 1, 0, 5, 50_000, 100),
        job(2, 2, 0, 5, 50_000, 100),
        job(3, 3, 500, 10, 100, 100),
    ];
    let c = cfg(10, EngineKind::NoGuarantee);
    let s = simulate(&trace, &c, &mut NullObserver, SimOptions::new()).unwrap();
    for id in [1, 2] {
        let r = s.records.iter().find(|r| r.id == JobId(id)).unwrap();
        assert!(r.killed, "job {id} should be killed");
        assert_eq!(r.end, 500);
    }
    assert_eq!(start_of(&s, 3), 500);
}

#[test]
fn starvation_guard_does_not_fire_before_the_delay() {
    // A wide job waits while narrow jobs flow freely — until the entry
    // delay passes, at which point its reservation throttles them.
    let mut trace = vec![job(1, 99, 0, 10, 40 * HOUR, 40 * HOUR)];
    // Wide job arrives immediately behind the runner.
    trace.push(job(2, 50, 1, 10, 2 * HOUR, 2 * HOUR));
    // Streams of narrow long jobs from distinct users.
    for (id, t) in (3u32..).zip(0..30u64) {
        trace.push(job(id, 1 + (id % 20), 2 + t, 3, 30 * HOUR, 40 * HOUR));
    }
    let mut c = cfg(10, EngineKind::NoGuarantee);
    c.starvation = Some(StarvationConfig {
        entry_delay: 24 * HOUR,
        heavy_rule: None,
    });
    c.kill = KillPolicy::Never;
    let s = simulate(&trace, &c, &mut NullObserver, SimOptions::new()).unwrap();
    // The wide job must eventually run, and not absurdly late: once it
    // starves (24 h) its reservation prevents fresh narrow starts.
    let wide_start = start_of(&s, 2);
    // Upper bound: entry delay + one full drain of whatever was running at
    // that moment (≤ 40 h estimate) plus slack.
    assert!(
        wide_start <= (24 + 70) * HOUR,
        "wide job started at {} h",
        wide_start / HOUR
    );
}

#[test]
fn heavy_rule_changes_who_starves_first() {
    // Two starving wide jobs: the earlier one belongs to a heavy user. With
    // the bar, the later light-user job heads the starvation queue instead.
    let build = |heavy_rule: Option<HeavyUserRule>| {
        let trace = [
            // Heavy user burns the machine for 2 days.
            job(1, 1, 0, 10, 2 * DAY, 2 * DAY),
            // Heavy user's wide job arrives first...
            job(2, 1, 100, 10, HOUR, HOUR),
            // ...then a light user's wide job.
            job(3, 2, 200, 10, HOUR, HOUR),
        ];
        let mut c = cfg(10, EngineKind::NoGuarantee);
        c.starvation = Some(StarvationConfig {
            entry_delay: 12 * HOUR,
            heavy_rule,
        });
        c.order = QueueOrder::Fcfs; // isolate the starvation-queue effect
        simulate(&trace, &c, &mut NullObserver, SimOptions::new()).unwrap()
    };
    // Without the bar: FCFS order anyway, job 2 first.
    let s_all = build(None);
    assert!(start_of(&s_all, 2) < start_of(&s_all, 3));
    // With the bar, the heavy user's job cannot claim the guarantee: the
    // light user's job heads the starvation queue, receives the aggressive
    // reservation, and therefore starts first when the machine frees.
    let s_fair = build(Some(HeavyUserRule { mean_multiple: 1.5 }));
    assert!(
        start_of(&s_fair, 3) < start_of(&s_fair, 2),
        "barred heavy user should lose the guarantee: {} vs {}",
        start_of(&s_fair, 3),
        start_of(&s_fair, 2)
    );
}

#[test]
fn easy_engine_with_an_empty_queue_is_a_no_op() {
    let trace = [job(1, 1, 0, 4, 100, 100)];
    let s = simulate(
        &trace,
        &cfg(10, EngineKind::Easy),
        &mut NullObserver,
        SimOptions::new(),
    )
    .unwrap();
    assert_eq!(s.records.len(), 1);
    assert_eq!(start_of(&s, 1), 0);
}

#[test]
fn depth_engine_blocks_profile_violations_end_to_end() {
    // Reserved head at depth 1; a long narrow job that would delay it must
    // wait, a short one may pass. The 8-wide runner leaves 2 nodes free for
    // backfilling candidates.
    let trace = [
        job(1, 1, 0, 8, 1000, 1000),  // runner till 1000
        job(2, 2, 5, 10, 100, 100),   // reserved at 1000
        job(3, 3, 10, 2, 5000, 5000), // would delay the reservation
        job(4, 4, 15, 2, 100, 100),   // finishes before 1000: backfills
    ];
    let mut c = cfg(10, EngineKind::ReservationDepth(1));
    c.starvation = None;
    c.kill = KillPolicy::Never;
    let s = simulate(&trace, &c, &mut NullObserver, SimOptions::new()).unwrap();
    assert_eq!(start_of(&s, 2), 1000, "reserved head starts on schedule");
    assert_eq!(start_of(&s, 4), 15, "short narrow job backfills");
    assert!(
        start_of(&s, 3) >= 1100,
        "long narrow job must not delay the head"
    );
}

#[test]
fn fcfs_engine_honours_fairshare_order_too() {
    // The no-backfill engine uses the configured priority order: with
    // fairshare, a light user's later job heads the queue.
    let trace = [
        job(1, 1, 0, 10, DAY, DAY), // builds user 1's usage
        job(2, 1, 100, 4, 100, 100),
        job(3, 2, 200, 4, 100, 100),
    ];
    let s = simulate(
        &trace,
        &cfg(10, EngineKind::FcfsNoBackfill),
        &mut NullObserver,
        SimOptions::new(),
    )
    .unwrap();
    assert!(start_of(&s, 3) <= start_of(&s, 2));
}

#[test]
fn zero_jobs_is_a_valid_simulation() {
    let s = simulate(
        &[],
        &cfg(10, EngineKind::Conservative { dynamic: false }),
        &mut NullObserver,
        SimOptions::new(),
    )
    .unwrap();
    assert!(s.records.is_empty());
    assert_eq!(s.makespan(), 0);
    assert_eq!(s.utilization(), 0.0);
}
