//! Submission lifecycle: pending arrivals, runtime-limit chunk chains, and
//! crash recovery.
//!
//! The event loop in [`simulator`](crate::simulator) dispatches events;
//! this module owns how submissions come to exist: trace jobs registering
//! as pending arrivals, long jobs splitting into `≤ limit` chunk chains
//! (§5.1), and crashed submissions re-entering under the configured
//! [`ResiliencePolicy`]. All three mint ids and arrival events from the
//! same bookkeeping, so `(origin, chunk_index)` stays a unique key for
//! every submission attempt.

use crate::config::SimConfig;
use crate::event::{EventKind, EventQueue};
use crate::faults::ResiliencePolicy;
use crate::simulator::SimError;
use fairsched_workload::job::{GroupId, Job, JobId, UserId};
use fairsched_workload::time::Time;
use std::collections::HashMap;

/// Resubmission cap per original job. Legitimate chunk chains stay far
/// below this (an 82-year job at the 72 h limit would be the first to
/// reach it); only a fault configuration under which a job cannot finish
/// between interruptions can cross it, and such a simulation would
/// otherwise run — and allocate — forever.
const MAX_SUBMISSIONS_PER_ORIGIN: u32 = 10_000;

/// A submission known to the simulator but not yet arrived.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PendingSubmission {
    pub origin: JobId,
    pub chunk_index: u32,
    pub user: UserId,
    pub group: GroupId,
    pub nodes: u32,
    pub runtime: Time,
    pub estimate: Time,
    pub origin_submit: Time,
}

/// Progress of a runtime-limited chain.
#[derive(Debug, Clone, Copy)]
struct ChainState {
    origin: JobId,
    user: UserId,
    group: GroupId,
    nodes: u32,
    origin_submit: Time,
    remaining_actual: Time,
    remaining_estimate: Time,
    next_chunk: u32,
}

/// Submission bookkeeping for one run: what is pending, which submissions
/// belong to chains, and the id counter resubmissions mint from.
#[derive(Clone)]
pub(crate) struct Lifecycle {
    pending: HashMap<JobId, PendingSubmission>,
    chains: HashMap<JobId, usize>, // chunk id → chain index
    chain_states: Vec<ChainState>,
    next_id: u32,
    // Set when a job crosses `MAX_SUBMISSIONS_PER_ORIGIN`; surfaced as a
    // typed error by the simulator's next invariant check instead of
    // looping forever.
    diverged: Option<SimError>,
}

impl Lifecycle {
    /// Empty bookkeeping; fresh ids start past the trace's largest.
    pub(crate) fn new(trace: &[Job]) -> Self {
        Lifecycle {
            pending: HashMap::new(),
            chains: HashMap::new(),
            chain_states: Vec::new(),
            next_id: trace.iter().map(|j| j.id.0).max().unwrap_or(0) + 1,
            diverged: None,
        }
    }

    /// Registers an original trace job: either a standalone submission or
    /// the head of a runtime-limited chain.
    pub(crate) fn admit(&mut self, cfg: &SimConfig, job: &Job, events: &mut EventQueue) {
        let chained = cfg
            .runtime_limit
            .map(|rl| job.estimate > rl.limit)
            .unwrap_or(false);
        if chained {
            let chain = ChainState {
                origin: job.id,
                user: job.user,
                group: job.group,
                nodes: job.nodes,
                origin_submit: job.submit,
                remaining_actual: job.runtime,
                remaining_estimate: job.estimate,
                next_chunk: 1,
            };
            self.chain_states.push(chain);
            let chain_idx = self.chain_states.len() - 1;
            self.submit_next_chunk(cfg, chain_idx, job.submit, Some(job.id), events);
        } else {
            self.pending.insert(
                job.id,
                PendingSubmission {
                    origin: job.id,
                    chunk_index: 0,
                    user: job.user,
                    group: job.group,
                    nodes: job.nodes,
                    runtime: job.runtime,
                    estimate: job.estimate,
                    origin_submit: job.submit,
                },
            );
            events.push(job.submit, EventKind::Arrival, job.id);
        }
    }

    /// Creates and schedules the next chunk of a chain. The first chunk may
    /// reuse the original job id; later chunks get fresh ids.
    ///
    /// Chains normally exist only under a runtime limit, but
    /// [`ResiliencePolicy::ChunkResume`] promotes crashed standalone jobs
    /// into chains too — without a limit the chunk simply asks for all the
    /// remaining work.
    fn submit_next_chunk(
        &mut self,
        cfg: &SimConfig,
        chain_idx: usize,
        at: Time,
        reuse_id: Option<JobId>,
        events: &mut EventQueue,
    ) -> Option<JobId> {
        let limit = cfg.runtime_limit.map_or(Time::MAX, |rl| rl.limit);
        let chain = &mut self.chain_states[chain_idx];
        debug_assert!(chain.remaining_actual > 0);
        // The user requests what they believe remains (capped at the limit);
        // once the original estimate is exhausted they request a full slice
        // — or, with no limit to fall back on, exactly what is left.
        let estimate = if chain.remaining_estimate > 0 {
            limit.min(chain.remaining_estimate)
        } else if limit < Time::MAX {
            limit
        } else {
            chain.remaining_actual
        };
        let runtime = chain.remaining_actual.min(estimate);
        let chunk_index = chain.next_chunk;
        if chunk_index >= MAX_SUBMISSIONS_PER_ORIGIN {
            self.diverged = Some(SimError::Diverged {
                job: chain.origin,
                attempts: chunk_index,
            });
            return None;
        }
        chain.next_chunk += 1;
        let id = reuse_id.unwrap_or_else(|| {
            let id = JobId(self.next_id);
            self.next_id += 1;
            id
        });
        let chain = self.chain_states[chain_idx];
        self.chains.insert(id, chain_idx);
        self.pending.insert(
            id,
            PendingSubmission {
                origin: chain.origin,
                chunk_index,
                user: chain.user,
                group: chain.group,
                nodes: chain.nodes,
                runtime,
                estimate,
                origin_submit: chain.origin_submit,
            },
        );
        events.push(at, EventKind::Arrival, id);
        Some(id)
    }

    /// A chained submission ran to completion (or its kill): bank the
    /// executed work against the chain and submit the next chunk if the
    /// chain is not done.
    pub(crate) fn bank_chunk(
        &mut self,
        cfg: &SimConfig,
        id: JobId,
        estimate_used: Time,
        executed: Time,
        now: Time,
        events: &mut EventQueue,
    ) {
        if let Some(&chain_idx) = self.chains.get(&id) {
            let chain = &mut self.chain_states[chain_idx];
            chain.remaining_actual = chain.remaining_actual.saturating_sub(executed);
            chain.remaining_estimate = chain.remaining_estimate.saturating_sub(estimate_used);
            if chain.remaining_actual > 0 {
                self.submit_next_chunk(cfg, chain_idx, now, None, events);
            }
        }
    }

    /// Applies the configured resilience policy to a crashed submission,
    /// returning the retry's id when one re-enters. The caller accounts
    /// any lost work (requeue-from-scratch discards `executed`; resume
    /// banks it as a checkpoint).
    pub(crate) fn recover_crashed(
        &mut self,
        cfg: &SimConfig,
        id: JobId,
        pending: &PendingSubmission,
        executed: Time,
        now: Time,
        events: &mut EventQueue,
    ) -> Option<JobId> {
        match cfg.faults.resilience {
            ResiliencePolicy::RequeueFromScratch => {
                // The submission re-enters intact, as a fresh attempt with
                // the next per-origin chunk index. Fairshare usage already
                // charged for the lost run stays charged — users pay for
                // their bad luck, as CPlant did.
                if let Some(&chain_idx) = self.chains.get(&id) {
                    // The chain is not advanced: the crashed chunk's work
                    // does not count, so the same remainder re-enters.
                    self.submit_next_chunk(cfg, chain_idx, now, None, events)
                } else {
                    let mut resubmission = *pending;
                    resubmission.chunk_index += 1;
                    if resubmission.chunk_index >= MAX_SUBMISSIONS_PER_ORIGIN {
                        self.diverged = Some(SimError::Diverged {
                            job: resubmission.origin,
                            attempts: resubmission.chunk_index,
                        });
                        return None;
                    }
                    let new_id = JobId(self.next_id);
                    self.next_id += 1;
                    self.pending.insert(new_id, resubmission);
                    events.push(now, EventKind::Arrival, new_id);
                    Some(new_id)
                }
            }
            ResiliencePolicy::ChunkResume => {
                // The interrupted run is an implicit checkpoint: bank the
                // executed seconds and continue from there, reusing the
                // runtime-limit chain machinery. A standalone submission is
                // promoted into a chain on its first crash.
                let chain_idx = match self.chains.get(&id).copied() {
                    Some(ci) => ci,
                    None => {
                        let p = *pending;
                        self.chain_states.push(ChainState {
                            origin: p.origin,
                            user: p.user,
                            group: p.group,
                            nodes: p.nodes,
                            origin_submit: p.origin_submit,
                            remaining_actual: p.runtime,
                            remaining_estimate: p.estimate,
                            next_chunk: p.chunk_index + 1,
                        });
                        self.chain_states.len() - 1
                    }
                };
                let chain = &mut self.chain_states[chain_idx];
                chain.remaining_actual = chain.remaining_actual.saturating_sub(executed);
                // The estimate budget shrinks only by what actually ran:
                // the user re-requests the rest for the resumed chunk.
                chain.remaining_estimate = chain.remaining_estimate.saturating_sub(executed);
                if chain.remaining_actual > 0 {
                    self.submit_next_chunk(cfg, chain_idx, now, None, events)
                } else {
                    None
                }
            }
        }
    }

    /// Raises the floor fresh ids are minted from; never lowers it. The
    /// stepped core calls this per accepted submission so online id
    /// numbering matches [`Lifecycle::new`]'s whole-trace maximum.
    pub(crate) fn reserve_ids(&mut self, floor: u32) {
        self.next_id = self.next_id.max(floor);
    }

    /// Whether any submission is still waiting to arrive.
    pub(crate) fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    /// The submitting user of a still-pending submission.
    pub(crate) fn pending_user(&self, id: JobId) -> UserId {
        self.pending[&id].user
    }

    /// Removes and returns a pending submission as it arrives.
    pub(crate) fn take_pending(&mut self, id: JobId) -> PendingSubmission {
        self.pending
            .remove(&id)
            .expect("arrival for unknown submission")
    }

    /// The divergence error, if the resubmission cap was crossed.
    pub(crate) fn diverged(&self) -> Option<&SimError> {
        self.diverged.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RuntimeLimit;

    fn chained_cfg(limit: Time) -> SimConfig {
        SimConfig {
            runtime_limit: Some(RuntimeLimit { limit }),
            ..Default::default()
        }
    }

    #[test]
    fn long_jobs_split_into_limit_sized_chunks() {
        let cfg = chained_cfg(100);
        let mut events = EventQueue::new();
        let mut lc = Lifecycle::new(&[]);
        // 250 s of work at a 100 s limit: chunks of 100, 100, 50.
        let job = Job::new(1, 1, 1, 0, 4, 250, 250);
        lc.admit(&cfg, &job, &mut events);
        assert_eq!(events.pop().map(|e| e.job), Some(JobId(1)));
        let first = lc.take_pending(JobId(1));
        assert_eq!(
            (first.chunk_index, first.runtime, first.estimate),
            (1, 100, 100)
        );
        lc.bank_chunk(&cfg, JobId(1), 100, 100, 100, &mut events);
        let second_id = events.pop().map(|e| e.job).unwrap();
        let second = lc.take_pending(second_id);
        assert_eq!((second.chunk_index, second.runtime), (2, 100));
        lc.bank_chunk(&cfg, second_id, 100, 100, 200, &mut events);
        // events: the first chunk's arrival was popped; next is chunk 3.
        let third_id = events.pop().map(|e| e.job).unwrap();
        let third = lc.take_pending(third_id);
        assert_eq!((third.chunk_index, third.runtime), (3, 50));
        lc.bank_chunk(&cfg, third_id, 50, 50, 250, &mut events);
        assert!(!lc.has_pending());
        assert!(lc.diverged().is_none());
    }

    #[test]
    fn short_jobs_stay_standalone() {
        let cfg = chained_cfg(100);
        let mut events = EventQueue::new();
        let mut lc = Lifecycle::new(&[]);
        let job = Job::new(7, 1, 1, 5, 2, 80, 90);
        lc.admit(&cfg, &job, &mut events);
        assert_eq!(lc.pending_user(JobId(7)), UserId(1));
        let p = lc.take_pending(JobId(7));
        assert_eq!((p.chunk_index, p.runtime, p.estimate), (0, 80, 90));
    }
}
