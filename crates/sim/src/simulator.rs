//! The event-driven simulator: the paper's "locally developed event based
//! simulator" (§3.1), rebuilt.
//!
//! [`try_simulate`] replays a trace under a [`SimConfig`] and produces a
//! [`Schedule`]: one record per submission (chunk, when runtime limits are
//! on), plus the exact loss-of-capacity and utilization integrals.
//! Trace/config validation and invariant violations come back as a typed
//! [`SimError`] instead of a panic.
//!
//! The event loop here is dispatch plus invariants; its collaborators own
//! the policy and bookkeeping: the [`engine`](crate::engine) strategies
//! decide who starts, the internal `lifecycle` module owns how submissions
//! come to exist (pending arrivals, chunk chains, crash recovery), and the
//! internal `accounting` module integrates what it all added up to.
//!
//! Semantics, in event order at each instant: completions free capacity,
//! wall-clock-limit expiries are considered, fault events (node repairs,
//! node failures, job crashes) hit the machine, arrivals queue, then the
//! scheduling engine runs (interleaved with the when-needed kill rule)
//! until a fixpoint. Two invariants are checked after every event batch,
//! always (not just in debug builds): no node is double-booked
//! (`running + free + down == machine`), and at the end of the run the
//! node-hour integrals conserve (`used + idle + down == capacity × time`).

use crate::accounting::{Accounting, GapState};
use crate::config::{AllocationModel, KillPolicy, SimConfig};
use crate::engine::{make_engine, Engine, EngineCtx};
use crate::event::{EventKind, EventQueue};
use crate::fairshare::FairshareTracker;
use crate::faults::{FaultModel, Outage, ResiliencePolicy};
use crate::lifecycle::{Lifecycle, PendingSubmission};
use crate::starvation::starving_jobs;
use crate::state::{ArrivalView, Observer, QueuedJob, RunningJob};
use fairsched_cpa::alloc::AllocId;
use fairsched_cpa::{frag, Allocator, CountingAllocator, LinearAllocator};
use fairsched_obs::{counters, TraceHandle, TraceRecord, TraceSink};
use fairsched_workload::job::{GroupId, Job, JobId, UserId};
use fairsched_workload::time::{Time, WEEK};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A cooperative cancellation handle shared between a simulation and an
/// external controller (e.g. a sweep watchdog). Cloning produces another
/// handle to the *same* flag; once [`CancelToken::cancel`] fires, every
/// simulation checking that token stops at its next event batch with
/// [`SimError::TimedOut`].
///
/// Cancellation is level-triggered and one-way: there is no reset, so a
/// token is for a single cell/run.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Safe to call from any thread, any number of
    /// times.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// One submission's fate. With runtime limits active, a long job appears as
/// several records chained by [`JobRecord::origin`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobRecord {
    /// This submission's id (fresh ids for chunks ≥ 2).
    pub id: JobId,
    /// The original trace job this record belongs to (== `id` for
    /// standalone jobs and first chunks).
    pub origin: JobId,
    /// 0 for a first standalone submission; otherwise a 1-based,
    /// per-origin monotone chunk number — runtime-limit chunks and
    /// crash resubmissions share the counter, so `(origin, chunk_index)`
    /// uniquely identifies a submission attempt.
    pub chunk_index: u32,
    /// Submitting user.
    pub user: UserId,
    /// Submitting group.
    pub group: GroupId,
    /// Width in nodes.
    pub nodes: u32,
    /// When this submission entered the queue.
    pub submit: Time,
    /// When the *original* job entered the system (chains: first chunk's
    /// submit).
    pub origin_submit: Time,
    /// Start time.
    pub start: Time,
    /// End time (completion or kill).
    pub end: Time,
    /// Wall-clock limit of this submission.
    pub estimate: Time,
    /// Whether the scheduler killed it at/after its wall-clock limit.
    pub killed: bool,
    /// Whether a fault (node failure or job crash) ended this submission
    /// prematurely. Only set when fault injection is enabled.
    pub interrupted: bool,
}

impl JobRecord {
    /// Seconds actually executed.
    pub fn executed(&self) -> Time {
        self.end - self.start
    }

    /// Queue wait of this submission.
    pub fn wait(&self) -> Time {
        self.start - self.submit
    }

    /// Turnaround of this submission (not the chain).
    pub fn turnaround(&self) -> Time {
        self.end - self.submit
    }
}

/// A whole original job, chains collapsed (the unit user metrics are
/// reported over).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OriginalOutcome {
    /// Original trace job id.
    pub origin: JobId,
    /// Submitting user.
    pub user: UserId,
    /// Width in nodes.
    pub nodes: u32,
    /// Original submit time.
    pub submit: Time,
    /// First chunk's start.
    pub first_start: Time,
    /// Last chunk's end.
    pub completion: Time,
    /// Total seconds executed across chunks.
    pub executed: Time,
    /// Number of submissions (1 for standalone).
    pub chunks: u32,
    /// Whether any chunk was killed.
    pub killed: bool,
    /// Whether any chunk was ended by a fault.
    pub interrupted: bool,
}

impl OriginalOutcome {
    /// Turnaround of the original job: submit → last completion.
    pub fn turnaround(&self) -> Time {
        self.completion - self.submit
    }
}

/// The result of a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Machine size.
    pub nodes: u32,
    /// Per-submission records, sorted by id.
    pub records: Vec<JobRecord>,
    /// ∫ min(queued demand, idle nodes) dt — the loss-of-capacity numerator
    /// (Equation 4), in node-seconds.
    pub waste_nodeseconds: f64,
    /// ∫ busy nodes dt, in node-seconds.
    pub busy_nodeseconds: f64,
    /// ∫ down nodes dt, in node-seconds — capacity lost to node outages.
    pub down_nodeseconds: f64,
    /// Node-seconds of executed work discarded by crashes (nonzero only
    /// under [`ResiliencePolicy::RequeueFromScratch`]; resumed chunks keep
    /// their pre-failure work).
    pub lost_nodeseconds: f64,
    /// Busy node-seconds binned by simulated week (for Figure 3's actual
    /// utilization).
    pub weekly_busy: Vec<f64>,
    /// Earliest job start (Equation 3's `MinStartTime`).
    pub min_start: Time,
    /// Latest completion (`MaxCompletionTime`).
    pub max_completion: Time,
    /// Placement-quality statistics, present when the simulation ran with a
    /// linear (CPA) allocation model.
    pub placement: Option<PlacementStats>,
    /// Queue-pressure statistics over the whole run.
    pub queue_stats: QueueStats,
}

/// Time-weighted queue-pressure statistics.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QueueStats {
    /// Largest number of jobs simultaneously queued.
    pub max_queued_jobs: usize,
    /// Largest queued node demand observed.
    pub max_queued_demand: u64,
    /// Time-weighted mean number of queued jobs.
    pub mean_queued_jobs: f64,
    /// Time-weighted mean queued node demand.
    pub mean_queued_demand: f64,
}

/// Aggregate placement quality under a linear (CPA) allocation model.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PlacementStats {
    /// Number of allocations placed.
    pub allocations: usize,
    /// Mean compactness (1 = contiguous) across allocations.
    pub mean_compactness: f64,
    /// Mean physical span across allocations, in nodes.
    pub mean_span: f64,
    /// Allocations that had to scatter (span exceeds the contiguous
    /// minimum).
    pub scattered: usize,
    /// Mean external fragmentation of the free space, sampled just before
    /// each allocation.
    pub mean_external_frag: f64,
}

impl Schedule {
    /// Makespan per Equation 3.
    pub fn makespan(&self) -> Time {
        self.max_completion.saturating_sub(self.min_start)
    }

    /// Utilization per Equation 2.
    pub fn utilization(&self) -> f64 {
        let denom = self.makespan() as f64 * self.nodes as f64;
        if denom == 0.0 {
            return 0.0;
        }
        self.busy_nodeseconds / denom
    }

    /// Goodput: the fraction of capacity over the makespan that did work
    /// which *counted* — busy node-seconds minus the ones a crash later
    /// threw away. Equals [`Schedule::utilization`] on a fault-free run.
    pub fn goodput(&self) -> f64 {
        let denom = self.makespan() as f64 * self.nodes as f64;
        if denom == 0.0 {
            return 0.0;
        }
        (self.busy_nodeseconds - self.lost_nodeseconds) / denom
    }

    /// Loss of capacity per Equation 4.
    pub fn loss_of_capacity(&self) -> f64 {
        let denom = self.makespan() as f64 * self.nodes as f64;
        if denom == 0.0 {
            return 0.0;
        }
        self.waste_nodeseconds / denom
    }

    /// Weekly actual utilization (Figure 3's second series).
    pub fn weekly_utilization(&self) -> Vec<f64> {
        let cap = self.nodes as f64 * WEEK as f64;
        self.weekly_busy.iter().map(|b| b / cap).collect()
    }

    /// Collapses chains into per-original outcomes, sorted by origin id.
    pub fn originals(&self) -> Vec<OriginalOutcome> {
        let mut map: HashMap<JobId, OriginalOutcome> = HashMap::new();
        for r in &self.records {
            map.entry(r.origin)
                .and_modify(|o| {
                    o.first_start = o.first_start.min(r.start);
                    o.completion = o.completion.max(r.end);
                    o.executed += r.executed();
                    o.chunks += 1;
                    o.killed |= r.killed;
                    o.interrupted |= r.interrupted;
                })
                .or_insert(OriginalOutcome {
                    origin: r.origin,
                    user: r.user,
                    nodes: r.nodes,
                    submit: r.origin_submit,
                    first_start: r.start,
                    completion: r.end,
                    executed: r.executed(),
                    chunks: 1,
                    killed: r.killed,
                    interrupted: r.interrupted,
                });
        }
        let mut out: Vec<OriginalOutcome> = map.into_values().collect();
        out.sort_by_key(|o| o.origin);
        out
    }
}

/// Why a simulation could not run (or could not be trusted).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A trace job requests more nodes than the machine has.
    TooWide {
        /// The offending job.
        job: JobId,
        /// Its requested width.
        nodes: u32,
        /// The machine size.
        machine: u32,
    },
    /// A trace job fails its own invariants (zero nodes/runtime/estimate).
    InvalidTrace {
        /// The offending job.
        job: JobId,
        /// What was wrong.
        reason: String,
    },
    /// The configuration is self-contradictory.
    InvalidConfig {
        /// What was wrong.
        reason: String,
    },
    /// A runtime invariant broke mid-simulation — a simulator bug, caught
    /// by the always-on observer rather than silently producing a corrupt
    /// schedule.
    InvariantViolation {
        /// Simulated time of the detection.
        at: Time,
        /// What broke.
        detail: String,
    },
    /// The fault configuration makes a job unable to ever finish — it was
    /// resubmitted more times than any legitimate chunk chain could need
    /// (e.g. a wide job whose nodes cannot all stay up for a whole chunk
    /// at the configured MTBF), so the simulation would never terminate.
    Diverged {
        /// The origin job that kept being resubmitted.
        job: JobId,
        /// Submissions accumulated before the guard tripped.
        attempts: u32,
    },
    /// An online submission is dated before the simulated-time frontier
    /// the core has already advanced past. Accepting it would silently
    /// rewrite history (the event queue orders by time, so a
    /// yet-unreached timestamp is fine — a passed one is not).
    SubmittedInPast {
        /// The offending submission.
        job: JobId,
        /// Its timestamp.
        submit: Time,
        /// The frontier it fell behind.
        now: Time,
    },
    /// The run's [`CancelToken`] fired (watchdog timeout or external
    /// cancellation) and the event loop stopped cooperatively.
    TimedOut {
        /// Simulated time at which the cancellation was observed.
        at: Time,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            // Keep the legacy panic wording: callers match on "nodes on a".
            SimError::TooWide {
                job,
                nodes,
                machine,
            } => {
                write!(
                    f,
                    "{job} requests {nodes} nodes on a {machine}-node machine"
                )
            }
            SimError::InvalidTrace { job, reason } => {
                write!(f, "invalid trace job {job}: {reason}")
            }
            SimError::InvalidConfig { reason } => write!(f, "invalid config: {reason}"),
            SimError::InvariantViolation { at, detail } => {
                write!(f, "invariant violation at t={at}: {detail}")
            }
            SimError::Diverged { job, attempts } => {
                write!(
                    f,
                    "{job} was resubmitted {attempts} times without finishing; \
                     the fault configuration (MTBF / crash rate) makes it \
                     unable to complete"
                )
            }
            SimError::SubmittedInPast { job, submit, now } => {
                write!(
                    f,
                    "{job} submitted at t={submit} but simulated time has \
                     already advanced to t={now}"
                )
            }
            SimError::TimedOut { at } => {
                write!(f, "simulation cancelled at t={at} (watchdog timeout)")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Why a running job ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Cause {
    /// Ran to its natural completion.
    Finished,
    /// Killed by the scheduler at/after its wall-clock limit.
    Killed,
    /// Ended by a fault (node failure or software crash).
    Crashed,
}

/// A record under construction.
#[derive(Debug, Clone, Copy)]
struct OpenRecord {
    pending: PendingSubmission,
    submit: Time,
    start: Option<Time>,
}

/// The node-assignment backend: either pure counting or a real CPA line.
/// Both honour the same contract (allocate on start, release on end); only
/// the linear variant tracks concrete nodes and placement quality.
#[derive(Clone)]
struct NodeBackend {
    kind: BackendKind,
    ids: HashMap<JobId, AllocId>,
    // PlacementStats accumulators (linear only).
    allocations: usize,
    compactness_sum: f64,
    span_sum: f64,
    scattered: usize,
    frag_sum: f64,
}

#[derive(Clone)]
enum BackendKind {
    Counting(CountingAllocator),
    Linear(LinearAllocator),
}

impl NodeBackend {
    fn new(cfg: &SimConfig) -> Self {
        let kind = match cfg.allocation {
            AllocationModel::Counting => BackendKind::Counting(CountingAllocator::new(cfg.nodes)),
            AllocationModel::Linear(strategy) => {
                BackendKind::Linear(LinearAllocator::new(cfg.nodes, strategy))
            }
        };
        NodeBackend {
            kind,
            ids: HashMap::new(),
            allocations: 0,
            compactness_sum: 0.0,
            span_sum: 0.0,
            scattered: 0,
            frag_sum: 0.0,
        }
    }

    fn place(&mut self, job: JobId, nodes: u32) {
        let allocation = match &mut self.kind {
            BackendKind::Counting(a) => a
                .allocate(nodes)
                .expect("scheduler start gate guarantees fit"),
            BackendKind::Linear(a) => {
                // Sample fragmentation of the free space this job faced.
                self.frag_sum += frag::external_fragmentation(&a.free_runs());
                let allocation = a
                    .allocate(nodes)
                    .expect("scheduler start gate guarantees fit");
                self.allocations += 1;
                self.compactness_sum += frag::compactness(&allocation.nodes);
                let span = frag::span(&allocation.nodes);
                self.span_sum += span as f64;
                if span > nodes.saturating_sub(1) {
                    self.scattered += 1;
                }
                allocation
            }
        };
        self.ids.insert(job, allocation.id);
    }

    fn release(&mut self, job: JobId) {
        let id = self
            .ids
            .remove(&job)
            .expect("running job holds an allocation");
        match &mut self.kind {
            BackendKind::Counting(a) => a.release(id).expect("allocation is live"),
            BackendKind::Linear(a) => a.release(id).expect("allocation is live"),
        }
    }

    fn stats(&self) -> Option<PlacementStats> {
        match self.kind {
            BackendKind::Counting(_) => None,
            BackendKind::Linear(_) => {
                let n = self.allocations.max(1) as f64;
                Some(PlacementStats {
                    allocations: self.allocations,
                    mean_compactness: self.compactness_sum / n,
                    mean_span: self.span_sum / n,
                    scattered: self.scattered,
                    mean_external_frag: self.frag_sum / n,
                })
            }
        }
    }
}

#[derive(Clone)]
pub(crate) struct Sim {
    cfg: SimConfig,
    events: EventQueue,
    now: Time,
    free: u32,
    backend: NodeBackend,
    queue: Vec<QueuedJob>,
    runtimes: HashMap<JobId, Time>,
    running: Vec<RunningJob>,
    overdue: Vec<JobId>,
    fairshare: FairshareTracker,
    // Submission lifecycle: pending arrivals, chunk chains, crash recovery.
    lifecycle: Lifecycle,
    open: HashMap<JobId, OpenRecord>,
    records: Vec<JobRecord>,
    // Closed-loop user feedback (user_concurrency): live job counts and
    // per-user FIFOs of deferred submissions.
    in_system: HashMap<UserId, u32>,
    parked: HashMap<UserId, std::collections::VecDeque<JobId>>,
    // Fault injection: the seeded model, the count of nodes down, live
    // outages (what the engines plan around), per-seq bookkeeping for
    // scheduled failures and concrete down nodes (linear backend only).
    faults: Option<FaultModel>,
    down: u32,
    outages: Vec<Outage>,
    repairs: HashMap<u32, Time>,
    outage_nodes: HashMap<u32, u32>,
    // Utilization / LOC / queue-pressure integrals.
    acct: Accounting,
    // Decision tracing (None on untraced runs — the default). Records land
    // in an owned, shareable buffer the driver drains per step (the batch
    // driver forwards them to the caller's sink; the stepped core returns
    // them as effects). Emission never feeds back into scheduling;
    // `promoted` only dedupes StarvationPromoted records and is touched
    // only while tracing.
    trace: Option<crate::step::TraceBuf>,
    promoted: HashSet<JobId>,
    // Cooperative cancellation (None on unguarded runs — the default).
    // Checked once per event batch, so a fired token stops the run within
    // one `step` regardless of trace length.
    cancel: Option<CancelToken>,
}

/// Everything optional about one simulation run, in one builder.
///
/// The historical `try_simulate` / `try_simulate_traced` /
/// `try_simulate_with` combinatorial surface collapses onto
/// [`simulate`]`(trace, cfg, observer, SimOptions)`: tracing, cooperative
/// cancellation, a fault-model override, and pass profiling are all knobs
/// on this builder instead of positional `Option` parameters.
///
/// ```
/// use fairsched_sim::{simulate, NullObserver, SimConfig, SimOptions};
/// use fairsched_workload::job::Job;
///
/// let trace = [Job::new(1, 1, 1, 0, 4, 100, 100)];
/// let cfg = SimConfig { nodes: 10, ..Default::default() };
/// let schedule = simulate(&trace, &cfg, &mut NullObserver, SimOptions::new()).unwrap();
/// assert_eq!(schedule.records[0].start, 0);
/// ```
#[derive(Default)]
pub struct SimOptions<'a> {
    pub(crate) sink: Option<&'a mut dyn TraceSink>,
    pub(crate) cancel: Option<CancelToken>,
    pub(crate) faults: Option<crate::faults::FaultConfig>,
    pub(crate) profile: bool,
}

impl<'a> SimOptions<'a> {
    /// No tracing, no cancellation, the config's own fault model, no
    /// profiling — the plain run.
    pub fn new() -> Self {
        Self::default()
    }

    /// Streams every scheduling decision (starts with their cause,
    /// reservation moves, starvation promotions, fault requeues) and a
    /// per-event-batch queue sample into `sink` as
    /// [`TraceRecord`](fairsched_obs::TraceRecord)s. Tracing is strictly
    /// write-only: the returned `Schedule` is byte-identical to the
    /// untraced run (pinned by the workspace `obs_interference` proptests).
    pub fn trace(mut self, sink: &'a mut dyn TraceSink) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Attaches a cooperative [`CancelToken`]: when a watchdog (or any
    /// other controller) fires it, the event loop stops at its next batch
    /// with [`SimError::TimedOut`] — no partial `Schedule` escapes.
    pub fn cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Overrides the config's fault model for this run without cloning the
    /// whole `SimConfig` at every call site.
    pub fn faults(mut self, faults: crate::faults::FaultConfig) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Wraps the run in an [`obs
    /// ProfileScope`](fairsched_obs::counters::ProfileScope) so pass
    /// timers and counters record. Callers that need a delta report still
    /// snapshot [`CounterSnapshot`](fairsched_obs::counters::CounterSnapshot)
    /// around the call, as `core::runner` does.
    pub fn profile(mut self, on: bool) -> Self {
        self.profile = on;
        self
    }
}

/// The single batch entry point: replays `trace` under `cfg` with
/// everything optional selected by [`SimOptions`]. Trace/config problems
/// and mid-run invariant violations come back as a typed [`SimError`]
/// instead of a panic.
///
/// This is a thin driver over the stepped core: it submits every trace job
/// into a [`SteppedSim`](crate::step::SteppedSim), grants the virtual
/// clock one event batch at a time via
/// [`SimEvent::AdvanceTo`](crate::step::SimEvent), and forwards
/// [`Effect::Trace`](crate::step::Effect) records to the configured sink.
/// Byte-exactness with the pre-step-core driver is pinned by the 34 FNV
/// goldens in `tests/engine_equivalence.rs`.
///
/// ```
/// use fairsched_sim::{simulate, NullObserver, SimConfig, SimOptions};
/// use fairsched_workload::job::Job;
///
/// // Two jobs on a 10-node machine: the second must queue behind the first.
/// let trace = [
///     Job::new(1, 1, 1, 0, 10, 100, 100),
///     Job::new(2, 2, 1, 5, 10, 50, 50),
/// ];
/// let cfg = SimConfig { nodes: 10, ..Default::default() };
/// let schedule = simulate(&trace, &cfg, &mut NullObserver, SimOptions::new()).unwrap();
/// assert_eq!(schedule.records[1].start, 100);
/// assert_eq!(schedule.makespan(), 150);
/// ```
pub fn simulate(
    trace: &[Job],
    cfg: &SimConfig,
    observer: &mut dyn Observer,
    opts: SimOptions<'_>,
) -> Result<Schedule, SimError> {
    use crate::step::{Effect, SimEvent, SteppedSim};
    // Validate the whole trace up front (the historical error precedence:
    // job problems surface before config problems).
    for job in trace {
        if job.nodes > cfg.nodes {
            return Err(SimError::TooWide {
                job: job.id,
                nodes: job.nodes,
                machine: cfg.nodes,
            });
        }
        job.validate().map_err(|e| SimError::InvalidTrace {
            job: job.id,
            reason: e.to_string(),
        })?;
    }
    let faulted_cfg;
    let cfg = match opts.faults {
        Some(faults) => {
            faulted_cfg = SimConfig {
                faults,
                ..cfg.clone()
            };
            &faulted_cfg
        }
        None => cfg,
    };
    let _scope = opts
        .profile
        .then(fairsched_obs::counters::ProfileScope::enter);
    let mut sink = opts.sink;
    let mut core = SteppedSim::with_trace_effects(cfg, sink.is_some())?;
    if let Some(cancel) = opts.cancel {
        core.set_cancel(cancel);
    }
    for job in trace {
        core.step(SimEvent::Submit(job.clone()), observer)?;
    }
    while let Some(at) = core.next_wakeup() {
        for effect in core.step(SimEvent::AdvanceTo(at), observer)? {
            if let (Effect::Trace { record }, Some(sink)) = (effect, sink.as_deref_mut()) {
                sink.record(record);
            }
        }
    }
    let schedule = core.finish()?;
    observer.on_finish(&schedule);
    Ok(schedule)
}

/// The historical plain entry point; use
/// [`simulate`]`(trace, cfg, observer, SimOptions::new())` instead.
#[deprecated(
    since = "0.1.0",
    note = "use simulate(trace, cfg, observer, SimOptions::new())"
)]
pub fn try_simulate(
    trace: &[Job],
    cfg: &SimConfig,
    observer: &mut dyn Observer,
) -> Result<Schedule, SimError> {
    simulate(trace, cfg, observer, SimOptions::new())
}

/// The historical traced entry point; use
/// [`simulate`] with [`SimOptions::trace`] instead.
#[deprecated(
    since = "0.1.0",
    note = "use simulate with SimOptions::new().trace(sink)"
)]
pub fn try_simulate_traced(
    trace: &[Job],
    cfg: &SimConfig,
    observer: &mut dyn Observer,
    sink: Option<&mut dyn TraceSink>,
) -> Result<Schedule, SimError> {
    let mut opts = SimOptions::new();
    if let Some(sink) = sink {
        opts = opts.trace(sink);
    }
    simulate(trace, cfg, observer, opts)
}

/// The historical fully-armed entry point; use
/// [`simulate`] with [`SimOptions::trace`] + [`SimOptions::cancel`] instead.
#[deprecated(
    since = "0.1.0",
    note = "use simulate with SimOptions::new().trace(sink).cancel(token)"
)]
pub fn try_simulate_with(
    trace: &[Job],
    cfg: &SimConfig,
    observer: &mut dyn Observer,
    sink: Option<&mut dyn TraceSink>,
    cancel: Option<CancelToken>,
) -> Result<Schedule, SimError> {
    let mut opts = SimOptions::new();
    if let Some(sink) = sink {
        opts = opts.trace(sink);
    }
    if let Some(cancel) = cancel {
        opts = opts.cancel(cancel);
    }
    simulate(trace, cfg, observer, opts)
}

pub(crate) fn make_engine_for(cfg: &SimConfig) -> Box<dyn Engine> {
    make_engine(cfg.engine)
}

impl Sim {
    pub(crate) fn new(cfg: &SimConfig, trace: &[Job]) -> Self {
        let mut sim = Sim {
            cfg: cfg.clone(),
            events: EventQueue::new(),
            now: 0,
            free: cfg.nodes,
            backend: NodeBackend::new(cfg),
            queue: Vec::new(),
            runtimes: HashMap::new(),
            running: Vec::new(),
            overdue: Vec::new(),
            fairshare: FairshareTracker::new(cfg.fairshare),
            lifecycle: Lifecycle::new(trace),
            open: HashMap::new(),
            records: Vec::new(),
            in_system: HashMap::new(),
            parked: HashMap::new(),
            faults: cfg
                .faults
                .enabled()
                .then(|| FaultModel::new(&cfg.faults, cfg.nodes)),
            down: 0,
            outages: Vec::new(),
            repairs: HashMap::new(),
            outage_nodes: HashMap::new(),
            acct: Accounting::new(),
            trace: None,
            promoted: HashSet::new(),
            cancel: None,
        };
        for job in trace {
            sim.admit(job);
        }
        sim.schedule_next_failure();
        sim
    }

    /// Draws the next node failure from the fault model (if node outages
    /// are on) and schedules it. The failure timeline is a pure function of
    /// the fault seed, so this never perturbs — and is never perturbed by —
    /// scheduling decisions.
    fn schedule_next_failure(&mut self) {
        let after = self.now;
        if let Some(f) = self.faults.as_mut().and_then(|fm| fm.next_failure(after)) {
            self.repairs.insert(f.seq, f.repair);
            self.events.push(f.time, EventKind::NodeDown, JobId(f.seq));
        }
    }

    /// The configuration this run is under.
    pub(crate) fn cfg(&self) -> &SimConfig {
        &self.cfg
    }

    /// Registers an original trace job: either a standalone submission or
    /// the head of a runtime-limited chain.
    pub(crate) fn admit(&mut self, job: &Job) {
        self.lifecycle.admit(&self.cfg, job, &mut self.events);
    }

    /// Attaches a cancellation token; clones made afterwards share it.
    pub(crate) fn set_cancel(&mut self, cancel: CancelToken) {
        self.cancel = Some(cancel);
    }

    /// Whether every admitted submission has been played out: no pending
    /// arrivals, nothing queued, nothing running.
    pub(crate) fn is_drained(&self) -> bool {
        !self.lifecycle.has_pending() && self.queue.is_empty() && self.running.is_empty()
    }

    /// Attaches (or detaches) the owned trace buffer records are emitted
    /// into. Set before the first step; the stepped core drains it into
    /// `Effect::Trace` values.
    pub(crate) fn set_trace(&mut self, trace: Option<crate::step::TraceBuf>) {
        self.trace = trace;
    }

    /// Raises the id floor fresh chunk/resubmission ids are minted from.
    pub(crate) fn reserve_ids(&mut self, floor: u32) {
        self.lifecycle.reserve_ids(floor);
    }

    /// Current simulated time (the processed event frontier).
    pub(crate) fn now(&self) -> Time {
        self.now
    }

    /// Queue and running-set sizes, for live status queries.
    pub(crate) fn pressure(&self) -> (usize, usize, u32, u32) {
        (self.queue.len(), self.running.len(), self.free, self.down)
    }

    /// Processes the next event batch — every event at the earliest pending
    /// instant — followed by the scheduling fixpoint and the invariant
    /// check. Returns `Ok(false)` when no events remain. The prefix engine
    /// drives partial simulations through this instead of [`Sim::run`].
    pub(crate) fn step(
        &mut self,
        engine: &mut dyn Engine,
        observer: &mut dyn Observer,
    ) -> Result<bool, SimError> {
        self.step_bounded(None, engine, observer)
    }

    /// [`Sim::step`] with an optional horizon: an event batch strictly
    /// after `horizon` is left pending and `Ok(false)` is returned, so a
    /// virtual-clock driver can grant simulated time in bounded slices
    /// without ever processing an event the clock has not reached.
    pub(crate) fn step_bounded(
        &mut self,
        horizon: Option<Time>,
        engine: &mut dyn Engine,
        observer: &mut dyn Observer,
    ) -> Result<bool, SimError> {
        if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            return Err(SimError::TimedOut { at: self.now });
        }
        if self
            .events
            .peek()
            .is_none_or(|e| horizon.is_some_and(|h| e.time > h))
        {
            return Ok(false);
        }
        let first = self.events.pop().expect("peeked");
        self.advance_to(first.time);
        self.process(first, engine, observer);
        while self.events.peek().is_some_and(|e| e.time == self.now) {
            let ev = self.events.pop().expect("peeked");
            self.process(ev, engine, observer);
        }
        self.trace_promotions();
        self.schedule_pass(engine, observer);
        self.trace_queue_sample();
        self.check_invariants()?;
        Ok(true)
    }

    /// Emits a `StarvationPromoted` record the first time each job crosses
    /// the starvation threshold. Traced runs only; promotion is a pure
    /// function of (queue, now), so recomputing it here cannot disturb the
    /// engine's own starvation query during the pass.
    fn trace_promotions(&mut self) {
        let (Some(t), Some(cfg)) = (self.trace.clone(), self.cfg.starvation.as_ref()) else {
            return;
        };
        for idx in starving_jobs(&self.queue, self.now, cfg, &self.fairshare, &self.running) {
            let q = &self.queue[idx];
            if self.promoted.insert(q.id) {
                t.emit(TraceRecord::StarvationPromoted {
                    at: self.now,
                    job: q.id,
                    waited: self.now - q.arrival,
                });
            }
        }
    }

    /// Emits one `QueueSample` per event batch, after the scheduling
    /// fixpoint settles (traced runs only). The sampled state holds until
    /// the next event, which is what trace replays rely on.
    fn trace_queue_sample(&mut self) {
        let Some(t) = self.trace.clone() else {
            return;
        };
        let queued_nodes: u64 = self.queue.iter().map(|q| q.nodes as u64).sum();
        let busy = self.cfg.nodes - self.free - self.down;
        t.emit(TraceRecord::QueueSample {
            at: self.now,
            depth: self.queue.len(),
            queued_nodes,
            free_nodes: self.free,
            running: self.running.len(),
            util: busy as f64 / self.cfg.nodes.max(1) as f64,
        });
    }

    /// Time of the earliest pending event, if any.
    pub(crate) fn next_event_time(&self) -> Option<Time> {
        self.events.peek().map(|e| e.time)
    }

    /// The recorded start of submission `id`, once it has started. Stays
    /// available through the open record while running and through the
    /// finalized record afterwards.
    pub(crate) fn start_time_of(&self, id: JobId) -> Option<Time> {
        if let Some(open) = self.open.get(&id) {
            return open.start;
        }
        self.records
            .iter()
            .rev()
            .find(|r| r.id == id)
            .map(|r| r.start)
    }

    /// Always-on invariant observer: no node is ever double-booked, and the
    /// allocation ledger matches the running set. O(running) per event
    /// batch — cheap enough to leave on outside debug builds, where a
    /// violated invariant must surface as a typed error, not a corrupt
    /// schedule.
    fn check_invariants(&self) -> Result<(), SimError> {
        if let Some(e) = self.lifecycle.diverged() {
            return Err(e.clone());
        }
        let running: u64 = self.running.iter().map(|r| r.nodes as u64).sum();
        let accounted = running + self.free as u64 + self.down as u64;
        if accounted != self.cfg.nodes as u64 {
            return Err(SimError::InvariantViolation {
                at: self.now,
                detail: format!(
                    "node double-booking: running {} + free {} + down {} != machine {}",
                    running, self.free, self.down, self.cfg.nodes
                ),
            });
        }
        if self.backend.ids.len() != self.running.len() {
            return Err(SimError::InvariantViolation {
                at: self.now,
                detail: format!(
                    "allocation ledger holds {} entries for {} running jobs",
                    self.backend.ids.len(),
                    self.running.len()
                ),
            });
        }
        if self.down as usize != self.outages.len() {
            return Err(SimError::InvariantViolation {
                at: self.now,
                detail: format!(
                    "down count {} disagrees with {} live outages",
                    self.down,
                    self.outages.len()
                ),
            });
        }
        Ok(())
    }

    /// End-of-run node-hour conservation: every node-second from t=0 to the
    /// last event was spent busy, idle, or down — nothing created, nothing
    /// leaked. Tolerance covers float accumulation only.
    fn check_conservation(&self) -> Result<(), SimError> {
        let (integrated, capacity) = self.acct.conservation_residual(self.cfg.nodes, self.now);
        if (integrated - capacity).abs() > 1e-6 * capacity.max(1.0) {
            return Err(SimError::InvariantViolation {
                at: self.now,
                detail: format!(
                    "node-hour conservation: used+idle+down = {integrated} \
                     but capacity×time = {capacity}"
                ),
            });
        }
        Ok(())
    }

    /// Advances accounting (fairshare accrual, LOC/busy integrals) to `to`.
    fn advance_to(&mut self, to: Time) {
        debug_assert!(to >= self.now);
        if to > self.now {
            let queued_demand: u64 = self.queue.iter().map(|q| q.nodes as u64).sum();
            self.acct.observe(
                self.now,
                to,
                GapState {
                    queued_jobs: self.queue.len(),
                    queued_demand,
                    free: self.free,
                    down: self.down,
                    total: self.cfg.nodes,
                },
            );
            let pairs: Vec<(UserId, u32)> =
                self.running.iter().map(|r| (r.user, r.nodes)).collect();
            self.fairshare.advance(to, &pairs);
        } else {
            self.fairshare.advance(to, &[]);
        }
        self.now = to;
    }

    fn process(
        &mut self,
        ev: crate::event::Event,
        engine: &mut dyn Engine,
        observer: &mut dyn Observer,
    ) {
        match ev.kind {
            EventKind::Arrival => self.handle_arrival(ev.job, engine, observer),
            EventKind::Completion => {
                // Stale if the job is no longer running at this exact end.
                let valid = self
                    .running
                    .iter()
                    .any(|r| r.id == ev.job && r.scheduled_end == ev.time);
                if valid {
                    self.complete(ev.job, Cause::Finished, engine, observer);
                }
            }
            EventKind::WclExpiry => {
                let running = self.running.iter().any(|r| r.id == ev.job);
                if running {
                    match self.cfg.kill {
                        KillPolicy::AtWcl => self.complete(ev.job, Cause::Killed, engine, observer),
                        KillPolicy::WhenNeeded => {
                            if self.queue.is_empty() {
                                self.overdue.push(ev.job);
                            } else {
                                self.complete(ev.job, Cause::Killed, engine, observer);
                            }
                        }
                        KillPolicy::Never => {}
                    }
                }
            }
            // Fault events carry the outage sequence number in `job`.
            EventKind::NodeDown => self.handle_node_down(ev.job.0, engine, observer),
            EventKind::NodeUp => self.handle_node_up(ev.job.0),
            EventKind::JobCrash => {
                // Stale if the job already ended (completion, kill, or an
                // earlier node failure).
                if self.running.iter().any(|r| r.id == ev.job) {
                    self.complete(ev.job, Cause::Crashed, engine, observer);
                }
            }
        }
    }

    /// A node fails: pick a victim uniformly among functional nodes. An
    /// idle victim just goes down; a victim under a running job crashes
    /// that job (its other nodes come back free, the failed one does not).
    fn handle_node_down(&mut self, seq: u32, engine: &mut dyn Engine, observer: &mut dyn Observer) {
        let repair = self
            .repairs
            .remove(&seq)
            .expect("scheduled failure has a repair time");
        // Once every submission has been played out there is nothing left
        // for failures to disturb: stop regenerating them so the event
        // queue can drain and the run can end. (Until then the timeline is
        // a pure function of the seed: the next failure is drawn before
        // this one touches anything.)
        let work_remains =
            self.lifecycle.has_pending() || !self.queue.is_empty() || !self.running.is_empty();
        if !work_remains {
            return;
        }
        self.schedule_next_failure();
        let functional = self.cfg.nodes - self.down;
        if functional == 0 {
            // Whole machine already down; the failure has nothing to hit.
            return;
        }
        let fm = self
            .faults
            .as_mut()
            .expect("node events exist only with a fault model");
        let r = fm.pick_victim(functional);
        if r < self.free {
            // Idle victim: the r-th free node in ascending order.
            if let BackendKind::Linear(a) = &mut self.backend.kind {
                let node = a.nth_free(r).expect("r < free_count");
                a.mark_down(node).expect("free node can go down");
                self.outage_nodes.insert(seq, node);
            }
            self.free -= 1;
        } else {
            // Busy victim: map the remainder onto running jobs in id order
            // by cumulative width.
            let mut jobs: Vec<(JobId, u32)> =
                self.running.iter().map(|j| (j.id, j.nodes)).collect();
            jobs.sort_unstable_by_key(|&(id, _)| id);
            let mut rest = r - self.free;
            let victim = jobs
                .iter()
                .find(|&&(_, w)| {
                    if rest < w {
                        true
                    } else {
                        rest -= w;
                        false
                    }
                })
                .map(|&(id, _)| id)
                .expect("victim index within cumulative running widths");
            // Remember a concrete node of the victim before its allocation
            // is released: that is the one that physically failed.
            let failed_node = match &self.backend.kind {
                BackendKind::Linear(a) => {
                    let alloc = self.backend.ids[&victim];
                    a.nodes_of(alloc).and_then(|ns| ns.first().copied())
                }
                BackendKind::Counting(_) => None,
            };
            self.complete(victim, Cause::Crashed, engine, observer);
            if let BackendKind::Linear(a) = &mut self.backend.kind {
                let node = failed_node.expect("linear backend tracks victim nodes");
                a.mark_down(node)
                    .expect("victim node was freed by the crash");
                self.outage_nodes.insert(seq, node);
            }
            self.free -= 1;
        }
        self.down += 1;
        self.outages.push(Outage {
            seq,
            until: self.now + repair,
        });
        if let Some(t) = self.trace.clone() {
            // `node` is the outage sequence number: stable across backends
            // (the counting backend has no physical node identities).
            t.emit(TraceRecord::NodeFailed {
                at: self.now,
                node: seq as u64,
                until: self.now + repair,
            });
        }
        self.events
            .push(self.now + repair, EventKind::NodeUp, JobId(seq));
    }

    /// A repaired node rejoins the free pool.
    fn handle_node_up(&mut self, seq: u32) {
        let pos = self
            .outages
            .iter()
            .position(|o| o.seq == seq)
            .expect("repair for unknown outage");
        self.outages.remove(pos);
        self.down -= 1;
        self.free += 1;
        if let BackendKind::Linear(a) = &mut self.backend.kind {
            let node = self
                .outage_nodes
                .remove(&seq)
                .expect("linear outage tracks a node");
            a.mark_up(node).expect("down node comes back up");
        }
    }

    fn handle_arrival(&mut self, id: JobId, engine: &mut dyn Engine, observer: &mut dyn Observer) {
        // Closed-loop feedback: a user at their concurrency cap defers this
        // submission until one of their jobs finishes.
        if let Some(cap) = self.cfg.user_concurrency {
            let user = self.lifecycle.pending_user(id);
            let live = self.in_system.get(&user).copied().unwrap_or(0);
            if live >= cap {
                self.parked.entry(user).or_default().push_back(id);
                return;
            }
            *self.in_system.entry(user).or_insert(0) += 1;
        }
        let pending = self.lifecycle.take_pending(id);
        let queued = QueuedJob {
            id,
            user: pending.user,
            nodes: pending.nodes,
            estimate: pending.estimate,
            arrival: self.now,
        };
        self.queue.push(queued);
        self.runtimes.insert(id, pending.runtime);
        self.open.insert(
            id,
            OpenRecord {
                pending,
                submit: self.now,
                start: None,
            },
        );

        let view = ArrivalView {
            now: self.now,
            job: self.queue.last().expect("just pushed"),
            total_nodes: self.cfg.nodes,
            free_nodes: self.free,
            running: &self.running,
            queue: &self.queue,
            runtimes: &self.runtimes,
            fairshare: &self.fairshare,
            order: self.cfg.order,
        };
        observer.on_arrival(&view);
        let ctx = engine_ctx(self);
        engine.on_arrival(&queued, &ctx);
    }

    fn complete(
        &mut self,
        id: JobId,
        cause: Cause,
        engine: &mut dyn Engine,
        observer: &mut dyn Observer,
    ) {
        let pos = self
            .running
            .iter()
            .position(|r| r.id == id)
            .expect("completion for job not running");
        let job = self.running.swap_remove(pos);
        self.free += job.nodes;
        self.backend.release(id);
        self.overdue.retain(|&o| o != id);
        self.acct.note_completion(self.now);

        let open = self.open.remove(&id).expect("record open for running job");
        let record = JobRecord {
            id,
            origin: open.pending.origin,
            chunk_index: open.pending.chunk_index,
            user: open.pending.user,
            group: open.pending.group,
            nodes: open.pending.nodes,
            submit: open.submit,
            origin_submit: open.pending.origin_submit,
            start: open.start.expect("completed job has started"),
            end: self.now,
            estimate: open.pending.estimate,
            killed: cause == Cause::Killed,
            interrupted: cause == Cause::Crashed,
        };
        self.records.push(record);

        let executed = self.now - open.start.expect("started");
        match cause {
            // Chains: bank the executed work and submit the next chunk.
            Cause::Finished | Cause::Killed => self.lifecycle.bank_chunk(
                &self.cfg,
                id,
                open.pending.estimate,
                executed,
                self.now,
                &mut self.events,
            ),
            Cause::Crashed => self.recover_crashed(id, &open, executed),
        }

        // Closed-loop feedback: the finished job frees one of its user's
        // slots; release the user's oldest deferred submission, if any.
        if self.cfg.user_concurrency.is_some() {
            let live = self.in_system.entry(job.user).or_insert(1);
            *live = live.saturating_sub(1);
            if let Some(queue) = self.parked.get_mut(&job.user) {
                if let Some(next) = queue.pop_front() {
                    self.events.push(self.now, EventKind::Arrival, next);
                }
            }
        }

        // Observers see any premature end (kill or crash) as not having run
        // to completion.
        observer.on_complete(id, self.now, cause != Cause::Finished);
        observer.on_record(&record);
        engine.on_complete(id);
    }

    /// Applies the configured resilience policy to a crashed submission:
    /// the lifecycle decides how (and whether) the work re-enters; this
    /// wrapper accounts the discarded node-seconds and traces the requeue.
    fn recover_crashed(&mut self, id: JobId, open: &OpenRecord, executed: Time) {
        if self.cfg.faults.resilience == ResiliencePolicy::RequeueFromScratch {
            // Executed work is lost. Fairshare usage already charged for
            // the lost run stays charged — users pay for their bad luck,
            // as CPlant did.
            self.acct.note_lost(executed, open.pending.nodes);
        }
        let retry = self.lifecycle.recover_crashed(
            &self.cfg,
            id,
            &open.pending,
            executed,
            self.now,
            &mut self.events,
        );
        if let (Some(t), Some(retry)) = (self.trace.clone(), retry) {
            t.emit(TraceRecord::FaultRequeued {
                at: self.now,
                origin: open.pending.origin,
                job: id,
                retry,
                // ChunkResume banks the executed work as a checkpoint, so
                // nothing is lost; requeue-from-scratch loses it all.
                lost: match self.cfg.faults.resilience {
                    ResiliencePolicy::RequeueFromScratch => executed,
                    ResiliencePolicy::ChunkResume => 0,
                },
            });
        }
    }

    fn start_job(&mut self, id: JobId, engine: &mut dyn Engine, observer: &mut dyn Observer) {
        let pos = self
            .queue
            .iter()
            .position(|q| q.id == id)
            .expect("engine started a job that is not queued");
        let queued = self.queue.swap_remove(pos);
        assert!(
            queued.nodes <= self.free,
            "engine started a job that does not fit"
        );
        self.free -= queued.nodes;
        self.backend.place(id, queued.nodes);
        let runtime = self.runtimes.remove(&id).expect("queued job has a runtime");
        let end = self.now + runtime;
        self.running.push(RunningJob {
            id,
            user: queued.user,
            nodes: queued.nodes,
            start: self.now,
            estimate: queued.estimate,
            scheduled_end: end,
        });
        self.events.push(end, EventKind::Completion, id);
        if self.cfg.kill != KillPolicy::Never && queued.estimate < runtime {
            self.events
                .push(self.now + queued.estimate, EventKind::WclExpiry, id);
        }
        // Fault injection: roll this submission's crash fate. The draw is a
        // pure function of (fault seed, origin, chunk index), so requeued
        // attempts re-roll reproducibly.
        if let Some(fm) = &self.faults {
            let p = &self.open[&id].pending;
            if let Some(dt) = fm.crash_point(p.origin, p.chunk_index as usize, runtime) {
                self.events.push(self.now + dt, EventKind::JobCrash, id);
            }
        }
        self.open.get_mut(&id).expect("record open").start = Some(self.now);
        self.acct.note_start(self.now);
        observer.on_start(id, self.now);
        engine.on_start(id);
    }

    /// Runs the engine (and the when-needed kill rule) to a fixpoint.
    fn schedule_pass(&mut self, engine: &mut dyn Engine, observer: &mut dyn Observer) {
        let timer = counters::pass_timer();
        loop {
            let starts = {
                let ctx = engine_ctx(self);
                engine.select_starts(&ctx)
            };
            if !starts.is_empty() {
                for id in starts {
                    self.start_job(id, engine, observer);
                }
                continue;
            }
            // No starts possible. If queued demand exists and over-limit
            // jobs are still running, CPlant's kill rule reclaims them.
            if self.cfg.kill == KillPolicy::WhenNeeded
                && !self.queue.is_empty()
                && !self.overdue.is_empty()
            {
                let victims = std::mem::take(&mut self.overdue);
                for id in victims {
                    if self.running.iter().any(|r| r.id == id) {
                        self.complete(id, Cause::Killed, engine, observer);
                    }
                }
                continue;
            }
            break;
        }
        timer.finish();
    }

    pub(crate) fn check_conservation_pub(&self) -> Result<(), SimError> {
        self.check_conservation()
    }

    pub(crate) fn finish(mut self) -> Schedule {
        self.records.sort_by_key(|r| r.id);
        Schedule {
            nodes: self.cfg.nodes,
            records: self.records,
            waste_nodeseconds: self.acct.waste,
            busy_nodeseconds: self.acct.busy,
            down_nodeseconds: self.acct.down,
            lost_nodeseconds: self.acct.lost,
            min_start: self.acct.min_start_or_zero(),
            max_completion: self.acct.max_completion,
            placement: self.backend.stats(),
            queue_stats: self.acct.queue_stats(),
            weekly_busy: self.acct.weekly_busy,
        }
    }
}

fn engine_ctx(sim: &Sim) -> EngineCtx<'_> {
    EngineCtx {
        now: sim.now,
        free_nodes: sim.free,
        total_nodes: sim.cfg.nodes,
        running: &sim.running,
        queue: &sim.queue,
        fairshare: &sim.fairshare,
        order: sim.cfg.order,
        starvation: sim.cfg.starvation.as_ref(),
        outages: &sim.outages,
        trace: sim.trace.as_ref().map(|t| t as &dyn TraceHandle),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{EngineKind, QueueOrder, RuntimeLimit, StarvationConfig};
    use crate::state::NullObserver;
    use fairsched_workload::time::{DAY, HOUR};

    fn cfg(nodes: u32, engine: EngineKind) -> SimConfig {
        SimConfig {
            nodes,
            engine,
            ..Default::default()
        }
    }

    fn job(id: u32, user: u32, submit: Time, nodes: u32, runtime: Time, estimate: Time) -> Job {
        Job::new(id, user, 1, submit, nodes, runtime, estimate)
    }

    fn run(trace: &[Job], cfg: &SimConfig) -> Schedule {
        simulate(trace, cfg, &mut NullObserver, SimOptions::new()).unwrap_or_else(|e| panic!("{e}"))
    }

    #[test]
    fn a_fired_cancel_token_stops_the_run_with_timed_out() {
        let trace = [job(1, 1, 0, 1, 100, 100), job(2, 2, 5, 1, 100, 100)];
        let c = cfg(10, EngineKind::NoGuarantee);
        let token = CancelToken::new();
        token.cancel();
        let err = simulate(
            &trace,
            &c,
            &mut NullObserver,
            SimOptions::new().cancel(token),
        )
        .expect_err("pre-cancelled run must not produce a schedule");
        assert!(matches!(err, SimError::TimedOut { .. }), "got {err}");
    }

    #[test]
    fn an_unfired_cancel_token_changes_nothing() {
        let trace = [job(1, 1, 0, 1, 100, 100), job(2, 2, 5, 4, 50, 50)];
        let c = cfg(10, EngineKind::NoGuarantee);
        let plain = run(&trace, &c);
        let guarded = simulate(
            &trace,
            &c,
            &mut NullObserver,
            SimOptions::new().cancel(CancelToken::new()),
        )
        .unwrap();
        assert_eq!(plain.records, guarded.records);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_route_through_the_builder() {
        let trace = [job(1, 1, 0, 1, 100, 100), job(2, 2, 5, 4, 50, 50)];
        let c = cfg(10, EngineKind::NoGuarantee);
        let plain = run(&trace, &c);
        assert_eq!(try_simulate(&trace, &c, &mut NullObserver).unwrap(), plain);
        assert_eq!(
            try_simulate_traced(&trace, &c, &mut NullObserver, None).unwrap(),
            plain
        );
        assert_eq!(
            try_simulate_with(&trace, &c, &mut NullObserver, None, None).unwrap(),
            plain
        );
    }

    /// Counts every observer hook and remembers what it saw.
    #[derive(Default)]
    struct CountingObserver {
        arrivals: usize,
        starts: usize,
        completes: usize,
        records: Vec<JobRecord>,
        finished_nodes: Option<u32>,
    }

    impl crate::state::Observer for CountingObserver {
        fn on_arrival(&mut self, _view: &ArrivalView<'_>) {
            self.arrivals += 1;
        }
        fn on_start(&mut self, _id: JobId, _now: Time) {
            self.starts += 1;
        }
        fn on_complete(&mut self, _id: JobId, _now: Time, _killed: bool) {
            self.completes += 1;
        }
        fn on_record(&mut self, record: &JobRecord) {
            self.records.push(*record);
        }
        fn on_finish(&mut self, schedule: &Schedule) {
            self.finished_nodes = Some(schedule.nodes);
        }
    }

    #[test]
    fn record_and_finish_hooks_fire_with_final_values() {
        let trace = [job(1, 1, 0, 4, 100, 100), job(2, 2, 5, 8, 50, 50)];
        let c = cfg(10, EngineKind::NoGuarantee);
        let mut obs = CountingObserver::default();
        let s = simulate(&trace, &c, &mut obs, SimOptions::new()).unwrap();
        assert_eq!(obs.arrivals, 2);
        assert_eq!(obs.starts, 2);
        assert_eq!(obs.completes, 2);
        assert_eq!(obs.finished_nodes, Some(10));
        // on_record delivers the same records the schedule reports (the
        // schedule sorts by id; the hook fires in completion order).
        let mut seen = obs.records.clone();
        seen.sort_by_key(|r| r.id);
        assert_eq!(seen, s.records);
    }

    #[test]
    fn observer_set_fans_out_to_every_member() {
        use crate::state::ObserverSet;
        let trace = [job(1, 1, 0, 4, 100, 100), job(2, 2, 5, 8, 50, 50)];
        let c = cfg(10, EngineKind::NoGuarantee);
        let mut solo = CountingObserver::default();
        let baseline = simulate(&trace, &c, &mut solo, SimOptions::new()).unwrap();

        let mut a = CountingObserver::default();
        let mut b = CountingObserver::default();
        let mut set = ObserverSet::new();
        set.push(&mut a);
        set.push(&mut b);
        let fanned = simulate(&trace, &c, &mut set, SimOptions::new()).unwrap();
        assert_eq!(baseline, fanned);
        for obs in [&a, &b] {
            assert_eq!(obs.arrivals, solo.arrivals);
            assert_eq!(obs.starts, solo.starts);
            assert_eq!(obs.completes, solo.completes);
            assert_eq!(obs.records, solo.records);
            assert_eq!(obs.finished_nodes, solo.finished_nodes);
        }
    }

    #[test]
    fn tuple_observers_forward_every_hook() {
        let trace = [job(1, 1, 0, 4, 100, 100)];
        let c = cfg(10, EngineKind::NoGuarantee);
        let mut solo = CountingObserver::default();
        simulate(&trace, &c, &mut solo, SimOptions::new()).unwrap();

        let mut x = CountingObserver::default();
        let mut y = CountingObserver::default();
        simulate(&trace, &c, &mut (&mut x, &mut y), SimOptions::new()).unwrap();
        assert_eq!(x.records, solo.records);
        assert_eq!(y.records, solo.records);
        assert_eq!(x.finished_nodes, solo.finished_nodes);
    }

    fn record(s: &Schedule, id: u32) -> JobRecord {
        s.records
            .iter()
            .copied()
            .find(|r| r.id == JobId(id))
            .expect("record exists")
    }

    #[test]
    fn single_job_runs_immediately() {
        let trace = [job(1, 1, 10, 4, 100, 200)];
        let s = run(&trace, &cfg(10, EngineKind::NoGuarantee));
        let r = record(&s, 1);
        assert_eq!(r.start, 10);
        assert_eq!(r.end, 110);
        assert!(!r.killed);
        assert_eq!(s.makespan(), 100);
        assert!((s.utilization() - 0.4).abs() < 1e-9);
        assert_eq!(s.loss_of_capacity(), 0.0);
    }

    #[test]
    fn jobs_queue_when_the_machine_is_full() {
        let trace = [job(1, 1, 0, 10, 100, 100), job(2, 2, 5, 10, 50, 50)];
        let s = run(&trace, &cfg(10, EngineKind::NoGuarantee));
        assert_eq!(record(&s, 1).start, 0);
        assert_eq!(record(&s, 2).start, 100);
        assert_eq!(record(&s, 2).end, 150);
        // Job 2 queued 95 s wanting 10 nodes with 0 free: no loss of
        // capacity is chargeable (min(10 demand, 0 free) = 0).
        assert_eq!(s.loss_of_capacity(), 0.0);
    }

    #[test]
    fn no_guarantee_backfills_a_fitting_job() {
        // Figure 2's scenario: jobB fits beside jobA and starts immediately.
        let trace = [
            job(1, 1, 0, 6, 100, 100), // jobA
            job(2, 2, 1, 8, 100, 100), // too wide for the 4 free nodes
            job(3, 3, 2, 4, 30, 30),   // jobB: fits the hole
        ];
        let s = run(&trace, &cfg(10, EngineKind::NoGuarantee));
        assert_eq!(record(&s, 3).start, 2);
        assert_eq!(record(&s, 2).start, 100);
    }

    #[test]
    fn loss_of_capacity_counts_unusable_idle_time() {
        // 10-node machine. One 6-node job runs [0,100). A 6-node job arrives
        // at 0 too: cannot start (4 free), waits to 100. LOC over [0,100):
        // min(6 queued, 4 free) = 4 nodes wasted × 100 s = 400 node-s.
        // Makespan = 200 (start 0 → end 200).
        let trace = [job(1, 1, 0, 6, 100, 100), job(2, 2, 0, 6, 100, 100)];
        let s = run(&trace, &cfg(10, EngineKind::NoGuarantee));
        assert_eq!(record(&s, 2).start, 100);
        assert!((s.waste_nodeseconds - 400.0).abs() < 1e-9);
        assert!((s.loss_of_capacity() - 400.0 / 2000.0).abs() < 1e-12);
    }

    #[test]
    fn fairshare_order_prefers_the_idle_user() {
        // User 1 burns the machine for a day; then both users submit
        // simultaneously onto a full machine. User 2's job must start first.
        let trace = [
            job(1, 1, 0, 10, DAY, DAY),
            job(2, 1, 10, 10, 100, 100),
            job(3, 2, 10, 10, 100, 100),
        ];
        let s = run(&trace, &cfg(10, EngineKind::NoGuarantee));
        assert!(record(&s, 3).start < record(&s, 2).start);
    }

    #[test]
    fn fcfs_order_ignores_usage() {
        let trace = [
            job(1, 1, 0, 10, DAY, DAY),
            job(2, 1, 10, 10, 100, 100),
            job(3, 2, 11, 10, 100, 100),
        ];
        let mut c = cfg(10, EngineKind::NoGuarantee);
        c.order = QueueOrder::Fcfs;
        let s = run(&trace, &c);
        assert!(record(&s, 2).start < record(&s, 3).start);
    }

    #[test]
    fn when_needed_kill_fires_only_under_demand() {
        // Job 1 underestimates (runtime 1000, estimate 100) on an idle
        // machine: no demand at its WCL, so it runs on. Job 2 arrives at
        // t=500 needing the whole machine: job 1 is killed then.
        let trace = [job(1, 1, 0, 10, 1000, 100), job(2, 2, 500, 10, 50, 50)];
        let s = run(&trace, &cfg(10, EngineKind::NoGuarantee));
        let r1 = record(&s, 1);
        assert!(r1.killed);
        assert_eq!(r1.end, 500);
        assert_eq!(record(&s, 2).start, 500);
    }

    #[test]
    fn when_needed_kill_fires_at_wcl_if_demand_already_waits() {
        let trace = [job(1, 1, 0, 10, 1000, 100), job(2, 2, 50, 10, 50, 50)];
        let s = run(&trace, &cfg(10, EngineKind::NoGuarantee));
        let r1 = record(&s, 1);
        assert!(r1.killed);
        assert_eq!(r1.end, 100);
        assert_eq!(record(&s, 2).start, 100);
    }

    #[test]
    fn at_wcl_kill_is_unconditional() {
        let trace = [job(1, 1, 0, 10, 1000, 100)];
        let mut c = cfg(10, EngineKind::NoGuarantee);
        c.kill = KillPolicy::AtWcl;
        let s = run(&trace, &c);
        let r1 = record(&s, 1);
        assert!(r1.killed);
        assert_eq!(r1.end, 100);
    }

    #[test]
    fn never_kill_lets_jobs_overrun() {
        let trace = [job(1, 1, 0, 10, 1000, 100), job(2, 2, 50, 10, 50, 50)];
        let mut c = cfg(10, EngineKind::NoGuarantee);
        c.kill = KillPolicy::Never;
        let s = run(&trace, &c);
        let r1 = record(&s, 1);
        assert!(!r1.killed);
        assert_eq!(r1.end, 1000);
        assert_eq!(record(&s, 2).start, 1000);
    }

    #[test]
    fn starvation_queue_guarantees_wide_job_progress() {
        // A stream of narrow jobs would starve the wide job forever under
        // pure no-guarantee backfilling; the starvation queue must eventually
        // guard it. Narrow 2-node jobs from a rotating set of users keep the
        // machine nearly full; an 10-node job arrives early.
        let mut trace = vec![job(1, 1, 0, 10, 10 * HOUR, 10 * HOUR)];
        let mut id = 2;
        // 9 narrow lanes × long series: submitted well in advance.
        for t in 0..60u64 {
            for lane in 0..5 {
                trace.push(job(id, 2 + lane, 1 + t, 2, 2 * HOUR, 2 * HOUR));
                id += 1;
            }
        }
        trace.sort_by_key(|j| (j.submit, j.id));
        let wide_id = id;
        trace.push(job(wide_id, 99, 2 * HOUR, 10, HOUR, HOUR));

        let mut c = cfg(10, EngineKind::NoGuarantee);
        c.starvation = Some(StarvationConfig {
            entry_delay: 24 * HOUR,
            heavy_rule: None,
        });
        let s = run(&trace, &c);
        let wide = record(&s, wide_id);
        // Without the guard the wide job would wait for every narrow job
        // (~24h+ of queued narrow work); with it, it starts within ~the
        // entry delay plus one drain of running work.
        assert!(
            wide.wait() <= 30 * HOUR,
            "wide job waited {} hours",
            wide.wait() / HOUR
        );
    }

    #[test]
    fn conservative_never_delays_by_later_arrivals_with_perfect_estimates() {
        // With perfect estimates, conservative backfilling is "fair" in the
        // social-justice sense (§4): job 2's start is unaffected by job 3.
        let base = [job(1, 1, 0, 10, 100, 100), job(2, 2, 5, 6, 100, 100)];
        let with_later = [
            job(1, 1, 0, 10, 100, 100),
            job(2, 2, 5, 6, 100, 100),
            job(3, 3, 6, 4, 1000, 1000),
        ];
        let c = cfg(10, EngineKind::Conservative { dynamic: false });
        let s1 = run(&base, &c);
        let s2 = run(&with_later, &c);
        assert_eq!(record(&s1, 2).start, record(&s2, 2).start);
    }

    #[test]
    fn conservative_compresses_on_early_completion() {
        // Job 1 estimates 1000 but runs 100: job 2's reservation (at 1000)
        // compresses to 100 when job 1 completes.
        let trace = [job(1, 1, 0, 10, 100, 1000), job(2, 2, 5, 10, 50, 50)];
        let s = run(
            &trace,
            &cfg(10, EngineKind::Conservative { dynamic: false }),
        );
        assert_eq!(record(&s, 2).start, 100);
    }

    #[test]
    fn runtime_limit_splits_long_jobs_into_chunks() {
        let limit = 72 * HOUR;
        // 180h job → chunks of 72h, 72h, 36h.
        let trace = [job(1, 1, 0, 4, 180 * HOUR, 200 * HOUR)];
        let mut c = cfg(10, EngineKind::NoGuarantee);
        c.runtime_limit = Some(RuntimeLimit { limit });
        let s = run(&trace, &c);
        assert_eq!(s.records.len(), 3);
        let chunks: Vec<&JobRecord> = s.records.iter().filter(|r| r.origin == JobId(1)).collect();
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0].chunk_index, 1);
        assert_eq!(chunks[0].executed(), 72 * HOUR);
        assert_eq!(chunks[1].executed(), 72 * HOUR);
        assert_eq!(chunks[2].executed(), 36 * HOUR);
        // Chunks chain back-to-back on an idle machine.
        assert_eq!(chunks[1].submit, chunks[0].end);

        let originals = s.originals();
        assert_eq!(originals.len(), 1);
        let o = originals[0];
        assert_eq!(o.chunks, 3);
        assert_eq!(o.executed, 180 * HOUR);
        assert_eq!(o.turnaround(), 180 * HOUR);
    }

    #[test]
    fn runtime_limit_lets_other_jobs_preempt_between_chunks() {
        // The point of §5.1: another job slips in when a chunk ends.
        let limit = 10 * HOUR;
        let trace = [
            job(1, 1, 0, 10, 30 * HOUR, 40 * HOUR), // chain of 3 chunks
            job(2, 2, HOUR, 10, HOUR, HOUR),        // arrives during chunk 1
        ];
        let mut c = cfg(10, EngineKind::NoGuarantee);
        c.runtime_limit = Some(RuntimeLimit { limit });
        let s = run(&trace, &c);
        let j2 = record(&s, 2);
        // Job 2 starts when chunk 1 ends — NOT after the whole 30 h job.
        assert_eq!(j2.start, 10 * HOUR);
        let o = s.originals();
        let chain = o.iter().find(|o| o.origin == JobId(1)).unwrap();
        assert_eq!(chain.chunks, 3);
        assert_eq!(chain.executed, 30 * HOUR);
        // The chain finished after job 2's interruption.
        assert_eq!(chain.completion, 31 * HOUR);
    }

    #[test]
    fn short_jobs_are_untouched_by_the_limit() {
        let trace = [job(1, 1, 0, 4, HOUR, 2 * HOUR)];
        let mut c = cfg(10, EngineKind::NoGuarantee);
        c.runtime_limit = Some(RuntimeLimit { limit: 72 * HOUR });
        let s = run(&trace, &c);
        assert_eq!(s.records.len(), 1);
        assert_eq!(record(&s, 1).chunk_index, 0);
    }

    #[test]
    fn weekly_busy_bins_cover_the_horizon() {
        let trace = [job(1, 1, 0, 10, WEEK + DAY, WEEK + DAY)];
        let s = run(&trace, &cfg(10, EngineKind::NoGuarantee));
        assert_eq!(s.weekly_busy.len(), 2);
        assert!((s.weekly_busy[0] - 10.0 * WEEK as f64).abs() < 1e-6);
        assert!((s.weekly_busy[1] - 10.0 * DAY as f64).abs() < 1e-6);
        let u = s.weekly_utilization();
        assert!((u[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn determinism_same_trace_same_schedule() {
        let trace = fairsched_workload::synthetic::random_trace(5, 200, 10, 5000);
        let c = cfg(10, EngineKind::Conservative { dynamic: false });
        let s1 = run(&trace, &c);
        let s2 = run(&trace, &c);
        assert_eq!(s1, s2);
    }

    #[test]
    #[should_panic(expected = "nodes on a")]
    fn too_wide_jobs_are_rejected() {
        let trace = [job(1, 1, 0, 20, 100, 100)];
        run(&trace, &cfg(10, EngineKind::NoGuarantee));
    }

    mod faults {
        use super::*;
        use crate::faults::{FaultConfig, RepairTime, ResiliencePolicy};

        /// Short repairs keep the machine mostly functional so full-width
        /// jobs still find start windows; the default hour-scale repairs
        /// against second-scale MTBFs would starve them for ages.
        const QUICK_REPAIR: RepairTime = RepairTime { min: 60, max: 600 };

        fn crash_cfg(resilience: ResiliencePolicy, seed: u64) -> SimConfig {
            SimConfig {
                nodes: 10,
                faults: FaultConfig {
                    job_crash_rate: 0.9,
                    resilience,
                    seed,
                    ..FaultConfig::default()
                },
                ..Default::default()
            }
        }

        /// First fault seed in 0..200 whose run produces an interrupted
        /// record — deterministic, but robust to RNG stream details.
        fn seed_with_crash(trace: &[Job], make: impl Fn(u64) -> SimConfig) -> (u64, Schedule) {
            for seed in 0..200 {
                let s = run(trace, &make(seed));
                if s.records.iter().any(|r| r.interrupted) {
                    return (seed, s);
                }
            }
            panic!("no fault seed in 0..200 produced a crash");
        }

        #[test]
        fn requeue_from_scratch_repeats_and_loses_work() {
            let trace = [job(1, 1, 0, 4, 1000, 1000)];
            let (_, s) = seed_with_crash(&trace, |seed| {
                crash_cfg(ResiliencePolicy::RequeueFromScratch, seed)
            });
            let originals = s.originals();
            assert_eq!(originals.len(), 1);
            let o = originals[0];
            assert!(o.interrupted);
            assert!(o.chunks >= 2, "crash must force a resubmission");
            // Work lost: total executed exceeds the job's runtime, and the
            // loss integral matches the interrupted records exactly.
            assert!(o.executed > 1000);
            let lost: f64 = s
                .records
                .iter()
                .filter(|r| r.interrupted)
                .map(|r| r.executed() as f64 * r.nodes as f64)
                .sum();
            assert!(lost > 0.0);
            assert!((s.lost_nodeseconds - lost).abs() < 1e-9);
            assert!(s.goodput() < s.utilization());
            // The final attempt ran the full job.
            let last = s.records.iter().max_by_key(|r| r.end).unwrap();
            assert!(!last.interrupted);
            assert_eq!(last.executed(), 1000);
        }

        #[test]
        fn chunk_resume_banks_pre_failure_work() {
            let trace = [job(1, 1, 0, 4, 1000, 1000)];
            let (_, s) = seed_with_crash(&trace, |seed| {
                crash_cfg(ResiliencePolicy::ChunkResume, seed)
            });
            let originals = s.originals();
            assert_eq!(originals.len(), 1);
            let o = originals[0];
            assert!(o.interrupted);
            assert!(o.chunks >= 2);
            // Failures are implicit checkpoints: no second of work repeats.
            assert_eq!(o.executed, 1000);
            assert_eq!(s.lost_nodeseconds, 0.0);
            assert!((s.goodput() - s.utilization()).abs() < 1e-12);
        }

        #[test]
        fn crashed_chain_chunk_under_requeue_reruns_the_chunk() {
            // A runtime-limited chain whose chunk crashes: the chunk's work
            // is lost, the chain's remaining budget does not advance, and
            // the chain still finishes all its work.
            let trace = [job(1, 1, 0, 4, 30 * HOUR, 40 * HOUR)];
            let make = |seed| {
                let mut c = crash_cfg(ResiliencePolicy::RequeueFromScratch, seed);
                c.runtime_limit = Some(RuntimeLimit { limit: 10 * HOUR });
                c
            };
            let (_, s) = seed_with_crash(&trace, make);
            let o = s.originals();
            let chain = o.iter().find(|o| o.origin == JobId(1)).unwrap();
            assert!(chain.interrupted);
            assert!(chain.executed > 30 * HOUR, "crashed chunk work is repeated");
            let clean: Time = s
                .records
                .iter()
                .filter(|r| !r.interrupted)
                .map(|r| r.executed())
                .sum();
            assert_eq!(
                clean,
                30 * HOUR,
                "non-interrupted chunks cover exactly the job"
            );
        }

        #[test]
        fn node_failures_take_capacity_and_everything_still_completes() {
            // Per-node MTBF of 2000 s on 10 nodes → machine failures every
            // ~200 s; jobs keep colliding with them but must all finish.
            let trace = fairsched_workload::synthetic::random_trace(3, 60, 10, 3000);
            let mut c = cfg(10, EngineKind::Conservative { dynamic: false });
            c.faults = FaultConfig {
                node_mtbf: Some(2000),
                repair: QUICK_REPAIR,
                resilience: ResiliencePolicy::ChunkResume,
                seed: 5,
                ..FaultConfig::default()
            };
            let s = crate::simulator::simulate(&trace, &c, &mut NullObserver, SimOptions::new())
                .expect("invariants hold under node failures");
            assert!(s.down_nodeseconds > 0.0, "outages must cost capacity");
            assert_eq!(s.originals().len(), trace.len(), "every job completes");
            // Byte-identical on a second run.
            let s2 = crate::simulator::simulate(&trace, &c, &mut NullObserver, SimOptions::new())
                .unwrap();
            assert_eq!(s, s2);
        }

        #[test]
        fn node_failure_crashes_the_job_occupying_the_whole_machine() {
            // One job holds all 4 nodes, so the first failure during its run
            // must hit it. MTBF chosen so failures land well inside the run.
            let trace = [job(1, 1, 0, 4, 50_000, 50_000)];
            let make = |seed| SimConfig {
                nodes: 4,
                faults: FaultConfig {
                    node_mtbf: Some(4_000),
                    repair: QUICK_REPAIR,
                    resilience: ResiliencePolicy::ChunkResume,
                    seed,
                    ..FaultConfig::default()
                },
                ..Default::default()
            };
            let (_, s) = seed_with_crash(&trace, make);
            let o = &s.originals()[0];
            assert!(o.interrupted);
            assert_eq!(o.executed, 50_000, "resume keeps pre-failure work");
            // The resumed chunk needed the failed node back: it cannot have
            // restarted before the repair finished, so capacity was lost.
            assert!(s.down_nodeseconds > 0.0);
        }

        #[test]
        fn linear_allocation_survives_node_failures() {
            // Narrow jobs (≤5 of 10 nodes) so holes from down nodes never
            // block the whole queue for long.
            let trace = fairsched_workload::synthetic::random_trace(9, 80, 5, 3000);
            let mut c = cfg(10, EngineKind::NoGuarantee);
            c.allocation = AllocationModel::Linear(fairsched_cpa::PlacementStrategy::MinSpan);
            c.faults = FaultConfig {
                node_mtbf: Some(3000),
                repair: QUICK_REPAIR,
                job_crash_rate: 0.2,
                resilience: ResiliencePolicy::RequeueFromScratch,
                seed: 2,
            };
            let s = crate::simulator::simulate(&trace, &c, &mut NullObserver, SimOptions::new())
                .expect("invariants hold with a linear backend under faults");
            assert!(s.placement.is_some());
            assert_eq!(s.originals().len(), trace.len());
        }

        #[test]
        fn disabled_faults_are_byte_identical_to_the_default() {
            let trace = fairsched_workload::synthetic::random_trace(7, 150, 10, 5000);
            let base = cfg(10, EngineKind::NoGuarantee);
            let mut seeded = base.clone();
            // A nonzero seed with no fault source must change nothing.
            seeded.faults = FaultConfig {
                seed: 977,
                ..FaultConfig::default()
            };
            assert_eq!(run(&trace, &base), run(&trace, &seeded));
        }

        #[test]
        fn try_simulate_reports_typed_errors() {
            let wide = [job(1, 1, 0, 20, 100, 100)];
            let err = crate::simulator::simulate(
                &wide,
                &cfg(10, EngineKind::NoGuarantee),
                &mut NullObserver,
                SimOptions::new(),
            )
            .unwrap_err();
            assert_eq!(
                err,
                SimError::TooWide {
                    job: JobId(1),
                    nodes: 20,
                    machine: 10
                }
            );
            assert!(
                err.to_string().contains("nodes on a"),
                "legacy panic wording preserved"
            );

            let mut bad = cfg(10, EngineKind::NoGuarantee);
            bad.faults.job_crash_rate = 2.0;
            let err = crate::simulator::simulate(
                &[job(1, 1, 0, 2, 100, 100)],
                &bad,
                &mut NullObserver,
                SimOptions::new(),
            )
            .unwrap_err();
            assert!(matches!(err, SimError::InvalidConfig { .. }));
        }

        #[test]
        fn impossible_fault_config_diverges_with_a_typed_error() {
            // A full-width job on a machine whose MTBF is far below the
            // job's runtime: under RequeueFromScratch no attempt can ever
            // finish, so without a guard the simulation would loop (and
            // allocate records) forever. The resubmission cap turns that
            // into a typed error instead.
            let trace = [job(1, 1, 0, 4, 50_000, 50_000)];
            let mut c = cfg(4, EngineKind::NoGuarantee);
            c.faults = FaultConfig {
                node_mtbf: Some(50),
                repair: RepairTime { min: 1, max: 5 },
                ..FaultConfig::default()
            };
            let err = crate::simulator::simulate(&trace, &c, &mut NullObserver, SimOptions::new())
                .unwrap_err();
            assert!(matches!(err, SimError::Diverged { job: JobId(1), .. }));
            assert!(err.to_string().contains("unable to complete"));
        }
    }

    #[test]
    fn user_concurrency_defers_submissions() {
        // User 1 fires three 1-node jobs at once with a cap of 1: they must
        // serialize even though the machine could run them all in parallel.
        let trace = [
            job(1, 1, 0, 1, 100, 100),
            job(2, 1, 0, 1, 100, 100),
            job(3, 1, 0, 1, 100, 100),
            job(4, 2, 0, 1, 100, 100), // another user: unaffected
        ];
        let mut c = cfg(10, EngineKind::NoGuarantee);
        c.user_concurrency = Some(1);
        let s = run(&trace, &c);
        assert_eq!(record(&s, 1).start, 0);
        assert_eq!(record(&s, 2).submit, 100); // deferred to job 1's end
        assert_eq!(record(&s, 2).start, 100);
        assert_eq!(record(&s, 3).submit, 200);
        assert_eq!(record(&s, 4).start, 0);
        // The original intent time is preserved separately.
        assert_eq!(record(&s, 3).origin_submit, 0);
    }

    #[test]
    fn user_concurrency_of_two_allows_two_live_jobs() {
        let trace = [
            job(1, 1, 0, 1, 100, 100),
            job(2, 1, 0, 1, 100, 100),
            job(3, 1, 0, 1, 100, 100),
        ];
        let mut c = cfg(10, EngineKind::NoGuarantee);
        c.user_concurrency = Some(2);
        let s = run(&trace, &c);
        assert_eq!(record(&s, 1).start, 0);
        assert_eq!(record(&s, 2).start, 0);
        assert_eq!(record(&s, 3).submit, 100);
    }

    #[test]
    fn unbounded_concurrency_matches_open_loop_exactly() {
        let trace = fairsched_workload::synthetic::random_trace(31, 150, 10, 5000);
        let open = run(&trace, &cfg(10, EngineKind::NoGuarantee));
        let mut c = cfg(10, EngineKind::NoGuarantee);
        c.user_concurrency = Some(u32::MAX);
        let closed = run(&trace, &c);
        assert_eq!(open, closed);
    }

    #[test]
    fn user_concurrency_composes_with_chunking() {
        use crate::config::RuntimeLimit;
        let trace = [
            job(1, 1, 0, 2, 30 * HOUR, 40 * HOUR), // 3 chunks at 10h limit
            job(2, 1, 0, 2, HOUR, HOUR),           // deferred behind the chain? No:
        ];
        // Cap 1: job 2 waits for the whole chain (each chunk counts as the
        // user's one live job; chunk k+1 re-enters immediately).
        let mut c = cfg(10, EngineKind::NoGuarantee);
        c.user_concurrency = Some(1);
        c.runtime_limit = Some(RuntimeLimit { limit: 10 * HOUR });
        let s = run(&trace, &c);
        let chain = s
            .originals()
            .into_iter()
            .find(|o| o.origin == JobId(1))
            .unwrap();
        assert_eq!(chain.chunks, 3);
        let j2 = record(&s, 2);
        // Job 2 slots in at one of the chunk boundaries or the chain end —
        // never before the first chunk completes.
        assert!(j2.submit >= 10 * HOUR, "job 2 submitted at {}", j2.submit);
    }

    #[test]
    fn counting_allocation_reports_no_placement_stats() {
        let trace = [job(1, 1, 0, 4, 100, 100)];
        let s = run(&trace, &cfg(10, EngineKind::NoGuarantee));
        assert_eq!(s.placement, None);
    }

    #[test]
    fn linear_allocation_tracks_placement_quality() {
        use crate::config::AllocationModel;
        use fairsched_cpa::PlacementStrategy;
        let trace = fairsched_workload::synthetic::random_trace(8, 150, 10, 5000);
        let mut c = cfg(10, EngineKind::NoGuarantee);
        c.allocation = AllocationModel::Linear(PlacementStrategy::MinSpan);
        let s = run(&trace, &c);
        let stats = s.placement.expect("linear model reports stats");
        assert_eq!(stats.allocations, trace.len());
        assert!((0.0..=1.0).contains(&stats.mean_compactness));
        assert!(stats.mean_compactness > 0.0);
        assert!((0.0..=1.0).contains(&stats.mean_external_frag));
        assert!(stats.mean_span >= 0.0);
        assert!(stats.scattered <= stats.allocations);
    }

    #[test]
    fn allocation_model_does_not_change_scheduling_decisions() {
        // The CPA never refuses a by-count fit, so the schedule itself is
        // identical under both models — only the stats differ.
        use crate::config::AllocationModel;
        use fairsched_cpa::PlacementStrategy;
        let trace = fairsched_workload::synthetic::random_trace(21, 200, 10, 5000);
        let base = cfg(10, EngineKind::Conservative { dynamic: false });
        let mut linear = base.clone();
        linear.allocation = AllocationModel::Linear(PlacementStrategy::FirstFit);
        let s1 = run(&trace, &base);
        let s2 = run(&trace, &linear);
        assert_eq!(s1.records, s2.records);
        assert_eq!(s1.waste_nodeseconds, s2.waste_nodeseconds);
    }

    #[test]
    fn min_span_places_more_compactly_than_first_fit_scatter() {
        use crate::config::AllocationModel;
        use fairsched_cpa::PlacementStrategy;
        let trace = fairsched_workload::synthetic::random_trace(13, 400, 32, 3000);
        let stats_for = |strategy| {
            let mut c = cfg(32, EngineKind::NoGuarantee);
            c.allocation = AllocationModel::Linear(strategy);
            run(&trace, &c).placement.expect("linear stats")
        };
        let minspan = stats_for(PlacementStrategy::MinSpan);
        let firstfit = stats_for(PlacementStrategy::FirstFit);
        assert!(
            minspan.mean_span <= firstfit.mean_span + 1e-9,
            "MinSpan span {} vs FirstFit {}",
            minspan.mean_span,
            firstfit.mean_span
        );
    }
}
