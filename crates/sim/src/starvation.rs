//! The starvation queue (§2.1) and the heavy-user entrance bar (§5.2).
//!
//! Under no-guarantee backfilling, wide jobs starve: narrower, lower-priority
//! jobs always slip in first. CPlant's answer was a secondary FCFS queue:
//! after waiting `entry_delay`, a job becomes starvation-eligible, and the
//! *head* of that queue receives an aggressive-backfilling reservation that
//! guarantees progress.
//!
//! §5.2's fairness fix bars "heavy" users — those whose decayed fairshare
//! usage is far above the active-user mean — from the starvation queue, so
//! the guarantee cannot be monopolized by the very users the fairshare
//! priority is trying to throttle.

use crate::config::{HeavyUserRule, StarvationConfig};
use crate::fairshare::FairshareTracker;
use crate::state::{QueuedJob, RunningJob};
use fairsched_workload::job::UserId;
use fairsched_workload::time::Time;
use std::collections::HashSet;

/// Users currently classified heavy: decayed usage strictly above
/// `mean_multiple ×` the mean over *active* users (those with queued or
/// running work). With no active users, nobody is heavy.
pub fn heavy_users(
    queue: &[QueuedJob],
    running: &[RunningJob],
    fairshare: &FairshareTracker,
    rule: HeavyUserRule,
) -> HashSet<UserId> {
    let active: HashSet<UserId> = queue
        .iter()
        .map(|q| q.user)
        .chain(running.iter().map(|r| r.user))
        .collect();
    let mean = fairshare.mean_usage(active.iter());
    if mean <= 0.0 {
        return HashSet::new();
    }
    let cutoff = rule.mean_multiple * mean;
    active
        .into_iter()
        .filter(|u| fairshare.usage(*u) > cutoff)
        .collect()
}

/// Indices of starvation-eligible queued jobs in FCFS order: waited at least
/// `entry_delay`, and (when a heavy rule is active) not owned by a heavy
/// user. The first index is the starvation-queue head that receives the
/// aggressive reservation.
pub fn starving_jobs(
    queue: &[QueuedJob],
    now: Time,
    config: &StarvationConfig,
    fairshare: &FairshareTracker,
    running: &[RunningJob],
) -> Vec<usize> {
    let barred: HashSet<UserId> = match config.heavy_rule {
        Some(rule) => heavy_users(queue, running, fairshare, rule),
        None => HashSet::new(),
    };
    let mut idx: Vec<usize> = queue
        .iter()
        .enumerate()
        .filter(|(_, q)| now.saturating_sub(q.arrival) >= config.entry_delay)
        .filter(|(_, q)| !barred.contains(&q.user))
        .map(|(i, _)| i)
        .collect();
    idx.sort_by_key(|&i| (queue[i].arrival, queue[i].id));
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FairshareConfig;
    use fairsched_workload::job::JobId;
    use fairsched_workload::time::HOUR;

    fn queued(id: u32, user: u32, arrival: Time) -> QueuedJob {
        QueuedJob {
            id: JobId(id),
            user: UserId(user),
            nodes: 8,
            estimate: 100,
            arrival,
        }
    }

    fn tracker() -> FairshareTracker {
        FairshareTracker::new(FairshareConfig::default())
    }

    fn config(delay: Time, rule: Option<HeavyUserRule>) -> StarvationConfig {
        StarvationConfig {
            entry_delay: delay,
            heavy_rule: rule,
        }
    }

    #[test]
    fn jobs_become_eligible_after_the_entry_delay() {
        let q = vec![queued(1, 1, 0), queued(2, 1, 10 * HOUR)];
        let fs = tracker();
        let cfg = config(24 * HOUR, None);
        // At t = 24h only the first job has waited long enough.
        let s = starving_jobs(&q, 24 * HOUR, &cfg, &fs, &[]);
        assert_eq!(s, vec![0]);
        // At t = 34h both are eligible, FCFS order.
        let s = starving_jobs(&q, 34 * HOUR, &cfg, &fs, &[]);
        assert_eq!(s, vec![0, 1]);
        // Before the delay nobody is.
        let s = starving_jobs(&q, HOUR, &cfg, &fs, &[]);
        assert!(s.is_empty());
    }

    #[test]
    fn starving_order_is_fcfs_not_fairshare() {
        // User 2 has huge usage (lowest fairshare priority) but arrived
        // first: the starvation queue ranks by arrival.
        let q = vec![queued(1, 2, 0), queued(2, 1, 5)];
        let mut fs = tracker();
        fs.charge(UserId(2), 1e9);
        let cfg = config(0, None);
        let s = starving_jobs(&q, 100, &cfg, &fs, &[]);
        assert_eq!(s, vec![0, 1]);
    }

    #[test]
    fn heavy_users_are_those_far_above_the_active_mean() {
        let q = vec![queued(1, 1, 0), queued(2, 2, 0), queued(3, 3, 0)];
        let mut fs = tracker();
        fs.charge(UserId(1), 100.0);
        fs.charge(UserId(2), 100.0);
        fs.charge(UserId(3), 10_000.0);
        // mean = 3400, cutoff at 2× = 6800: only user 3 is heavy.
        let heavy = heavy_users(&q, &[], &fs, HeavyUserRule { mean_multiple: 2.0 });
        assert_eq!(heavy, HashSet::from([UserId(3)]));
    }

    #[test]
    fn no_usage_means_no_heavy_users() {
        let q = vec![queued(1, 1, 0)];
        let fs = tracker();
        let heavy = heavy_users(&q, &[], &fs, HeavyUserRule::default());
        assert!(heavy.is_empty());
    }

    #[test]
    fn heavy_rule_bars_entry_to_the_starvation_queue() {
        let q = vec![queued(1, 3, 0), queued(2, 1, 5)];
        let mut fs = tracker();
        fs.charge(UserId(3), 10_000.0);
        fs.charge(UserId(1), 10.0);
        let cfg = config(0, Some(HeavyUserRule { mean_multiple: 1.5 }));
        // User 3 (usage 10000 vs mean 5005) is heavy: its job, although
        // first-arrived, is barred; user 1's job heads the starvation queue.
        let s = starving_jobs(&q, 100, &cfg, &fs, &[]);
        assert_eq!(s, vec![1]);
    }

    #[test]
    fn running_jobs_count_toward_the_active_mean() {
        // A single queued light user plus a heavy user who is only running:
        // the runner's usage raises the mean and marks it heavy.
        let q = vec![queued(1, 1, 0)];
        let running = [RunningJob {
            id: JobId(9),
            user: UserId(2),
            nodes: 4,
            start: 0,
            estimate: 100,
            scheduled_end: 100,
        }];
        let mut fs = tracker();
        fs.charge(UserId(2), 10_000.0);
        let heavy = heavy_users(&q, &running, &fs, HeavyUserRule { mean_multiple: 1.5 });
        assert_eq!(heavy, HashSet::from([UserId(2)]));
    }
}
