//! Run-level accounting: the utilization, loss-of-capacity, and
//! queue-pressure integrals a simulation reports.
//!
//! The event loop in [`simulator`](crate::simulator) owns *what happened*;
//! this module owns *what it added up to*. All integrals advance in
//! [`Accounting::observe`], once per inter-event gap, against the state
//! that held over that gap — nothing here feeds back into scheduling.
//! Extraction note: the additions happen in exactly the pre-extraction
//! order, so every float accumulator is bit-identical to the old inline
//! accounting (the root golden suite pins this).

use crate::simulator::QueueStats;
use fairsched_workload::time::{Time, WEEK};

/// Accumulators for one simulation run.
#[derive(Debug, Clone)]
pub(crate) struct Accounting {
    /// ∫ min(queued demand, idle nodes) dt — Equation 4's numerator.
    pub waste: f64,
    /// ∫ busy nodes dt.
    pub busy: f64,
    /// ∫ idle nodes dt (conservation check only).
    pub idle: f64,
    /// ∫ down nodes dt.
    pub down: f64,
    /// Node-seconds of executed work a crash later discarded.
    pub lost: f64,
    /// Busy node-seconds binned by simulated week (Figure 3).
    pub weekly_busy: Vec<f64>,
    /// Earliest observed start (Equation 3's `MinStartTime`).
    pub min_start: Time,
    /// Latest observed completion (`MaxCompletionTime`).
    pub max_completion: Time,
    // Queue-pressure accumulators (time-weighted sums plus peaks).
    queued_jobs_integral: f64,
    queued_demand_integral: f64,
    observed_span: f64,
    max_queued_jobs: usize,
    max_queued_demand: u64,
}

/// The machine and queue state that held over one inter-event gap —
/// everything [`Accounting::observe`] integrates against.
#[derive(Debug, Clone, Copy)]
pub(crate) struct GapState {
    /// Queued submissions.
    pub queued_jobs: usize,
    /// Nodes those submissions ask for, summed.
    pub queued_demand: u64,
    /// Idle (up, unoccupied) nodes.
    pub free: u32,
    /// Broken nodes.
    pub down: u32,
    /// Machine size.
    pub total: u32,
}

impl Accounting {
    pub(crate) fn new() -> Self {
        Accounting {
            waste: 0.0,
            busy: 0.0,
            idle: 0.0,
            down: 0.0,
            lost: 0.0,
            weekly_busy: Vec::new(),
            min_start: Time::MAX,
            max_completion: 0,
            queued_jobs_integral: 0.0,
            queued_demand_integral: 0.0,
            observed_span: 0.0,
            max_queued_jobs: 0,
            max_queued_demand: 0,
        }
    }

    /// Integrates one inter-event gap `[from, to)` against the
    /// [`GapState`] that held over it. No-op on a zero-length gap.
    pub(crate) fn observe(&mut self, from: Time, to: Time, gap: GapState) {
        debug_assert!(to >= from);
        let dt = (to - from) as f64;
        if dt <= 0.0 {
            return;
        }
        let wasted = gap.queued_demand.min(gap.free as u64) as f64;
        self.waste += wasted * dt;
        self.queued_jobs_integral += gap.queued_jobs as f64 * dt;
        self.queued_demand_integral += gap.queued_demand as f64 * dt;
        self.observed_span += dt;
        self.max_queued_jobs = self.max_queued_jobs.max(gap.queued_jobs);
        self.max_queued_demand = self.max_queued_demand.max(gap.queued_demand);
        let busy_rate = (gap.total - gap.free - gap.down) as f64;
        self.busy += busy_rate * dt;
        self.idle += gap.free as f64 * dt;
        self.down += gap.down as f64 * dt;
        self.accumulate_weekly(from, to, busy_rate);
    }

    /// Splits `rate × [from, to)` across week-sized bins.
    fn accumulate_weekly(&mut self, from: Time, to: Time, rate: f64) {
        if rate == 0.0 {
            return;
        }
        let mut t = from;
        while t < to {
            let week = (t / WEEK) as usize;
            if week >= self.weekly_busy.len() {
                self.weekly_busy.resize(week + 1, 0.0);
            }
            let boundary = ((t / WEEK) + 1) * WEEK;
            let seg_end = boundary.min(to);
            self.weekly_busy[week] += rate * (seg_end - t) as f64;
            t = seg_end;
        }
    }

    /// A job started at `now`.
    pub(crate) fn note_start(&mut self, now: Time) {
        self.min_start = self.min_start.min(now);
    }

    /// A job ended at `now`.
    pub(crate) fn note_completion(&mut self, now: Time) {
        self.max_completion = self.max_completion.max(now);
    }

    /// A crash threw away `executed × nodes` node-seconds of work.
    pub(crate) fn note_lost(&mut self, executed: Time, nodes: u32) {
        self.lost += executed as f64 * nodes as f64;
    }

    /// `MinStartTime`, with the empty-schedule convention (no starts → 0).
    pub(crate) fn min_start_or_zero(&self) -> Time {
        if self.min_start == Time::MAX {
            0
        } else {
            self.min_start
        }
    }

    /// End-of-run conservation residual: `used + idle + down` versus
    /// `capacity × elapsed`. Zero up to float accumulation.
    pub(crate) fn conservation_residual(&self, total: u32, elapsed: Time) -> (f64, f64) {
        let capacity = total as f64 * elapsed as f64;
        (self.busy + self.idle + self.down, capacity)
    }

    /// The queue-pressure summary for the finished run.
    pub(crate) fn queue_stats(&self) -> QueueStats {
        QueueStats {
            max_queued_jobs: self.max_queued_jobs,
            max_queued_demand: self.max_queued_demand,
            mean_queued_jobs: if self.observed_span > 0.0 {
                self.queued_jobs_integral / self.observed_span
            } else {
                0.0
            },
            mean_queued_demand: if self.observed_span > 0.0 {
                self.queued_demand_integral / self.observed_span
            } else {
                0.0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_accumulates_the_documented_integrals() {
        let mut a = Accounting::new();
        // 10 s with 3 of 8 nodes free, 1 down: busy rate 4.
        a.observe(
            0,
            10,
            GapState {
                queued_jobs: 2,
                queued_demand: 5,
                free: 3,
                down: 1,
                total: 8,
            },
        );
        assert_eq!(a.busy, 40.0);
        assert_eq!(a.idle, 30.0);
        assert_eq!(a.down, 10.0);
        // Waste is min(demand 5, free 3) × 10.
        assert_eq!(a.waste, 30.0);
        let qs = a.queue_stats();
        assert_eq!(qs.max_queued_jobs, 2);
        assert_eq!(qs.max_queued_demand, 5);
        assert_eq!(qs.mean_queued_jobs, 2.0);
        assert_eq!(qs.mean_queued_demand, 5.0);
        let (integrated, capacity) = a.conservation_residual(8, 10);
        assert_eq!(integrated, capacity);
    }

    #[test]
    fn zero_length_gaps_change_nothing() {
        let mut a = Accounting::new();
        a.observe(
            5,
            5,
            GapState {
                queued_jobs: 9,
                queued_demand: 99,
                free: 1,
                down: 0,
                total: 4,
            },
        );
        assert_eq!(a.busy, 0.0);
        assert_eq!(a.queue_stats().max_queued_jobs, 0);
    }

    #[test]
    fn weekly_bins_split_on_boundaries() {
        let mut a = Accounting::new();
        // 2 busy nodes across one week boundary: half a week each side.
        a.observe(
            WEEK / 2,
            WEEK + WEEK / 2,
            GapState {
                queued_jobs: 0,
                queued_demand: 0,
                free: 0,
                down: 0,
                total: 2,
            },
        );
        assert_eq!(a.weekly_busy.len(), 2);
        assert_eq!(a.weekly_busy[0], 2.0 * (WEEK / 2) as f64);
        assert_eq!(a.weekly_busy[1], 2.0 * (WEEK / 2) as f64);
    }

    #[test]
    fn start_and_completion_marks_track_extremes() {
        let mut a = Accounting::new();
        assert_eq!(a.min_start_or_zero(), 0);
        a.note_start(50);
        a.note_start(20);
        a.note_completion(70);
        a.note_completion(60);
        assert_eq!(a.min_start_or_zero(), 20);
        assert_eq!(a.max_completion, 70);
    }
}
