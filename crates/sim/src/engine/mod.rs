//! Scheduling engines: who starts, and when.
//!
//! An [`Engine`] decides which queued jobs start at each scheduling event
//! (arrival or completion, §3.1). Engines are no longer monoliths: every
//! policy is a [`ComposedEngine`] assembled from three orthogonal strategy
//! layers, declaratively described by a [`Composition`]:
//!
//! * a [`QueueOrderStrategy`] (`order`) — the walk order over the queue,
//!   plus which job (if any) is *promoted* to hold the pass's aggressive
//!   guard: none, the priority head (EASY), or the starvation-queue head
//!   (CPlant §2.1);
//! * a [`ReservationLedger`] (`ledger`) — what future promises constrain
//!   backfilling: none, a single head-of-queue aggressive reservation, the
//!   conservative per-job profile (§5.3, with the §5.4 dynamic rebuild), or
//!   a depth-limited profile;
//! * a [`BackfillRule`] (`rule`) — how the walk turns admissions into
//!   starts: strict no-backfill (Figure 1), the greedy aggressive walk,
//!   conservative due-reservation dispatch, or the profile-greedy walk.
//!
//! The paper's nine policies are recovered exactly by [`composition_of`];
//! `core::policy` builds on the same table. The decomposition preserves
//! byte-identical schedules with the pre-refactor monolithic engines
//! (pinned by the root `engine_equivalence` golden suite).

use crate::config::{EngineKind, QueueOrder, StarvationConfig};
use crate::fairshare::FairshareTracker;
use crate::faults::Outage;
use crate::state::{priority_order, QueuedJob, RunningJob};
use fairsched_obs::TraceHandle;
use fairsched_workload::job::JobId;
use fairsched_workload::time::Time;

pub mod backfill;
pub mod ledger;
pub mod order;

pub use backfill::{
    BackfillRule, GreedyRule, NoBackfillRule, ProfileGreedyRule, ReservationDueRule,
};
pub use ledger::{
    Admission, ConservativeLedger, ConservativeSnapshot, DepthLedger, HeadOfQueue, NoReservations,
    ReservationLedger,
};
pub use order::{
    HeadPromotion, LeastAttainedOrder, PriorityOrder, QueueOrderStrategy, StarvationPromotion,
    VirtualFairOrder, HFSP_AGING_RATE,
};

/// Far-future reservation sentinel for jobs that can never be placed (wider
/// than the machine). Such jobs are rejected upstream by trace validation;
/// engines driven by hand degrade to "reserved at the far future" instead
/// of panicking, matching the pre-`Option` profile behavior. Public so
/// trace consumers can tell "reserved at `t`" from "no feasible slot yet"
/// in `ReservationMade`/`ReservationShifted` records.
pub const FAR_FUTURE: Time = Time::MAX / 4;

/// Read-only view the simulator hands an engine at each scheduling event.
pub struct EngineCtx<'a> {
    /// Current simulated time.
    pub now: Time,
    /// Nodes currently idle.
    pub free_nodes: u32,
    /// Machine size.
    pub total_nodes: u32,
    /// Running jobs.
    pub running: &'a [RunningJob],
    /// Queued jobs in arrival order.
    pub queue: &'a [QueuedJob],
    /// Fairshare usage (drives priority order and heavy-user rules).
    pub fairshare: &'a FairshareTracker,
    /// Queue priority order in force.
    pub order: QueueOrder,
    /// Starvation-queue configuration, if the policy has one.
    pub starvation: Option<&'a StarvationConfig>,
    /// Nodes currently down for repair. Already excluded from
    /// `free_nodes`; engines that plan into the future must additionally
    /// treat each as a 1-node occupant until its repair time, or their
    /// reservations would assume capacity that does not exist yet.
    pub outages: &'a [Outage],
    /// Decision-trace sink for this pass, when the run is traced. Engines
    /// emit `JobStarted`/`ReservationMade`/`ReservationShifted` records
    /// through it; emission must never influence decisions (a traced run's
    /// schedule is byte-identical to an untraced one — proptest-pinned).
    pub trace: Option<&'a dyn TraceHandle>,
}

impl EngineCtx<'_> {
    /// Queue indices in priority order.
    pub fn priority(&self) -> Vec<usize> {
        priority_order(self.queue, self.order, self.fairshare)
    }
}

/// A scheduling engine. All callbacks default to no-ops so stateless engines
/// implement only [`Engine::select_starts`] and [`Engine::fork`].
///
/// `Send` so a whole [`Sim`](crate::Sim) (which owns its engine) can move to a
/// sweep worker thread; engines hold no thread-affine state.
pub trait Engine: Send {
    /// A job entered the queue (already present in `ctx.queue`).
    fn on_arrival(&mut self, _job: &QueuedJob, _ctx: &EngineCtx<'_>) {}
    /// A previously queued job started (already removed from the queue).
    fn on_start(&mut self, _id: JobId) {}
    /// A running job completed or was killed.
    fn on_complete(&mut self, _id: JobId) {}
    /// Chooses jobs to start *now*. Every returned job must currently fit
    /// (the simulator asserts this) and be returned at most once.
    fn select_starts(&mut self, ctx: &EngineCtx<'_>) -> Vec<JobId>;
    /// An exact replica of this engine, internal state included. Warm-start
    /// prefix simulation forks the master engine per query so stateful
    /// ledgers (conservative reservations) continue from the master's
    /// exact bookkeeping instead of being rebuilt from scratch.
    fn fork(&self) -> Box<dyn Engine>;
}

/// Which [`QueueOrderStrategy`] a composition uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OrderKind {
    /// Walk the priority order; promote nothing.
    Priority,
    /// Promote the priority head to the aggressive guard (EASY).
    PromoteHead,
    /// Promote the starvation-queue head to the aggressive guard (CPlant).
    PromoteStarving,
    /// FSP's virtual fair schedule: walk in virtual completion order and
    /// promote the virtual head to the aggressive guard.
    VirtualFair,
    /// [`OrderKind::VirtualFair`] with the HFSP aging credit blended in.
    VirtualFairAged,
    /// Least attained service per user, the head promoted as in EASY.
    LeastAttained,
}

/// Which [`ReservationLedger`] a composition uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LedgerKind {
    /// No future promises: a job is admitted iff it fits right now.
    Unreserved,
    /// One aggressive reservation guarding the pass's blocked promoted job.
    HeadOfQueue,
    /// Per-job conservative reservations (§5.3); `dynamic` rebuilds the
    /// whole ledger at every event (§5.4).
    Conservative {
        /// §5.4 dynamic reservations when `true`.
        dynamic: bool,
    },
    /// Profile reservations for the first `n` jobs in priority order.
    Depth(u32),
}

/// Which [`BackfillRule`] a composition uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuleKind {
    /// Strict FCFS: stop at the first job that cannot start (Figure 1).
    NoBackfill,
    /// The greedy aggressive walk (no-guarantee / EASY).
    Greedy,
    /// Start jobs whose conservative reservations have come due.
    ReservationDue,
    /// The profile-greedy walk of the reservation-depth engines.
    ProfileGreedy,
}

/// A declarative engine composition: one strategy per layer. The nine paper
/// policies are rows of this table (see [`composition_of`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Composition {
    /// Queue-walk order and guard promotion.
    pub order: OrderKind,
    /// Reservation bookkeeping.
    pub ledger: LedgerKind,
    /// Walk-to-starts rule.
    pub rule: RuleKind,
}

impl Composition {
    /// Instantiates the strategies this composition names.
    pub fn build(self) -> ComposedEngine {
        let order: Box<dyn QueueOrderStrategy> = match self.order {
            OrderKind::Priority => Box::new(PriorityOrder),
            OrderKind::PromoteHead => Box::new(HeadPromotion),
            OrderKind::PromoteStarving => Box::new(StarvationPromotion),
            OrderKind::VirtualFair => Box::new(VirtualFairOrder::fsp()),
            OrderKind::VirtualFairAged => Box::new(VirtualFairOrder::hfsp()),
            OrderKind::LeastAttained => Box::new(LeastAttainedOrder::default()),
        };
        let ledger: Box<dyn ReservationLedger> = match self.ledger {
            LedgerKind::Unreserved => Box::new(NoReservations),
            LedgerKind::HeadOfQueue => Box::new(HeadOfQueue::default()),
            LedgerKind::Conservative { dynamic } => Box::new(ConservativeLedger::new(dynamic)),
            LedgerKind::Depth(depth) => Box::new(DepthLedger::new(depth)),
        };
        let rule: Box<dyn BackfillRule> = match self.rule {
            RuleKind::NoBackfill => Box::new(NoBackfillRule),
            RuleKind::Greedy => Box::new(GreedyRule),
            RuleKind::ReservationDue => Box::new(ReservationDueRule),
            RuleKind::ProfileGreedy => Box::new(ProfileGreedyRule),
        };
        ComposedEngine {
            spec: self,
            order,
            ledger,
            rule,
        }
    }
}

/// The strategy table: which composition realizes each [`EngineKind`].
pub fn composition_of(kind: EngineKind) -> Composition {
    match kind {
        EngineKind::NoGuarantee => Composition {
            order: OrderKind::PromoteStarving,
            ledger: LedgerKind::HeadOfQueue,
            rule: RuleKind::Greedy,
        },
        EngineKind::Easy => Composition {
            order: OrderKind::PromoteHead,
            ledger: LedgerKind::HeadOfQueue,
            rule: RuleKind::Greedy,
        },
        EngineKind::Conservative { dynamic } => Composition {
            order: OrderKind::Priority,
            ledger: LedgerKind::Conservative { dynamic },
            rule: RuleKind::ReservationDue,
        },
        EngineKind::ReservationDepth(depth) => Composition {
            order: OrderKind::Priority,
            ledger: LedgerKind::Depth(depth),
            rule: RuleKind::ProfileGreedy,
        },
        EngineKind::FcfsNoBackfill => Composition {
            order: OrderKind::Priority,
            ledger: LedgerKind::Unreserved,
            rule: RuleKind::NoBackfill,
        },
        // The size-based family shares EASY's guard machinery: the order
        // strategy names its own head (virtual completion / least attained
        // service) and the head-of-queue ledger plus greedy rule protect it.
        EngineKind::Fsp => Composition {
            order: OrderKind::VirtualFair,
            ledger: LedgerKind::HeadOfQueue,
            rule: RuleKind::Greedy,
        },
        EngineKind::Hfsp => Composition {
            order: OrderKind::VirtualFairAged,
            ledger: LedgerKind::HeadOfQueue,
            rule: RuleKind::Greedy,
        },
        EngineKind::Las => Composition {
            order: OrderKind::LeastAttained,
            ledger: LedgerKind::HeadOfQueue,
            rule: RuleKind::Greedy,
        },
    }
}

/// An engine assembled from the three strategy layers.
pub struct ComposedEngine {
    spec: Composition,
    order: Box<dyn QueueOrderStrategy>,
    ledger: Box<dyn ReservationLedger>,
    rule: Box<dyn BackfillRule>,
}

impl ComposedEngine {
    /// The declarative composition this engine was built from.
    pub fn spec(&self) -> Composition {
        self.spec
    }

    /// Reserved start of a queued job, when the ledger plans one
    /// (testing/inspection).
    pub fn reservation_of(&self, id: JobId) -> Option<Time> {
        self.ledger.reservation_of(id)
    }

    /// Direct access to the reservation ledger (testing/inspection).
    pub fn ledger(&self) -> &dyn ReservationLedger {
        self.ledger.as_ref()
    }
}

impl Engine for ComposedEngine {
    fn on_arrival(&mut self, job: &QueuedJob, ctx: &EngineCtx<'_>) {
        self.ledger.on_arrival(job, ctx);
        self.order.on_arrival(job, ctx);
    }

    fn on_start(&mut self, id: JobId) {
        self.ledger.on_start(id);
        self.order.on_start(id);
    }

    fn on_complete(&mut self, id: JobId) {
        self.ledger.on_complete(id);
        self.order.on_complete(id);
    }

    fn select_starts(&mut self, ctx: &EngineCtx<'_>) -> Vec<JobId> {
        // Stateful orders advance their virtual clocks before the walk;
        // stateless ones no-op, keeping pre-refactor schedules byte-exact.
        self.order.begin_pass(ctx);
        self.rule
            .select(ctx, self.order.as_ref(), self.ledger.as_mut())
    }

    fn fork(&self) -> Box<dyn Engine> {
        Box::new(ComposedEngine {
            spec: self.spec,
            order: self.order.clone_box(),
            ledger: self.ledger.clone_box(),
            rule: self.rule.clone_box(),
        })
    }
}

/// Builds the composed engine for a policy.
pub fn compose(kind: EngineKind) -> ComposedEngine {
    composition_of(kind).build()
}

/// Builds the engine for a policy (boxed, for the simulator driver).
pub fn make_engine(kind: EngineKind) -> Box<dyn Engine> {
    Box::new(compose(kind))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FairshareConfig;
    use fairsched_workload::job::UserId;
    use fairsched_workload::time::HOUR;

    fn queued(id: u32, user: u32, nodes: u32, estimate: Time, arrival: Time) -> QueuedJob {
        QueuedJob {
            id: JobId(id),
            user: UserId(user),
            nodes,
            estimate,
            arrival,
        }
    }

    fn running(id: u32, nodes: u32, start: Time, estimate: Time) -> RunningJob {
        RunningJob {
            id: JobId(id),
            user: UserId(99),
            nodes,
            start,
            estimate,
            scheduled_end: start + estimate,
        }
    }

    fn ctx<'a>(
        now: Time,
        total: u32,
        running: &'a [RunningJob],
        queue: &'a [QueuedJob],
        fairshare: &'a FairshareTracker,
        starvation: Option<&'a StarvationConfig>,
    ) -> EngineCtx<'a> {
        let used: u32 = running.iter().map(|r| r.nodes).sum();
        EngineCtx {
            now,
            free_nodes: total - used,
            total_nodes: total,
            running,
            queue,
            fairshare,
            order: QueueOrder::Fairshare,
            starvation,
            outages: &[],
            trace: None,
        }
    }

    fn fs() -> FairshareTracker {
        FairshareTracker::new(FairshareConfig::default())
    }

    fn no_guarantee() -> ComposedEngine {
        compose(EngineKind::NoGuarantee)
    }

    fn easy() -> ComposedEngine {
        compose(EngineKind::Easy)
    }

    fn conservative(dynamic: bool) -> ComposedEngine {
        compose(EngineKind::Conservative { dynamic })
    }

    fn depth(n: u32) -> ComposedEngine {
        compose(EngineKind::ReservationDepth(n))
    }

    fn no_backfill() -> ComposedEngine {
        compose(EngineKind::FcfsNoBackfill)
    }

    #[test]
    fn composition_table_is_the_documented_one() {
        assert_eq!(
            composition_of(EngineKind::NoGuarantee),
            Composition {
                order: OrderKind::PromoteStarving,
                ledger: LedgerKind::HeadOfQueue,
                rule: RuleKind::Greedy,
            }
        );
        assert_eq!(
            composition_of(EngineKind::Easy),
            Composition {
                order: OrderKind::PromoteHead,
                ledger: LedgerKind::HeadOfQueue,
                rule: RuleKind::Greedy,
            }
        );
        for dynamic in [false, true] {
            assert_eq!(
                composition_of(EngineKind::Conservative { dynamic }),
                Composition {
                    order: OrderKind::Priority,
                    ledger: LedgerKind::Conservative { dynamic },
                    rule: RuleKind::ReservationDue,
                }
            );
        }
        assert_eq!(
            composition_of(EngineKind::ReservationDepth(3)),
            Composition {
                order: OrderKind::Priority,
                ledger: LedgerKind::Depth(3),
                rule: RuleKind::ProfileGreedy,
            }
        );
        assert_eq!(
            composition_of(EngineKind::FcfsNoBackfill),
            Composition {
                order: OrderKind::Priority,
                ledger: LedgerKind::Unreserved,
                rule: RuleKind::NoBackfill,
            }
        );
        // The size-based family rides EASY's guard machinery.
        for (kind, order) in [
            (EngineKind::Fsp, OrderKind::VirtualFair),
            (EngineKind::Hfsp, OrderKind::VirtualFairAged),
            (EngineKind::Las, OrderKind::LeastAttained),
        ] {
            assert_eq!(
                composition_of(kind),
                Composition {
                    order,
                    ledger: LedgerKind::HeadOfQueue,
                    rule: RuleKind::Greedy,
                }
            );
        }
        // The built engine remembers its spec.
        assert_eq!(
            no_guarantee().spec(),
            composition_of(EngineKind::NoGuarantee)
        );
    }

    #[test]
    fn fsp_walks_in_virtual_completion_order() {
        let fs = fs();
        // 10 free nodes; the virtually-smallest job is walked (and guarded)
        // first even though it arrived last.
        let queue = vec![
            queued(1, 1, 6, 10_000, 0), // virtual size 60000
            queued(2, 2, 6, 100, 5),    // virtual size 600 → virtual head
        ];
        let mut engine = compose(EngineKind::Fsp);
        let c = ctx(5, 10, &[], &queue, &fs, None);
        // Both fit alone but not together: the virtual head starts and
        // job 1 no longer fits later in the same walk.
        assert_eq!(engine.select_starts(&c), vec![JobId(2)]);
    }

    #[test]
    fn fsp_guard_blocks_backfills_that_delay_the_virtual_head() {
        let fs = fs();
        let runners = vec![running(90, 6, 0, 1000)];
        let queue = vec![
            queued(1, 1, 8, 100, 0),          // virtual head (drained longest)
            queued(2, 2, 4, 2000 * HOUR, 10), // would delay the head's slot
            queued(3, 3, 2, 500, 10),         // ends under the shadow
        ];
        let mut engine = compose(EngineKind::Fsp);
        let c = ctx(10, 10, &runners, &queue, &fs, None);
        // Head (8 wide, virtual size 800 after negligible drain) cannot fit;
        // its guard shadows the runner's end. Job 2 (long, 4 > extra 2)
        // violates the guard; job 3 fits in the extra nodes.
        assert_eq!(engine.select_starts(&c), vec![JobId(3)]);
    }

    #[test]
    fn las_engine_prefers_the_unserved_user() {
        let fs = fs();
        let mut engine = compose(EngineKind::Las);
        // User 1 accrues service via a running job; user 2 has none.
        let runners = vec![RunningJob {
            id: JobId(90),
            user: UserId(1),
            nodes: 6,
            start: 0,
            estimate: 1000,
            scheduled_end: 1000,
        }];
        let c0 = ctx(0, 10, &runners, &[], &fs, None);
        engine.select_starts(&c0); // prime the accrual clock
        let queue = vec![queued(1, 1, 4, 100, 0), queued(2, 2, 4, 100, 50)];
        let c1 = ctx(100, 10, &runners, &queue, &fs, None);
        // 4 free nodes: only one of the two queued jobs fits; LAS picks
        // user 2's despite its later arrival.
        assert_eq!(engine.select_starts(&c1), vec![JobId(2)]);
    }

    #[test]
    fn fork_replicates_ledger_state() {
        let fs = fs();
        let runners = vec![running(90, 10, 0, 1000)];
        let queue = vec![queued(1, 1, 4, 100, 10)];
        let mut engine = conservative(false);
        let c = ctx(10, 10, &runners, &queue, &fs, None);
        engine.on_arrival(&queue[0], &c);
        assert_eq!(engine.reservation_of(JobId(1)), Some(1000));
        // The fork carries the reservation; mutating it leaves the original
        // untouched.
        let mut forked = engine.fork();
        forked.on_start(JobId(1));
        assert_eq!(engine.reservation_of(JobId(1)), Some(1000));
    }

    #[test]
    fn no_guarantee_starts_everything_that_fits_in_priority_order() {
        let fs = fs();
        let queue = vec![
            queued(1, 1, 6, 100, 0),
            queued(2, 2, 3, 100, 1),
            queued(3, 3, 4, 100, 2),
        ];
        let mut engine = no_guarantee();
        let c = ctx(10, 10, &[], &queue, &fs, None);
        // 10 free: job1 (6) + job2 (3) fit; job3 (4) does not after them.
        assert_eq!(engine.select_starts(&c), vec![JobId(1), JobId(2)]);
    }

    #[test]
    fn no_guarantee_lets_narrow_jobs_leapfrog_wide_ones() {
        // The unfairness the paper describes: a wide high-priority job waits
        // while narrow lower-priority jobs start.
        let fs = fs();
        let running = vec![running(90, 6, 0, 1000)];
        let queue = vec![
            queued(1, 1, 8, 100, 0), // wide, needs 8, only 4 free
            queued(2, 2, 2, 100, 1), // narrow
        ];
        let mut engine = no_guarantee();
        let c = ctx(10, 10, &running, &queue, &fs, None);
        assert_eq!(engine.select_starts(&c), vec![JobId(2)]);
    }

    #[test]
    fn starvation_head_reservation_blocks_delaying_backfills() {
        let fs = fs();
        // 6 of 10 nodes busy until t = 1000 (estimate).
        let runners = vec![running(90, 6, 0, 1000)];
        // Wide job has starved (arrived at 0, now 24h later).
        let now = 24 * HOUR;
        let cfg = StarvationConfig {
            entry_delay: 24 * HOUR,
            heavy_rule: None,
        };
        let long_estimate = 2000 * HOUR; // would delay the shadow
        let queue = vec![
            queued(1, 1, 8, 100, 0),             // starving, wide
            queued(2, 2, 4, long_estimate, now), // fits free nodes but delays head
            queued(3, 3, 2, long_estimate, now), // fits in extra (10-8=2)
        ];
        let mut engine = no_guarantee();
        let c = ctx(now, 10, &runners, &queue, &fs, Some(&cfg));
        // Shadow = runner's estimated end; extra = (4 free + 6 freed) - 8 = 2.
        // Job2 (4 nodes, long) violates; job3 (2 nodes) fits in extra.
        assert_eq!(engine.select_starts(&c), vec![JobId(3)]);
    }

    #[test]
    fn without_starvation_queue_the_same_backfill_is_allowed() {
        let fs = fs();
        let runners = vec![running(90, 6, 0, 1000)];
        let now = 24 * HOUR;
        let queue = vec![queued(1, 1, 8, 100, 0), queued(2, 2, 4, 2000 * HOUR, now)];
        let mut engine = no_guarantee();
        let c = ctx(now, 10, &runners, &queue, &fs, None);
        assert_eq!(engine.select_starts(&c), vec![JobId(2)]);
    }

    #[test]
    fn short_backfills_under_the_shadow_are_allowed() {
        let fs = fs();
        let now = 24 * HOUR;
        let cfg = StarvationConfig {
            entry_delay: 24 * HOUR,
            heavy_rule: None,
        };
        // A fresh runner, so its estimated end (now + 1000) is the shadow.
        let runners = vec![running(90, 6, now, 1000)];
        let queue = vec![
            queued(1, 1, 8, 100, 0),   // starving head
            queued(2, 2, 4, 500, now), // ends before shadow (now+1000)
        ];
        let mut engine = no_guarantee();
        let c = ctx(now, 10, &runners, &queue, &fs, Some(&cfg));
        assert_eq!(engine.select_starts(&c), vec![JobId(2)]);
    }

    #[test]
    fn starving_head_starts_when_it_fits() {
        let fs = fs();
        let now = 24 * HOUR;
        let cfg = StarvationConfig {
            entry_delay: 24 * HOUR,
            heavy_rule: None,
        };
        let queue = vec![queued(1, 1, 8, 100, 0), queued(2, 2, 2, 100, now)];
        let mut engine = no_guarantee();
        let c = ctx(now, 10, &[], &queue, &fs, Some(&cfg));
        assert_eq!(engine.select_starts(&c), vec![JobId(1), JobId(2)]);
    }

    #[test]
    fn easy_guards_the_priority_head() {
        let mut fs = fs();
        // User 1 heavy → its wide job is LOW priority; user 2's job heads
        // the queue.
        fs.charge(UserId(1), 1e9);
        let runners = vec![running(90, 6, 0, 1000)];
        let queue = vec![
            queued(1, 1, 2, 50, 0),  // low priority, fits
            queued(2, 2, 8, 100, 5), // priority head, needs 8 (4 free)
        ];
        let mut engine = easy();
        let c = ctx(10, 10, &runners, &queue, &fs, None);
        // Head (job2) can't start; job1 (2 nodes ≤ extra = 10-8=2) backfills.
        assert_eq!(engine.select_starts(&c), vec![JobId(1)]);
    }

    #[test]
    fn conservative_reserves_on_arrival_and_starts_when_due() {
        let fs = fs();
        let runners = vec![running(90, 10, 0, 1000)];
        let queue = vec![queued(1, 1, 4, 100, 10)];
        let mut engine = conservative(false);
        let c = ctx(10, 10, &runners, &queue, &fs, None);
        engine.on_arrival(&queue[0], &c);
        // Machine full until 1000: reserved at 1000.
        assert_eq!(engine.reservation_of(JobId(1)), Some(1000));
        assert!(engine.select_starts(&c).is_empty());
    }

    #[test]
    fn conservative_backfills_into_profile_holes() {
        let fs = fs();
        let runners = vec![running(90, 6, 0, 1000)];
        // Wide job reserved at 1000 leaves 4 nodes free until then.
        let queue1 = vec![queued(1, 1, 8, 500, 10)];
        let mut engine = conservative(false);
        let c1 = ctx(10, 10, &runners, &queue1, &fs, None);
        engine.on_arrival(&queue1[0], &c1);
        assert_eq!(engine.reservation_of(JobId(1)), Some(1000));

        // A 4-node job ending before 1000 slots in front.
        let queue2 = vec![queued(1, 1, 8, 500, 10), queued(2, 2, 4, 500, 20)];
        let c2 = ctx(20, 10, &runners, &queue2, &fs, None);
        engine.on_arrival(&queue2[1], &c2);
        assert_eq!(engine.reservation_of(JobId(2)), Some(20));
        // And a 4-node job too LONG to finish by 1000 cannot jump the wide
        // job: 4 free now, but at 1000 the wide job needs 8 of 10.
        let queue3 = vec![
            queued(1, 1, 8, 500, 10),
            queued(2, 2, 4, 500, 20),
            queued(3, 3, 4, 5000, 30),
        ];
        let c3 = ctx(30, 10, &runners, &queue3, &fs, None);
        engine.on_arrival(&queue3[2], &c3);
        // Job3 must wait until the wide job's reserved block ends (1500).
        assert_eq!(engine.reservation_of(JobId(3)), Some(1500));
    }

    #[test]
    fn conservative_select_starts_due_reservations() {
        let fs = fs();
        let queue = vec![queued(1, 1, 4, 100, 0)];
        let mut engine = conservative(false);
        let c = ctx(0, 10, &[], &queue, &fs, None);
        engine.on_arrival(&queue[0], &c);
        assert_eq!(engine.reservation_of(JobId(1)), Some(0));
        assert_eq!(engine.select_starts(&c), vec![JobId(1)]);
        engine.on_start(JobId(1));
        assert_eq!(engine.reservation_of(JobId(1)), None);
    }

    #[test]
    fn conservative_compression_improves_after_completion() {
        let fs = fs();
        // Runner holds 10 nodes with estimate to 1000.
        let runners = vec![running(90, 10, 0, 1000)];
        let queue = vec![queued(1, 1, 4, 100, 10)];
        let mut engine = conservative(false);
        let c = ctx(10, 10, &runners, &queue, &fs, None);
        engine.on_arrival(&queue[0], &c);
        assert_eq!(engine.reservation_of(JobId(1)), Some(1000));
        // The runner finishes early at t=200: improvement finds t=200.
        let c2 = ctx(200, 10, &[], &queue, &fs, None);
        let starts = engine.select_starts(&c2);
        assert_eq!(starts, vec![JobId(1)]);
        assert_eq!(engine.reservation_of(JobId(1)), Some(200));
    }

    #[test]
    fn dynamic_rebuild_reorders_by_current_priority() {
        let mut fs = fs();
        // job1's user becomes heavy AFTER its arrival.
        let runners = vec![running(90, 10, 0, 1000)];
        let queue = vec![queued(1, 1, 10, 100, 10), queued(2, 2, 10, 100, 20)];
        let mut engine = conservative(true);
        let c = ctx(20, 10, &runners, &queue, &fs, None);
        engine.on_arrival(&queue[0], &c);
        engine.on_arrival(&queue[1], &c);
        engine.select_starts(&c);
        // Equal usage: FCFS tie-break → job1 first (1000), job2 second (1100).
        assert_eq!(engine.reservation_of(JobId(1)), Some(1000));
        assert_eq!(engine.reservation_of(JobId(2)), Some(1100));
        // Now user 1 becomes heavy: dynamic rebuild flips the order.
        fs.charge(UserId(1), 1e9);
        let c2 = ctx(30, 10, &runners, &queue, &fs, None);
        engine.select_starts(&c2);
        assert_eq!(engine.reservation_of(JobId(2)), Some(1000));
        assert_eq!(engine.reservation_of(JobId(1)), Some(1100));
    }

    #[test]
    fn non_dynamic_keeps_reservations_against_priority_flips() {
        let mut fs = fs();
        let runners = vec![running(90, 10, 0, 1000)];
        let queue = vec![queued(1, 1, 10, 100, 10), queued(2, 2, 10, 100, 20)];
        let mut engine = conservative(false);
        let c = ctx(20, 10, &runners, &queue, &fs, None);
        engine.on_arrival(&queue[0], &c);
        engine.on_arrival(&queue[1], &c);
        // job1 reserved at 1000, job2 at 1100.
        fs.charge(UserId(1), 1e9);
        let c2 = ctx(30, 10, &runners, &queue, &fs, None);
        engine.select_starts(&c2);
        // §5.3: job1 keeps its (better) reservation despite its user's
        // priority collapse; job2 cannot improve past it.
        assert_eq!(engine.reservation_of(JobId(1)), Some(1000));
        assert_eq!(engine.reservation_of(JobId(2)), Some(1100));
    }

    #[test]
    fn no_backfill_blocks_everything_behind_a_stuck_head() {
        // Figure 1's exact scenario: jobB fits beside the running work but
        // must wait because jobA heads the queue.
        let fs = fs();
        let runners = vec![running(90, 6, 0, 1000)];
        let queue = vec![
            queued(1, 1, 8, 100, 0), // jobA: needs 8, only 4 free
            queued(2, 2, 4, 30, 1),  // jobB: fits, but is not the head
        ];
        let mut engine = no_backfill();
        let c = ctx(10, 10, &runners, &queue, &fs, None);
        assert_eq!(engine.select_starts(&c), Vec::<JobId>::new());
    }

    #[test]
    fn no_backfill_starts_consecutive_fitting_heads() {
        let fs = fs();
        let queue = vec![
            queued(1, 1, 4, 100, 0),
            queued(2, 2, 4, 100, 1),
            queued(3, 3, 8, 100, 2), // does not fit after 1 and 2
            queued(4, 4, 1, 100, 3), // fits but is behind the stuck job 3
        ];
        let mut engine = no_backfill();
        let c = ctx(0, 10, &[], &queue, &fs, None);
        assert_eq!(engine.select_starts(&c), vec![JobId(1), JobId(2)]);
    }

    #[test]
    fn depth_zero_is_pure_greedy_backfilling() {
        let fs = fs();
        let runners = vec![running(90, 6, 0, 1000)];
        let queue = vec![
            queued(1, 1, 8, 100, 0),          // priority head, doesn't fit
            queued(2, 2, 4, 2000 * HOUR, 10), // would delay the head's slot
        ];
        let mut engine = depth(0);
        let c = ctx(10, 10, &runners, &queue, &fs, None);
        // No reservations: the long narrow job starts anyway.
        assert_eq!(engine.select_starts(&c), vec![JobId(2)]);
    }

    #[test]
    fn depth_one_protects_the_priority_head_like_easy() {
        let fs = fs();
        let runners = vec![running(90, 6, 10, 1000)];
        let queue = vec![
            queued(1, 1, 8, 100, 0),          // reserved at the runner's end
            queued(2, 2, 4, 2000 * HOUR, 10), // would overlap the reservation
            queued(3, 3, 4, 500, 10),         // fits before the reservation
        ];
        let mut engine = depth(1);
        let c = ctx(10, 10, &runners, &queue, &fs, None);
        // Job 1 reserved at 1010 (8 of 10 nodes). Job 2 (4 nodes ending far
        // past 1010) collides with it; job 3 ends at 510 < 1010 and fits.
        assert_eq!(engine.select_starts(&c), vec![JobId(3)]);
    }

    #[test]
    fn deep_reservations_protect_multiple_jobs() {
        let fs = fs();
        let runners = vec![running(90, 10, 10, 990)]; // machine full till 1000
        let queue = vec![
            queued(1, 1, 10, 100, 0), // reserved [1000, 1100)
            queued(2, 2, 10, 100, 1), // reserved [1100, 1200) at depth 2
            queued(3, 3, 1, 2000, 2), // would delay job 2 but not job 1
        ];
        let c = ctx(10, 10, &runners, &queue, &fs, None);
        // Depth 2: job 3 (ends at 2010, overlapping both reservations on a
        // full profile) cannot start.
        let mut deep = depth(2);
        assert_eq!(deep.select_starts(&c), Vec::<JobId>::new());
        // Depth 1: only job 1 is protected; job 3 still cannot start — the
        // profile during [1000,1100) is full with job 1's 10 nodes.
        let mut shallow = depth(1);
        assert_eq!(shallow.select_starts(&c), Vec::<JobId>::new());
        // Depth 0: nothing is protected; job 3 starts immediately? No — the
        // machine is FULL now (free = 0), so nothing starts either way.
        let mut none = depth(0);
        assert_eq!(none.select_starts(&c), Vec::<JobId>::new());
    }

    #[test]
    fn depth_engine_starts_everything_on_an_empty_machine() {
        let fs = fs();
        let queue = vec![queued(1, 1, 4, 100, 0), queued(2, 2, 6, 100, 1)];
        let mut engine = depth(3);
        let c = ctx(0, 10, &[], &queue, &fs, None);
        assert_eq!(engine.select_starts(&c), vec![JobId(1), JobId(2)]);
    }

    #[test]
    fn conservative_reservations_respect_node_outages() {
        let fs = fs();
        // 10-node machine, empty, but 4 nodes are down until t = 1000: an
        // 8-node job cannot be promised anything before the repairs land.
        let outages: Vec<Outage> = (0..4).map(|seq| Outage { seq, until: 1000 }).collect();
        let queue = vec![queued(1, 1, 8, 100, 10)];
        let c = EngineCtx {
            now: 10,
            free_nodes: 6,
            total_nodes: 10,
            running: &[],
            queue: &queue,
            fairshare: &fs,
            order: QueueOrder::Fairshare,
            starvation: None,
            outages: &outages,
            trace: None,
        };
        let mut engine = conservative(false);
        engine.on_arrival(&queue[0], &c);
        assert_eq!(engine.reservation_of(JobId(1)), Some(1000));
        assert!(engine.select_starts(&c).is_empty());
    }

    #[test]
    fn greedy_guard_shadow_accounts_for_outages() {
        let fs = fs();
        // Starving 8-node head; 4 nodes down until t well past any backfill
        // window plus 2 running until 1000. free = 4.
        let now = 24 * HOUR;
        let cfg = StarvationConfig {
            entry_delay: 24 * HOUR,
            heavy_rule: None,
        };
        let runners = vec![running(90, 2, now, 1000)];
        let outages: Vec<Outage> = (0..4)
            .map(|seq| Outage {
                seq,
                until: now + 50_000,
            })
            .collect();
        let queue = vec![
            queued(1, 1, 8, 100, 0),      // starving head: 8 > 4 free
            queued(2, 2, 4, 40_000, now), // would end before the repairs
            queued(3, 3, 4, 60_000, now), // would delay the head
        ];
        let c = EngineCtx {
            now,
            free_nodes: 4,
            total_nodes: 10,
            running: &runners,
            queue: &queue,
            fairshare: &fs,
            order: QueueOrder::Fairshare,
            starvation: Some(&cfg),
            outages: &outages,
            trace: None,
        };
        let mut engine = no_guarantee();
        // Head needs 8: free 4 + 2 at now+1000 = 6, + repairs at now+50000
        // reach 10 → shadow = now+50000, extra = 2. Job 2 (ends now+40000
        // ≤ shadow) backfills; job 3 (ends past the shadow, 4 > extra)
        // must not.
        assert_eq!(engine.select_starts(&c), vec![JobId(2)]);
    }
}
