//! Reservation ledgers: the future promises a pass's admissions must
//! respect.
//!
//! A ledger answers one question per walked job — may it start *now*? —
//! but the bookkeeping behind that answer is what separates the policy
//! families:
//!
//! * [`NoReservations`] — admitted iff it fits right now;
//! * [`HeadOfQueue`] — one aggressive (EASY-style) reservation computed per
//!   pass for the blocked promoted job; backfills must finish under its
//!   shadow or fit in its spare nodes;
//! * [`ConservativeLedger`] — a per-job reservation made on arrival and
//!   only ever improved (§5.3), or rebuilt wholesale at every event
//!   (§5.4). The static ledger keeps an *incremental* planned-capacity
//!   timeline across scheduling passes — a [`Profile`] holding every live
//!   reservation — instead of re-seeding one from the queue at each
//!   event, and supports [`snapshot`](ConservativeLedger::snapshot) /
//!   [`restore`](ConservativeLedger::restore) so warm-started prefix
//!   simulation can fork its exact state;
//! * [`DepthLedger`] — profile reservations for the first `n` jobs in
//!   priority order, rebuilt per pass.

use super::{EngineCtx, FAR_FUTURE};
use crate::profile::Profile;
use crate::state::QueuedJob;
use fairsched_obs::TraceRecord;
use fairsched_workload::job::JobId;
use fairsched_workload::time::Time;
use std::collections::{BTreeSet, HashMap};

/// An aggressive reservation: the guarded job starts at `shadow` when
/// enough nodes free up; backfilled work must either finish by `shadow` or
/// fit in the `extra` nodes the guarded job leaves unused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Reservation {
    pub(crate) shadow: Time,
    pub(crate) extra: u32,
}

/// Computes the aggressive reservation for a `nodes`-wide job given current
/// free nodes and the estimated ends of running work.
pub(crate) fn aggressive_reservation(
    nodes: u32,
    free: u32,
    now: Time,
    ends: &mut [(Time, u32)], // (estimated end, nodes); sorted in place
) -> Reservation {
    debug_assert!(nodes > free, "job that fits needs no reservation");
    ends.sort_unstable();
    let mut avail = free;
    for &(end, n) in ends.iter() {
        avail += n;
        if avail >= nodes {
            return Reservation {
                shadow: end.max(now),
                extra: avail - nodes,
            };
        }
    }
    // Wider than the machine is rejected upstream; this is unreachable for
    // valid traces, but degrade gracefully.
    Reservation {
        shadow: FAR_FUTURE,
        extra: 0,
    }
}

/// Whether a candidate backfill respects an aggressive reservation.
fn respects(job: &QueuedJob, now: Time, res: Option<&mut Reservation>) -> bool {
    match res {
        None => true,
        Some(res) => {
            if now + job.estimate <= res.shadow {
                true
            } else if job.nodes <= res.extra {
                res.extra -= job.nodes;
                true
            } else {
                false
            }
        }
    }
}

/// A ledger's verdict on one walked job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// May start right now.
    Start,
    /// Must wait (and counts as bypassed by later starts).
    Wait,
    /// Can never be placed (wider than the machine); holds no slot and is
    /// not counted as waiting.
    Infeasible,
}

/// Reservation bookkeeping for one engine composition. Lifecycle callbacks
/// mirror [`Engine`](super::Engine); per-pass hooks are driven by the
/// [`BackfillRule`](super::BackfillRule).
pub trait ReservationLedger: Send {
    /// A job entered the queue (already present in `ctx.queue`).
    fn on_arrival(&mut self, _job: &QueuedJob, _ctx: &EngineCtx<'_>) {}
    /// A previously queued job started (already removed from the queue).
    fn on_start(&mut self, _id: JobId) {}
    /// A running job completed or was killed.
    fn on_complete(&mut self, _id: JobId) {}

    /// Called once per scheduling pass before any admission query.
    /// `blocked_promoted` is the queue index of a promoted job that could
    /// not start immediately — it holds the pass's aggressive guard.
    fn begin_pass(&mut self, _ctx: &EngineCtx<'_>, _blocked_promoted: Option<usize>) {}

    /// May the walk's `rank`-th job (queue index `i`) start right now, with
    /// `free` nodes idle? May mutate per-pass state (spare-node budgets,
    /// profile holds) — the rule must query jobs in walk order exactly once.
    fn admit(&mut self, ctx: &EngineCtx<'_>, rank: usize, i: usize, free: u32) -> Admission;

    /// The job at queue index `i` was just started by the rule.
    fn note_start(&mut self, _ctx: &EngineCtx<'_>, _i: usize) {}

    /// Reserved start for `id`, when this ledger plans one.
    fn reservation_of(&self, _id: JobId) -> Option<Time> {
        None
    }

    /// A boxed replica, per-job state included.
    fn clone_box(&self) -> Box<dyn ReservationLedger>;
}

/// No promises: a job is admitted iff it fits right now.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoReservations;

impl ReservationLedger for NoReservations {
    fn admit(&mut self, ctx: &EngineCtx<'_>, _rank: usize, i: usize, free: u32) -> Admission {
        if ctx.queue[i].nodes <= free {
            Admission::Start
        } else {
            Admission::Wait
        }
    }

    fn clone_box(&self) -> Box<dyn ReservationLedger> {
        Box::new(*self)
    }
}

/// One aggressive reservation guarding the pass's blocked promoted job.
/// Recomputed from scratch each pass; carries no state across events.
#[derive(Debug, Clone, Default)]
pub struct HeadOfQueue {
    /// The live guard, consumed (its `extra` budget decremented) as the
    /// pass admits backfills.
    guard: Option<Reservation>,
}

impl ReservationLedger for HeadOfQueue {
    fn begin_pass(&mut self, ctx: &EngineCtx<'_>, blocked_promoted: Option<usize>) {
        self.guard = blocked_promoted.map(|g| {
            let head = &ctx.queue[g];
            // Estimated ends of running work; down nodes count as 1-node
            // occupants until their repair completes.
            let mut ends: Vec<(Time, u32)> = ctx
                .running
                .iter()
                .map(|r| (r.estimated_end(ctx.now), r.nodes))
                .collect();
            ends.extend(ctx.outages.iter().map(|o| (o.until.max(ctx.now + 1), 1)));
            aggressive_reservation(head.nodes, ctx.free_nodes, ctx.now, &mut ends)
        });
    }

    fn admit(&mut self, ctx: &EngineCtx<'_>, _rank: usize, i: usize, free: u32) -> Admission {
        let job = &ctx.queue[i];
        if job.nodes <= free && respects(job, ctx.now, self.guard.as_mut()) {
            Admission::Start
        } else {
            Admission::Wait
        }
    }

    fn clone_box(&self) -> Box<dyn ReservationLedger> {
        Box::new(self.clone())
    }
}

/// One planned rectangle of the conservative timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Slot {
    start: Time,
    estimate: Time,
    nodes: u32,
}

/// Conservative backfilling's reservation ledger, optionally dynamic.
///
/// The static (§5.3) ledger maintains `planned` — the sum of every live
/// reservation rectangle — incrementally across scheduling passes: a pass
/// clones it, overlays running work, outages, and the "floaters" (past-due
/// reservations clamped to `now`), and improves each job in place. Because
/// [`Profile`] is a canonical delta encoding (order-independent, zero
/// deltas dropped), the overlay is byte-identical to the profile the
/// pre-refactor engine re-seeded from the whole queue at every event.
#[derive(Debug, Clone)]
pub struct ConservativeLedger {
    dynamic: bool,
    /// Reserved slot per queued job (raw start, never clamped).
    slots: HashMap<JobId, Slot>,
    /// Slots keyed by raw start, for floater range queries.
    by_start: BTreeSet<(Time, JobId)>,
    /// Incremental timeline: Σ slot rectangles. Maintained only for the
    /// static ledger (the dynamic rebuild never reads it).
    planned: Profile,
}

/// An owned copy of a [`ConservativeLedger`]'s complete reservation state,
/// as captured by [`ConservativeLedger::snapshot`].
#[derive(Debug, Clone)]
pub struct ConservativeSnapshot(ConservativeLedger);

impl ConservativeLedger {
    /// `dynamic = false` for §5.3 (keep-unless-better), `true` for §5.4
    /// (rebuild every event).
    pub fn new(dynamic: bool) -> Self {
        ConservativeLedger {
            dynamic,
            slots: HashMap::new(),
            by_start: BTreeSet::new(),
            planned: Profile::new(0),
        }
    }

    /// Whether dynamic reservations are on.
    pub fn is_dynamic(&self) -> bool {
        self.dynamic
    }

    /// Captures the complete reservation state.
    pub fn snapshot(&self) -> ConservativeSnapshot {
        ConservativeSnapshot(self.clone())
    }

    /// Restores a previously captured state.
    pub fn restore(&mut self, snapshot: ConservativeSnapshot) {
        *self = snapshot.0;
    }

    /// The planned timeline must be encoded against the machine size before
    /// fit queries; rebuilt on the (first-use or hand-driven) mismatch.
    fn ensure_capacity(&mut self, total: u32) {
        if self.planned.capacity() != total {
            let mut p = Profile::new(total);
            for s in self.slots.values() {
                p.add(s.start, s.estimate, s.nodes);
            }
            self.planned = p;
        }
    }

    /// Records or moves a job's slot, keeping `by_start` and `planned` in
    /// lockstep.
    fn set_slot(&mut self, id: JobId, start: Time, estimate: Time, nodes: u32) {
        if let Some(old) = self.slots.insert(
            id,
            Slot {
                start,
                estimate,
                nodes,
            },
        ) {
            self.by_start.remove(&(old.start, id));
            if !self.dynamic {
                self.planned.remove(old.start, old.estimate, old.nodes);
            }
        }
        self.by_start.insert((start, id));
        if !self.dynamic {
            self.planned.add(start, estimate, nodes);
        }
    }

    /// Drops a job's slot (it started, or the queue drained).
    fn drop_slot(&mut self, id: JobId) {
        if let Some(old) = self.slots.remove(&id) {
            self.by_start.remove(&(old.start, id));
            if !self.dynamic {
                self.planned.remove(old.start, old.estimate, old.nodes);
            }
        }
    }

    fn clear_slots(&mut self) {
        self.slots.clear();
        self.by_start.clear();
        if !self.dynamic {
            self.planned = Profile::new(self.planned.capacity());
        }
    }

    /// Whether the slot table covers exactly the given queue subset — the
    /// precondition for deriving a pass profile from `planned` instead of
    /// re-seeding. Always true when the simulator drives the ledger; hand-
    /// driven ledgers (unit tests) may skip `on_arrival` and fall back.
    fn slots_cover(&self, queue: &[QueuedJob], except: Option<JobId>) -> bool {
        let expected = queue.iter().filter(|q| Some(q.id) != except).count();
        self.slots.len() == expected
            && queue
                .iter()
                .filter(|q| Some(q.id) != except)
                .all(|q| self.slots.contains_key(&q.id))
            && except.is_none_or(|id| !self.slots.contains_key(&id))
    }

    /// Profile of running work (estimate-based) plus capacity lost to node
    /// outages: failed nodes step the available capacity down until their
    /// repair time, so reservations never assume them.
    fn running_profile(&self, ctx: &EngineCtx<'_>) -> Profile {
        let mut p = Profile::new(ctx.total_nodes);
        for r in ctx.running {
            p.add(ctx.now, r.estimated_end(ctx.now) - ctx.now, r.nodes);
        }
        for o in ctx.outages {
            p.block_until(ctx.now, o.until, 1);
        }
        p
    }

    /// The pass profile, derived from the incremental timeline: `planned`
    /// with past-due reservations floated up to `now`, plus running work
    /// and outages. Equals the re-seeded profile when `slots` covers the
    /// queue (see [`ConservativeLedger::slots_cover`]).
    fn effective_profile(&self, ctx: &EngineCtx<'_>) -> Profile {
        let mut p = self.planned.clone();
        let floaters: Vec<(Time, JobId)> = self
            .by_start
            .range(..(ctx.now, JobId(0)))
            .copied()
            .collect();
        for (t, id) in floaters {
            let s = self.slots[&id];
            p.remove(t, s.estimate, s.nodes);
            p.add(ctx.now, s.estimate, s.nodes);
        }
        for r in ctx.running {
            p.add(ctx.now, r.estimated_end(ctx.now) - ctx.now, r.nodes);
        }
        for o in ctx.outages {
            p.block_until(ctx.now, o.until, 1);
        }
        p
    }

    fn slot_start(&self, id: JobId) -> Option<Time> {
        self.slots.get(&id).map(|s| s.start)
    }

    /// §5.4: discard everything, rebuild reservations in priority order.
    fn rebuild(&mut self, ctx: &EngineCtx<'_>) {
        // Tracing compares against the pre-rebuild reservations to report
        // shifts; the extra map only exists on traced runs.
        let old: Option<HashMap<JobId, Time>> = ctx
            .trace
            .map(|_| self.slots.iter().map(|(id, s)| (*id, s.start)).collect());
        self.clear_slots();
        let mut profile = self.running_profile(ctx);
        for &i in &ctx.priority() {
            let job = &ctx.queue[i];
            let start = profile
                .earliest_start(ctx.now, job.nodes, job.estimate)
                .unwrap_or(FAR_FUTURE);
            profile.add(start, job.estimate, job.nodes);
            if let (Some(t), Some(old)) = (ctx.trace, old.as_ref()) {
                match old.get(&job.id).copied() {
                    // The on_arrival placeholder (or a fresh job) gets its
                    // first real slot now.
                    Some(prev) if prev >= FAR_FUTURE => t.emit(TraceRecord::ReservationMade {
                        at: ctx.now,
                        job: job.id,
                        start,
                    }),
                    Some(prev) if prev != start => t.emit(TraceRecord::ReservationShifted {
                        at: ctx.now,
                        job: job.id,
                        from: prev,
                        to: start,
                    }),
                    Some(_) => {}
                    None => t.emit(TraceRecord::ReservationMade {
                        at: ctx.now,
                        job: job.id,
                        start,
                    }),
                }
            }
            self.set_slot(job.id, start, job.estimate, job.nodes);
        }
    }

    /// §5.3: each job, in priority order, tries to improve its reservation
    /// within the current profile; it never relinquishes a reservation for a
    /// worse one.
    fn improve(&mut self, ctx: &EngineCtx<'_>) {
        let mut profile = if self.slots_cover(ctx.queue, None) {
            self.effective_profile(ctx)
        } else {
            // Hand-driven fallback: some queued job never saw `on_arrival`.
            // Re-seed from the queue, treating missing slots as reserved at
            // the far future, exactly like the pre-refactor engine.
            let mut p = self.running_profile(ctx);
            for job in ctx.queue {
                let start = self.slot_start(job.id).unwrap_or(FAR_FUTURE).max(ctx.now);
                p.add(start, job.estimate, job.nodes);
            }
            p
        };
        for &i in &ctx.priority() {
            let job = &ctx.queue[i];
            let old = self.slot_start(job.id).unwrap_or(FAR_FUTURE).max(ctx.now);
            profile.remove(old, job.estimate, job.nodes);
            let chosen = match profile.earliest_start(ctx.now, job.nodes, job.estimate) {
                Some(fresh) => fresh.min(old),
                None => old,
            };
            profile.add(chosen, job.estimate, job.nodes);
            if let Some(t) = ctx.trace {
                if old >= FAR_FUTURE && chosen < FAR_FUTURE {
                    t.emit(TraceRecord::ReservationMade {
                        at: ctx.now,
                        job: job.id,
                        start: chosen,
                    });
                } else if old < FAR_FUTURE && chosen != old {
                    // §5.3 improvement only ever moves a reservation
                    // backward; forward slippage comes from §5.4 rebuilds.
                    t.emit(TraceRecord::ReservationShifted {
                        at: ctx.now,
                        job: job.id,
                        from: old,
                        to: chosen,
                    });
                }
            }
            if self.slot_start(job.id) != Some(chosen) {
                self.set_slot(job.id, chosen, job.estimate, job.nodes);
            }
        }
    }
}

impl ReservationLedger for ConservativeLedger {
    fn on_arrival(&mut self, job: &QueuedJob, ctx: &EngineCtx<'_>) {
        if self.dynamic {
            // Reservations are rebuilt wholesale in the next pass.
            self.set_slot(job.id, FAR_FUTURE, job.estimate, job.nodes);
            return;
        }
        self.ensure_capacity(ctx.total_nodes);
        // Earliest hole in the profile of running work plus every existing
        // reservation (the arriving job is already in ctx.queue; skip it).
        let profile = if self.slots_cover(ctx.queue, Some(job.id)) {
            self.effective_profile(ctx)
        } else {
            // Hand-driven fallback: skip the arriving job and any sibling
            // that has not been reserved yet (simultaneous arrivals are
            // delivered one at a time; the unreserved sibling's own
            // on_arrival follows).
            let mut p = self.running_profile(ctx);
            for q in ctx.queue {
                let Some(start) = self.slot_start(q.id) else {
                    continue;
                };
                if q.id == job.id {
                    continue;
                }
                p.add(start.max(ctx.now), q.estimate, q.nodes);
            }
            p
        };
        let start = profile
            .earliest_start(ctx.now, job.nodes, job.estimate)
            .unwrap_or(FAR_FUTURE);
        if let Some(t) = ctx.trace {
            if start < FAR_FUTURE {
                t.emit(TraceRecord::ReservationMade {
                    at: ctx.now,
                    job: job.id,
                    start,
                });
            }
        }
        self.set_slot(job.id, start, job.estimate, job.nodes);
    }

    fn on_start(&mut self, id: JobId) {
        self.drop_slot(id);
    }

    fn begin_pass(&mut self, ctx: &EngineCtx<'_>, _blocked_promoted: Option<usize>) {
        if ctx.queue.is_empty() {
            self.clear_slots();
            return;
        }
        self.ensure_capacity(ctx.total_nodes);
        if self.dynamic {
            self.rebuild(ctx);
        } else {
            self.improve(ctx);
        }
    }

    fn admit(&mut self, ctx: &EngineCtx<'_>, _rank: usize, i: usize, free: u32) -> Admission {
        let job = &ctx.queue[i];
        // Indexing panics on a missing slot, like the pre-refactor map: a
        // pass over a non-empty queue always reserves every queued job.
        if self.slots[&job.id].start <= ctx.now && job.nodes <= free {
            Admission::Start
        } else {
            Admission::Wait
        }
    }

    fn reservation_of(&self, id: JobId) -> Option<Time> {
        self.slot_start(id)
    }

    fn clone_box(&self) -> Box<dyn ReservationLedger> {
        Box::new(self.clone())
    }
}

/// Profile reservations for the first `depth` jobs in priority order,
/// rebuilt from scratch at every pass (like dynamic conservative, but only
/// to depth `n`); deeper jobs backfill greedily as long as they fit the
/// profile *right now* — which is exactly the condition for not delaying
/// any reserved job.
#[derive(Debug, Clone)]
pub struct DepthLedger {
    depth: u32,
    /// Per-pass scratch profile (running work, outages, and the holds of
    /// reserved-but-blocked jobs seen so far this walk).
    profile: Profile,
}

impl DepthLedger {
    /// A ledger reserving the first `depth` priority-ordered jobs.
    pub fn new(depth: u32) -> Self {
        DepthLedger {
            depth,
            profile: Profile::new(0),
        }
    }

    /// The configured depth.
    pub fn depth(&self) -> u32 {
        self.depth
    }
}

impl ReservationLedger for DepthLedger {
    fn begin_pass(&mut self, ctx: &EngineCtx<'_>, _blocked_promoted: Option<usize>) {
        let mut profile = Profile::new(ctx.total_nodes);
        for r in ctx.running {
            profile.add(ctx.now, r.estimated_end(ctx.now) - ctx.now, r.nodes);
        }
        for o in ctx.outages {
            profile.block_until(ctx.now, o.until, 1);
        }
        self.profile = profile;
    }

    fn admit(&mut self, ctx: &EngineCtx<'_>, rank: usize, i: usize, free: u32) -> Admission {
        let job = &ctx.queue[i];
        let Some(start) = self
            .profile
            .earliest_start(ctx.now, job.nodes, job.estimate)
        else {
            // Wider than the machine: can never start and holds no slot.
            return Admission::Infeasible;
        };
        if start == ctx.now && job.nodes <= free {
            Admission::Start
        } else {
            if (rank as u32) < self.depth {
                // Hold the slot: deeper jobs must schedule around it.
                self.profile.add(start, job.estimate, job.nodes);
            }
            // Unreserved jobs that don't fit now simply wait; they claim
            // nothing in the profile.
            Admission::Wait
        }
    }

    fn note_start(&mut self, ctx: &EngineCtx<'_>, i: usize) {
        let job = &ctx.queue[i];
        self.profile.add(ctx.now, job.estimate, job.nodes);
    }

    fn clone_box(&self) -> Box<dyn ReservationLedger> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FairshareConfig, QueueOrder};
    use crate::fairshare::FairshareTracker;
    use fairsched_workload::job::UserId;

    #[test]
    fn reservation_math_for_aggressive_guard() {
        let mut ends = vec![(500, 3), (200, 3)];
        let r = aggressive_reservation(8, 4, 0, &mut ends);
        // free 4 + 3 at 200 = 7 < 8; + 3 at 500 = 10 ≥ 8 → shadow 500, extra 2.
        assert_eq!(
            r,
            Reservation {
                shadow: 500,
                extra: 2
            }
        );
    }

    fn queued(id: u32, nodes: u32, estimate: Time, arrival: Time) -> QueuedJob {
        QueuedJob {
            id: JobId(id),
            user: UserId(1),
            nodes,
            estimate,
            arrival,
        }
    }

    fn ctx<'a>(
        now: Time,
        total: u32,
        queue: &'a [QueuedJob],
        fairshare: &'a FairshareTracker,
    ) -> EngineCtx<'a> {
        EngineCtx {
            now,
            free_nodes: total,
            total_nodes: total,
            running: &[],
            queue,
            fairshare,
            order: QueueOrder::Fairshare,
            starvation: None,
            outages: &[],
            trace: None,
        }
    }

    /// The incremental timeline equals a from-scratch re-seed after a burst
    /// of arrivals, improvements, and starts.
    #[test]
    fn incremental_timeline_matches_reseeded_profile() {
        let fs = FairshareTracker::new(FairshareConfig::default());
        let mut ledger = ConservativeLedger::new(false);
        let mut queue: Vec<QueuedJob> = Vec::new();
        for (id, nodes, estimate, at) in [
            (1, 8, 500, 0),
            (2, 4, 300, 5),
            (3, 10, 200, 9),
            (4, 2, 50, 12),
        ] {
            queue.push(queued(id, nodes, estimate, at));
            let c = ctx(at, 10, &queue, &fs);
            ledger.on_arrival(queue.last().unwrap(), &c);
        }
        let c = ctx(20, 10, &queue, &fs);
        ledger.begin_pass(&c, None);
        // Every queued job holds a slot, and the maintained timeline equals
        // a profile re-seeded from those slots.
        let mut reseeded = Profile::new(10);
        for q in &queue {
            let start = ledger.reservation_of(q.id).unwrap();
            reseeded.add(start, q.estimate, q.nodes);
        }
        assert_eq!(ledger.planned, reseeded);
    }

    #[test]
    fn snapshot_restore_round_trips_reservation_state() {
        let fs = FairshareTracker::new(FairshareConfig::default());
        let mut ledger = ConservativeLedger::new(false);
        let queue = vec![queued(1, 8, 500, 0)];
        let c = ctx(0, 10, &queue, &fs);
        ledger.on_arrival(&queue[0], &c);
        let snap = ledger.snapshot();
        ledger.on_start(JobId(1));
        assert_eq!(ledger.reservation_of(JobId(1)), None);
        ledger.restore(snap);
        assert_eq!(ledger.reservation_of(JobId(1)), Some(0));
    }
}
