//! Queue-order strategies: the walk order over the queue, plus which job
//! (if any) is *promoted* to hold the pass's aggressive guard.
//!
//! Promotion is what distinguishes CPlant's no-guarantee policy from EASY:
//! both walk the priority order greedily, but CPlant guards the head of the
//! *starvation* queue (§2.1) while EASY guards the head of the *priority*
//! queue. Policies with per-job reservations promote nothing — their
//! guarantees live in the [`ReservationLedger`](super::ReservationLedger).

use super::EngineCtx;
use crate::starvation::starving_jobs;
use fairsched_obs::StartCause;

/// The queue-walk order and guard promotion of a scheduling pass.
pub trait QueueOrderStrategy: Send {
    /// Queue indices in the order the backfill rule walks them.
    fn walk_order(&self, ctx: &EngineCtx<'_>) -> Vec<usize>;

    /// The queue index promoted to hold this pass's aggressive guard, with
    /// the [`StartCause`] reported if the promoted job starts immediately.
    fn promoted(&self, _ctx: &EngineCtx<'_>, _order: &[usize]) -> Option<(usize, StartCause)> {
        None
    }

    /// A boxed replica (strategies are stateless; this is plain cloning).
    fn clone_box(&self) -> Box<dyn QueueOrderStrategy>;
}

/// Walk the priority order; promote nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct PriorityOrder;

impl QueueOrderStrategy for PriorityOrder {
    fn walk_order(&self, ctx: &EngineCtx<'_>) -> Vec<usize> {
        ctx.priority()
    }

    fn clone_box(&self) -> Box<dyn QueueOrderStrategy> {
        Box::new(*self)
    }
}

/// EASY promotion: the priority head holds the guard. A fitting head is
/// plain FCFS dispatch, so its start cause is [`StartCause::Fcfs`].
#[derive(Debug, Clone, Copy, Default)]
pub struct HeadPromotion;

impl QueueOrderStrategy for HeadPromotion {
    fn walk_order(&self, ctx: &EngineCtx<'_>) -> Vec<usize> {
        ctx.priority()
    }

    fn promoted(&self, _ctx: &EngineCtx<'_>, order: &[usize]) -> Option<(usize, StartCause)> {
        order.first().map(|&i| (i, StartCause::Fcfs))
    }

    fn clone_box(&self) -> Box<dyn QueueOrderStrategy> {
        Box::new(*self)
    }
}

/// CPlant promotion (§2.1): the head of the starvation queue — FCFS among
/// jobs that have waited past the entry delay, minus heavy users when §5.2's
/// bar is active — holds the guard.
#[derive(Debug, Clone, Copy, Default)]
pub struct StarvationPromotion;

impl QueueOrderStrategy for StarvationPromotion {
    fn walk_order(&self, ctx: &EngineCtx<'_>) -> Vec<usize> {
        ctx.priority()
    }

    fn promoted(&self, ctx: &EngineCtx<'_>, _order: &[usize]) -> Option<(usize, StartCause)> {
        ctx.starvation
            .and_then(|cfg| {
                starving_jobs(ctx.queue, ctx.now, cfg, ctx.fairshare, ctx.running)
                    .first()
                    .copied()
            })
            .map(|i| (i, StartCause::StarvationGuard))
    }

    fn clone_box(&self) -> Box<dyn QueueOrderStrategy> {
        Box::new(*self)
    }
}
