//! Queue-order strategies: the walk order over the queue, plus which job
//! (if any) is *promoted* to hold the pass's aggressive guard.
//!
//! Promotion is what distinguishes CPlant's no-guarantee policy from EASY:
//! both walk the priority order greedily, but CPlant guards the head of the
//! *starvation* queue (§2.1) while EASY guards the head of the *priority*
//! queue. Policies with per-job reservations promote nothing — their
//! guarantees live in the [`ReservationLedger`](super::ReservationLedger).
//!
//! Since the size-based family landed, order strategies may be *stateful*:
//! [`VirtualFairOrder`] maintains FSP's processor-sharing virtual fair
//! schedule and [`LeastAttainedOrder`] tracks per-user attained service.
//! Stateful strategies obey a strict determinism contract: their state must
//! be a pure function of the hook-call sequence ([`on_arrival`], [`on_start`],
//! [`on_complete`], [`begin_pass`] — all driven from `Sim::step`), so a
//! [`clone_box`] fork continues byte-identically to a from-scratch replay of
//! the same events (this is what makes them warm-start eligible). In
//! particular no float reduction may ever run in `HashMap` iteration order:
//! every accrual below iterates the deterministic `ctx.queue`/`ctx.running`
//! slices, never the maps.
//!
//! [`on_arrival`]: QueueOrderStrategy::on_arrival
//! [`on_start`]: QueueOrderStrategy::on_start
//! [`on_complete`]: QueueOrderStrategy::on_complete
//! [`begin_pass`]: QueueOrderStrategy::begin_pass
//! [`clone_box`]: QueueOrderStrategy::clone_box

use super::EngineCtx;
use crate::starvation::starving_jobs;
use crate::state::QueuedJob;
use fairsched_obs::{StartCause, TraceRecord};
use fairsched_workload::job::{JobId, UserId};
use fairsched_workload::time::Time;
use std::collections::HashMap;

/// The queue-walk order and guard promotion of a scheduling pass.
pub trait QueueOrderStrategy: Send {
    /// Queue indices in the order the backfill rule walks them.
    fn walk_order(&self, ctx: &EngineCtx<'_>) -> Vec<usize>;

    /// The queue index promoted to hold this pass's aggressive guard, with
    /// the [`StartCause`] reported if the promoted job starts immediately.
    fn promoted(&self, _ctx: &EngineCtx<'_>, _order: &[usize]) -> Option<(usize, StartCause)> {
        None
    }

    /// A job entered the queue (already present in `ctx.queue`).
    fn on_arrival(&mut self, _job: &QueuedJob, _ctx: &EngineCtx<'_>) {}

    /// A previously queued job started (already removed from the queue).
    fn on_start(&mut self, _id: JobId) {}

    /// A running job completed or was killed.
    fn on_complete(&mut self, _id: JobId) {}

    /// Called once at the top of every `select_starts` pass, before the
    /// backfill rule asks for the walk order. Stateful strategies advance
    /// their clocks here (virtual drains, attained-service accrual); the
    /// scheduling fixpoint re-enters at the same instant, so a repeated
    /// call with `dt = 0` must be a semantic no-op.
    fn begin_pass(&mut self, _ctx: &EngineCtx<'_>) {}

    /// A boxed replica carrying the full internal state (stateless
    /// strategies are plain copies). Warm-start forks rely on the replica
    /// continuing byte-identically.
    fn clone_box(&self) -> Box<dyn QueueOrderStrategy>;
}

/// Walk the priority order; promote nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct PriorityOrder;

impl QueueOrderStrategy for PriorityOrder {
    fn walk_order(&self, ctx: &EngineCtx<'_>) -> Vec<usize> {
        ctx.priority()
    }

    fn clone_box(&self) -> Box<dyn QueueOrderStrategy> {
        Box::new(*self)
    }
}

/// EASY promotion: the priority head holds the guard. A fitting head is
/// plain FCFS dispatch, so its start cause is [`StartCause::Fcfs`].
#[derive(Debug, Clone, Copy, Default)]
pub struct HeadPromotion;

impl QueueOrderStrategy for HeadPromotion {
    fn walk_order(&self, ctx: &EngineCtx<'_>) -> Vec<usize> {
        ctx.priority()
    }

    fn promoted(&self, _ctx: &EngineCtx<'_>, order: &[usize]) -> Option<(usize, StartCause)> {
        order.first().map(|&i| (i, StartCause::Fcfs))
    }

    fn clone_box(&self) -> Box<dyn QueueOrderStrategy> {
        Box::new(*self)
    }
}

/// CPlant promotion (§2.1): the head of the starvation queue — FCFS among
/// jobs that have waited past the entry delay, minus heavy users when §5.2's
/// bar is active — holds the guard.
#[derive(Debug, Clone, Copy, Default)]
pub struct StarvationPromotion;

impl QueueOrderStrategy for StarvationPromotion {
    fn walk_order(&self, ctx: &EngineCtx<'_>) -> Vec<usize> {
        ctx.priority()
    }

    fn promoted(&self, ctx: &EngineCtx<'_>, _order: &[usize]) -> Option<(usize, StartCause)> {
        ctx.starvation
            .and_then(|cfg| {
                starving_jobs(ctx.queue, ctx.now, cfg, ctx.fairshare, ctx.running)
                    .first()
                    .copied()
            })
            .map(|i| (i, StartCause::StarvationGuard))
    }

    fn clone_box(&self) -> Box<dyn QueueOrderStrategy> {
        Box::new(*self)
    }
}

/// HFSP-style aging rate: the fraction of the whole machine granted to each
/// queued job as *virtual aging credit* per second of queue age. Under
/// systematic over-estimation a job's virtual size is inflated forever; the
/// credit `age × total_nodes × HFSP_AGING_RATE` eventually dominates any
/// inflated size, so old jobs drift to the front of the virtual schedule
/// instead of starving behind a stream of small arrivals.
pub const HFSP_AGING_RATE: f64 = 0.25;

/// Emits a [`TraceRecord::VirtualInversion`] when the strategy's head
/// differs from the arrival-order head, once per distinct (head, displaced)
/// pair. `last` is updated whether or not a sink is attached, so traced and
/// untraced runs carry byte-identical strategy state (the zero-interference
/// proptests cover the composed engines).
fn note_head_inversion(
    last: &mut Option<(JobId, JobId)>,
    ctx: &EngineCtx<'_>,
    key: &dyn Fn(&QueuedJob) -> f64,
) {
    let head = ctx.queue.iter().min_by(|a, b| {
        key(a)
            .total_cmp(&key(b))
            .then_with(|| (a.arrival, a.id).cmp(&(b.arrival, b.id)))
    });
    let first = ctx.queue.iter().min_by_key(|j| (j.arrival, j.id));
    let (Some(head), Some(first)) = (head, first) else {
        *last = None;
        return;
    };
    if head.id == first.id {
        *last = None;
        return;
    }
    let pair = (head.id, first.id);
    if *last != Some(pair) {
        if let Some(trace) = ctx.trace {
            trace.emit(TraceRecord::VirtualInversion {
                at: ctx.now,
                job: head.id,
                displaced: first.id,
                job_key: key(head),
                displaced_key: key(first),
            });
        }
        *last = Some(pair);
    }
}

/// A queued job's slot in the virtual fair schedule.
#[derive(Debug, Clone, Copy)]
struct VirtJob {
    /// Virtual remaining size in node-seconds, drained every pass.
    remaining: f64,
    /// Instant the job was last drained to.
    since: Time,
}

/// FSP's virtual fair schedule (Dell'Amico, Carra & Michiardi): every
/// queued job's *virtual remaining size* (initially `nodes × estimate`
/// node-seconds) drains as if a processor-sharing machine were running the
/// whole queue, each job receiving a share of the machine proportional to
/// its fair-share weight `1 / (1 + decayed usage)`. The walk order is the
/// virtual *completion* order: ascending `remaining / weight` (rates are
/// proportional to weights, so dividing by the weight recovers each job's
/// virtual completion time up to a common factor), ties by (arrival, id).
///
/// With `aging > 0` this becomes the HFSP variant: a job's sort key is
/// discounted by `age × total_nodes × aging`, so systematic size
/// over-estimation cannot starve old jobs (see [`HFSP_AGING_RATE`]).
///
/// The drain is event-granular: passes run at every scheduling event, the
/// queue is constant between passes, and each job carries its own `since`
/// cursor, so a job arriving mid-batch is never drained for time it did not
/// spend queued.
#[derive(Debug, Clone, Default)]
pub struct VirtualFairOrder {
    aging: f64,
    virt: HashMap<JobId, VirtJob>,
    last_inversion: Option<(JobId, JobId)>,
}

impl VirtualFairOrder {
    /// Pure FSP: virtual completion order, no aging.
    pub fn fsp() -> Self {
        VirtualFairOrder::default()
    }

    /// HFSP: FSP with the [`HFSP_AGING_RATE`] aging credit blended in.
    pub fn hfsp() -> Self {
        VirtualFairOrder {
            aging: HFSP_AGING_RATE,
            ..Default::default()
        }
    }

    /// A job's initial virtual size: its non-clairvoyant footprint.
    fn initial(job: &QueuedJob) -> f64 {
        job.nodes as f64 * job.estimate as f64
    }

    /// Fair-share weight of a user: light users drain faster.
    fn weight(ctx: &EngineCtx<'_>, user: UserId) -> f64 {
        1.0 / (1.0 + ctx.fairshare.usage(user))
    }

    /// The virtual-completion sort key of a queued job (lower = sooner).
    fn key(&self, job: &QueuedJob, ctx: &EngineCtx<'_>) -> f64 {
        let remaining = self
            .virt
            .get(&job.id)
            .map_or_else(|| Self::initial(job), |v| v.remaining);
        let credit =
            self.aging * ctx.now.saturating_sub(job.arrival) as f64 * ctx.total_nodes as f64;
        remaining / Self::weight(ctx, job.user) - credit
    }

    /// Current virtual remaining size of a queued job (testing/inspection).
    pub fn virtual_remaining(&self, id: JobId) -> Option<f64> {
        self.virt.get(&id).map(|v| v.remaining)
    }
}

impl QueueOrderStrategy for VirtualFairOrder {
    fn walk_order(&self, ctx: &EngineCtx<'_>) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..ctx.queue.len()).collect();
        idx.sort_by(|&a, &b| {
            let (ja, jb) = (&ctx.queue[a], &ctx.queue[b]);
            self.key(ja, ctx)
                .total_cmp(&self.key(jb, ctx))
                .then_with(|| (ja.arrival, ja.id).cmp(&(jb.arrival, jb.id)))
        });
        idx
    }

    fn promoted(&self, _ctx: &EngineCtx<'_>, order: &[usize]) -> Option<(usize, StartCause)> {
        // The virtual-completion head holds the aggressive guard, exactly
        // as EASY guards the priority head.
        order.first().map(|&i| (i, StartCause::Fcfs))
    }

    fn on_arrival(&mut self, job: &QueuedJob, _ctx: &EngineCtx<'_>) {
        self.virt.insert(
            job.id,
            VirtJob {
                remaining: Self::initial(job),
                since: job.arrival,
            },
        );
    }

    fn on_start(&mut self, id: JobId) {
        self.virt.remove(&id);
    }

    fn begin_pass(&mut self, ctx: &EngineCtx<'_>) {
        // Track every queued job. The `or_insert` covers enqueue paths that
        // bypass `on_arrival` (fault requeues re-enter with a fresh virtual
        // size); its `since` is the arrival, so the first drain covers
        // exactly the time spent queued.
        for job in ctx.queue {
            self.virt.entry(job.id).or_insert(VirtJob {
                remaining: Self::initial(job),
                since: job.arrival,
            });
        }
        let total_weight: f64 = ctx.queue.iter().map(|j| Self::weight(ctx, j.user)).sum();
        if total_weight > 0.0 {
            for job in ctx.queue {
                let rate = ctx.total_nodes as f64 * Self::weight(ctx, job.user) / total_weight;
                let v = self.virt.get_mut(&job.id).expect("tracked above");
                let dt = ctx.now.saturating_sub(v.since) as f64;
                if dt > 0.0 {
                    v.remaining = (v.remaining - rate * dt).max(0.0);
                }
                v.since = ctx.now;
            }
        }
        // The key closure borrows `self`, so the inversion cursor is
        // updated through a temporary and written back.
        let mut last = self.last_inversion;
        let key = |j: &QueuedJob| self.key(j, ctx);
        note_head_inversion(&mut last, ctx, &key);
        self.last_inversion = last;
    }

    fn clone_box(&self) -> Box<dyn QueueOrderStrategy> {
        Box::new(self.clone())
    }
}

/// LAS (least-attained-service) across users: the queue is walked in
/// ascending order of the submitting user's *undecayed* attained service
/// (node-seconds actually executed so far this run), ties by (arrival, id).
/// Job-level LAS degenerates under non-preemptive dispatch — every queued
/// job has zero attained service — so the foreground/background queue is
/// kept per *user*, turning LAS into a fair-queueing rule: users who have
/// consumed the least machine time go first, without the daily decay that
/// lets heavy users launder history under the fairshare order.
///
/// Accrual is exact: running jobs accrue per pass over `[max(start, last
/// pass), now]` from the deterministic `ctx.running` slice, and submissions
/// that completed in the current event batch accrue their tail through the
/// `finished` spill (their completion instant *is* the pass instant, since
/// every completion triggers a pass).
#[derive(Debug, Clone, Default)]
pub struct LeastAttainedOrder {
    attained: HashMap<UserId, f64>,
    queued: HashMap<JobId, (UserId, u32)>,
    running: HashMap<JobId, (UserId, u32)>,
    finished: Vec<(UserId, u32)>,
    last_pass: Time,
    last_inversion: Option<(JobId, JobId)>,
}

impl LeastAttainedOrder {
    /// Attained service of a user in node-seconds (testing/inspection).
    pub fn attained(&self, user: UserId) -> f64 {
        self.attained.get(&user).copied().unwrap_or(0.0)
    }

    fn key(&self, job: &QueuedJob) -> f64 {
        self.attained(job.user)
    }
}

impl QueueOrderStrategy for LeastAttainedOrder {
    fn walk_order(&self, ctx: &EngineCtx<'_>) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..ctx.queue.len()).collect();
        idx.sort_by(|&a, &b| {
            let (ja, jb) = (&ctx.queue[a], &ctx.queue[b]);
            self.key(ja)
                .total_cmp(&self.key(jb))
                .then_with(|| (ja.arrival, ja.id).cmp(&(jb.arrival, jb.id)))
        });
        idx
    }

    fn promoted(&self, _ctx: &EngineCtx<'_>, order: &[usize]) -> Option<(usize, StartCause)> {
        order.first().map(|&i| (i, StartCause::Fcfs))
    }

    fn on_arrival(&mut self, job: &QueuedJob, _ctx: &EngineCtx<'_>) {
        self.queued.insert(job.id, (job.user, job.nodes));
    }

    fn on_start(&mut self, id: JobId) {
        if let Some(meta) = self.queued.remove(&id) {
            self.running.insert(id, meta);
        }
    }

    fn on_complete(&mut self, id: JobId) {
        if let Some(meta) = self.running.remove(&id) {
            self.finished.push(meta);
        }
    }

    fn begin_pass(&mut self, ctx: &EngineCtx<'_>) {
        let prev = self.last_pass;
        self.last_pass = ctx.now;
        // Tail service of submissions that completed in this batch: they
        // were running over the whole [prev, now] (starts only happen at
        // passes, so their start is never later than `prev`).
        let dt = ctx.now.saturating_sub(prev) as f64;
        for (user, nodes) in self.finished.drain(..) {
            if dt > 0.0 {
                *self.attained.entry(user).or_insert(0.0) += nodes as f64 * dt;
            }
        }
        for r in ctx.running {
            let from = r.start.max(prev);
            if ctx.now > from {
                *self.attained.entry(r.user).or_insert(0.0) +=
                    r.nodes as f64 * (ctx.now - from) as f64;
            }
        }
        let mut last = self.last_inversion;
        let key = |j: &QueuedJob| self.key(j);
        note_head_inversion(&mut last, ctx, &key);
        self.last_inversion = last;
    }

    fn clone_box(&self) -> Box<dyn QueueOrderStrategy> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FairshareConfig, QueueOrder};
    use crate::fairshare::FairshareTracker;
    use crate::state::RunningJob;

    fn queued(id: u32, user: u32, nodes: u32, estimate: Time, arrival: Time) -> QueuedJob {
        QueuedJob {
            id: JobId(id),
            user: UserId(user),
            nodes,
            estimate,
            arrival,
        }
    }

    fn ctx<'a>(
        now: Time,
        total: u32,
        running: &'a [RunningJob],
        queue: &'a [QueuedJob],
        fairshare: &'a FairshareTracker,
    ) -> EngineCtx<'a> {
        let used: u32 = running.iter().map(|r| r.nodes).sum();
        EngineCtx {
            now,
            free_nodes: total - used,
            total_nodes: total,
            running,
            queue,
            fairshare,
            order: QueueOrder::Fairshare,
            starvation: None,
            outages: &[],
            trace: None,
        }
    }

    fn fs() -> FairshareTracker {
        FairshareTracker::new(FairshareConfig::default())
    }

    fn ids(queue: &[QueuedJob], order: &[usize]) -> Vec<u32> {
        order.iter().map(|&i| queue[i].id.0).collect()
    }

    #[test]
    fn fsp_orders_by_virtual_size_initially() {
        let fs = fs();
        // Equal arrival spacing; virtual sizes 800, 200, 400 node-seconds.
        let queue = vec![
            queued(1, 1, 8, 100, 0),
            queued(2, 2, 2, 100, 1),
            queued(3, 3, 4, 100, 2),
        ];
        let mut fsp = VirtualFairOrder::fsp();
        let c = ctx(2, 10, &[], &queue, &fs);
        fsp.begin_pass(&c);
        assert_eq!(ids(&queue, &fsp.walk_order(&c)), vec![2, 3, 1]);
    }

    #[test]
    fn fsp_drains_virtual_sizes_between_passes() {
        let fs = fs();
        let queue = vec![queued(1, 1, 2, 100, 0), queued(2, 2, 2, 100, 0)];
        let mut fsp = VirtualFairOrder::fsp();
        let c0 = ctx(0, 10, &[], &queue, &fs);
        fsp.begin_pass(&c0);
        assert_eq!(fsp.virtual_remaining(JobId(1)), Some(200.0));
        // 10 virtual node-seconds/second split evenly: 50 each after 10 s.
        let c1 = ctx(10, 10, &[], &queue, &fs);
        fsp.begin_pass(&c1);
        assert_eq!(fsp.virtual_remaining(JobId(1)), Some(150.0));
        assert_eq!(fsp.virtual_remaining(JobId(2)), Some(150.0));
        // A repeated pass at the same instant is a no-op.
        fsp.begin_pass(&c1);
        assert_eq!(fsp.virtual_remaining(JobId(1)), Some(150.0));
    }

    #[test]
    fn fsp_drain_weights_favor_light_users() {
        let mut fs = fs();
        fs.charge(UserId(1), 1.0); // heavy: weight 1/2 vs user 2's 1
        let queue = vec![queued(1, 1, 2, 100, 0), queued(2, 2, 2, 100, 0)];
        let mut fsp = VirtualFairOrder::fsp();
        let c0 = ctx(0, 10, &[], &queue, &fs);
        fsp.begin_pass(&c0);
        let c1 = ctx(9, 10, &[], &queue, &fs);
        fsp.begin_pass(&c1);
        // total weight 1.5, machine 10: user1 drains 10/3, user2 20/3 per s.
        assert_eq!(fsp.virtual_remaining(JobId(1)), Some(200.0 - 30.0));
        assert_eq!(fsp.virtual_remaining(JobId(2)), Some(200.0 - 60.0));
        // And the heavy user's job sorts later even at equal remaining,
        // because the key divides by the weight.
        assert_eq!(ids(&queue, &fsp.walk_order(&c1)), vec![2, 1]);
    }

    #[test]
    fn fsp_virtual_size_never_goes_negative() {
        let fs = fs();
        let queue = vec![queued(1, 1, 1, 10, 0)];
        let mut fsp = VirtualFairOrder::fsp();
        let c0 = ctx(0, 10, &[], &queue, &fs);
        fsp.begin_pass(&c0);
        let c1 = ctx(1_000_000, 10, &[], &queue, &fs);
        fsp.begin_pass(&c1);
        assert_eq!(fsp.virtual_remaining(JobId(1)), Some(0.0));
    }

    #[test]
    fn started_jobs_leave_the_virtual_schedule() {
        let fs = fs();
        let queue = vec![queued(1, 1, 2, 100, 0)];
        let mut fsp = VirtualFairOrder::fsp();
        let c = ctx(0, 10, &[], &queue, &fs);
        fsp.begin_pass(&c);
        assert!(fsp.virtual_remaining(JobId(1)).is_some());
        fsp.on_start(JobId(1));
        assert!(fsp.virtual_remaining(JobId(1)).is_none());
    }

    #[test]
    fn hfsp_aging_overtakes_inflated_sizes() {
        let fs = fs();
        // Job 1: huge over-estimated size, ancient. Job 2: small, fresh.
        // Pure FSP keeps job 1 behind forever; HFSP's aging credit flips it.
        let now = 200_000;
        let queue = vec![queued(1, 1, 8, 1_000_000, 0), queued(2, 2, 1, 10, now)];
        let mut fsp = VirtualFairOrder::fsp();
        let c = ctx(now, 10, &[], &queue, &fs);
        fsp.begin_pass(&c);
        // FSP drains job 1 (alone in the queue for [0, now]) by at most
        // total_nodes × now = 2e6 < 8e6: still enormous, so job 2 leads.
        assert_eq!(ids(&queue, &fsp.walk_order(&c)), vec![2, 1]);
        let mut hfsp = VirtualFairOrder::hfsp();
        hfsp.begin_pass(&c);
        // Aging credit 0.25 × 10 × 200000 = 5e5 … not enough alone, but the
        // drain (2e6) plus credit (5e5) … job1 key = (8e6-2e6) - 5e5 > 0.
        // Give it more age to make the flip unambiguous.
        let later = 3_000_000;
        let queue2 = vec![queued(1, 1, 8, 1_000_000, 0), queued(2, 2, 1, 10, later)];
        let c2 = ctx(later, 10, &[], &queue2, &fs);
        let mut hfsp2 = VirtualFairOrder::hfsp();
        hfsp2.begin_pass(&c2);
        assert_eq!(ids(&queue2, &hfsp2.walk_order(&c2)), vec![1, 2]);
        // Pure FSP still keeps the inflated job behind the fresh one at the
        // same instant (drain is capped by its 0 floor … actually the drain
        // zeroed it here; use the aging-free key directly to check intent).
        assert!(hfsp2.key(&queue2[0], &c2) < hfsp2.key(&queue2[1], &c2));
    }

    #[test]
    fn las_prefers_users_with_least_attained_service() {
        let fs = fs();
        let mut las = LeastAttainedOrder::default();
        // User 1 ran 4 nodes for 100 s; user 2 never ran.
        let runners = vec![RunningJob {
            id: JobId(90),
            user: UserId(1),
            nodes: 4,
            start: 0,
            estimate: 1000,
            scheduled_end: 1000,
        }];
        let queue = vec![queued(1, 1, 2, 50, 0), queued(2, 2, 2, 50, 10)];
        let c0 = ctx(0, 10, &runners, &queue, &fs);
        las.begin_pass(&c0);
        let c1 = ctx(100, 10, &runners, &queue, &fs);
        las.begin_pass(&c1);
        assert_eq!(las.attained(UserId(1)), 400.0);
        assert_eq!(las.attained(UserId(2)), 0.0);
        assert_eq!(ids(&queue, &las.walk_order(&c1)), vec![2, 1]);
    }

    #[test]
    fn las_accrues_completion_tails_exactly() {
        let fs = fs();
        let mut las = LeastAttainedOrder::default();
        let job = queued(1, 7, 4, 100, 0);
        let q0 = [job];
        let c0 = ctx(0, 10, &[], &q0, &fs);
        las.on_arrival(&job, &c0);
        las.begin_pass(&c0);
        las.on_start(JobId(1));
        // Runs [0, 30]; a pass at 10 accrues the first stretch …
        let runners = vec![RunningJob {
            id: JobId(1),
            user: UserId(7),
            nodes: 4,
            start: 0,
            estimate: 100,
            scheduled_end: 30,
        }];
        let c1 = ctx(10, 10, &runners, &[], &fs);
        las.begin_pass(&c1);
        assert_eq!(las.attained(UserId(7)), 40.0);
        // … completion at 30 spills the tail into the completion pass.
        las.on_complete(JobId(1));
        let c2 = ctx(30, 10, &[], &[], &fs);
        las.begin_pass(&c2);
        assert_eq!(las.attained(UserId(7)), 120.0);
    }

    #[test]
    fn las_ties_fall_back_to_arrival_order() {
        let fs = fs();
        let las = LeastAttainedOrder::default();
        let queue = vec![queued(2, 1, 1, 10, 5), queued(1, 2, 1, 10, 3)];
        let c = ctx(10, 10, &[], &queue, &fs);
        assert_eq!(ids(&queue, &las.walk_order(&c)), vec![1, 2]);
    }

    #[test]
    fn size_based_strategies_promote_their_head() {
        let fs = fs();
        let queue = vec![queued(1, 1, 8, 100, 0), queued(2, 2, 2, 100, 1)];
        let c = ctx(1, 10, &[], &queue, &fs);
        let mut fsp = VirtualFairOrder::fsp();
        fsp.begin_pass(&c);
        let order = fsp.walk_order(&c);
        // Job 2 (virtual size 200 < 800) heads the walk and is promoted.
        assert_eq!(ids(&queue, &order)[0], 2);
        let (i, cause) = fsp.promoted(&c, &order).unwrap();
        assert_eq!(queue[i].id, JobId(2));
        assert_eq!(cause, StartCause::Fcfs);
    }

    #[test]
    fn clone_box_carries_virtual_state() {
        let fs = fs();
        let queue = vec![queued(1, 1, 2, 100, 0)];
        let mut fsp = VirtualFairOrder::fsp();
        let c0 = ctx(0, 10, &[], &queue, &fs);
        fsp.begin_pass(&c0);
        let c1 = ctx(10, 10, &[], &queue, &fs);
        fsp.begin_pass(&c1);
        let forked = fsp.clone_box();
        // Mutating the original leaves the fork untouched.
        fsp.on_start(JobId(1));
        let order = forked.walk_order(&c1);
        assert_eq!(ids(&queue, &order), vec![1]);
    }

    #[test]
    fn inversions_are_traced_once_per_pair() {
        let fs = fs();
        let mut sink: Vec<TraceRecord> = Vec::new();
        let shared = fairsched_obs::SharedSink::new(&mut sink);
        let queue = vec![
            queued(1, 1, 8, 1000, 0), // arrival head, big virtual size
            queued(2, 2, 1, 10, 5),   // virtual head
        ];
        let mut fsp = VirtualFairOrder::fsp();
        let mut c = ctx(5, 10, &[], &queue, &fs);
        c.trace = Some(&shared);
        fsp.begin_pass(&c);
        fsp.begin_pass(&c); // same pair: no duplicate record
        assert_eq!(sink.len(), 1);
        match &sink[0] {
            TraceRecord::VirtualInversion { job, displaced, .. } => {
                assert_eq!(*job, JobId(2));
                assert_eq!(*displaced, JobId(1));
            }
            other => panic!("unexpected record {other:?}"),
        }
    }
}
