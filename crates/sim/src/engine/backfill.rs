//! Backfill rules: how a pass's walk turns ledger admissions into starts.
//!
//! A rule owns the scheduling pass: it asks the
//! [`QueueOrderStrategy`](super::QueueOrderStrategy) for the walk order and
//! any promoted guard, opens the pass on the
//! [`ReservationLedger`](super::ReservationLedger), walks the queue querying
//! admissions, and emits the decision trace (start causes, bypass lists)
//! and backfill counters. Rules carry no state of their own.

use super::{Admission, EngineCtx, QueueOrderStrategy, ReservationLedger};
use fairsched_obs::{counters, StartCause, TraceHandle, TraceRecord};
use fairsched_workload::job::JobId;

fn emit_start(trace: Option<&dyn TraceHandle>, ctx: &EngineCtx<'_>, i: usize, cause: StartCause) {
    if let Some(t) = trace {
        let job = &ctx.queue[i];
        t.emit(TraceRecord::JobStarted {
            at: ctx.now,
            job: job.id,
            nodes: job.nodes,
            cause,
        });
    }
}

/// One scheduling pass: which queued jobs start right now.
pub trait BackfillRule: Send {
    /// Walks the queue and returns the ids to start, in start order.
    fn select(
        &self,
        ctx: &EngineCtx<'_>,
        order: &dyn QueueOrderStrategy,
        ledger: &mut dyn ReservationLedger,
    ) -> Vec<JobId>;

    /// A boxed replica (rules are stateless; this is plain cloning).
    fn clone_box(&self) -> Box<dyn BackfillRule>;
}

/// Strict no-backfill scheduling (the paper's Figure 1): jobs start only
/// from the head of the walk. A job that is not at the head waits even if
/// the machine could run it right now.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoBackfillRule;

impl BackfillRule for NoBackfillRule {
    fn select(
        &self,
        ctx: &EngineCtx<'_>,
        order: &dyn QueueOrderStrategy,
        ledger: &mut dyn ReservationLedger,
    ) -> Vec<JobId> {
        let order = order.walk_order(ctx);
        ledger.begin_pass(ctx, None);
        let mut free = ctx.free_nodes;
        let mut starts = Vec::new();
        // Start strictly from the head: stop at the first job that does not
        // fit (everything behind it must wait regardless of fit).
        for (rank, &i) in order.iter().enumerate() {
            match ledger.admit(ctx, rank, i, free) {
                Admission::Start => {
                    let job = &ctx.queue[i];
                    starts.push(job.id);
                    free -= job.nodes;
                    ledger.note_start(ctx, i);
                    emit_start(ctx.trace, ctx, i, StartCause::Fcfs);
                }
                Admission::Wait | Admission::Infeasible => break,
            }
        }
        starts
    }

    fn clone_box(&self) -> Box<dyn BackfillRule> {
        Box::new(*self)
    }
}

/// Greedy backfilling walk shared by the no-guarantee and EASY policies:
/// start the promoted job unconditionally if it fits, otherwise hand it to
/// the ledger as the pass's aggressive guard; then walk the order, starting
/// everything the ledger admits.
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyRule;

impl BackfillRule for GreedyRule {
    fn select(
        &self,
        ctx: &EngineCtx<'_>,
        order: &dyn QueueOrderStrategy,
        ledger: &mut dyn ReservationLedger,
    ) -> Vec<JobId> {
        let walk = order.walk_order(ctx);
        let promoted = order.promoted(ctx, &walk);

        let mut free = ctx.free_nodes;
        let mut starts = Vec::new();
        let mut guard_started = None;
        let mut blocked = None;
        if let Some((g, cause)) = promoted {
            let head = &ctx.queue[g];
            if head.nodes <= free {
                // The promoted job fits: start it first, unconditionally.
                starts.push(head.id);
                free -= head.nodes;
                guard_started = Some(head.id);
                emit_start(ctx.trace, ctx, g, cause);
            } else {
                blocked = Some(g);
            }
        }
        ledger.begin_pass(ctx, blocked);

        // `waiting` (ids, trace-only) and `waiting_ahead` (count, always)
        // track the higher-priority jobs left behind so far: a start with
        // anything ahead of it is a backfill, and the trace names exactly
        // who it jumped.
        let mut waiting: Vec<JobId> = Vec::new();
        let mut waiting_ahead = 0u64;
        let mut examined = 0u64;
        let mut started = 0u64;
        for (rank, &i) in walk.iter().enumerate() {
            let job = &ctx.queue[i];
            if Some(job.id) == guard_started {
                continue;
            }
            if Some(i) == blocked {
                // The guard holds a reservation it could not cash yet:
                // anything that starts past this point in the order
                // bypasses it.
                if ctx.trace.is_some() {
                    waiting.push(job.id);
                }
                waiting_ahead += 1;
                continue;
            }
            examined += 1;
            match ledger.admit(ctx, rank, i, free) {
                Admission::Start => {
                    starts.push(job.id);
                    free -= job.nodes;
                    started += 1;
                    ledger.note_start(ctx, i);
                    if ctx.trace.is_some() {
                        let cause = if waiting_ahead == 0 {
                            StartCause::Fcfs
                        } else {
                            StartCause::Backfilled {
                                bypassed: waiting.clone(),
                            }
                        };
                        emit_start(ctx.trace, ctx, i, cause);
                    }
                }
                Admission::Wait => {
                    if ctx.trace.is_some() {
                        waiting.push(job.id);
                    }
                    waiting_ahead += 1;
                }
                Admission::Infeasible => {}
            }
        }
        counters::record_backfill(examined, started);
        starts
    }

    fn clone_box(&self) -> Box<dyn BackfillRule> {
        Box::new(*self)
    }
}

/// Conservative dispatch: start every job whose reservation has come due
/// (and fits the actual free nodes), in walk order.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReservationDueRule;

impl BackfillRule for ReservationDueRule {
    fn select(
        &self,
        ctx: &EngineCtx<'_>,
        order: &dyn QueueOrderStrategy,
        ledger: &mut dyn ReservationLedger,
    ) -> Vec<JobId> {
        let walk = order.walk_order(ctx);
        ledger.begin_pass(ctx, None);
        if ctx.queue.is_empty() {
            return Vec::new();
        }
        let mut free = ctx.free_nodes;
        let mut starts = Vec::new();
        let mut waiting: Vec<JobId> = Vec::new();
        let mut waiting_ahead = 0u64;
        for (rank, &i) in walk.iter().enumerate() {
            let job = &ctx.queue[i];
            match ledger.admit(ctx, rank, i, free) {
                Admission::Start => {
                    starts.push(job.id);
                    free -= job.nodes;
                    ledger.note_start(ctx, i);
                    if ctx.trace.is_some() {
                        // A conservative start is its reservation coming
                        // due; with higher-priority work still waiting it
                        // is also the backfill the paper blames for
                        // unfairness.
                        let cause = if waiting_ahead == 0 {
                            StartCause::Reservation
                        } else {
                            StartCause::Backfilled {
                                bypassed: waiting.clone(),
                            }
                        };
                        emit_start(ctx.trace, ctx, i, cause);
                    }
                }
                Admission::Wait | Admission::Infeasible => {
                    if ctx.trace.is_some() {
                        waiting.push(job.id);
                    }
                    waiting_ahead += 1;
                }
            }
        }
        starts
    }

    fn clone_box(&self) -> Box<dyn BackfillRule> {
        Box::new(*self)
    }
}

/// Profile-greedy walk of the reservation-depth policies: every job is
/// examined; one that fits the profile *right now* starts, one that can
/// never fit (wider than the machine) is skipped entirely, and the rest
/// wait (holding profile slots only if the ledger reserves their rank).
#[derive(Debug, Clone, Copy, Default)]
pub struct ProfileGreedyRule;

impl BackfillRule for ProfileGreedyRule {
    fn select(
        &self,
        ctx: &EngineCtx<'_>,
        order: &dyn QueueOrderStrategy,
        ledger: &mut dyn ReservationLedger,
    ) -> Vec<JobId> {
        let walk = order.walk_order(ctx);
        ledger.begin_pass(ctx, None);
        let mut free = ctx.free_nodes;
        let mut starts = Vec::new();
        let mut waiting: Vec<JobId> = Vec::new();
        let mut waiting_ahead = 0u64;
        let mut examined = 0u64;
        let mut started = 0u64;
        for (rank, &i) in walk.iter().enumerate() {
            let job = &ctx.queue[i];
            examined += 1;
            match ledger.admit(ctx, rank, i, free) {
                Admission::Start => {
                    starts.push(job.id);
                    free -= job.nodes;
                    started += 1;
                    ledger.note_start(ctx, i);
                    if ctx.trace.is_some() {
                        let cause = if waiting_ahead == 0 {
                            StartCause::Fcfs
                        } else {
                            StartCause::Backfilled {
                                bypassed: waiting.clone(),
                            }
                        };
                        emit_start(ctx.trace, ctx, i, cause);
                    }
                }
                Admission::Wait => {
                    if ctx.trace.is_some() {
                        waiting.push(job.id);
                    }
                    waiting_ahead += 1;
                }
                Admission::Infeasible => {}
            }
        }
        counters::record_backfill(examined, started);
        starts
    }

    fn clone_box(&self) -> Box<dyn BackfillRule> {
        Box::new(*self)
    }
}
