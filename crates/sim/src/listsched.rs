//! The list scheduler used by the hybrid fairness metric (§4.1).
//!
//! "A list scheduler keeps track of a completion time for each node. When
//! scheduling a job, the earliest time that N nodes can be found is located
//! … The completion time of each of the nodes is then updated to be the
//! earliest start time plus the runtime of the job."
//!
//! Per-node times are kept as a *multiset of free-times* compressed into
//! `(time, node-count)` entries — placing a job pops entries from the front
//! and pushes one, so scheduling `Q` jobs over `R` initial entries costs
//! O((R + Q) log(R + Q)) amortized, which is what makes computing a fair
//! start time at every one of ~13 000 arrivals affordable.
//!
//! Holes are *not* usable (this is what makes it stricter than conservative
//! backfilling): a job always claims the `N` earliest-freed nodes, even if a
//! gap existed earlier on other nodes.

use fairsched_workload::time::Time;
use std::collections::BTreeMap;

/// A multiset of per-node free times for a fixed machine.
///
/// ```
/// use fairsched_sim::NodeTimeline;
///
/// let mut tl = NodeTimeline::all_free(10, 0);
/// assert_eq!(tl.place(0, 6, 100), 0);   // 6 nodes busy until 100
/// assert_eq!(tl.place(0, 4, 50), 0);    // the other 4 until 50
/// // An 8-node job needs nodes freed at 50 AND 100 → starts at 100.
/// assert_eq!(tl.place(0, 8, 10), 100);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeTimeline {
    free_at: BTreeMap<Time, u32>,
    total: u32,
}

impl NodeTimeline {
    /// A machine of `total` nodes, all free at time `at`.
    pub fn all_free(total: u32, at: Time) -> Self {
        let mut free_at = BTreeMap::new();
        if total > 0 {
            free_at.insert(at, total);
        }
        let tl = NodeTimeline { free_at, total };
        tl.debug_check();
        tl
    }

    /// A machine where `running` jobs (as `(end_time, nodes)`) occupy nodes
    /// until their ends and everything else is free at `now`. Ends earlier
    /// than `now` are clamped to `now`.
    pub fn with_running(total: u32, now: Time, running: &[(Time, u32)]) -> Self {
        let occupied: u32 = running.iter().map(|&(_, n)| n).sum();
        assert!(occupied <= total, "running jobs exceed machine size");
        let mut free_at = BTreeMap::new();
        let idle = total - occupied;
        if idle > 0 {
            free_at.insert(now, idle);
        }
        for &(end, nodes) in running {
            if nodes > 0 {
                *free_at.entry(end.max(now)).or_insert(0) += nodes;
            }
        }
        let tl = NodeTimeline { free_at, total };
        tl.debug_check();
        tl
    }

    /// Machine size.
    pub fn total(&self) -> u32 {
        self.total
    }

    /// Places a `nodes`-wide, `runtime`-long job on the `nodes` earliest-free
    /// nodes, no earlier than `floor`. Returns the job's start time and
    /// updates the claimed nodes' free times to `start + runtime`.
    pub fn place(&mut self, floor: Time, nodes: u32, runtime: Time) -> Time {
        assert!(
            nodes >= 1 && nodes <= self.total,
            "width {nodes} invalid for machine {}",
            self.total
        );
        let mut remaining = nodes;
        let mut start = floor;
        while remaining > 0 {
            let (&t, &count) = self
                .free_at
                .iter()
                .next()
                .expect("multiset always holds `total` nodes");
            if count <= remaining {
                self.free_at.remove(&t);
                remaining -= count;
            } else {
                *self.free_at.get_mut(&t).expect("entry exists") = count - remaining;
                remaining = 0;
            }
            start = start.max(t);
        }
        *self.free_at.entry(start + runtime).or_insert(0) += nodes;
        self.debug_check();
        start
    }

    /// The earliest time `nodes` nodes are simultaneously free (≥ `floor`),
    /// without claiming them.
    pub fn earliest(&self, floor: Time, nodes: u32) -> Time {
        assert!(nodes >= 1 && nodes <= self.total);
        let mut remaining = nodes;
        let mut start = floor;
        for (&t, &count) in &self.free_at {
            start = start.max(t);
            if count >= remaining {
                return start;
            }
            remaining -= count;
        }
        unreachable!("multiset always holds `total` nodes");
    }

    /// Number of distinct free-time entries (testing/inspection).
    pub fn entry_count(&self) -> usize {
        self.free_at.len()
    }

    /// The compression invariant: entries at equal free times are merged
    /// (the multiset never holds two entries for one time), every entry
    /// holds at least one node, and the entries partition the machine.
    /// Together these bound `entry_count` by `total` no matter how long the
    /// placement sequence runs. Debug builds check after every mutation;
    /// release builds skip the O(entries) scan.
    fn debug_check(&self) {
        if cfg!(debug_assertions) {
            self.check_invariants();
        }
    }

    /// Asserts the compression invariant unconditionally (see
    /// [`NodeTimeline::debug_check`]). Exposed for tests.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        assert!(
            self.free_at.values().all(|&c| c >= 1),
            "a claimed-out entry must be removed, not left at zero"
        );
        assert_eq!(
            self.free_at.values().sum::<u32>(),
            self.total,
            "free-time entries must partition the machine"
        );
        assert!(
            self.free_at.len() <= self.total.max(1) as usize,
            "equal free times must coalesce: {} entries on {} nodes",
            self.free_at.len(),
            self.total
        );
    }

    #[cfg(test)]
    fn node_count(&self) -> u32 {
        self.free_at.values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_machine_runs_jobs_immediately_in_order() {
        let mut tl = NodeTimeline::all_free(10, 0);
        assert_eq!(tl.place(0, 4, 100), 0);
        assert_eq!(tl.place(0, 6, 50), 0);
        // Machine full: next job starts when enough nodes free.
        // 6 nodes free at 50, so a 5-node job starts at 50.
        assert_eq!(tl.place(0, 5, 10), 50);
        assert_eq!(tl.node_count(), 10);
        tl.check_invariants();
    }

    #[test]
    fn wide_job_waits_for_the_latest_of_its_claimed_nodes() {
        let mut tl = NodeTimeline::all_free(10, 0);
        tl.place(0, 4, 100); // 4 nodes busy till 100
        tl.place(0, 6, 30); // 6 nodes busy till 30
                            // 8-node job needs nodes freed at 30 (6 of them) and at 100 (2):
                            // starts at 100.
        assert_eq!(tl.place(0, 8, 10), 100);
        tl.check_invariants();
    }

    #[test]
    fn narrow_later_job_can_start_before_wide_earlier_jobs_complete() {
        let mut tl = NodeTimeline::all_free(10, 0);
        let wide = tl.place(0, 9, 1000);
        assert_eq!(wide, 0);
        // 1 node still free at 0: the narrow job starts immediately, even
        // though the wide job runs until 1000.
        assert_eq!(tl.place(0, 1, 5), 0);
    }

    #[test]
    fn no_hole_usage_the_list_scheduler_restriction() {
        // Conservative backfilling would exploit the hole; the list
        // scheduler must not.
        let mut tl = NodeTimeline::all_free(10, 0);
        tl.place(0, 10, 100); // machine busy till 100
        let big = tl.place(0, 10, 100); // busy 100..200
        assert_eq!(big, 100);
        // A 1-node 10-second job: a backfiller could find no hole here
        // anyway, but crucially the list scheduler schedules it at 200 —
        // after BOTH previous jobs — because all node free-times are 200.
        assert_eq!(tl.place(0, 1, 10), 200);
        tl.check_invariants();
    }

    #[test]
    fn floor_defers_starts() {
        let mut tl = NodeTimeline::all_free(4, 0);
        assert_eq!(tl.place(50, 2, 10), 50);
        // Claimed nodes free at 60, remaining two at 0 → a 4-node job at
        // floor 0 starts at 60.
        assert_eq!(tl.place(0, 4, 5), 60);
    }

    #[test]
    fn with_running_respects_current_occupancy() {
        // 10-node machine, 7 busy (ends 100 and 40), 3 idle.
        let tl = NodeTimeline::with_running(10, 20, &[(100, 4), (40, 3)]);
        let mut t2 = tl.clone();
        // 3-node job: idle nodes, starts now (20).
        assert_eq!(t2.place(20, 3, 10), 20);
        // 6-node job next: 3 idle freed at 30 (claimed above) + 3 at 40.
        assert_eq!(t2.place(20, 6, 10), 40);

        let mut t3 = tl.clone();
        // 10-node job: needs everything; last free time is 100.
        assert_eq!(t3.place(20, 10, 10), 100);
        t3.check_invariants();
    }

    #[test]
    fn with_running_clamps_stale_ends_to_now() {
        // A job past its estimated end (still running) must not offer nodes
        // in the past.
        let tl = NodeTimeline::with_running(4, 50, &[(10, 2)]);
        let mut t = tl;
        assert_eq!(t.place(50, 4, 5), 50);
    }

    #[test]
    fn earliest_matches_place_without_mutating() {
        let mut tl = NodeTimeline::all_free(8, 0);
        tl.place(0, 8, 100);
        let snapshot = tl.clone();
        assert_eq!(tl.earliest(0, 3), 100);
        assert_eq!(tl, snapshot);
        assert_eq!(tl.place(0, 3, 10), 100);
    }

    #[test]
    fn entries_stay_compressed() {
        let mut tl = NodeTimeline::all_free(100, 0);
        // 50 equal jobs all end at the same time: one entry, not fifty.
        for _ in 0..50 {
            tl.place(0, 2, 100);
        }
        assert_eq!(tl.entry_count(), 1); // all 100 nodes free at 100
        assert_eq!(tl.node_count(), 100);
        tl.check_invariants();
    }

    #[test]
    fn entry_count_stays_bounded_on_long_varied_traces() {
        // The historical failure mode this pins down: free-time entries
        // accumulating one per placement instead of merging equal
        // neighbors, so a long trace grows the timeline without bound.
        // With merging, each entry holds ≥ 1 node and the entries
        // partition the machine, so entry_count ≤ total forever.
        let total = 64;
        let mut tl = NodeTimeline::all_free(total, 0);
        let mut floor = 0;
        for i in 0u64..10_000 {
            // Varied widths and runtimes, deliberately colliding end
            // times now and then; a slowly advancing floor mimics the
            // hybrid metric re-placing the queue as time moves on.
            let nodes = (i % u64::from(total)) as u32 + 1;
            let runtime = 1 + (i * 37) % 401;
            tl.place(floor, nodes, runtime);
            if i % 7 == 0 {
                floor += 11;
            }
            assert!(
                tl.entry_count() <= total as usize,
                "timeline grew past the node count after {} placements: {}",
                i + 1,
                tl.entry_count()
            );
        }
        tl.check_invariants();
        assert_eq!(tl.node_count(), total);
    }

    #[test]
    fn equal_free_times_merge_into_one_entry() {
        // Two placements engineered to end at the same instant must land
        // in one merged entry, not two adjacent entries of equal time.
        let mut tl = NodeTimeline::all_free(8, 0);
        tl.place(0, 3, 100); // 3 nodes free at 100
        tl.place(0, 2, 100); // 2 more free at 100 — merges with the above
        assert_eq!(tl.entry_count(), 2); // {0: 3 idle, 100: 5}
        tl.place(40, 3, 60); // remaining idle nodes also end at 100
        assert_eq!(tl.entry_count(), 1);
        assert_eq!(tl.node_count(), 8);
        tl.check_invariants();
    }

    #[test]
    #[should_panic(expected = "running jobs exceed machine size")]
    fn with_running_rejects_oversubscription() {
        NodeTimeline::with_running(4, 0, &[(10, 3), (20, 3)]);
    }
}
