//! The discrete-event core: events and a deterministic priority queue.
//!
//! Ties are broken by a fixed kind order and then by job id, so a simulation
//! is a pure function of (trace, config) — the property-test suite and the
//! figure regeneration both depend on that.

use fairsched_workload::job::JobId;
use fairsched_workload::time::Time;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What happens at an event.
///
/// The discriminant order is the processing order at equal times:
/// completions free capacity before kills are considered, kills before
/// fault events touch the machine, and arrivals see the final state last.
/// The fault kinds sort *between* the pre-existing kinds and `Arrival`, so
/// a run with fault injection disabled pops the exact same sequence as one
/// built before the fault kinds existed — the zero-diff guarantee that
/// `FaultConfig::default()` tests rely on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A running job's (possibly revised) completion instant.
    Completion,
    /// A running job reaches its wall-clock limit.
    WclExpiry,
    /// A failed node comes back from repair. The event's `job` field holds
    /// the outage sequence number, not a job id.
    NodeUp,
    /// A node fails. The event's `job` field holds the outage sequence
    /// number, not a job id; the victim node is chosen when the event is
    /// processed. Repairs sort before failures so a repair and a failure at
    /// the same instant cannot transiently exceed machine capacity.
    NodeDown,
    /// A running job crashes mid-run (software fault, not a node loss).
    JobCrash,
    /// A job enters the queue.
    Arrival,
}

impl EventKind {
    fn rank(self) -> u8 {
        match self {
            EventKind::Completion => 0,
            EventKind::WclExpiry => 1,
            EventKind::NodeUp => 2,
            EventKind::NodeDown => 3,
            EventKind::JobCrash => 4,
            EventKind::Arrival => 5,
        }
    }
}

/// A scheduled event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// When it fires.
    pub time: Time,
    /// What fires.
    pub kind: EventKind,
    /// The job it concerns.
    pub job: JobId,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.time, self.kind.rank(), self.job.0).cmp(&(other.time, other.kind.rank(), other.job.0))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A min-heap of events with deterministic tie-breaking.
///
/// Completion and WCL events are *lazily invalidated*: the simulator checks
/// on pop whether the event still matches the job's current state (a job
/// killed at its WCL leaves a stale completion event behind). The queue
/// itself only orders.
#[derive(Debug, Default, Clone)]
pub struct EventQueue {
    heap: BinaryHeap<std::cmp::Reverse<Event>>,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
        }
    }

    /// Schedules an event.
    pub fn push(&mut self, time: Time, kind: EventKind, job: JobId) {
        self.heap.push(std::cmp::Reverse(Event { time, kind, job }));
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop().map(|r| r.0)
    }

    /// The earliest event without removing it.
    pub fn peek(&self) -> Option<&Event> {
        self.heap.peek().map(|r| &r.0)
    }

    /// Number of pending events (including stale ones).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time: Time, kind: EventKind, job: u32) -> Event {
        Event {
            time,
            kind,
            job: JobId(job),
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, EventKind::Arrival, JobId(1));
        q.push(10, EventKind::Arrival, JobId(2));
        q.push(20, EventKind::Arrival, JobId(3));
        let order: Vec<Time> = std::iter::from_fn(|| q.pop()).map(|e| e.time).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn completions_precede_arrivals_at_equal_times() {
        let mut q = EventQueue::new();
        q.push(10, EventKind::Arrival, JobId(1));
        q.push(10, EventKind::Completion, JobId(2));
        q.push(10, EventKind::WclExpiry, JobId(3));
        assert_eq!(q.pop(), Some(ev(10, EventKind::Completion, 2)));
        assert_eq!(q.pop(), Some(ev(10, EventKind::WclExpiry, 3)));
        assert_eq!(q.pop(), Some(ev(10, EventKind::Arrival, 1)));
    }

    #[test]
    fn fault_kinds_sort_between_kills_and_arrivals() {
        let mut q = EventQueue::new();
        q.push(10, EventKind::Arrival, JobId(1));
        q.push(10, EventKind::JobCrash, JobId(2));
        q.push(10, EventKind::NodeDown, JobId(3));
        q.push(10, EventKind::NodeUp, JobId(4));
        q.push(10, EventKind::WclExpiry, JobId(5));
        q.push(10, EventKind::Completion, JobId(6));
        let kinds: Vec<EventKind> = std::iter::from_fn(|| q.pop()).map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                EventKind::Completion,
                EventKind::WclExpiry,
                EventKind::NodeUp,
                EventKind::NodeDown,
                EventKind::JobCrash,
                EventKind::Arrival,
            ]
        );
    }

    #[test]
    fn equal_time_and_kind_break_ties_by_job_id() {
        let mut q = EventQueue::new();
        q.push(5, EventKind::Arrival, JobId(9));
        q.push(5, EventKind::Arrival, JobId(3));
        assert_eq!(q.pop().unwrap().job, JobId(3));
        assert_eq!(q.pop().unwrap().job, JobId(9));
    }

    #[test]
    fn len_and_peek_agree_with_contents() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(1, EventKind::Arrival, JobId(1));
        q.push(2, EventKind::Arrival, JobId(2));
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek().unwrap().time, 1);
        q.pop();
        assert_eq!(q.len(), 1);
    }
}
