//! The pure stepped core: `step(event) -> effects`.
//!
//! [`SteppedSim`] is the clock-decoupled heart of the simulator. It never
//! owns time: a driver feeds it typed [`SimEvent`]s — submissions and
//! explicit grants of simulated time — and receives typed [`Effect`]s back
//! (admissions, starts, completions, and, when trace effects are enabled,
//! every [`TraceRecord`] the run would have streamed, which is where
//! reservation makes/shifts surface). Determinism is unchanged: equal
//! event sequences produce equal effect sequences, and the batch
//! [`simulate`](crate::simulator::simulate) driver — submit everything,
//! then grant time one event batch at a time — is byte-identical to the
//! historical monolithic loop (pinned by the FNV goldens in
//! `tests/engine_equivalence.rs`).
//!
//! Because the event queue orders events by `(time, kind, job id)`
//! regardless of insertion order, a *late* submission — one fed in after
//! earlier grants, as an online service does — yields the same schedule as
//! a batch run, provided its timestamp has not already been passed. The
//! core enforces that boundary: a submission dated before the current
//! frontier is rejected with [`SimError::SubmittedInPast`] instead of
//! silently reordering history.

use crate::config::SimConfig;
use crate::engine::Engine;
use crate::simulator::{make_engine_for, CancelToken, JobRecord, Schedule, Sim, SimError};
use crate::state::Observer;
use fairsched_obs::{TraceHandle, TraceRecord};
use fairsched_workload::job::{Job, JobId};
use fairsched_workload::time::Time;
use std::sync::{Arc, Mutex};

/// An owned, cheaply clonable trace buffer the simulator emits
/// [`TraceRecord`]s into. Unlike the borrowed [`TraceHandle`] wiring the
/// batch API historically used, this owns its storage, so a [`SteppedSim`]
/// is `'static` and can live inside a long-running service. The driver
/// drains it after every granted step and surfaces the records as
/// [`Effect::Trace`] values, preserving emission order.
#[derive(Clone, Default)]
pub(crate) struct TraceBuf(Arc<Mutex<Vec<TraceRecord>>>);

impl TraceBuf {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Takes every record emitted since the previous drain, in order.
    pub(crate) fn drain(&self) -> Vec<TraceRecord> {
        std::mem::take(&mut self.0.lock().expect("trace buffer poisoned"))
    }
}

impl TraceHandle for TraceBuf {
    fn emit(&self, rec: TraceRecord) {
        self.0.lock().expect("trace buffer poisoned").push(rec);
    }
}

/// One typed input to the stepped core.
#[derive(Debug, Clone)]
pub enum SimEvent {
    /// A job enters the system at its own `submit` timestamp. Valid any
    /// time the timestamp is at or after the simulated-time frontier —
    /// batch drivers submit everything up front, online drivers submit as
    /// requests arrive.
    Submit(Job),
    /// Grant simulated time: process every pending event with
    /// `time <= horizon`. The frontier (`now`) advances only to the last
    /// *processed* event, never idles forward to the horizon itself, so
    /// granting generous horizons cannot perturb accounting.
    AdvanceTo(Time),
}

/// One typed output of a step.
#[derive(Debug, Clone)]
pub enum Effect {
    /// A submission was accepted and its arrival scheduled.
    Admitted {
        /// The submission's id.
        job: JobId,
        /// When it will arrive (its submit timestamp).
        arrival: Time,
    },
    /// A submission began executing.
    Started {
        /// The submission's id.
        job: JobId,
        /// Simulated start time.
        at: Time,
    },
    /// A submission finished (completion, kill, or fault) and its record
    /// is final.
    Completed {
        /// The finished record, exactly as it will appear in the
        /// [`Schedule`].
        record: JobRecord,
    },
    /// A decision-trace record (starts with causes, reservation
    /// makes/shifts, starvation promotions, fault requeues, queue
    /// samples). Only emitted when the core was built with trace effects
    /// enabled.
    Trace {
        /// The record, in emission order.
        record: TraceRecord,
    },
}

/// A point-in-time view of the core, for live status queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepStatus {
    /// The simulated-time frontier (last processed event's time).
    pub now: Time,
    /// Jobs waiting in the queue.
    pub queued: usize,
    /// Jobs currently executing.
    pub running: usize,
    /// Free nodes.
    pub free: u32,
    /// Nodes down due to faults.
    pub down: u32,
    /// When the next pending event is due, if any.
    pub next_event: Option<Time>,
}

/// Collects start/completion effects from the simulator's own observer
/// hooks, so the core needs no new emission sites.
#[derive(Default)]
struct EffectObserver {
    effects: Vec<Effect>,
}

impl Observer for EffectObserver {
    fn on_start(&mut self, id: JobId, now: Time) {
        self.effects.push(Effect::Started { job: id, at: now });
    }

    fn on_record(&mut self, record: &JobRecord) {
        self.effects.push(Effect::Completed { record: *record });
    }
}

/// The clock-decoupled simulation core. See the module docs for the
/// contract; see [`simulate`](crate::simulator::simulate) for the batch
/// driver and `fairsched-served` for the online one.
pub struct SteppedSim {
    sim: Sim,
    engine: Box<dyn Engine>,
    trace: Option<TraceBuf>,
}

impl SteppedSim {
    /// A fresh core under `cfg`, without trace effects. Fails fast on a
    /// self-contradictory configuration.
    pub fn new(cfg: &SimConfig) -> Result<Self, SimError> {
        Self::with_trace_effects(cfg, false)
    }

    /// A fresh core under `cfg`; when `traced`, every [`TraceRecord`] the
    /// run emits is returned as an [`Effect::Trace`] from the step that
    /// produced it.
    pub fn with_trace_effects(cfg: &SimConfig, traced: bool) -> Result<Self, SimError> {
        if let Some(cap) = cfg.user_concurrency {
            if cap < 1 {
                return Err(SimError::InvalidConfig {
                    reason: "user_concurrency must be at least 1".into(),
                });
            }
        }
        cfg.faults
            .validate()
            .map_err(|reason| SimError::InvalidConfig { reason })?;
        let engine = make_engine_for(cfg);
        let mut sim = Sim::new(cfg, &[]);
        let trace = traced.then(TraceBuf::new);
        sim.set_trace(trace.clone());
        Ok(SteppedSim { sim, engine, trace })
    }

    /// Attaches a cooperative [`CancelToken`], checked once per granted
    /// event batch.
    pub fn set_cancel(&mut self, cancel: CancelToken) {
        self.sim.set_cancel(cancel);
    }

    /// Raises the id floor fresh chunk/resubmission ids are minted from.
    /// Online replays of a recorded trace use this to reproduce the batch
    /// path's id numbering (batch seeds the floor from the whole trace's
    /// maximum id before stepping).
    pub fn reserve_ids(&mut self, floor: u32) {
        self.sim.reserve_ids(floor);
    }

    /// The simulated-time frontier: the time of the last processed event.
    pub fn now(&self) -> Time {
        self.sim.now()
    }

    /// When the next pending event is due — the smallest horizon an
    /// [`SimEvent::AdvanceTo`] needs to make progress. `None` when the
    /// run is fully played out.
    pub fn next_wakeup(&self) -> Option<Time> {
        self.sim.next_event_time()
    }

    /// Live status: frontier, queue pressure, node availability.
    pub fn status(&self) -> StepStatus {
        let (queued, running, free, down) = self.sim.pressure();
        StepStatus {
            now: self.sim.now(),
            queued,
            running,
            free,
            down,
            next_event: self.sim.next_event_time(),
        }
    }

    /// The start time of a submission that has already started, if any.
    pub fn start_of(&self, id: JobId) -> Option<Time> {
        self.sim.start_time_of(id)
    }

    /// Whether every accepted submission has been played out.
    pub fn is_drained(&self) -> bool {
        self.sim.is_drained()
    }

    /// Feeds one event and returns the effects it caused, in order.
    /// `observer` sees exactly the hooks the batch API fires (arrivals
    /// with queue views, starts, completions, records).
    pub fn step(
        &mut self,
        event: SimEvent,
        observer: &mut dyn Observer,
    ) -> Result<Vec<Effect>, SimError> {
        match event {
            SimEvent::Submit(job) => self.submit(job),
            SimEvent::AdvanceTo(horizon) => self.advance(horizon, observer),
        }
    }

    fn submit(&mut self, job: Job) -> Result<Vec<Effect>, SimError> {
        if job.nodes > self.sim.cfg().nodes {
            return Err(SimError::TooWide {
                job: job.id,
                nodes: job.nodes,
                machine: self.sim.cfg().nodes,
            });
        }
        job.validate().map_err(|e| SimError::InvalidTrace {
            job: job.id,
            reason: e.to_string(),
        })?;
        if job.submit < self.sim.now() {
            return Err(SimError::SubmittedInPast {
                job: job.id,
                submit: job.submit,
                now: self.sim.now(),
            });
        }
        let (id, arrival) = (job.id, job.submit);
        self.sim.admit(&job);
        // Keep fresh-id minting (chunk chains, crash resubmissions) above
        // every accepted submission id, exactly as the batch path seeds it
        // from the whole trace before stepping.
        self.sim.reserve_ids(id.0.saturating_add(1));
        Ok(vec![Effect::Admitted { job: id, arrival }])
    }

    fn advance(
        &mut self,
        horizon: Time,
        observer: &mut dyn Observer,
    ) -> Result<Vec<Effect>, SimError> {
        let mut effects = Vec::new();
        loop {
            let mut fx = EffectObserver::default();
            let progressed = {
                let mut chained = (&mut fx, &mut *observer);
                self.sim
                    .step_bounded(Some(horizon), self.engine.as_mut(), &mut chained)?
            };
            effects.append(&mut fx.effects);
            if let Some(trace) = &self.trace {
                effects.extend(
                    trace
                        .drain()
                        .into_iter()
                        .map(|record| Effect::Trace { record }),
                );
            }
            if !progressed {
                break;
            }
        }
        Ok(effects)
    }

    /// Seals the run and returns the final [`Schedule`]. The caller is
    /// responsible for having granted enough time first (the batch driver
    /// loops on [`SteppedSim::next_wakeup`]); conservation is checked —
    /// a violation is a simulator bug surfaced as a typed error, not a
    /// corrupt schedule.
    pub fn finish(self) -> Result<Schedule, SimError> {
        debug_assert!(
            self.sim.is_drained(),
            "finish() before the run was fully played out"
        );
        self.sim.check_conservation_pub()?;
        Ok(self.sim.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::{simulate, SimOptions};
    use crate::state::NullObserver;

    fn cfg(nodes: u32) -> SimConfig {
        SimConfig {
            nodes,
            ..Default::default()
        }
    }

    fn job(id: u32, user: u32, submit: Time, nodes: u32, runtime: Time) -> Job {
        Job::new(id, user, 1, submit, nodes, runtime, runtime)
    }

    fn drive_to_schedule(mut core: SteppedSim) -> Schedule {
        while let Some(at) = core.next_wakeup() {
            core.step(SimEvent::AdvanceTo(at), &mut NullObserver)
                .unwrap();
        }
        core.finish().unwrap()
    }

    #[test]
    fn submit_then_advance_yields_typed_effects() {
        let cfg = cfg(10);
        let mut core = SteppedSim::new(&cfg).unwrap();
        let fx = core
            .step(SimEvent::Submit(job(1, 1, 0, 10, 100)), &mut NullObserver)
            .unwrap();
        assert!(matches!(
            fx.as_slice(),
            [Effect::Admitted {
                job: JobId(1),
                arrival: 0
            }]
        ));
        // t=0: arrival + start.
        let fx = core
            .step(SimEvent::AdvanceTo(0), &mut NullObserver)
            .unwrap();
        assert!(fx.iter().any(|e| matches!(
            e,
            Effect::Started {
                job: JobId(1),
                at: 0
            }
        )));
        // t=100: completion.
        assert_eq!(core.next_wakeup(), Some(100));
        let fx = core
            .step(SimEvent::AdvanceTo(100), &mut NullObserver)
            .unwrap();
        let Some(Effect::Completed { record }) =
            fx.iter().find(|e| matches!(e, Effect::Completed { .. }))
        else {
            panic!("no completion effect");
        };
        assert_eq!((record.id, record.start, record.end), (JobId(1), 0, 100));
        let schedule = core.finish().unwrap();
        assert_eq!(schedule.records.len(), 1);
    }

    #[test]
    fn advance_does_not_idle_past_the_last_event() {
        let cfg = cfg(4);
        let mut core = SteppedSim::new(&cfg).unwrap();
        core.step(SimEvent::Submit(job(1, 1, 5, 4, 10)), &mut NullObserver)
            .unwrap();
        // A generous horizon processes everything but leaves the frontier
        // at the last processed event, not the horizon.
        core.step(SimEvent::AdvanceTo(1_000_000), &mut NullObserver)
            .unwrap();
        assert_eq!(core.now(), 15);
        assert!(core.is_drained());
    }

    #[test]
    fn late_submission_matches_batch_when_timestamp_is_still_ahead() {
        let cfg = cfg(10);
        let trace = [job(1, 1, 0, 10, 100), job(2, 2, 50, 10, 30)];
        let batch = simulate(&trace, &cfg, &mut NullObserver, SimOptions::new()).unwrap();

        let mut core = SteppedSim::new(&cfg).unwrap();
        core.step(SimEvent::Submit(trace[0].clone()), &mut NullObserver)
            .unwrap();
        // Play out t=0, then submit job 2 online (frontier is 0 < 50).
        core.step(SimEvent::AdvanceTo(0), &mut NullObserver)
            .unwrap();
        core.step(SimEvent::Submit(trace[1].clone()), &mut NullObserver)
            .unwrap();
        let online = drive_to_schedule(core);
        assert_eq!(online, batch);
    }

    #[test]
    fn submissions_dated_before_the_frontier_are_rejected() {
        let cfg = cfg(10);
        let mut core = SteppedSim::new(&cfg).unwrap();
        core.step(SimEvent::Submit(job(1, 1, 0, 2, 100)), &mut NullObserver)
            .unwrap();
        core.step(SimEvent::AdvanceTo(100), &mut NullObserver)
            .unwrap();
        assert_eq!(core.now(), 100);
        let err = core
            .step(SimEvent::Submit(job(2, 2, 99, 2, 10)), &mut NullObserver)
            .unwrap_err();
        assert!(matches!(
            err,
            SimError::SubmittedInPast {
                job: JobId(2),
                submit: 99,
                now: 100
            }
        ));
        // A submission dated exactly at the frontier is still fine.
        core.step(SimEvent::Submit(job(3, 3, 100, 2, 10)), &mut NullObserver)
            .unwrap();
        assert!(drive_to_schedule(core).records.len() == 2);
    }

    #[test]
    fn trace_effects_surface_every_record_in_order() {
        let cfg = cfg(10);
        let trace = [job(1, 1, 0, 10, 100), job(2, 2, 5, 10, 50)];
        // Batch-traced run, for the expected record sequence.
        let mut tracer = fairsched_obs::DecisionTracer::unbounded();
        simulate(
            &trace,
            &cfg,
            &mut NullObserver,
            SimOptions::new().trace(&mut tracer),
        )
        .unwrap();
        let expected: Vec<String> = tracer.records().map(|r| r.to_jsonl()).collect();
        assert!(!expected.is_empty());

        let mut core = SteppedSim::with_trace_effects(&cfg, true).unwrap();
        for j in &trace {
            core.step(SimEvent::Submit(j.clone()), &mut NullObserver)
                .unwrap();
        }
        let mut streamed = Vec::new();
        while let Some(at) = core.next_wakeup() {
            for fx in core
                .step(SimEvent::AdvanceTo(at), &mut NullObserver)
                .unwrap()
            {
                if let Effect::Trace { record } = fx {
                    streamed.push(record.to_jsonl());
                }
            }
        }
        core.finish().unwrap();
        assert_eq!(streamed, expected);
    }

    #[test]
    fn invalid_submissions_are_rejected_with_typed_errors() {
        let cfg = cfg(4);
        let mut core = SteppedSim::new(&cfg).unwrap();
        assert!(matches!(
            core.step(SimEvent::Submit(job(1, 1, 0, 8, 10)), &mut NullObserver),
            Err(SimError::TooWide { .. })
        ));
        let bad = Job::new(2, 1, 1, 0, 0, 10, 10);
        assert!(matches!(
            core.step(SimEvent::Submit(bad), &mut NullObserver),
            Err(SimError::InvalidTrace { .. })
        ));
        // Rejections leave the core usable.
        core.step(SimEvent::Submit(job(3, 1, 0, 4, 10)), &mut NullObserver)
            .unwrap();
        assert_eq!(drive_to_schedule(core).records.len(), 1);
    }

    #[test]
    fn invalid_config_fails_construction() {
        let bad = SimConfig {
            user_concurrency: Some(0),
            ..cfg(4)
        };
        assert!(matches!(
            SteppedSim::new(&bad),
            Err(SimError::InvalidConfig { .. })
        ));
    }
}
