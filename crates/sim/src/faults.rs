//! Deterministic fault injection: node outages and mid-run job crashes.
//!
//! The paper's simulations assume a perfectly reliable machine. Real Cplant
//! installations were not: nodes failed, were repaired, and running jobs
//! died with them. This module adds a *seeded, reproducible* failure layer
//! so the fairness policies can be compared under degraded capacity — the
//! same (trace, config, fault seed) triple always produces the same
//! schedule, which keeps the determinism property tests meaningful.
//!
//! Design constraints:
//!
//! * **Zero-diff when disabled.** [`FaultConfig::default()`] injects
//!   nothing; the simulator pushes no fault events and every schedule is
//!   byte-identical to the pre-fault code path.
//! * **Schedule-independent failure times.** Node failures are drawn as a
//!   machine-wide Poisson process with constant rate `nodes / mtbf` from a
//!   dedicated RNG stream. The *times* therefore depend only on the seed,
//!   never on what the scheduler did; only the *victim* (drawn from a
//!   second stream when the failure fires) is state-dependent. This is an
//!   approximation — already-down nodes keep "generating" failure pressure
//!   — but it buys reproducibility across policies: every policy sees the
//!   same outage timeline.
//! * **Replayable crash decisions.** Whether a given submission crashes,
//!   and when, is a pure function of `(seed, origin job, chunk index)`, so
//!   a job requeued after a node loss re-rolls its crash fate exactly the
//!   same way on every run.

use fairsched_workload::job::JobId;
use fairsched_workload::time::{Time, HOUR};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// What happens to the work a crashed job had already done.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResiliencePolicy {
    /// The job re-enters the queue and starts over; executed node-seconds
    /// are lost (and the fairshare usage already charged stays charged —
    /// users pay for their bad luck, as Cplant's accounting did).
    RequeueFromScratch,
    /// The interrupted submission is treated as an implicit checkpoint:
    /// the remainder re-enters the queue as a continuation chunk via the
    /// same chain machinery that splits jobs at the 72 h runtime limit
    /// (§5.1), so pre-failure work is retained.
    ChunkResume,
}

/// Uniform repair-time window for a failed node, inclusive of both ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepairTime {
    /// Shortest repair, seconds.
    pub min: Time,
    /// Longest repair, seconds.
    pub max: Time,
}

impl Default for RepairTime {
    /// One to eight hours, loosely modelled on hands-on node swap times.
    fn default() -> Self {
        RepairTime {
            min: HOUR,
            max: 8 * HOUR,
        }
    }
}

/// Fault-injection parameters. The default injects nothing.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Per-node mean time between failures, seconds. `None` disables node
    /// outages entirely. The machine-wide failure rate is
    /// `nodes / node_mtbf`.
    pub node_mtbf: Option<Time>,
    /// Repair-time distribution for failed nodes.
    pub repair: RepairTime,
    /// Probability that any given submission crashes somewhere strictly
    /// inside its run, independent of node outages. `0.0` disables.
    pub job_crash_rate: f64,
    /// How crashed jobs are recovered.
    pub resilience: ResiliencePolicy,
    /// Seed for every fault RNG stream. Distinct from the trace seed so
    /// failure scenarios can be varied while holding the workload fixed.
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            node_mtbf: None,
            repair: RepairTime::default(),
            job_crash_rate: 0.0,
            resilience: ResiliencePolicy::RequeueFromScratch,
            seed: 0,
        }
    }
}

impl FaultConfig {
    /// Whether any fault source is active.
    pub fn enabled(&self) -> bool {
        self.node_mtbf.is_some() || self.job_crash_rate > 0.0
    }

    /// Rejects self-contradictory parameters: zero MTBF, an inverted repair
    /// window, or a crash rate outside `[0, 1)` — a rate of exactly 1 would
    /// crash every resubmission forever and the simulation could not
    /// terminate.
    pub fn validate(&self) -> Result<(), String> {
        if self.node_mtbf == Some(0) {
            return Err("node_mtbf must be positive".into());
        }
        if self.repair.min == 0 || self.repair.min > self.repair.max {
            return Err(format!(
                "repair window [{}, {}] must satisfy 0 < min <= max",
                self.repair.min, self.repair.max
            ));
        }
        if !(0.0..1.0).contains(&self.job_crash_rate) {
            return Err(format!(
                "job_crash_rate {} outside [0, 1)",
                self.job_crash_rate
            ));
        }
        Ok(())
    }
}

/// A node currently down, as the scheduling engines see it: one node,
/// unavailable until `until`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outage {
    /// Monotone outage sequence number; doubles as the event tie-breaker
    /// (it rides in the event's `job` field).
    pub seq: u32,
    /// Absolute repair completion time.
    pub until: Time,
}

/// A node failure the simulator has scheduled but not yet processed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Failure {
    /// When the node goes down.
    pub time: Time,
    /// Outage sequence number (event tie-breaker and repair key).
    pub seq: u32,
    /// Repair duration, drawn together with the failure time so the outage
    /// timeline is independent of simulation state.
    pub repair: Time,
}

/// The seeded fault generator. One per simulation run.
///
/// Three independent ChaCha streams are derived from the seed: one for the
/// outage timeline (inter-failure gaps + repair durations), one for victim
/// selection, and a fresh per-submission stream for crash decisions. Keeping
/// them separate means the outage timeline never shifts when the scheduler
/// (and hence the victim population) changes.
#[derive(Debug, Clone)]
pub struct FaultModel {
    mtbf: Option<Time>,
    repair: RepairTime,
    crash_rate: f64,
    seed: u64,
    nodes: u32,
    outage_rng: ChaCha8Rng,
    victim_rng: ChaCha8Rng,
    next_seq: u32,
}

/// Stream-separation constants, arbitrary odd values.
const OUTAGE_STREAM: u64 = 0x9d5c_f0b1_1f0a_d001;
const VICTIM_STREAM: u64 = 0x9d5c_f0b1_1f0a_d003;
const CRASH_STREAM: u64 = 0x9d5c_f0b1_1f0a_d005;

impl FaultModel {
    /// A model for a `nodes`-node machine. `cfg` must already be validated.
    pub fn new(cfg: &FaultConfig, nodes: u32) -> Self {
        FaultModel {
            mtbf: cfg.node_mtbf,
            repair: cfg.repair,
            crash_rate: cfg.job_crash_rate,
            seed: cfg.seed,
            nodes,
            outage_rng: ChaCha8Rng::seed_from_u64(cfg.seed ^ OUTAGE_STREAM),
            victim_rng: ChaCha8Rng::seed_from_u64(cfg.seed ^ VICTIM_STREAM),
            next_seq: 0,
        }
    }

    /// Draws the next node failure strictly after `after`, or `None` when
    /// node outages are disabled. Exponential inter-arrival with mean
    /// `mtbf / nodes`, rounded up to at least one second; the repair
    /// duration is drawn from the same stream at the same moment.
    pub fn next_failure(&mut self, after: Time) -> Option<Failure> {
        let mtbf = self.mtbf?;
        let mean = mtbf as f64 / self.nodes.max(1) as f64;
        let u: f64 = self.outage_rng.gen();
        // u is in [0, 1); 1 - u is in (0, 1], so ln() is finite and <= 0.
        let gap = (-mean * (1.0 - u).ln()).ceil().max(1.0);
        let gap = if gap >= Time::MAX as f64 {
            Time::MAX - after
        } else {
            gap as Time
        };
        let repair = self.outage_rng.gen_range(self.repair.min..=self.repair.max);
        let seq = self.next_seq;
        self.next_seq += 1;
        Some(Failure {
            time: after.saturating_add(gap),
            seq,
            repair,
        })
    }

    /// Picks which of the `functional` currently-up nodes a failure hits,
    /// uniformly. The caller maps the index onto idle nodes first, then
    /// running jobs in a deterministic order.
    pub fn pick_victim(&mut self, functional: u32) -> u32 {
        debug_assert!(functional > 0);
        self.victim_rng.gen_range(0..functional)
    }

    /// Whether (and when, as an offset in `1..runtime`) the submission for
    /// `(origin, chunk_index)` crashes, given it would otherwise run for
    /// `runtime` seconds. Pure in `(seed, origin, chunk_index)`: requeued
    /// and resumed chunks get fresh, but replayable, rolls.
    pub fn crash_point(&self, origin: JobId, chunk_index: usize, runtime: Time) -> Option<Time> {
        if self.crash_rate <= 0.0 || runtime < 2 {
            return None;
        }
        let key = (origin.0 as u64) << 32 | (chunk_index as u64 & 0xffff_ffff);
        let mut rng = ChaCha8Rng::seed_from_u64(
            self.seed ^ CRASH_STREAM ^ key.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        );
        if !rng.gen_bool(self.crash_rate) {
            return None;
        }
        Some(rng.gen_range(1..runtime))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enabled_cfg() -> FaultConfig {
        FaultConfig {
            node_mtbf: Some(30 * 24 * HOUR),
            job_crash_rate: 0.05,
            seed: 7,
            ..FaultConfig::default()
        }
    }

    #[test]
    fn default_config_is_disabled_and_valid() {
        let cfg = FaultConfig::default();
        assert!(!cfg.enabled());
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_parameters() {
        let mut cfg = FaultConfig {
            node_mtbf: Some(0),
            ..FaultConfig::default()
        };
        assert!(cfg.validate().is_err());
        cfg.node_mtbf = None;
        cfg.job_crash_rate = 1.5;
        assert!(cfg.validate().is_err());
        cfg.job_crash_rate = 1.0;
        assert!(cfg.validate().is_err(), "certain crash can never terminate");
        cfg.job_crash_rate = 0.0;
        cfg.repair = RepairTime { min: 10, max: 5 };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn failure_timeline_is_reproducible_and_monotone() {
        let cfg = enabled_cfg();
        let mut a = FaultModel::new(&cfg, 128);
        let mut b = FaultModel::new(&cfg, 128);
        let mut t = 0;
        for expect_seq in 0..50 {
            let fa = a.next_failure(t).unwrap();
            let fb = b.next_failure(t).unwrap();
            assert_eq!(fa, fb);
            assert!(fa.time > t);
            assert_eq!(fa.seq, expect_seq);
            assert!((cfg.repair.min..=cfg.repair.max).contains(&fa.repair));
            t = fa.time;
        }
    }

    #[test]
    fn failure_gaps_track_machine_rate() {
        let cfg = enabled_cfg();
        let mtbf = cfg.node_mtbf.unwrap();
        let nodes = 128;
        let mut model = FaultModel::new(&cfg, nodes);
        let n = 2000;
        let mut t = 0;
        for _ in 0..n {
            t = model.next_failure(t).unwrap().time;
        }
        let mean_gap = t as f64 / n as f64;
        let expected = mtbf as f64 / nodes as f64;
        assert!(
            (mean_gap / expected - 1.0).abs() < 0.1,
            "mean gap {mean_gap} vs expected {expected}"
        );
    }

    #[test]
    fn disabled_mtbf_yields_no_failures() {
        let cfg = FaultConfig {
            job_crash_rate: 0.5,
            seed: 3,
            ..FaultConfig::default()
        };
        let mut model = FaultModel::new(&cfg, 64);
        assert_eq!(model.next_failure(0), None);
    }

    #[test]
    fn victims_cover_the_functional_range() {
        let cfg = enabled_cfg();
        let mut model = FaultModel::new(&cfg, 16);
        let mut seen = [false; 4];
        for _ in 0..200 {
            let v = model.pick_victim(4);
            assert!(v < 4);
            seen[v as usize] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "uniform victim draw should hit every node"
        );
    }

    #[test]
    fn crash_point_is_pure_and_inside_the_run() {
        let cfg = FaultConfig {
            job_crash_rate: 0.5,
            seed: 11,
            ..FaultConfig::default()
        };
        let model = FaultModel::new(&cfg, 64);
        let other = FaultModel::new(&cfg, 64);
        let mut crashed = 0;
        for id in 0..400u32 {
            let p = model.crash_point(JobId(id), 0, 1000);
            assert_eq!(p, other.crash_point(JobId(id), 0, 1000));
            if let Some(dt) = p {
                assert!((1..1000).contains(&dt));
                crashed += 1;
            }
        }
        // ~50% of 400; wide tolerance, just not degenerate.
        assert!((100..300).contains(&crashed), "crashed {crashed} of 400");
    }

    #[test]
    fn crash_rolls_differ_by_chunk_and_are_disabled_at_zero_rate() {
        let cfg = FaultConfig {
            job_crash_rate: 0.5,
            seed: 11,
            ..FaultConfig::default()
        };
        let model = FaultModel::new(&cfg, 64);
        let rolls: Vec<_> = (0..32)
            .map(|c| model.crash_point(JobId(1), c, 10_000))
            .collect();
        assert!(
            rolls.iter().any(|r| r.is_some()) && rolls.iter().any(|r| r.is_none()),
            "chunk index should vary the roll"
        );
        let off = FaultModel::new(&FaultConfig::default(), 64);
        assert_eq!(off.crash_point(JobId(1), 0, 10_000), None);
        // Runtime-1 jobs have no interior instant to crash at.
        assert_eq!(model.crash_point(JobId(1), 0, 1), None);
    }
}
