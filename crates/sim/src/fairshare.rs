//! The Sandia fairshare priority: per-user decayed processor-seconds.
//!
//! §2.1: "The 'fairshare' queuing order was determined by a historical sum
//! of processor-seconds used that decayed every 24 hours. This provided
//! priority to users who had not recently used the machine."
//!
//! [`FairshareTracker`] integrates each user's node-seconds as jobs run and
//! multiplies every accumulator by the decay factor at each interval
//! boundary of simulated time. Lower usage ⇒ higher queue priority.

use crate::config::FairshareConfig;
use fairsched_workload::job::UserId;
use fairsched_workload::time::Time;
use std::collections::HashMap;

/// Per-user decayed processor-second accumulator.
#[derive(Debug, Clone)]
pub struct FairshareTracker {
    config: FairshareConfig,
    usage: HashMap<UserId, f64>,
    last: Time,
}

impl FairshareTracker {
    /// A tracker starting at time 0 with all usage zero.
    pub fn new(config: FairshareConfig) -> Self {
        FairshareTracker {
            config,
            usage: HashMap::new(),
            last: 0,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &FairshareConfig {
        &self.config
    }

    /// The time the tracker has been advanced to.
    pub fn now(&self) -> Time {
        self.last
    }

    /// Advances simulated time to `to`, accruing `nodes` processor-seconds
    /// per second for each `(user, nodes)` pair in `running`, and applying
    /// the decay at every interval boundary crossed.
    ///
    /// Must be called with monotonically non-decreasing `to`; the running
    /// set is assumed constant over `[now, to)` (the simulator calls this
    /// between consecutive events, where that holds by construction).
    pub fn advance(&mut self, to: Time, running: &[(UserId, u32)]) {
        assert!(to >= self.last, "fairshare time moved backwards");
        let interval = self.config.decay_interval;
        let mut t = self.last;
        while t < to {
            let boundary = (t / interval + 1) * interval;
            let seg_end = boundary.min(to);
            let dt = (seg_end - t) as f64;
            if dt > 0.0 {
                for &(user, nodes) in running {
                    *self.usage.entry(user).or_insert(0.0) += nodes as f64 * dt;
                }
            }
            if seg_end == boundary {
                for v in self.usage.values_mut() {
                    *v *= self.config.decay_factor;
                }
            }
            t = seg_end;
        }
        self.last = to;
    }

    /// Current decayed usage of a user (0 if never seen).
    pub fn usage(&self, user: UserId) -> f64 {
        self.usage.get(&user).copied().unwrap_or(0.0)
    }

    /// Adds a one-shot usage charge (used by tests and by warm-start
    /// scenarios; the simulator itself accrues via [`advance`]).
    ///
    /// [`advance`]: FairshareTracker::advance
    pub fn charge(&mut self, user: UserId, proc_seconds: f64) {
        *self.usage.entry(user).or_insert(0.0) += proc_seconds;
    }

    /// Mean usage across a set of users (0 for an empty set). Used by the
    /// heavy-user rule, which compares each user to the active-user mean.
    pub fn mean_usage<'a>(&self, users: impl IntoIterator<Item = &'a UserId>) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for u in users {
            sum += self.usage(*u);
            n += 1;
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairsched_workload::time::{DAY, HOUR};

    fn tracker(factor: f64) -> FairshareTracker {
        FairshareTracker::new(FairshareConfig {
            decay_interval: DAY,
            decay_factor: factor,
        })
    }

    #[test]
    fn accrues_node_seconds_linearly() {
        let mut fs = tracker(1.0);
        let u = UserId(1);
        fs.advance(100, &[(u, 4)]);
        assert_eq!(fs.usage(u), 400.0);
        fs.advance(150, &[(u, 4)]);
        assert_eq!(fs.usage(u), 600.0);
        // A user not running accrues nothing.
        assert_eq!(fs.usage(UserId(2)), 0.0);
    }

    #[test]
    fn decays_at_each_interval_boundary() {
        let mut fs = tracker(0.5);
        let u = UserId(1);
        fs.charge(u, 1000.0);
        // Cross exactly two boundaries with nothing running.
        fs.advance(2 * DAY, &[]);
        assert!((fs.usage(u) - 250.0).abs() < 1e-9);
    }

    #[test]
    fn accrual_within_a_segment_is_decayed_by_later_boundaries() {
        let mut fs = tracker(0.5);
        let u = UserId(1);
        // Run 1 node for the whole first day, then idle for a day.
        fs.advance(DAY, &[(u, 1)]);
        // Day-1 accrual (86400) is decayed exactly once at the day-1 boundary.
        assert!((fs.usage(u) - DAY as f64 * 0.5).abs() < 1e-6);
        fs.advance(2 * DAY, &[]);
        assert!((fs.usage(u) - DAY as f64 * 0.25).abs() < 1e-6);
    }

    #[test]
    fn partial_segments_accrue_partially() {
        let mut fs = tracker(0.5);
        let u = UserId(7);
        fs.advance(DAY - HOUR, &[]);
        fs.advance(DAY + HOUR, &[(u, 2)]);
        // 1 hour before the boundary (decayed once) + 1 hour after (not).
        let expect = 2.0 * HOUR as f64 * 0.5 + 2.0 * HOUR as f64;
        assert!((fs.usage(u) - expect).abs() < 1e-6);
    }

    #[test]
    fn multiple_users_accrue_independently() {
        let mut fs = tracker(1.0);
        fs.advance(10, &[(UserId(1), 3), (UserId(2), 5)]);
        assert_eq!(fs.usage(UserId(1)), 30.0);
        assert_eq!(fs.usage(UserId(2)), 50.0);
    }

    #[test]
    fn factor_one_disables_decay() {
        let mut fs = tracker(1.0);
        fs.charge(UserId(1), 42.0);
        fs.advance(10 * DAY, &[]);
        assert_eq!(fs.usage(UserId(1)), 42.0);
    }

    #[test]
    fn mean_usage_over_selected_users() {
        let mut fs = tracker(1.0);
        fs.charge(UserId(1), 100.0);
        fs.charge(UserId(2), 300.0);
        let users = [UserId(1), UserId(2), UserId(3)];
        assert!((fs.mean_usage(users.iter()) - 400.0 / 3.0).abs() < 1e-9);
        assert_eq!(fs.mean_usage([].iter()), 0.0);
    }

    #[test]
    #[should_panic(expected = "moved backwards")]
    fn time_cannot_move_backwards() {
        let mut fs = tracker(1.0);
        fs.advance(100, &[]);
        fs.advance(50, &[]);
    }

    #[test]
    fn advance_to_exact_boundary_decays_once() {
        let mut fs = tracker(0.5);
        fs.charge(UserId(1), 100.0);
        fs.advance(DAY, &[]);
        assert!((fs.usage(UserId(1)) - 50.0).abs() < 1e-9);
        // Advancing zero time does nothing more.
        fs.advance(DAY, &[]);
        assert!((fs.usage(UserId(1)) - 50.0).abs() < 1e-9);
    }
}
