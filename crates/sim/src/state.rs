//! Shared simulation state types: queued/running job views, priority
//! ordering, and the observer interface metrics hook into.

use crate::config::QueueOrder;
use crate::fairshare::FairshareTracker;
use crate::simulator::{JobRecord, Schedule};
use fairsched_workload::job::{JobId, UserId};
use fairsched_workload::time::Time;
use std::collections::HashMap;

/// A job waiting in the queue, as visible to scheduling engines.
///
/// Deliberately excludes the actual runtime: engines are non-clairvoyant and
/// may only reason from the estimate. (Observers get actual runtimes via
/// [`ArrivalView::runtimes`], which fairness metrics need.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueuedJob {
    /// Job (chunk) identity.
    pub id: JobId,
    /// Submitting user.
    pub user: UserId,
    /// Width in nodes.
    pub nodes: u32,
    /// User wall-clock limit.
    pub estimate: Time,
    /// When this submission entered the queue.
    pub arrival: Time,
}

/// A job currently running.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunningJob {
    /// Job (chunk) identity.
    pub id: JobId,
    /// Submitting user.
    pub user: UserId,
    /// Width in nodes.
    pub nodes: u32,
    /// When it started.
    pub start: Time,
    /// Its wall-clock limit.
    pub estimate: Time,
    /// The completion instant currently scheduled in the event queue (the
    /// actual end unless a kill intervenes). Observers may read this;
    /// engines must use [`RunningJob::estimated_end`] instead.
    pub scheduled_end: Time,
}

impl RunningJob {
    /// The end a non-clairvoyant engine must assume: start + estimate, but
    /// never in the past — a job that outlived its estimate is modelled as
    /// ending "imminently" (one second from now), the standard treatment.
    pub fn estimated_end(&self, now: Time) -> Time {
        (self.start + self.estimate).max(now + 1)
    }
}

/// Returns queue indices in scheduling-priority order.
///
/// * [`QueueOrder::Fcfs`] — by (arrival, id).
/// * [`QueueOrder::Fairshare`] — ascending decayed usage of the submitting
///   user, ties by (arrival, id). Deterministic for equal usage.
pub fn priority_order(
    queue: &[QueuedJob],
    order: QueueOrder,
    fairshare: &FairshareTracker,
) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..queue.len()).collect();
    match order {
        QueueOrder::Fcfs => {
            idx.sort_by_key(|&i| (queue[i].arrival, queue[i].id));
        }
        QueueOrder::Fairshare => {
            idx.sort_by(|&a, &b| {
                let ua = fairshare.usage(queue[a].user);
                let ub = fairshare.usage(queue[b].user);
                ua.total_cmp(&ub).then_with(|| {
                    (queue[a].arrival, queue[a].id).cmp(&(queue[b].arrival, queue[b].id))
                })
            });
        }
    }
    idx
}

/// Everything an observer sees at a job arrival: the instant snapshot the
/// hybrid fair-start-time metric is computed from.
pub struct ArrivalView<'a> {
    /// Simulated time of the arrival.
    pub now: Time,
    /// The arriving job (already appended to `queue`).
    pub job: &'a QueuedJob,
    /// Machine size.
    pub total_nodes: u32,
    /// Currently free nodes.
    pub free_nodes: u32,
    /// Running jobs with their *actual* scheduled ends.
    pub running: &'a [RunningJob],
    /// The queue in arrival order, including the arriving job.
    pub queue: &'a [QueuedJob],
    /// Actual runtimes of queued jobs (perfect-estimate information for the
    /// CONS_P-style FST convention; engines never see this map).
    pub runtimes: &'a HashMap<JobId, Time>,
    /// The fairshare tracker (read-only), for computing priority order.
    pub fairshare: &'a FairshareTracker,
    /// The queue order the scheduler under test uses.
    pub order: QueueOrder,
}

/// Event hooks for metrics. All methods default to no-ops, so an observer
/// implements only what it needs.
pub trait Observer {
    /// A job (chunk) entered the queue.
    fn on_arrival(&mut self, _view: &ArrivalView<'_>) {}
    /// A job started running.
    fn on_start(&mut self, _id: JobId, _now: Time) {}
    /// A job completed or was killed.
    fn on_complete(&mut self, _id: JobId, _now: Time, _killed: bool) {}
    /// A submission's [`JobRecord`] was finalized (fires at the same
    /// instant as [`Observer::on_complete`], with the full record).
    fn on_record(&mut self, _record: &JobRecord) {}
    /// The run ended; the finished [`Schedule`] is about to be returned.
    /// Observers that need whole-run aggregates (machine size, goodput,
    /// integrals) capture them here instead of carrying the schedule around.
    fn on_finish(&mut self, _schedule: &Schedule) {}
}

/// Forwarding impl so observers can be passed by mutable reference (and
/// nested inside tuples or an [`ObserverSet`] without being consumed).
impl<T: Observer + ?Sized> Observer for &mut T {
    fn on_arrival(&mut self, view: &ArrivalView<'_>) {
        (**self).on_arrival(view);
    }
    fn on_start(&mut self, id: JobId, now: Time) {
        (**self).on_start(id, now);
    }
    fn on_complete(&mut self, id: JobId, now: Time, killed: bool) {
        (**self).on_complete(id, now, killed);
    }
    fn on_record(&mut self, record: &JobRecord) {
        (**self).on_record(record);
    }
    fn on_finish(&mut self, schedule: &Schedule) {
        (**self).on_finish(schedule);
    }
}

macro_rules! impl_observer_for_tuple {
    ($($name:ident),+) => {
        #[allow(non_snake_case)]
        impl<$($name: Observer),+> Observer for ($($name,)+) {
            fn on_arrival(&mut self, view: &ArrivalView<'_>) {
                let ($($name,)+) = self;
                $($name.on_arrival(view);)+
            }
            fn on_start(&mut self, id: JobId, now: Time) {
                let ($($name,)+) = self;
                $($name.on_start(id, now);)+
            }
            fn on_complete(&mut self, id: JobId, now: Time, killed: bool) {
                let ($($name,)+) = self;
                $($name.on_complete(id, now, killed);)+
            }
            fn on_record(&mut self, record: &JobRecord) {
                let ($($name,)+) = self;
                $($name.on_record(record);)+
            }
            fn on_finish(&mut self, schedule: &Schedule) {
                let ($($name,)+) = self;
                $($name.on_finish(schedule);)+
            }
        }
    };
}

impl_observer_for_tuple!(A);
impl_observer_for_tuple!(A, B);
impl_observer_for_tuple!(A, B, C);
impl_observer_for_tuple!(A, B, C, D);
impl_observer_for_tuple!(A, B, C, D, E);

/// A dynamic fan-out: every hook is forwarded to each member in insertion
/// order, so one simulation feeds any number of metric observers.
///
/// ```
/// use fairsched_sim::{NullObserver, Observer, ObserverSet};
///
/// let mut a = NullObserver;
/// let mut b = NullObserver;
/// let mut set = ObserverSet::new();
/// set.push(&mut a);
/// set.push(&mut b);
/// assert_eq!(set.len(), 2);
/// ```
#[derive(Default)]
pub struct ObserverSet<'a> {
    members: Vec<&'a mut dyn Observer>,
}

impl<'a> ObserverSet<'a> {
    /// An empty set.
    pub fn new() -> Self {
        ObserverSet {
            members: Vec::new(),
        }
    }

    /// Adds an observer to the fan-out.
    pub fn push(&mut self, observer: &'a mut dyn Observer) {
        self.members.push(observer);
    }

    /// Builder-style [`ObserverSet::push`].
    pub fn with(mut self, observer: &'a mut dyn Observer) -> Self {
        self.push(observer);
        self
    }

    /// Number of member observers.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the set has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

impl Observer for ObserverSet<'_> {
    fn on_arrival(&mut self, view: &ArrivalView<'_>) {
        for m in &mut self.members {
            m.on_arrival(view);
        }
    }
    fn on_start(&mut self, id: JobId, now: Time) {
        for m in &mut self.members {
            m.on_start(id, now);
        }
    }
    fn on_complete(&mut self, id: JobId, now: Time, killed: bool) {
        for m in &mut self.members {
            m.on_complete(id, now, killed);
        }
    }
    fn on_record(&mut self, record: &JobRecord) {
        for m in &mut self.members {
            m.on_record(record);
        }
    }
    fn on_finish(&mut self, schedule: &Schedule) {
        for m in &mut self.members {
            m.on_finish(schedule);
        }
    }
}

/// The do-nothing observer.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl Observer for NullObserver {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FairshareConfig;

    fn queued(id: u32, user: u32, arrival: Time) -> QueuedJob {
        QueuedJob {
            id: JobId(id),
            user: UserId(user),
            nodes: 1,
            estimate: 100,
            arrival,
        }
    }

    fn tracker() -> FairshareTracker {
        FairshareTracker::new(FairshareConfig::default())
    }

    #[test]
    fn fcfs_orders_by_arrival_then_id() {
        let q = vec![queued(3, 1, 20), queued(1, 2, 10), queued(2, 3, 10)];
        let fs = tracker();
        let order = priority_order(&q, QueueOrder::Fcfs, &fs);
        let ids: Vec<u32> = order.iter().map(|&i| q[i].id.0).collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn fairshare_prefers_light_users() {
        let q = vec![queued(1, 1, 0), queued(2, 2, 5)];
        let mut fs = tracker();
        fs.charge(UserId(1), 10_000.0);
        // User 2 has no usage: its job jumps ahead despite arriving later.
        let order = priority_order(&q, QueueOrder::Fairshare, &fs);
        let ids: Vec<u32> = order.iter().map(|&i| q[i].id.0).collect();
        assert_eq!(ids, vec![2, 1]);
    }

    #[test]
    fn fairshare_ties_fall_back_to_fcfs() {
        let q = vec![queued(2, 1, 10), queued(1, 2, 10), queued(3, 3, 5)];
        let fs = tracker(); // all usage zero
        let order = priority_order(&q, QueueOrder::Fairshare, &fs);
        let ids: Vec<u32> = order.iter().map(|&i| q[i].id.0).collect();
        assert_eq!(ids, vec![3, 1, 2]);
    }

    #[test]
    fn estimated_end_never_in_the_past() {
        let r = RunningJob {
            id: JobId(1),
            user: UserId(1),
            nodes: 4,
            start: 0,
            estimate: 100,
            scheduled_end: 500,
        };
        assert_eq!(r.estimated_end(50), 100);
        // Past the estimate: imminent, not historical.
        assert_eq!(r.estimated_end(100), 101);
        assert_eq!(r.estimated_end(400), 401);
    }
}
