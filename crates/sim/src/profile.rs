//! The availability profile: planned node usage over future time.
//!
//! Conservative backfilling reasons about a step function `used(t)` built
//! from running jobs (until their estimated ends) plus reservations. The
//! profile supports adding usage rectangles and the `earliest_fit` query
//! ("when can a `k`-node, `d`-second job first run?").
//!
//! Usage is allowed to exceed the machine size transiently: the
//! non-dynamic conservative engine keeps a job's old reservation when no
//! better one exists, and after a wall-clock-limit surprise the old slot may
//! be oversubscribed on paper. `earliest_fit` simply never places new work
//! in an oversubscribed region, and the simulator's start gate (actual free
//! nodes) keeps the physical machine consistent.

use fairsched_workload::time::Time;

/// A step function of planned node usage over `[0, ∞)`, with a fixed
/// machine capacity for fit queries.
///
/// ```
/// use fairsched_sim::profile::Profile;
///
/// let mut p = Profile::new(10);
/// p.add(0, 100, 8); // 8 nodes reserved over [0, 100)
/// // A 4-node job cannot fit until the reservation ends...
/// assert_eq!(p.earliest_start(0, 4, 50), Some(100));
/// // ...but a 2-node job slots into the hole immediately.
/// assert_eq!(p.earliest_start(0, 2, 50), Some(0));
/// // A job wider than the machine never fits.
/// assert_eq!(p.earliest_start(0, 11, 50), None);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Profile {
    capacity: u32,
    /// Breakpoints as `(time, delta)` aggregated and sorted by time; usage
    /// before the first breakpoint is 0.
    deltas: Vec<(Time, i64)>,
}

impl Profile {
    /// An empty profile for a `capacity`-node machine.
    pub fn new(capacity: u32) -> Self {
        Profile {
            capacity,
            deltas: Vec::new(),
        }
    }

    /// Machine capacity.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Adds a usage rectangle: `nodes` nodes over `[start, start + duration)`.
    pub fn add(&mut self, start: Time, duration: Time, nodes: u32) {
        if nodes == 0 || duration == 0 {
            return;
        }
        self.apply(start, nodes as i64);
        self.apply(start + duration, -(nodes as i64));
    }

    /// Steps capacity down by `nodes` from `now` until `until` — how node
    /// outages enter a planning profile. An overdue repair (`until <= now`)
    /// still blocks for one second, mirroring how overdue running jobs are
    /// treated, so the rectangle is never empty while the outage is live.
    pub fn block_until(&mut self, now: Time, until: Time, nodes: u32) {
        let end = until.max(now + 1);
        self.add(now, end - now, nodes);
    }

    /// Removes a previously added rectangle (exact inverse of [`add`]).
    ///
    /// [`add`]: Profile::add
    pub fn remove(&mut self, start: Time, duration: Time, nodes: u32) {
        if nodes == 0 || duration == 0 {
            return;
        }
        self.apply(start, -(nodes as i64));
        self.apply(start + duration, nodes as i64);
    }

    fn apply(&mut self, time: Time, delta: i64) {
        match self.deltas.binary_search_by_key(&time, |&(t, _)| t) {
            Ok(i) => {
                self.deltas[i].1 += delta;
                if self.deltas[i].1 == 0 {
                    self.deltas.remove(i);
                }
            }
            Err(i) => self.deltas.insert(i, (time, delta)),
        }
    }

    /// Planned usage at time `t`.
    pub fn used_at(&self, t: Time) -> i64 {
        self.deltas
            .iter()
            .take_while(|&&(bt, _)| bt <= t)
            .map(|&(_, d)| d)
            .sum()
    }

    /// Earliest `start ≥ from` at which a `nodes`-wide, `duration`-long job
    /// fits under capacity for its whole extent, or `None` for a job wider
    /// than the machine (which can never fit, at any time). Scans the
    /// breakpoints once; O(breakpoints).
    pub fn earliest_start(&self, from: Time, nodes: u32, duration: Time) -> Option<Time> {
        debug_assert!(duration > 0);
        fairsched_obs::counters::record_earliest_start();
        let budget = self.capacity as i64 - nodes as i64;
        if budget < 0 {
            return None;
        }

        let mut candidate = from;
        let mut used: i64 = 0;
        let mut i = 0;
        // Skip breakpoints at or before `from`, accumulating the level.
        while i < self.deltas.len() && self.deltas[i].0 <= from {
            used += self.deltas[i].1;
            i += 1;
        }
        if used > budget {
            // Overfull at `from`: candidate must move to a later breakpoint.
            candidate = Time::MAX; // provisional; fixed when a segment fits
        }
        while i < self.deltas.len() {
            let (t, delta) = self.deltas[i];
            if candidate != Time::MAX && t >= candidate.saturating_add(duration) {
                return Some(candidate);
            }
            used += delta;
            if used > budget {
                candidate = Time::MAX;
            } else if candidate == Time::MAX {
                candidate = t;
            }
            i += 1;
        }
        // Past the last breakpoint usage stays at its final level, which is
        // 0 for well-formed profiles; `candidate` is feasible from here on.
        if candidate == Time::MAX {
            // Overfull through the last breakpoint — cannot happen when all
            // rectangles are finite, but be safe.
            Some(
                self.deltas
                    .last()
                    .map(|&(t, _)| t)
                    .unwrap_or(from)
                    .max(from),
            )
        } else {
            Some(candidate.max(from))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_profile_fits_immediately() {
        let p = Profile::new(100);
        assert_eq!(p.earliest_start(50, 100, 1000), Some(50));
    }

    #[test]
    fn add_and_used_at() {
        let mut p = Profile::new(10);
        p.add(10, 20, 4); // [10, 30) uses 4
        assert_eq!(p.used_at(9), 0);
        assert_eq!(p.used_at(10), 4);
        assert_eq!(p.used_at(29), 4);
        assert_eq!(p.used_at(30), 0);
    }

    #[test]
    fn remove_is_exact_inverse_of_add() {
        let mut p = Profile::new(10);
        let orig = p.clone();
        p.add(10, 20, 4);
        p.add(15, 100, 6);
        p.remove(10, 20, 4);
        p.remove(15, 100, 6);
        assert_eq!(p, orig);
    }

    #[test]
    fn job_waits_for_capacity() {
        let mut p = Profile::new(10);
        p.add(0, 100, 8); // 2 free until t=100
                          // A 4-node job must wait until 100.
        assert_eq!(p.earliest_start(0, 4, 50), Some(100));
        // A 2-node job fits immediately.
        assert_eq!(p.earliest_start(0, 2, 50), Some(0));
    }

    #[test]
    fn job_fits_into_a_hole_wide_enough_and_long_enough() {
        let mut p = Profile::new(10);
        p.add(0, 100, 8); // hole of 2 until 100
        p.add(200, 100, 8); // hole of 2 again during [200,300), full hole [100,200)
                            // 4-node 50-second job: the gap [100, 200) has 10 free.
        assert_eq!(p.earliest_start(0, 4, 50), Some(100));
        // 4-node 150-second job cannot finish before the [200,300) squeeze.
        assert_eq!(p.earliest_start(0, 4, 150), Some(300));
        // 2-node 1000-second job fits at 0 (2 free always suffices).
        assert_eq!(p.earliest_start(0, 2, 1000), Some(0));
    }

    #[test]
    fn from_inside_a_busy_region_defers() {
        let mut p = Profile::new(10);
        p.add(0, 100, 10);
        assert_eq!(p.earliest_start(50, 1, 10), Some(100));
    }

    #[test]
    fn from_after_all_breakpoints() {
        let mut p = Profile::new(10);
        p.add(0, 100, 10);
        assert_eq!(p.earliest_start(500, 10, 10), Some(500));
    }

    #[test]
    fn exact_fit_at_capacity_boundary() {
        let mut p = Profile::new(10);
        p.add(0, 100, 6);
        // Exactly 4 free: a 4-node job fits now.
        assert_eq!(p.earliest_start(0, 4, 100), Some(0));
        // A 5-node job waits.
        assert_eq!(p.earliest_start(0, 5, 10), Some(100));
    }

    #[test]
    fn job_can_straddle_a_capacity_increase() {
        let mut p = Profile::new(10);
        p.add(0, 50, 8);
        // 2 free in [0,50), 10 free after. A 2-node 500-second job starts at 0.
        assert_eq!(p.earliest_start(0, 2, 500), Some(0));
    }

    #[test]
    fn oversubscribed_regions_are_skipped() {
        let mut p = Profile::new(10);
        // Deliberate oversubscription (old reservation kept on paper).
        p.add(0, 100, 12);
        assert_eq!(p.used_at(50), 12);
        assert_eq!(p.earliest_start(0, 1, 10), Some(100));
    }

    #[test]
    fn adjacent_rectangles_merge_breakpoints() {
        let mut p = Profile::new(10);
        p.add(0, 10, 3);
        p.add(10, 10, 3); // continues seamlessly
                          // The +3/-3 at t=10 cancel: one contiguous usage region.
        assert_eq!(p.used_at(10), 3);
        assert_eq!(p.earliest_start(0, 8, 5), Some(20));
        // Internally the zero-delta breakpoint is dropped.
        assert_eq!(p.deltas.len(), 2);
    }

    #[test]
    fn zero_sized_rectangles_are_ignored() {
        let mut p = Profile::new(10);
        p.add(5, 0, 4);
        p.add(5, 10, 0);
        assert_eq!(p, Profile::new(10));
    }
}
