//! # fairsched-sim
//!
//! A deterministic event-driven parallel job scheduling simulator — the
//! substrate the fairness case study runs on, rebuilt from §3.1 of Leung,
//! Sabin & Sadayappan (SAND2008-1310 / ICPP 2010).
//!
//! The simulator replays a workload trace (see `fairsched-workload`) under a
//! configurable policy and emits a [`simulator::Schedule`] that the
//! metrics crate scores. The moving parts:
//!
//! * [`config`] — machine size, queue order, fairshare decay, kill policy,
//!   starvation queue, runtime limits, and engine selection;
//! * [`event`] — the deterministic event queue (completions before expiries
//!   before fault events before arrivals, ties by job id);
//! * [`faults`] — seeded, reproducible node outages and job crashes, plus
//!   the resilience policies that decide what crashed work costs;
//! * [`fairshare`] — the decaying per-user processor-second accumulator that
//!   drives Sandia's queue priority;
//! * [`engine`] — the scheduling strategies: every policy is a composition
//!   of a queue-order strategy, a reservation ledger, and a backfill rule
//!   (the original CPlant no-guarantee backfiller with its starvation
//!   queue, textbook EASY, and conservative backfilling with or without
//!   dynamic reservations are all rows of one table);
//! * `lifecycle` (internal) — submission lifecycle: pending arrivals,
//!   runtime-limit chunk chains (§5.1), and crash recovery;
//! * `accounting` (internal) — the utilization, loss-of-capacity, and
//!   queue-pressure integrals a run reports;
//! * [`profile`] — the future-capacity step function conservative
//!   backfilling plans against;
//! * [`listsched`] — the list scheduler the hybrid fair-start-time metric is
//!   defined by (§4.1);
//! * [`prefix`] — warm-started prefix simulation for scheduler-dependent
//!   fair start times (one clone-and-run per scored job instead of one
//!   full replay);
//! * [`starvation`] — starvation-queue eligibility and the heavy-user bar;
//! * [`state`] — queue/running views, the [`state::Observer`] hook metrics
//!   attach to, and the [`state::ObserverSet`] fan-out that lets one run
//!   feed many metrics;
//! * [`step`] — the pure, clock-decoupled core: feed a typed
//!   [`step::SimEvent`] (a submission or a grant of simulated time), get
//!   typed [`step::Effect`]s back (admissions, starts, completions, trace
//!   records) — the substrate both the batch driver and the online
//!   `fairschedd` service run on;
//! * [`simulator`] — the batch driver: [`simulator::simulate`] with a
//!   [`simulator::SimOptions`] builder for tracing, cancellation, fault
//!   overrides, and profiling.
//!
//! Determinism is a contract: equal (trace, config) inputs produce equal
//! schedules, event ties are totally ordered, and nothing in this crate
//! consults a clock. The only randomness is the seeded fault model, which
//! is itself a pure function of the configured fault seed.

mod accounting;
pub mod config;
pub mod engine;
pub mod event;
pub mod fairshare;
pub mod faults;
mod lifecycle;
pub mod listsched;
pub mod prefix;
pub mod profile;
pub mod simulator;
pub mod starvation;
pub mod state;
pub mod step;

pub use engine::FAR_FUTURE;

pub use config::{
    AllocationModel, EngineKind, FairshareConfig, HeavyUserRule, KillPolicy, QueueOrder,
    RuntimeLimit, SimConfig, StarvationConfig,
};
pub use fairshare::FairshareTracker;
pub use faults::{FaultConfig, FaultModel, Outage, RepairTime, ResiliencePolicy};
pub use listsched::NodeTimeline;
pub use prefix::{warm_start_forkable, warm_start_supported, PrefixSimulator};
pub use simulator::{
    simulate, CancelToken, JobRecord, OriginalOutcome, PlacementStats, QueueStats, Schedule,
    SimError, SimOptions,
};
#[allow(deprecated)]
pub use simulator::{try_simulate, try_simulate_traced, try_simulate_with};
pub use state::{ArrivalView, NullObserver, Observer, ObserverSet, QueuedJob, RunningJob};
pub use step::{Effect, SimEvent, StepStatus, SteppedSim};
