//! Warm-start prefix simulation for scheduler-dependent fair start times.
//!
//! The Sabin FST (§4) asks, for each job `j`: when would `j` have started
//! had no later job ever arrived? Answering it from scratch costs one full
//! simulation per job — O(N²) simulator work. This module exploits how
//! consecutive prefixes relate: the prefix for job `k+1` is the prefix for
//! job `k` plus one arrival, and *everything that happens strictly before
//! `k+1`'s submit time is identical in both runs*. A [`PrefixSimulator`]
//! therefore keeps one incrementally-advanced master state, and each query
//! clones it, injects the target, and runs the clone only until the target
//! starts (the FST needs nothing past that instant).
//!
//! Correctness rests on three properties, each gated explicitly:
//!
//! * **Event determinism.** The event queue orders by `(time, kind, job)`,
//!   never by insertion order, so admitting arrivals late (as the master
//!   does) pops the exact event sequence a from-scratch run would.
//! * **Engine determinism.** The engine kept across prefix boundaries is
//!   advanced in lockstep with the master state, and each query continues
//!   from an exact [`fork`](crate::engine::Engine::fork) of it. Because
//!   every engine mutation flows through [`Sim::step`] (admission alone
//!   touches no engine callback), the forked engine's state — including the
//!   static conservative ledger's reservations — is precisely what a
//!   from-scratch run of the same prefix would have built. The *dynamic*
//!   conservative engine (§5.4) remains ineligible: it discards and
//!   rebuilds every reservation at every event, so forking its ledger
//!   buys nothing over the from-scratch fallback it already equals —
//!   [`warm_start_supported`] returns `false` and callers fall back to
//!   from-scratch prefix simulation.
//! * **Closed id space.** Runtime-limit chains and fault resubmissions mint
//!   fresh job ids from `max(trace id) + 1`, which depends on the whole
//!   prefix; both features are gated out so ids never diverge.

use crate::config::{EngineKind, SimConfig};
use crate::simulator::{make_engine_for, CancelToken, Sim, SimError};
use crate::state::NullObserver;
use fairsched_workload::job::{Job, JobId};
use fairsched_workload::time::Time;

/// Explicit fork-exactness classification of every engine kind. The match
/// is exhaustive *without* a wildcard arm on purpose: adding an
/// [`EngineKind`] variant without deciding its warm-start class is a
/// compile error here, not a silent from-scratch fallback (or worse, a
/// wrong warm start). `tests/single_pass.rs` proves warm ≡ cold over
/// [`EngineKind::representatives`] for every kind classified `true`.
///
/// The size-based orders (FSP/LAS/HFSP) qualify: their state is a pure
/// function of the hook-call sequence driven by [`Sim::step`] (admission
/// touches no engine callback), so a [`fork`](crate::engine::Engine::fork)
/// replays the same float operations a from-scratch prefix run would.
pub fn warm_start_forkable(kind: EngineKind) -> bool {
    match kind {
        EngineKind::NoGuarantee
        | EngineKind::Easy
        | EngineKind::FcfsNoBackfill
        | EngineKind::ReservationDepth(_)
        | EngineKind::Conservative { dynamic: false }
        | EngineKind::Fsp
        | EngineKind::Las
        | EngineKind::Hfsp => true,
        // Dynamic conservative discards and rebuilds every reservation at
        // every event, so forking its ledger buys nothing over the
        // from-scratch fallback it already equals.
        EngineKind::Conservative { dynamic: true } => false,
    }
}

/// Whether `cfg` permits warm-started prefix simulation. Requires an engine
/// whose forked state reproduces a from-scratch run (see
/// [`warm_start_forkable`]), no fault injection, and no runtime-limit
/// chaining; anything else must use from-scratch prefix runs to reproduce
/// the exact serial results.
pub fn warm_start_supported(cfg: &SimConfig) -> bool {
    warm_start_forkable(cfg.engine) && !cfg.faults.enabled() && cfg.runtime_limit.is_none()
}

/// Incremental prefix simulator: admit jobs in nondecreasing
/// `(submit, id)` order, and query each scored job's prefix start time
/// without replaying history.
///
/// ```
/// use fairsched_sim::prefix::PrefixSimulator;
/// use fairsched_sim::SimConfig;
/// use fairsched_workload::job::Job;
///
/// let cfg = SimConfig { nodes: 10, ..Default::default() };
/// let a = Job::new(1, 1, 1, 0, 10, 100, 100);
/// let b = Job::new(2, 2, 1, 5, 10, 50, 50);
/// let mut prefix = PrefixSimulator::new(&cfg).unwrap();
/// assert_eq!(prefix.start_of(&a).unwrap(), 0);
/// // In b's prefix run, b queues behind a.
/// assert_eq!(prefix.start_of(&b).unwrap(), 100);
/// ```
pub struct PrefixSimulator<'a> {
    cfg: &'a SimConfig,
    master: Sim,
    engine: Box<dyn crate::engine::Engine>,
    last_key: Option<(Time, u32)>,
}

impl<'a> PrefixSimulator<'a> {
    /// A simulator with an empty prefix. Fails when `cfg` is not
    /// [`warm_start_supported`] or is self-contradictory.
    pub fn new(cfg: &'a SimConfig) -> Result<Self, SimError> {
        if !warm_start_supported(cfg) {
            return Err(SimError::InvalidConfig {
                reason: "config not eligible for warm-started prefix simulation \
                         (stateful engine, fault injection, or runtime limit)"
                    .into(),
            });
        }
        if let Some(cap) = cfg.user_concurrency {
            if cap < 1 {
                return Err(SimError::InvalidConfig {
                    reason: "user_concurrency must be at least 1".into(),
                });
            }
        }
        Ok(PrefixSimulator {
            cfg,
            master: Sim::new(cfg, &[]),
            engine: make_engine_for(cfg),
            last_key: None,
        })
    }

    /// Validates `job` and folds it into the master state, first replaying
    /// every event that fires strictly before its submit time. Events *at*
    /// the submit instant stay pending: they belong to the same batch as
    /// the arrival and must be processed together, exactly as a
    /// from-scratch run would.
    fn advance_and_admit(&mut self, job: &Job) -> Result<(), SimError> {
        if job.nodes > self.cfg.nodes {
            return Err(SimError::TooWide {
                job: job.id,
                nodes: job.nodes,
                machine: self.cfg.nodes,
            });
        }
        job.validate().map_err(|e| SimError::InvalidTrace {
            job: job.id,
            reason: e.to_string(),
        })?;
        let key = (job.submit, job.id.0);
        if self.last_key.is_some_and(|last| last > key) {
            return Err(SimError::InvalidTrace {
                job: job.id,
                reason: "prefix jobs must be admitted in (submit, id) order".into(),
            });
        }
        self.last_key = Some(key);
        while self
            .master
            .next_event_time()
            .is_some_and(|t| t < job.submit)
        {
            self.master.step(self.engine.as_mut(), &mut NullObserver)?;
        }
        self.master.admit(job);
        Ok(())
    }

    /// Admits `job` into the shared prefix without scoring it (used to seed
    /// a stripe's starting state when prefix queries are striped across
    /// workers or sampled).
    pub fn admit(&mut self, job: &Job) -> Result<(), SimError> {
        self.advance_and_admit(job)
    }

    /// An exact replica of this simulator — master state, forked engine,
    /// ordering cursor. Chunked parallel FST computation forks the
    /// serially-advanced master at each chunk boundary and ships the fork
    /// to a worker, so no worker ever replays the prefix from scratch.
    pub fn fork(&self) -> PrefixSimulator<'a> {
        PrefixSimulator {
            cfg: self.cfg,
            master: self.master.clone(),
            engine: self.engine.fork(),
            last_key: self.last_key,
        }
    }

    /// Attaches a cancellation token to the master state. Forks taken after
    /// this call inherit the token, so one watchdog firing stops the master
    /// and every outstanding scratch query.
    pub fn set_cancel(&mut self, cancel: CancelToken) {
        self.master.set_cancel(cancel);
    }

    /// Admits `job` and returns its start time in a simulation of exactly
    /// the jobs admitted so far — the Sabin prefix run. The scratch fork
    /// stops as soon as the target starts; the master is left untouched
    /// past `job.submit`.
    pub fn start_of(&mut self, job: &Job) -> Result<Time, SimError> {
        fairsched_obs::counters::record_warm_start(true);
        self.advance_and_admit(job)?;
        // Fork, don't rebuild: a stateful ledger (static conservative)
        // continues from the master's exact bookkeeping, which equals what
        // a from-scratch run of this prefix would hold at this instant.
        self.fork().resolve_start(job.id, job.submit)
    }

    /// The scratch phase of [`PrefixSimulator::start_of`], decoupled: steps
    /// this simulator until the already-admitted `id` starts, consuming it.
    /// Parallel FST computation admits each target into a serially-advanced
    /// master, then ships a [`fork`](Self::fork) here on a worker thread —
    /// the advance happens once while the per-target queries (the dominant
    /// cost) fan out.
    pub fn resolve_start(mut self, id: JobId, submit: Time) -> Result<Time, SimError> {
        loop {
            if let Some(start) = self.master.start_time_of(id) {
                return Ok(start);
            }
            if !self.master.step(self.engine.as_mut(), &mut NullObserver)? {
                // Every admitted job starts in a drained simulation; not
                // starting means the state machine is broken.
                return Err(SimError::InvariantViolation {
                    at: submit,
                    detail: format!("{id} never started in its prefix simulation"),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::KillPolicy;
    use crate::simulator::{simulate, SimOptions};
    use fairsched_workload::job::JobId;
    use fairsched_workload::synthetic::random_trace;

    fn sorted(mut trace: Vec<Job>) -> Vec<Job> {
        trace.sort_by_key(|j| (j.submit, j.id));
        trace
    }

    /// From-scratch prefix start of `target` within `trace`.
    fn scratch_start(trace: &[Job], cfg: &SimConfig, target: &Job) -> Time {
        let prefix: Vec<Job> = trace
            .iter()
            .filter(|j| (j.submit, j.id) <= (target.submit, target.id))
            .cloned()
            .collect();
        let schedule = simulate(&prefix, cfg, &mut NullObserver, SimOptions::new()).unwrap();
        schedule
            .records
            .iter()
            .find(|r| r.id == target.id)
            .map(|r| r.start)
            .expect("target is in its own prefix")
    }

    fn check_matches_scratch(cfg: &SimConfig, trace: &[Job]) {
        let trace = sorted(trace.to_vec());
        let mut prefix = PrefixSimulator::new(cfg).unwrap();
        for job in &trace {
            assert_eq!(
                prefix.start_of(job).unwrap(),
                scratch_start(&trace, cfg, job),
                "warm-start disagrees with from-scratch for {}",
                job.id
            );
        }
    }

    #[test]
    fn matches_from_scratch_for_every_supported_engine() {
        let trace = random_trace(42, 80, 16, 4000);
        let mut covered = 0;
        for engine in EngineKind::representatives() {
            if !warm_start_forkable(engine) {
                continue;
            }
            covered += 1;
            let cfg = SimConfig {
                nodes: 16,
                engine,
                kill: KillPolicy::Never,
                ..Default::default()
            };
            check_matches_scratch(&cfg, &trace);
        }
        // The capability covers the five pre-refactor kinds plus the three
        // size-based orders; a silent shrink would make this test vacuous.
        assert_eq!(covered, 8, "warm-start coverage changed");
    }

    #[test]
    fn matches_from_scratch_with_kills_and_concurrency_caps() {
        let trace = random_trace(7, 60, 16, 3000);
        let cfg = SimConfig {
            nodes: 16,
            engine: EngineKind::NoGuarantee,
            kill: KillPolicy::WhenNeeded,
            user_concurrency: Some(2),
            ..Default::default()
        };
        check_matches_scratch(&cfg, &trace);
    }

    #[test]
    fn conservative_warm_start_survives_kills_and_concurrency_caps() {
        // The stateful ledger under the adversarial knobs: WCL kills mutate
        // the running set mid-reservation, and the concurrency cap defers
        // arrivals — both must leave fork-continuation exact.
        let trace = random_trace(23, 60, 16, 3000);
        let cfg = SimConfig {
            nodes: 16,
            engine: EngineKind::Conservative { dynamic: false },
            kill: KillPolicy::WhenNeeded,
            user_concurrency: Some(2),
            ..Default::default()
        };
        check_matches_scratch(&cfg, &trace);
    }

    #[test]
    fn admit_without_scoring_seeds_later_queries() {
        let trace = sorted(random_trace(11, 50, 16, 3000));
        let cfg = SimConfig {
            nodes: 16,
            ..Default::default()
        };
        // Score only the second half, admitting the first half silently.
        let mut prefix = PrefixSimulator::new(&cfg).unwrap();
        for job in &trace[..25] {
            prefix.admit(job).unwrap();
        }
        for job in &trace[25..] {
            assert_eq!(
                prefix.start_of(job).unwrap(),
                scratch_start(&trace, &cfg, job)
            );
        }
    }

    #[test]
    fn rejects_dynamic_conservative_and_faulted_configs() {
        let dynamic = SimConfig {
            engine: EngineKind::Conservative { dynamic: true },
            ..Default::default()
        };
        assert!(!warm_start_supported(&dynamic));
        assert!(PrefixSimulator::new(&dynamic).is_err());

        // The static variant forks its ledger and is eligible.
        let conservative = SimConfig {
            engine: EngineKind::Conservative { dynamic: false },
            ..Default::default()
        };
        assert!(warm_start_supported(&conservative));
        assert!(PrefixSimulator::new(&conservative).is_ok());

        let faulted = SimConfig {
            faults: crate::faults::FaultConfig {
                job_crash_rate: 0.1,
                ..Default::default()
            },
            ..Default::default()
        };
        assert!(!warm_start_supported(&faulted));
    }

    #[test]
    fn rejects_out_of_order_admission() {
        let cfg = SimConfig {
            nodes: 16,
            ..Default::default()
        };
        let mut prefix = PrefixSimulator::new(&cfg).unwrap();
        let late = Job::new(1, 1, 1, 100, 1, 10, 10);
        let early = Job::new(2, 1, 1, 50, 1, 10, 10);
        prefix.admit(&late).unwrap();
        let err = prefix.start_of(&early).unwrap_err();
        assert!(matches!(err, SimError::InvalidTrace { job, .. } if job == JobId(2)));
    }
}
