//! Scheduling engines: who starts, and when.
//!
//! An [`Engine`] owns the reservation strategy. The simulator calls it at
//! every scheduling event (arrival or completion, §3.1) with a read-only
//! context and applies the returned starts. Three engines cover the paper:
//!
//! * [`NoGuaranteeEngine`] — the original CPlant policy (§2.1): walk the
//!   queue in priority order, start whatever fits, no reservations — except
//!   that the head of the *starvation queue* holds an aggressive
//!   (EASY-style) reservation that backfilled jobs must respect.
//! * [`EasyEngine`] — textbook aggressive backfilling (§1): the head of the
//!   *priority* queue holds the only reservation.
//! * [`ConservativeEngine`] — conservative backfilling (§5.3): every job is
//!   reserved on arrival and only ever improves; with
//!   `dynamic = true` (§5.4) all reservations are rebuilt from scratch in
//!   priority order at every event instead.

use crate::config::{EngineKind, QueueOrder, StarvationConfig};
use crate::fairshare::FairshareTracker;
use crate::faults::Outage;
use crate::profile::Profile;
use crate::starvation::starving_jobs;
use crate::state::{priority_order, QueuedJob, RunningJob};
use fairsched_obs::{counters, StartCause, TraceHandle, TraceRecord};
use fairsched_workload::job::JobId;
use fairsched_workload::time::Time;
use std::collections::HashMap;

/// Far-future reservation sentinel for jobs that can never be placed (wider
/// than the machine). Such jobs are rejected upstream by trace validation;
/// engines driven by hand degrade to "reserved at the far future" instead
/// of panicking, matching the pre-`Option` profile behavior. Public so
/// trace consumers can tell "reserved at `t`" from "no feasible slot yet"
/// in `ReservationMade`/`ReservationShifted` records.
pub const FAR_FUTURE: Time = Time::MAX / 4;

/// Read-only view the simulator hands an engine at each scheduling event.
pub struct EngineCtx<'a> {
    /// Current simulated time.
    pub now: Time,
    /// Nodes currently idle.
    pub free_nodes: u32,
    /// Machine size.
    pub total_nodes: u32,
    /// Running jobs.
    pub running: &'a [RunningJob],
    /// Queued jobs in arrival order.
    pub queue: &'a [QueuedJob],
    /// Fairshare usage (drives priority order and heavy-user rules).
    pub fairshare: &'a FairshareTracker,
    /// Queue priority order in force.
    pub order: QueueOrder,
    /// Starvation-queue configuration, if the policy has one.
    pub starvation: Option<&'a StarvationConfig>,
    /// Nodes currently down for repair. Already excluded from
    /// `free_nodes`; engines that plan into the future must additionally
    /// treat each as a 1-node occupant until its repair time, or their
    /// reservations would assume capacity that does not exist yet.
    pub outages: &'a [Outage],
    /// Decision-trace sink for this pass, when the run is traced. Engines
    /// emit `JobStarted`/`ReservationMade`/`ReservationShifted` records
    /// through it; emission must never influence decisions (a traced run's
    /// schedule is byte-identical to an untraced one — proptest-pinned).
    pub trace: Option<&'a dyn TraceHandle>,
}

impl EngineCtx<'_> {
    /// Queue indices in priority order.
    pub fn priority(&self) -> Vec<usize> {
        priority_order(self.queue, self.order, self.fairshare)
    }
}

/// A scheduling engine. All callbacks default to no-ops so stateless engines
/// implement only [`Engine::select_starts`].
pub trait Engine {
    /// A job entered the queue (already present in `ctx.queue`).
    fn on_arrival(&mut self, _job: &QueuedJob, _ctx: &EngineCtx<'_>) {}
    /// A previously queued job started (already removed from the queue).
    fn on_start(&mut self, _id: JobId) {}
    /// A running job completed or was killed.
    fn on_complete(&mut self, _id: JobId) {}
    /// Chooses jobs to start *now*. Every returned job must currently fit
    /// (the simulator asserts this) and be returned at most once.
    fn select_starts(&mut self, ctx: &EngineCtx<'_>) -> Vec<JobId>;
}

/// Builds the engine for a policy.
pub fn make_engine(kind: EngineKind) -> Box<dyn Engine> {
    match kind {
        EngineKind::NoGuarantee => Box::new(NoGuaranteeEngine),
        EngineKind::Easy => Box::new(EasyEngine),
        EngineKind::Conservative => Box::new(ConservativeEngine::new(false)),
        EngineKind::ConservativeDynamic => Box::new(ConservativeEngine::new(true)),
        EngineKind::ReservationDepth(depth) => Box::new(DepthEngine::new(depth)),
        EngineKind::FcfsNoBackfill => Box::new(NoBackfillEngine),
    }
}

/// Strict no-backfill scheduling (the paper's Figure 1): jobs start only
/// from the head of the priority queue. A job that is not at the head waits
/// even if the machine could run it right now.
#[derive(Debug, Default)]
pub struct NoBackfillEngine;

impl Engine for NoBackfillEngine {
    fn select_starts(&mut self, ctx: &EngineCtx<'_>) -> Vec<JobId> {
        let mut free = ctx.free_nodes;
        let mut starts = Vec::new();
        // Start strictly from the head: stop at the first job that does not
        // fit (everything behind it must wait regardless of fit).
        for &i in &ctx.priority() {
            let job = &ctx.queue[i];
            if job.nodes <= free {
                starts.push(job.id);
                free -= job.nodes;
                if let Some(t) = ctx.trace {
                    t.emit(TraceRecord::JobStarted {
                        at: ctx.now,
                        job: job.id,
                        nodes: job.nodes,
                        cause: StartCause::Fcfs,
                    });
                }
            } else {
                break;
            }
        }
        starts
    }
}

/// An aggressive reservation: the guarded job starts at `shadow` when
/// `avail_then` nodes free up; backfilled work must either finish by
/// `shadow` or fit in the `extra` nodes the guarded job leaves unused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Reservation {
    shadow: Time,
    extra: u32,
}

/// Computes the aggressive reservation for a `nodes`-wide job given current
/// free nodes and the estimated ends of running work.
fn aggressive_reservation(
    nodes: u32,
    free: u32,
    now: Time,
    ends: &mut [(Time, u32)], // (estimated end, nodes); sorted in place
) -> Reservation {
    debug_assert!(nodes > free, "job that fits needs no reservation");
    ends.sort_unstable();
    let mut avail = free;
    for &(end, n) in ends.iter() {
        avail += n;
        if avail >= nodes {
            return Reservation {
                shadow: end.max(now),
                extra: avail - nodes,
            };
        }
    }
    // Wider than the machine is rejected upstream; this is unreachable for
    // valid traces, but degrade gracefully.
    Reservation {
        shadow: Time::MAX / 4,
        extra: 0,
    }
}

/// Whether a candidate backfill respects an aggressive reservation.
fn respects(job: &QueuedJob, now: Time, res: Option<&mut Reservation>) -> bool {
    match res {
        None => true,
        Some(res) => {
            if now + job.estimate <= res.shadow {
                true
            } else if job.nodes <= res.extra {
                res.extra -= job.nodes;
                true
            } else {
                false
            }
        }
    }
}

/// Greedy backfilling pass shared by the no-guarantee and EASY engines:
/// walk `order` (indices into `ctx.queue`), starting everything that fits
/// and respects the reservation guarding `guard_idx` (if any).
/// `guard_cause` is the [`StartCause`] reported if the guarded job itself
/// starts (it differs between an EASY head and a starvation promotion).
fn greedy_pass(
    ctx: &EngineCtx<'_>,
    order: &[usize],
    guard_idx: Option<usize>,
    guard_cause: StartCause,
) -> Vec<JobId> {
    let mut free = ctx.free_nodes;
    let mut starts = Vec::new();

    // Estimated ends of running work, for the reservation computation.
    // Down nodes count as 1-node occupants until their repair completes.
    let mut ends: Vec<(Time, u32)> = ctx
        .running
        .iter()
        .map(|r| (r.estimated_end(ctx.now), r.nodes))
        .collect();
    ends.extend(ctx.outages.iter().map(|o| (o.until.max(ctx.now + 1), 1)));

    let mut reservation = None;
    let mut guarded_job = None;
    if let Some(g) = guard_idx {
        let head = &ctx.queue[g];
        if head.nodes <= free {
            // The guarded job fits: start it first, unconditionally.
            starts.push(head.id);
            free -= head.nodes;
            ends.push((ctx.now + head.estimate, head.nodes));
            if let Some(t) = ctx.trace {
                t.emit(TraceRecord::JobStarted {
                    at: ctx.now,
                    job: head.id,
                    nodes: head.nodes,
                    cause: guard_cause,
                });
            }
        } else {
            reservation = Some(aggressive_reservation(head.nodes, free, ctx.now, &mut ends));
            guarded_job = Some(head.id);
        }
    }

    // `waiting` (ids, trace-only) and `waiting_ahead` (count, always) track
    // the higher-priority jobs left behind so far: a start with anything
    // ahead of it is a backfill, and the trace names exactly who it jumped.
    let mut waiting: Vec<JobId> = Vec::new();
    let mut waiting_ahead = 0u64;
    let mut examined = 0u64;
    let mut started = 0u64;
    for &i in order {
        let job = &ctx.queue[i];
        if starts.contains(&job.id) {
            continue;
        }
        if Some(job.id) == guarded_job {
            // The guard holds a reservation it could not cash yet: anything
            // that starts past this point in the order bypasses it.
            if ctx.trace.is_some() {
                waiting.push(job.id);
            }
            waiting_ahead += 1;
            continue;
        }
        examined += 1;
        if job.nodes <= free && respects(job, ctx.now, reservation.as_mut()) {
            starts.push(job.id);
            free -= job.nodes;
            started += 1;
            if let Some(t) = ctx.trace {
                let cause = if waiting_ahead == 0 {
                    StartCause::Fcfs
                } else {
                    StartCause::Backfilled {
                        bypassed: waiting.clone(),
                    }
                };
                t.emit(TraceRecord::JobStarted {
                    at: ctx.now,
                    job: job.id,
                    nodes: job.nodes,
                    cause,
                });
            }
        } else {
            if ctx.trace.is_some() {
                waiting.push(job.id);
            }
            waiting_ahead += 1;
        }
    }
    counters::record_backfill(examined, started);
    starts
}

/// The original CPlant engine: no reservations, priority-order greedy
/// starts, with the starvation-queue head (if any) aggressively guarded.
#[derive(Debug, Default)]
pub struct NoGuaranteeEngine;

impl Engine for NoGuaranteeEngine {
    fn select_starts(&mut self, ctx: &EngineCtx<'_>) -> Vec<JobId> {
        let guard = ctx.starvation.and_then(|cfg| {
            starving_jobs(ctx.queue, ctx.now, cfg, ctx.fairshare, ctx.running)
                .first()
                .copied()
        });
        greedy_pass(ctx, &ctx.priority(), guard, StartCause::StarvationGuard)
    }
}

/// Textbook aggressive (EASY) backfilling: the priority-queue head holds the
/// reservation; everything else backfills around it.
#[derive(Debug, Default)]
pub struct EasyEngine;

impl Engine for EasyEngine {
    fn select_starts(&mut self, ctx: &EngineCtx<'_>) -> Vec<JobId> {
        let order = ctx.priority();
        let guard = order.first().copied();
        // A fitting EASY head is just FCFS dispatch; only a *blocked* head
        // turns into a reservation (and then it never appears in `starts`).
        greedy_pass(ctx, &order, guard, StartCause::Fcfs)
    }
}

/// Conservative backfilling, optionally with dynamic reservations.
#[derive(Debug)]
pub struct ConservativeEngine {
    dynamic: bool,
    /// Reserved start per queued job.
    reservations: HashMap<JobId, Time>,
}

impl ConservativeEngine {
    /// `dynamic = false` for §5.3 (keep-unless-better), `true` for §5.4
    /// (rebuild every event).
    pub fn new(dynamic: bool) -> Self {
        ConservativeEngine {
            dynamic,
            reservations: HashMap::new(),
        }
    }

    /// Whether dynamic reservations are on.
    pub fn is_dynamic(&self) -> bool {
        self.dynamic
    }

    /// Reserved start of a queued job (testing/inspection).
    pub fn reservation(&self, id: JobId) -> Option<Time> {
        self.reservations.get(&id).copied()
    }

    /// Profile of running work (estimate-based) plus capacity lost to node
    /// outages: failed nodes step the available capacity down until their
    /// repair time, so reservations never assume them.
    fn running_profile(&self, ctx: &EngineCtx<'_>) -> Profile {
        let mut p = Profile::new(ctx.total_nodes);
        for r in ctx.running {
            p.add(ctx.now, r.estimated_end(ctx.now) - ctx.now, r.nodes);
        }
        for o in ctx.outages {
            p.block_until(ctx.now, o.until, 1);
        }
        p
    }

    /// §5.4: discard everything, rebuild reservations in priority order.
    fn rebuild(&mut self, ctx: &EngineCtx<'_>) {
        // Tracing compares against the pre-rebuild reservations to report
        // shifts; the extra map only exists on traced runs.
        let old = ctx.trace.map(|_| std::mem::take(&mut self.reservations));
        self.reservations.clear();
        let mut profile = self.running_profile(ctx);
        for &i in &ctx.priority() {
            let job = &ctx.queue[i];
            let start = profile
                .earliest_start(ctx.now, job.nodes, job.estimate)
                .unwrap_or(FAR_FUTURE);
            profile.add(start, job.estimate, job.nodes);
            if let (Some(t), Some(old)) = (ctx.trace, old.as_ref()) {
                match old.get(&job.id).copied() {
                    // The on_arrival placeholder (or a fresh job) gets its
                    // first real slot now.
                    Some(prev) if prev >= FAR_FUTURE => t.emit(TraceRecord::ReservationMade {
                        at: ctx.now,
                        job: job.id,
                        start,
                    }),
                    Some(prev) if prev != start => t.emit(TraceRecord::ReservationShifted {
                        at: ctx.now,
                        job: job.id,
                        from: prev,
                        to: start,
                    }),
                    Some(_) => {}
                    None => t.emit(TraceRecord::ReservationMade {
                        at: ctx.now,
                        job: job.id,
                        start,
                    }),
                }
            }
            self.reservations.insert(job.id, start);
        }
    }

    /// §5.3: each job, in priority order, tries to improve its reservation
    /// within the current profile; it never relinquishes a reservation for a
    /// worse one.
    fn improve(&mut self, ctx: &EngineCtx<'_>) {
        let mut profile = self.running_profile(ctx);
        // Seed with every queued job's current reservation. A job without
        // one (possible only when callers drive the engine by hand) is
        // treated as reserved at the far future, so it simply gets a fresh
        // earliest fit below.
        for job in ctx.queue {
            let start = self
                .reservations
                .get(&job.id)
                .copied()
                .unwrap_or(FAR_FUTURE)
                .max(ctx.now);
            profile.add(start, job.estimate, job.nodes);
        }
        for &i in &ctx.priority() {
            let job = &ctx.queue[i];
            let old = self
                .reservations
                .get(&job.id)
                .copied()
                .unwrap_or(FAR_FUTURE)
                .max(ctx.now);
            profile.remove(old, job.estimate, job.nodes);
            let chosen = match profile.earliest_start(ctx.now, job.nodes, job.estimate) {
                Some(fresh) => fresh.min(old),
                None => old,
            };
            profile.add(chosen, job.estimate, job.nodes);
            if let Some(t) = ctx.trace {
                if old >= FAR_FUTURE && chosen < FAR_FUTURE {
                    t.emit(TraceRecord::ReservationMade {
                        at: ctx.now,
                        job: job.id,
                        start: chosen,
                    });
                } else if old < FAR_FUTURE && chosen != old {
                    // §5.3 improvement only ever moves a reservation
                    // backward; forward slippage comes from §5.4 rebuilds.
                    t.emit(TraceRecord::ReservationShifted {
                        at: ctx.now,
                        job: job.id,
                        from: old,
                        to: chosen,
                    });
                }
            }
            self.reservations.insert(job.id, chosen);
        }
    }
}

impl Engine for ConservativeEngine {
    fn on_arrival(&mut self, job: &QueuedJob, ctx: &EngineCtx<'_>) {
        if self.dynamic {
            // Reservations are rebuilt wholesale in `select_starts`.
            self.reservations.insert(job.id, Time::MAX / 4);
            return;
        }
        // Earliest hole in the profile of running work plus every existing
        // reservation (the arriving job is already in ctx.queue; skip it).
        let mut profile = self.running_profile(ctx);
        for q in ctx.queue {
            // Skip the arriving job itself, and any sibling that has not
            // been reserved yet (simultaneous arrivals are delivered one at
            // a time; the unreserved sibling's own on_arrival follows).
            let Some(&start) = self.reservations.get(&q.id) else {
                continue;
            };
            if q.id == job.id {
                continue;
            }
            profile.add(start.max(ctx.now), q.estimate, q.nodes);
        }
        let start = profile
            .earliest_start(ctx.now, job.nodes, job.estimate)
            .unwrap_or(FAR_FUTURE);
        if let Some(t) = ctx.trace {
            if start < FAR_FUTURE {
                t.emit(TraceRecord::ReservationMade {
                    at: ctx.now,
                    job: job.id,
                    start,
                });
            }
        }
        self.reservations.insert(job.id, start);
    }

    fn on_start(&mut self, id: JobId) {
        self.reservations.remove(&id);
    }

    fn select_starts(&mut self, ctx: &EngineCtx<'_>) -> Vec<JobId> {
        if ctx.queue.is_empty() {
            self.reservations.clear();
            return Vec::new();
        }
        if self.dynamic {
            self.rebuild(ctx);
        } else {
            self.improve(ctx);
        }
        let mut free = ctx.free_nodes;
        let mut starts = Vec::new();
        let mut waiting: Vec<JobId> = Vec::new();
        let mut waiting_ahead = 0u64;
        for &i in &ctx.priority() {
            let job = &ctx.queue[i];
            if self.reservations[&job.id] <= ctx.now && job.nodes <= free {
                starts.push(job.id);
                free -= job.nodes;
                if let Some(t) = ctx.trace {
                    // A conservative start is its reservation coming due;
                    // with higher-priority work still waiting it is also
                    // the backfill the paper blames for unfairness.
                    let cause = if waiting_ahead == 0 {
                        StartCause::Reservation
                    } else {
                        StartCause::Backfilled {
                            bypassed: waiting.clone(),
                        }
                    };
                    t.emit(TraceRecord::JobStarted {
                        at: ctx.now,
                        job: job.id,
                        nodes: job.nodes,
                        cause,
                    });
                }
            } else {
                if ctx.trace.is_some() {
                    waiting.push(job.id);
                }
                waiting_ahead += 1;
            }
        }
        starts
    }
}

/// Reservation-depth backfilling: the first `depth` jobs in priority order
/// hold reservations, rebuilt from scratch at every scheduling event (like
/// dynamic conservative, but only to depth `n`); deeper jobs backfill
/// greedily as long as they fit the profile *right now* — which is exactly
/// the condition for not delaying any reserved job.
#[derive(Debug)]
pub struct DepthEngine {
    depth: u32,
}

impl DepthEngine {
    /// An engine reserving the first `depth` priority-ordered jobs.
    pub fn new(depth: u32) -> Self {
        DepthEngine { depth }
    }

    /// The configured depth.
    pub fn depth(&self) -> u32 {
        self.depth
    }
}

impl Engine for DepthEngine {
    fn select_starts(&mut self, ctx: &EngineCtx<'_>) -> Vec<JobId> {
        let mut profile = Profile::new(ctx.total_nodes);
        for r in ctx.running {
            profile.add(ctx.now, r.estimated_end(ctx.now) - ctx.now, r.nodes);
        }
        for o in ctx.outages {
            profile.block_until(ctx.now, o.until, 1);
        }
        let mut free = ctx.free_nodes;
        let mut starts = Vec::new();
        let mut waiting: Vec<JobId> = Vec::new();
        let mut waiting_ahead = 0u64;
        let mut examined = 0u64;
        let mut started = 0u64;
        for (rank, &i) in ctx.priority().iter().enumerate() {
            let job = &ctx.queue[i];
            let reserved = (rank as u32) < self.depth;
            examined += 1;
            let Some(start) = profile.earliest_start(ctx.now, job.nodes, job.estimate) else {
                // Wider than the machine: can never start and holds no slot.
                continue;
            };
            if start == ctx.now && job.nodes <= free {
                starts.push(job.id);
                free -= job.nodes;
                started += 1;
                profile.add(ctx.now, job.estimate, job.nodes);
                if let Some(t) = ctx.trace {
                    let cause = if waiting_ahead == 0 {
                        StartCause::Fcfs
                    } else {
                        StartCause::Backfilled {
                            bypassed: waiting.clone(),
                        }
                    };
                    t.emit(TraceRecord::JobStarted {
                        at: ctx.now,
                        job: job.id,
                        nodes: job.nodes,
                        cause,
                    });
                }
            } else {
                if reserved {
                    // Hold the slot: deeper jobs must schedule around it.
                    profile.add(start, job.estimate, job.nodes);
                }
                // Unreserved jobs that don't fit now simply wait; they
                // claim nothing in the profile.
                if ctx.trace.is_some() {
                    waiting.push(job.id);
                }
                waiting_ahead += 1;
            }
        }
        counters::record_backfill(examined, started);
        starts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FairshareConfig;
    use fairsched_workload::job::UserId;
    use fairsched_workload::time::HOUR;

    fn queued(id: u32, user: u32, nodes: u32, estimate: Time, arrival: Time) -> QueuedJob {
        QueuedJob {
            id: JobId(id),
            user: UserId(user),
            nodes,
            estimate,
            arrival,
        }
    }

    fn running(id: u32, nodes: u32, start: Time, estimate: Time) -> RunningJob {
        RunningJob {
            id: JobId(id),
            user: UserId(99),
            nodes,
            start,
            estimate,
            scheduled_end: start + estimate,
        }
    }

    fn ctx<'a>(
        now: Time,
        total: u32,
        running: &'a [RunningJob],
        queue: &'a [QueuedJob],
        fairshare: &'a FairshareTracker,
        starvation: Option<&'a StarvationConfig>,
    ) -> EngineCtx<'a> {
        let used: u32 = running.iter().map(|r| r.nodes).sum();
        EngineCtx {
            now,
            free_nodes: total - used,
            total_nodes: total,
            running,
            queue,
            fairshare,
            order: QueueOrder::Fairshare,
            starvation,
            outages: &[],
            trace: None,
        }
    }

    fn fs() -> FairshareTracker {
        FairshareTracker::new(FairshareConfig::default())
    }

    #[test]
    fn no_guarantee_starts_everything_that_fits_in_priority_order() {
        let fs = fs();
        let queue = vec![
            queued(1, 1, 6, 100, 0),
            queued(2, 2, 3, 100, 1),
            queued(3, 3, 4, 100, 2),
        ];
        let mut engine = NoGuaranteeEngine;
        let c = ctx(10, 10, &[], &queue, &fs, None);
        // 10 free: job1 (6) + job2 (3) fit; job3 (4) does not after them.
        assert_eq!(engine.select_starts(&c), vec![JobId(1), JobId(2)]);
    }

    #[test]
    fn no_guarantee_lets_narrow_jobs_leapfrog_wide_ones() {
        // The unfairness the paper describes: a wide high-priority job waits
        // while narrow lower-priority jobs start.
        let fs = fs();
        let running = vec![running(90, 6, 0, 1000)];
        let queue = vec![
            queued(1, 1, 8, 100, 0), // wide, needs 8, only 4 free
            queued(2, 2, 2, 100, 1), // narrow
        ];
        let mut engine = NoGuaranteeEngine;
        let c = ctx(10, 10, &running, &queue, &fs, None);
        assert_eq!(engine.select_starts(&c), vec![JobId(2)]);
    }

    #[test]
    fn starvation_head_reservation_blocks_delaying_backfills() {
        let fs = fs();
        // 6 of 10 nodes busy until t = 1000 (estimate).
        let runners = vec![running(90, 6, 0, 1000)];
        // Wide job has starved (arrived at 0, now 24h later).
        let now = 24 * HOUR;
        let cfg = StarvationConfig {
            entry_delay: 24 * HOUR,
            heavy_rule: None,
        };
        let long_estimate = 2000 * HOUR; // would delay the shadow
        let queue = vec![
            queued(1, 1, 8, 100, 0),             // starving, wide
            queued(2, 2, 4, long_estimate, now), // fits free nodes but delays head
            queued(3, 3, 2, long_estimate, now), // fits in extra (10-8=2)
        ];
        let mut engine = NoGuaranteeEngine;
        let c = ctx(now, 10, &runners, &queue, &fs, Some(&cfg));
        // Shadow = runner's estimated end; extra = (4 free + 6 freed) - 8 = 2.
        // Job2 (4 nodes, long) violates; job3 (2 nodes) fits in extra.
        assert_eq!(engine.select_starts(&c), vec![JobId(3)]);
    }

    #[test]
    fn without_starvation_queue_the_same_backfill_is_allowed() {
        let fs = fs();
        let runners = vec![running(90, 6, 0, 1000)];
        let now = 24 * HOUR;
        let queue = vec![queued(1, 1, 8, 100, 0), queued(2, 2, 4, 2000 * HOUR, now)];
        let mut engine = NoGuaranteeEngine;
        let c = ctx(now, 10, &runners, &queue, &fs, None);
        assert_eq!(engine.select_starts(&c), vec![JobId(2)]);
    }

    #[test]
    fn short_backfills_under_the_shadow_are_allowed() {
        let fs = fs();
        let runners = vec![running(90, 6, 0, 1000)];
        let now = 24 * HOUR;
        let cfg = StarvationConfig {
            entry_delay: 24 * HOUR,
            heavy_rule: None,
        };
        // Runner end estimate: started at 0 with estimate 1000 → overdue,
        // estimated end = now + 1. Use a fresh runner instead.
        let runners2 = vec![running(90, 6, now, 1000)];
        drop(runners);
        let queue = vec![
            queued(1, 1, 8, 100, 0),   // starving head
            queued(2, 2, 4, 500, now), // ends before shadow (now+1000)
        ];
        let mut engine = NoGuaranteeEngine;
        let c = ctx(now, 10, &runners2, &queue, &fs, Some(&cfg));
        assert_eq!(engine.select_starts(&c), vec![JobId(2)]);
    }

    #[test]
    fn starving_head_starts_when_it_fits() {
        let fs = fs();
        let now = 24 * HOUR;
        let cfg = StarvationConfig {
            entry_delay: 24 * HOUR,
            heavy_rule: None,
        };
        let queue = vec![queued(1, 1, 8, 100, 0), queued(2, 2, 2, 100, now)];
        let mut engine = NoGuaranteeEngine;
        let c = ctx(now, 10, &[], &queue, &fs, Some(&cfg));
        assert_eq!(engine.select_starts(&c), vec![JobId(1), JobId(2)]);
    }

    #[test]
    fn easy_guards_the_priority_head() {
        let mut fs = fs();
        // User 1 heavy → its wide job is LOW priority; user 2's job heads
        // the queue.
        fs.charge(UserId(1), 1e9);
        let runners = vec![running(90, 6, 0, 1000)];
        let queue = vec![
            queued(1, 1, 2, 50, 0),  // low priority, fits
            queued(2, 2, 8, 100, 5), // priority head, needs 8 (4 free)
        ];
        let mut engine = EasyEngine;
        let c = ctx(10, 10, &runners, &queue, &fs, None);
        // Head (job2) can't start; job1 (2 nodes ≤ extra = 10-8=2) backfills.
        assert_eq!(engine.select_starts(&c), vec![JobId(1)]);
    }

    #[test]
    fn conservative_reserves_on_arrival_and_starts_when_due() {
        let fs = fs();
        let runners = vec![running(90, 10, 0, 1000)];
        let queue = vec![queued(1, 1, 4, 100, 10)];
        let mut engine = ConservativeEngine::new(false);
        let c = ctx(10, 10, &runners, &queue, &fs, None);
        engine.on_arrival(&queue[0], &c);
        // Machine full until 1000: reserved at 1000.
        assert_eq!(engine.reservation(JobId(1)), Some(1000));
        assert!(engine.select_starts(&c).is_empty());
    }

    #[test]
    fn conservative_backfills_into_profile_holes() {
        let fs = fs();
        let runners = vec![running(90, 6, 0, 1000)];
        // Wide job reserved at 1000 leaves 4 nodes free until then.
        let queue1 = vec![queued(1, 1, 8, 500, 10)];
        let mut engine = ConservativeEngine::new(false);
        let c1 = ctx(10, 10, &runners, &queue1, &fs, None);
        engine.on_arrival(&queue1[0], &c1);
        assert_eq!(engine.reservation(JobId(1)), Some(1000));

        // A 4-node job ending before 1000 slots in front.
        let queue2 = vec![queued(1, 1, 8, 500, 10), queued(2, 2, 4, 500, 20)];
        let c2 = ctx(20, 10, &runners, &queue2, &fs, None);
        engine.on_arrival(&queue2[1], &c2);
        assert_eq!(engine.reservation(JobId(2)), Some(20));
        // And a 4-node job too LONG to finish by 1000 cannot jump the wide
        // job: 4 free now, but at 1000 the wide job needs 8 of 10.
        let queue3 = vec![
            queued(1, 1, 8, 500, 10),
            queued(2, 2, 4, 500, 20),
            queued(3, 3, 4, 5000, 30),
        ];
        let c3 = ctx(30, 10, &runners, &queue3, &fs, None);
        engine.on_arrival(&queue3[2], &c3);
        // Job3 must wait until the wide job's reserved block ends (1500).
        assert_eq!(engine.reservation(JobId(3)), Some(1500));
    }

    #[test]
    fn conservative_select_starts_due_reservations() {
        let fs = fs();
        let queue = vec![queued(1, 1, 4, 100, 0)];
        let mut engine = ConservativeEngine::new(false);
        let c = ctx(0, 10, &[], &queue, &fs, None);
        engine.on_arrival(&queue[0], &c);
        assert_eq!(engine.reservation(JobId(1)), Some(0));
        assert_eq!(engine.select_starts(&c), vec![JobId(1)]);
        engine.on_start(JobId(1));
        assert_eq!(engine.reservation(JobId(1)), None);
    }

    #[test]
    fn conservative_compression_improves_after_completion() {
        let fs = fs();
        // Runner holds 10 nodes with estimate to 1000.
        let runners = vec![running(90, 10, 0, 1000)];
        let queue = vec![queued(1, 1, 4, 100, 10)];
        let mut engine = ConservativeEngine::new(false);
        let c = ctx(10, 10, &runners, &queue, &fs, None);
        engine.on_arrival(&queue[0], &c);
        assert_eq!(engine.reservation(JobId(1)), Some(1000));
        // The runner finishes early at t=200: improvement finds t=200.
        let c2 = ctx(200, 10, &[], &queue, &fs, None);
        let starts = engine.select_starts(&c2);
        assert_eq!(starts, vec![JobId(1)]);
        assert_eq!(engine.reservation(JobId(1)), Some(200));
    }

    #[test]
    fn dynamic_rebuild_reorders_by_current_priority() {
        let mut fs = fs();
        // job1's user becomes heavy AFTER its arrival.
        let runners = vec![running(90, 10, 0, 1000)];
        let queue = vec![queued(1, 1, 10, 100, 10), queued(2, 2, 10, 100, 20)];
        let mut engine = ConservativeEngine::new(true);
        let c = ctx(20, 10, &runners, &queue, &fs, None);
        engine.on_arrival(&queue[0], &c);
        engine.on_arrival(&queue[1], &c);
        engine.select_starts(&c);
        // Equal usage: FCFS tie-break → job1 first (1000), job2 second (1100).
        assert_eq!(engine.reservation(JobId(1)), Some(1000));
        assert_eq!(engine.reservation(JobId(2)), Some(1100));
        // Now user 1 becomes heavy: dynamic rebuild flips the order.
        fs.charge(UserId(1), 1e9);
        let c2 = ctx(30, 10, &runners, &queue, &fs, None);
        engine.select_starts(&c2);
        assert_eq!(engine.reservation(JobId(2)), Some(1000));
        assert_eq!(engine.reservation(JobId(1)), Some(1100));
    }

    #[test]
    fn non_dynamic_keeps_reservations_against_priority_flips() {
        let mut fs = fs();
        let runners = vec![running(90, 10, 0, 1000)];
        let queue = vec![queued(1, 1, 10, 100, 10), queued(2, 2, 10, 100, 20)];
        let mut engine = ConservativeEngine::new(false);
        let c = ctx(20, 10, &runners, &queue, &fs, None);
        engine.on_arrival(&queue[0], &c);
        engine.on_arrival(&queue[1], &c);
        // job1 reserved at 1000, job2 at 1100.
        fs.charge(UserId(1), 1e9);
        let c2 = ctx(30, 10, &runners, &queue, &fs, None);
        engine.select_starts(&c2);
        // §5.3: job1 keeps its (better) reservation despite its user's
        // priority collapse; job2 cannot improve past it.
        assert_eq!(engine.reservation(JobId(1)), Some(1000));
        assert_eq!(engine.reservation(JobId(2)), Some(1100));
    }

    #[test]
    fn no_backfill_blocks_everything_behind_a_stuck_head() {
        // Figure 1's exact scenario: jobB fits beside the running work but
        // must wait because jobA heads the queue.
        let fs = fs();
        let runners = vec![running(90, 6, 0, 1000)];
        let queue = vec![
            queued(1, 1, 8, 100, 0), // jobA: needs 8, only 4 free
            queued(2, 2, 4, 30, 1),  // jobB: fits, but is not the head
        ];
        let mut engine = NoBackfillEngine;
        let c = ctx(10, 10, &runners, &queue, &fs, None);
        assert_eq!(engine.select_starts(&c), Vec::<JobId>::new());
    }

    #[test]
    fn no_backfill_starts_consecutive_fitting_heads() {
        let fs = fs();
        let queue = vec![
            queued(1, 1, 4, 100, 0),
            queued(2, 2, 4, 100, 1),
            queued(3, 3, 8, 100, 2), // does not fit after 1 and 2
            queued(4, 4, 1, 100, 3), // fits but is behind the stuck job 3
        ];
        let mut engine = NoBackfillEngine;
        let c = ctx(0, 10, &[], &queue, &fs, None);
        assert_eq!(engine.select_starts(&c), vec![JobId(1), JobId(2)]);
    }

    #[test]
    fn depth_zero_is_pure_greedy_backfilling() {
        let fs = fs();
        let runners = vec![running(90, 6, 0, 1000)];
        let queue = vec![
            queued(1, 1, 8, 100, 0),          // priority head, doesn't fit
            queued(2, 2, 4, 2000 * HOUR, 10), // would delay the head's slot
        ];
        let mut engine = DepthEngine::new(0);
        let c = ctx(10, 10, &runners, &queue, &fs, None);
        // No reservations: the long narrow job starts anyway.
        assert_eq!(engine.select_starts(&c), vec![JobId(2)]);
    }

    #[test]
    fn depth_one_protects_the_priority_head_like_easy() {
        let fs = fs();
        let runners = vec![running(90, 6, 10, 1000)];
        let queue = vec![
            queued(1, 1, 8, 100, 0),          // reserved at the runner's end
            queued(2, 2, 4, 2000 * HOUR, 10), // would overlap the reservation
            queued(3, 3, 4, 500, 10),         // fits before the reservation
        ];
        let mut engine = DepthEngine::new(1);
        let c = ctx(10, 10, &runners, &queue, &fs, None);
        // Job 1 reserved at 1010 (8 of 10 nodes). Job 2 (4 nodes ending far
        // past 1010) collides with it; job 3 ends at 510 < 1010 and fits.
        assert_eq!(engine.select_starts(&c), vec![JobId(3)]);
    }

    #[test]
    fn deep_reservations_protect_multiple_jobs() {
        let fs = fs();
        let runners = vec![running(90, 10, 10, 990)]; // machine full till 1000
        let queue = vec![
            queued(1, 1, 10, 100, 0), // reserved [1000, 1100)
            queued(2, 2, 10, 100, 1), // reserved [1100, 1200) at depth 2
            queued(3, 3, 1, 2000, 2), // would delay job 2 but not job 1
        ];
        let c = ctx(10, 10, &runners, &queue, &fs, None);
        // Depth 2: job 3 (ends at 2010, overlapping both reservations on a
        // full profile) cannot start.
        let mut deep = DepthEngine::new(2);
        assert_eq!(deep.select_starts(&c), Vec::<JobId>::new());
        // Depth 1: only job 1 is protected; job 3 still cannot start — the
        // profile during [1000,1100) is full with job 1's 10 nodes.
        let mut shallow = DepthEngine::new(1);
        assert_eq!(shallow.select_starts(&c), Vec::<JobId>::new());
        // Depth 0: nothing is protected; job 3 starts immediately? No — the
        // machine is FULL now (free = 0), so nothing starts either way.
        let mut none = DepthEngine::new(0);
        assert_eq!(none.select_starts(&c), Vec::<JobId>::new());
    }

    #[test]
    fn depth_engine_starts_everything_on_an_empty_machine() {
        let fs = fs();
        let queue = vec![queued(1, 1, 4, 100, 0), queued(2, 2, 6, 100, 1)];
        let mut engine = DepthEngine::new(3);
        let c = ctx(0, 10, &[], &queue, &fs, None);
        assert_eq!(engine.select_starts(&c), vec![JobId(1), JobId(2)]);
    }

    #[test]
    fn conservative_reservations_respect_node_outages() {
        let fs = fs();
        // 10-node machine, empty, but 4 nodes are down until t = 1000: an
        // 8-node job cannot be promised anything before the repairs land.
        let outages: Vec<Outage> = (0..4).map(|seq| Outage { seq, until: 1000 }).collect();
        let queue = vec![queued(1, 1, 8, 100, 10)];
        let c = EngineCtx {
            now: 10,
            free_nodes: 6,
            total_nodes: 10,
            running: &[],
            queue: &queue,
            fairshare: &fs,
            order: QueueOrder::Fairshare,
            starvation: None,
            outages: &outages,
            trace: None,
        };
        let mut engine = ConservativeEngine::new(false);
        engine.on_arrival(&queue[0], &c);
        assert_eq!(engine.reservation(JobId(1)), Some(1000));
        assert!(engine.select_starts(&c).is_empty());
    }

    #[test]
    fn greedy_guard_shadow_accounts_for_outages() {
        let fs = fs();
        // Starving 8-node head; 4 nodes down until t well past any backfill
        // window plus 2 running until 1000. free = 4.
        let now = 24 * HOUR;
        let cfg = StarvationConfig {
            entry_delay: 24 * HOUR,
            heavy_rule: None,
        };
        let runners = vec![running(90, 2, now, 1000)];
        let outages: Vec<Outage> = (0..4)
            .map(|seq| Outage {
                seq,
                until: now + 50_000,
            })
            .collect();
        let queue = vec![
            queued(1, 1, 8, 100, 0),      // starving head: 8 > 4 free
            queued(2, 2, 4, 40_000, now), // would end before the repairs
            queued(3, 3, 4, 60_000, now), // would delay the head
        ];
        let c = EngineCtx {
            now,
            free_nodes: 4,
            total_nodes: 10,
            running: &runners,
            queue: &queue,
            fairshare: &fs,
            order: QueueOrder::Fairshare,
            starvation: Some(&cfg),
            outages: &outages,
            trace: None,
        };
        let mut engine = NoGuaranteeEngine;
        // Head needs 8: free 4 + 2 at now+1000 = 6, + repairs at now+50000
        // reach 10 → shadow = now+50000, extra = 2. Job 2 (ends now+40000
        // ≤ shadow) backfills; job 3 (ends past the shadow, 4 > extra)
        // must not.
        assert_eq!(engine.select_starts(&c), vec![JobId(2)]);
    }

    #[test]
    fn reservation_math_for_aggressive_guard() {
        let mut ends = vec![(500, 3), (200, 3)];
        let r = aggressive_reservation(8, 4, 0, &mut ends);
        // free 4 + 3 at 200 = 7 < 8; + 3 at 500 = 10 ≥ 8 → shadow 500, extra 2.
        assert_eq!(
            r,
            Reservation {
                shadow: 500,
                extra: 2
            }
        );
    }
}
