//! Simulator configuration: machine size, fairshare decay, kill policy,
//! runtime limits, starvation queue, and engine selection.

use crate::faults::FaultConfig;
use fairsched_workload::time::{Time, DAY, HOUR};

/// Which backfilling engine drives the schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// The original CPlant scheduler: no internal reservations; the queue is
    /// walked in priority order at every event and anything that fits starts.
    /// A starvation queue (configured separately) guards wide jobs.
    NoGuarantee,
    /// Aggressive (EASY) backfilling: only the head of the priority queue
    /// holds a reservation; other jobs backfill around it. Not one of the
    /// paper's nine policies but described in its introduction; included as
    /// a comparison point.
    Easy,
    /// Conservative backfilling (§5.3): every job gets a reservation on
    /// arrival and may only ever improve it. With `dynamic: true` (§5.4),
    /// all reservations are instead discarded and rebuilt in priority order
    /// at every scheduling event.
    Conservative {
        /// Dynamic (§5.4) reservations when `true`.
        dynamic: bool,
    },
    /// Reservation-depth backfilling: the first `n` jobs in priority order
    /// hold reservations (rebuilt each event); everything else may only
    /// start if it provably delays none of them. §1 notes that "many
    /// production schedulers use variations between conservative and
    /// aggressive backfilling, giving the first n jobs in the queue a
    /// reservation" — this is that family. `ReservationDepth(0)` degenerates
    /// to pure no-guarantee backfilling (without a starvation queue);
    /// a depth beyond the queue length behaves like dynamic conservative.
    ReservationDepth(u32),
    /// Strict FCFS without backfilling — the paper's Figure 1 strawman: only
    /// the head of the priority queue may start, so a blocked head idles the
    /// whole machine behind it. "Fair" in the social-justice sense but with
    /// poor utilization and turnaround (§1); included as the reference point
    /// those claims are measured against.
    FcfsNoBackfill,
    /// FSP (fair sojourn protocol): the queue is walked in virtual
    /// completion order of a processor-sharing "virtual fair schedule" —
    /// each queued job's virtual remaining size (`nodes × estimate`) drains
    /// in proportion to its fair share — with the virtual head holding an
    /// EASY-style aggressive guard. Not one of the paper's nine; added to
    /// rank the size-based family on the same hybrid-FST metric.
    Fsp,
    /// LAS (least attained service) across users: ascending undecayed
    /// node-seconds executed per user, the virtual head guarded as in EASY.
    Las,
    /// HFSP: FSP plus an arrival-age credit blended into the virtual size,
    /// so systematic size over-estimation cannot starve old jobs.
    Hfsp,
}

impl EngineKind {
    /// One representative per variant, covering both payloads of
    /// `Conservative`. The list is pinned to the enum by the exhaustive
    /// match in [`crate::prefix::warm_start_forkable`]: adding a variant
    /// without extending both is a compile error there and a test failure
    /// here (`tests/single_pass.rs` checks warm ≡ cold over this list).
    pub fn representatives() -> Vec<EngineKind> {
        vec![
            EngineKind::NoGuarantee,
            EngineKind::Easy,
            EngineKind::Conservative { dynamic: false },
            EngineKind::Conservative { dynamic: true },
            EngineKind::ReservationDepth(2),
            EngineKind::FcfsNoBackfill,
            EngineKind::Fsp,
            EngineKind::Las,
            EngineKind::Hfsp,
        ]
    }
}

/// Queue priority order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueueOrder {
    /// First-come-first-serve by (arrival, id).
    Fcfs,
    /// Sandia's fairshare: ascending decayed processor-seconds of the
    /// submitting user, ties by (arrival, id).
    Fairshare,
}

/// Fairshare decay parameters (§2.1: "a historical sum of processor-seconds
/// used that decayed every 24 hours").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FairshareConfig {
    /// How often the decay is applied (CPlant: daily).
    pub decay_interval: Time,
    /// Multiplier applied to every user's accumulated usage at each
    /// interval. 0.5 halves usage daily; 1.0 disables decay.
    pub decay_factor: f64,
}

impl Default for FairshareConfig {
    fn default() -> Self {
        FairshareConfig {
            decay_interval: DAY,
            decay_factor: 0.5,
        }
    }
}

/// What happens when a running job reaches its wall-clock limit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KillPolicy {
    /// Kill exactly at the limit (most production schedulers).
    AtWcl,
    /// CPlant's custom behaviour (§2.2): kill at the limit only if queued
    /// work wants the processors; otherwise let the job run on and kill it
    /// the moment demand appears.
    WhenNeeded,
    /// Never kill (clairvoyant baseline; limits become pure metadata).
    Never,
}

/// Starvation-queue configuration for the no-guarantee engine (§2.1, §5.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StarvationConfig {
    /// Queue wait after which a job becomes starvation-eligible
    /// (24 h originally; §5.5 policy 1 raises it to 72 h).
    pub entry_delay: Time,
    /// When set, jobs from "heavy" users are barred from the starvation
    /// queue (§5.2 / §5.5 policy 2).
    pub heavy_rule: Option<HeavyUserRule>,
}

impl Default for StarvationConfig {
    fn default() -> Self {
        StarvationConfig {
            entry_delay: 24 * HOUR,
            heavy_rule: None,
        }
    }
}

/// Classifies "heavy"/"unfair" users: a user whose decayed fairshare usage
/// exceeds `mean_multiple ×` the mean usage across currently *active* users
/// (those with queued or running work) is heavy. The paper leaves the exact
/// rule unstated; a relative rule adapts to load and is the natural reading
/// of "heavy users" under a decaying-usage priority.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeavyUserRule {
    /// Multiple of mean active-user usage above which a user is heavy.
    pub mean_multiple: f64,
}

impl Default for HeavyUserRule {
    fn default() -> Self {
        HeavyUserRule { mean_multiple: 2.0 }
    }
}

/// Maximum-runtime (chunking) policy (§5.1): jobs whose wall-clock request
/// exceeds `limit` must be submitted as a chain of `≤ limit` chunks; each
/// chunk is resubmitted when its predecessor finishes (users had checkpoint
/// and restart scripts, so no work is lost).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeLimit {
    /// Maximum contiguous runtime per submission.
    pub limit: Time,
}

/// How nodes are physically assigned to started jobs.
///
/// Scheduling decisions (who starts when) are identical under both models —
/// the CPA never refuses a job that fits by count. The linear model
/// additionally tracks *which* nodes each job gets, so the schedule can
/// report placement quality (the CPA's objective).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocationModel {
    /// Capacity-only accounting (the paper's simulator; the default).
    Counting,
    /// 1-D placement via the Compute Process Allocator with the given
    /// strategy; the schedule carries placement statistics.
    Linear(fairsched_cpa::PlacementStrategy),
}

/// Full simulator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Machine size in nodes.
    pub nodes: u32,
    /// Which backfilling engine drives the schedule.
    pub engine: EngineKind,
    /// Queue priority order.
    pub order: QueueOrder,
    /// Fairshare decay parameters (used when `order` is `Fairshare`, and by
    /// heavy-user classification regardless).
    pub fairshare: FairshareConfig,
    /// Wall-clock-limit kill behaviour.
    pub kill: KillPolicy,
    /// Starvation queue (only meaningful for `EngineKind::NoGuarantee`).
    pub starvation: Option<StarvationConfig>,
    /// Maximum-runtime chunking, if any.
    pub runtime_limit: Option<RuntimeLimit>,
    /// Node-assignment model (counting by default).
    pub allocation: AllocationModel,
    /// Closed-loop user feedback: at most this many of a user's jobs may be
    /// in the system (queued or running) at once; further submissions are
    /// deferred until one finishes. Models §2.2's observation that "users
    /// submit fewer jobs due to the extremely high queue lengths" — the
    /// mechanism behind Figure 3's post-burst lulls. `None` (the default)
    /// replays the trace open-loop, exactly as the paper's simulator does.
    pub user_concurrency: Option<u32>,
    /// Fault injection: seeded node outages and job crashes, plus the
    /// resilience policy for crashed work. The default injects nothing and
    /// is guaranteed byte-identical to a fault-free run.
    pub faults: FaultConfig,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            nodes: fairsched_workload::synthetic::DEFAULT_NODES,
            engine: EngineKind::NoGuarantee,
            order: QueueOrder::Fairshare,
            fairshare: FairshareConfig::default(),
            kill: KillPolicy::WhenNeeded,
            starvation: Some(StarvationConfig::default()),
            runtime_limit: None,
            allocation: AllocationModel::Counting,
            user_concurrency: None,
            faults: FaultConfig::default(),
        }
    }
}

impl SimConfig {
    /// The original CPlant configuration: fairshare order, no-guarantee
    /// backfilling support structures, 24 h starvation entry, lazy kill.
    pub fn cplant_baseline(nodes: u32) -> Self {
        SimConfig {
            nodes,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper_baseline() {
        let c = SimConfig::default();
        assert_eq!(c.order, QueueOrder::Fairshare);
        assert_eq!(c.kill, KillPolicy::WhenNeeded);
        assert_eq!(c.fairshare.decay_interval, DAY);
        let s = c.starvation.unwrap();
        assert_eq!(s.entry_delay, 24 * HOUR);
        assert!(s.heavy_rule.is_none());
        assert!(c.runtime_limit.is_none());
    }

    #[test]
    fn cplant_baseline_sets_machine_size() {
        let c = SimConfig::cplant_baseline(512);
        assert_eq!(c.nodes, 512);
        assert_eq!(c.order, QueueOrder::Fairshare);
    }
}
