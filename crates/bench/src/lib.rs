//! # fairsched-bench
//!
//! Shared fixtures for the Criterion benchmark suite. Each bench target
//! covers one group of the paper's artifacts:
//!
//! | bench target | paper artifacts | what is measured |
//! |---|---|---|
//! | `workload_benches` | Tables 1–2, Figures 3–7 | trace generation, SWF round-trip, category/characterization recomputation |
//! | `policy_benches` | Figures 8–13 | the five "minor change" policy simulations with fairness scoring |
//! | `conservative_benches` | Figures 14–19 | the conservative/dynamic engines and the full nine-policy sweep |
//! | `metric_benches` | §4 metrics | hybrid FST observation, CONS_P, resource equality, list-scheduler and profile kernels |
//! | `ablation_benches` | DESIGN.md ablations | fairshare decay factor, starvation entry delay, runtime-limit value, machine size |
//! | `single_pass_benches` | DESIGN.md metric engine | warm-start vs from-scratch Sabin FST, fenced sweep, one-run report collection |
//! | `obs_benches` | DESIGN.md observability | trace-off vs traced simulation, profiled policy runs, counter fast path, explain/JSONL replay |
//!
//! Benchmarks run on a **scaled** trace (default 10% of Table 1's counts) so
//! `cargo bench` finishes in minutes; the experiment binaries regenerate the
//! figures at full scale.

use fairsched_workload::job::Job;
use fairsched_workload::CplantModel;

/// Machine size used across the benches (the reproduction default).
pub const BENCH_NODES: u32 = fairsched_workload::synthetic::DEFAULT_NODES;

/// The standard bench trace: 10% of the CPlant job mix, fixed seed.
pub fn bench_trace() -> Vec<Job> {
    CplantModel::new(42).with_scale(0.1).generate()
}

/// A smaller trace for the quadratic-ish metric benches.
pub fn small_trace() -> Vec<Job> {
    CplantModel::new(42).with_scale(0.02).generate()
}

/// A trace at an arbitrary fraction of the Table-1 mix (same seed as
/// [`bench_trace`]); used by the single-pass benches to compare scales.
pub fn scaled_trace(scale: f64) -> Vec<Job> {
    CplantModel::new(42).with_scale(scale).generate()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_nonempty_and_deterministic() {
        let a = bench_trace();
        let b = bench_trace();
        assert_eq!(a, b);
        assert!(a.len() > 1000);
        assert!(small_trace().len() < a.len());
    }
}
