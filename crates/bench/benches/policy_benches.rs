//! Benchmarks behind Figures 8–13: the five "minor change" policies, each
//! simulated with the hybrid fairness observer attached — exactly the
//! computation one bar of those figures costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fairsched_bench::{bench_trace, BENCH_NODES};
use fairsched_core::policy::PolicySpec;
use fairsched_core::runner::run_policy;
use fairsched_core::sweep::try_run_policies;
use fairsched_sim::FaultConfig;
use std::hint::black_box;

fn minor_policies(c: &mut Criterion) {
    let trace = bench_trace();
    let mut g = c.benchmark_group("figures_8_to_13/policy");
    g.sample_size(10);
    for policy in PolicySpec::minor_policies() {
        g.bench_with_input(BenchmarkId::from_parameter(&policy.id), &policy, |b, p| {
            b.iter(|| run_policy(black_box(&trace), p, BENCH_NODES))
        });
    }
    g.finish();
}

fn minor_sweep(c: &mut Criterion) {
    let trace = bench_trace();
    let policies = PolicySpec::minor_policies();
    let mut g = c.benchmark_group("figures_8_to_13/sweep");
    g.sample_size(10);
    // The whole minor-changes figure set in one parallel sweep.
    g.bench_function("all_five_parallel", |b| {
        b.iter(|| {
            try_run_policies(
                black_box(&trace),
                &policies,
                BENCH_NODES,
                &FaultConfig::default(),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, minor_policies, minor_sweep);
criterion_main!(benches);
