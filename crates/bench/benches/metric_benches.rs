//! Benchmarks for the §4 fairness-metric kernels: the hybrid FST observer,
//! the CONS_P baseline, resource equality, and the two scheduling data
//! structures everything leans on (the list-scheduler timeline and the
//! capacity profile).

use criterion::{criterion_group, criterion_main, Criterion};
use fairsched_bench::{small_trace, BENCH_NODES};
use fairsched_metrics::fairness::consp::{consp_fsts, consp_report};
use fairsched_metrics::fairness::equality::equality_report;
use fairsched_metrics::fairness::hybrid::HybridFstObserver;
use fairsched_metrics::fairness::jain::jain_index;
use fairsched_sim::profile::Profile;
use fairsched_sim::{simulate, NodeTimeline, NullObserver, SimConfig, SimOptions};
use std::hint::black_box;

fn hybrid_observer(c: &mut Criterion) {
    let trace = small_trace();
    let cfg = SimConfig {
        nodes: BENCH_NODES,
        ..Default::default()
    };
    let mut g = c.benchmark_group("metrics/hybrid_fst");
    g.sample_size(10);
    g.bench_function("simulate_without_observer", |b| {
        b.iter(|| {
            simulate(
                black_box(&trace),
                &cfg,
                &mut NullObserver,
                SimOptions::new(),
            )
            .unwrap()
        })
    });
    g.bench_function("simulate_with_observer", |b| {
        b.iter(|| {
            let mut obs = HybridFstObserver::new();
            simulate(black_box(&trace), &cfg, &mut obs, SimOptions::new()).unwrap();
            obs.into_report()
        })
    });
    g.finish();
}

fn baselines(c: &mut Criterion) {
    let trace = small_trace();
    let cfg = SimConfig {
        nodes: BENCH_NODES,
        ..Default::default()
    };
    let schedule = simulate(&trace, &cfg, &mut NullObserver, SimOptions::new()).unwrap();
    let fsts = consp_fsts(&trace, BENCH_NODES);
    let mut g = c.benchmark_group("metrics/baselines");
    g.sample_size(10);
    g.bench_function("consp_fsts", |b| {
        b.iter(|| consp_fsts(black_box(&trace), BENCH_NODES))
    });
    g.bench_function("consp_report", |b| {
        b.iter(|| consp_report(black_box(&schedule), black_box(&fsts)))
    });
    g.bench_function("equality_report", |b| {
        b.iter(|| equality_report(black_box(&schedule)))
    });
    let turnarounds: Vec<f64> = schedule
        .records
        .iter()
        .map(|r| r.turnaround() as f64)
        .collect();
    g.bench_function("jain_index", |b| {
        b.iter(|| jain_index(black_box(&turnarounds)))
    });
    g.finish();
}

fn kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("metrics/kernels");
    // List-scheduler placement throughput: 500 jobs over a busy timeline.
    g.bench_function("node_timeline_place_500", |b| {
        b.iter(|| {
            let mut tl = NodeTimeline::all_free(BENCH_NODES, 0);
            for i in 0..500u64 {
                tl.place(0, ((i % 64) + 1) as u32, 1000 + i);
            }
            tl
        })
    });
    // Profile earliest-fit over a deep reservation stack.
    g.bench_function("profile_earliest_start_500", |b| {
        b.iter(|| {
            let mut p = Profile::new(BENCH_NODES);
            let mut t = 0u64;
            for i in 0..500u64 {
                let start = p
                    .earliest_start(t, ((i % 128) + 1) as u32, 5000)
                    .expect("request fits the machine");
                p.add(start, 5000, ((i % 128) + 1) as u32);
                t += 10;
            }
            p
        })
    });
    g.finish();
}

criterion_group!(benches, hybrid_observer, baselines, kernels);
criterion_main!(benches);
