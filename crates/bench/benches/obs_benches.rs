//! Benchmarks for the observability layer's cost model (DESIGN.md
//! "Observability"): the trace-off path must be free, the traced path
//! cheap, and profiling counters negligible.
//!
//! `trace_off/bare_simulation` intentionally reproduces
//! `single_pass/collection_scale_0.25/bare_simulation` from the
//! pre-instrumentation suite — comparing the two across BENCH records is
//! how the <3% trace-off overhead budget is audited. The `traced` and
//! `profiled` entries then price each layer when it is switched on.

use criterion::{criterion_group, criterion_main, Criterion};
use fairsched_bench::{scaled_trace, small_trace, BENCH_NODES};
use fairsched_core::policy::PolicySpec;
use fairsched_core::runner::{try_run_policy, try_run_policy_traced, RunOptions};
use fairsched_metrics::explain::{explain_wait, worst_miss};
use fairsched_obs::{DecisionTracer, ProfileScope};
use fairsched_sim::{simulate, NullObserver, SimOptions};
use std::hint::black_box;

/// Trace-off vs trace-on, on the bare simulation the overhead budget is
/// written against (scale 0.25, baseline policy).
fn trace_overhead(c: &mut Criterion) {
    let trace = scaled_trace(0.25);
    let cfg = PolicySpec::baseline().sim_config(BENCH_NODES);
    let mut g = c.benchmark_group("obs/trace_off_scale_0.25");
    g.sample_size(5);
    g.bench_function("bare_simulation", |b| {
        b.iter(|| {
            simulate(
                black_box(&trace),
                &cfg,
                &mut NullObserver,
                SimOptions::new(),
            )
        })
    });
    g.bench_function("bare_simulation_traced", |b| {
        b.iter(|| {
            let mut tracer = DecisionTracer::unbounded();
            simulate(
                black_box(&trace),
                &cfg,
                &mut NullObserver,
                SimOptions::new().trace(&mut tracer),
            )
            .map(|s| (s, tracer.len()))
        })
    });
    g.finish();
}

/// Full policy runs: the production entry point with nothing attached,
/// with the profiling scope, and with a decision trace recorded.
fn policy_run_layers(c: &mut Criterion) {
    let trace = scaled_trace(0.1);
    let policy = PolicySpec::baseline();
    let mut g = c.benchmark_group("obs/policy_run_scale_0.1");
    g.sample_size(5);
    g.bench_function("untraced", |b| {
        b.iter(|| {
            try_run_policy(
                black_box(&trace),
                &policy,
                BENCH_NODES,
                &RunOptions::default(),
            )
        })
    });
    g.bench_function("profiled", |b| {
        let opts = RunOptions {
            profile: true,
            ..Default::default()
        };
        b.iter(|| try_run_policy(black_box(&trace), &policy, BENCH_NODES, &opts))
    });
    g.bench_function("traced", |b| {
        b.iter(|| {
            let mut tracer = DecisionTracer::unbounded();
            try_run_policy_traced(
                black_box(&trace),
                &policy,
                BENCH_NODES,
                &RunOptions::default(),
                Some(&mut tracer),
            )
            .map(|r| (r, tracer.len()))
        })
    });
    g.finish();
}

/// The counter fast path itself: one disabled-counter bump is a single
/// relaxed load; an enabled one adds the increment.
fn counter_fast_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs/counters");
    g.bench_function("disabled_record_x1000", |b| {
        b.iter(|| {
            for _ in 0..1000 {
                fairsched_obs::counters::record_backfill(black_box(1), black_box(1));
            }
        })
    });
    g.bench_function("enabled_record_x1000", |b| {
        let _scope = ProfileScope::enter();
        b.iter(|| {
            for _ in 0..1000 {
                fairsched_obs::counters::record_backfill(black_box(1), black_box(1));
            }
        })
    });
    g.finish();
}

/// Post-hoc analysis costs: replaying a recorded trace into one job's wait
/// decomposition, and rendering the trace to JSONL.
fn explain_and_export(c: &mut Criterion) {
    let trace = small_trace();
    let policy = PolicySpec::baseline();
    let mut tracer = DecisionTracer::unbounded();
    let run = try_run_policy_traced(
        &trace,
        &policy,
        BENCH_NODES,
        &RunOptions::default(),
        Some(&mut tracer),
    )
    .unwrap();
    let records = tracer.into_records();
    let target = worst_miss(&run.outcome.fairness).expect("scored jobs exist");
    let mut g = c.benchmark_group("obs/analysis_scale_0.02");
    g.bench_function("explain_worst_job", |b| {
        b.iter(|| explain_wait(black_box(&records), &run.outcome.schedule, target))
    });
    g.bench_function("jsonl_render_all", |b| {
        b.iter(|| records.iter().map(|r| r.to_jsonl().len()).sum::<usize>())
    });
    g.finish();
}

criterion_group!(
    benches,
    trace_overhead,
    policy_run_layers,
    counter_fast_path,
    explain_and_export
);
criterion_main!(benches);
