//! Benchmarks for the workload substrate behind Tables 1–2 and Figures 3–7:
//! synthetic generation, SWF round-trips, and characterization recomputation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use fairsched_bench::{bench_trace, BENCH_NODES};
use fairsched_workload::stats::weekly_offered_load;
use fairsched_workload::swf::{read_swf_str, write_swf_string};
use fairsched_workload::tables::{job_counts, proc_hours};
use fairsched_workload::CplantModel;
use std::hint::black_box;

fn generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("workload/generation");
    g.bench_function("cplant_scale_0.1", |b| {
        b.iter(|| CplantModel::new(black_box(42)).with_scale(0.1).generate())
    });
    g.bench_function("cplant_full_scale", |b| {
        b.iter(|| CplantModel::new(black_box(42)).generate())
    });
    g.finish();
}

fn tables(c: &mut Criterion) {
    let trace = bench_trace();
    let mut g = c.benchmark_group("workload/tables");
    // Table 1 regeneration.
    g.bench_function("table1_job_counts", |b| {
        b.iter(|| job_counts(black_box(&trace)))
    });
    // Table 2 regeneration.
    g.bench_function("table2_proc_hours", |b| {
        b.iter(|| proc_hours(black_box(&trace)))
    });
    // Figure 3's offered-load series.
    g.bench_function("fig3_weekly_offered_load", |b| {
        b.iter(|| weekly_offered_load(black_box(&trace), BENCH_NODES, 33))
    });
    g.finish();
}

fn swf_roundtrip(c: &mut Criterion) {
    let trace = bench_trace();
    let text = write_swf_string(&trace, BENCH_NODES, "bench");
    let mut g = c.benchmark_group("workload/swf");
    g.bench_function("write", |b| {
        b.iter(|| write_swf_string(black_box(&trace), BENCH_NODES, "bench"))
    });
    g.bench_function("read", |b| {
        b.iter(|| read_swf_str(black_box(&text)).unwrap())
    });
    g.bench_function("round_trip", |b| {
        b.iter_batched(
            || text.clone(),
            |t| {
                let parsed = read_swf_str(&t).unwrap();
                write_swf_string(&parsed.jobs, BENCH_NODES, "again")
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = generation, tables, swf_roundtrip
}
criterion_main!(benches);
