//! Benchmarks for the single-pass metric-collection engine: the parallel
//! warm-start Sabin FST against the serial from-scratch computation, the
//! fenced nine-policy sweep, and one-run `ObserverSet` collection against
//! the legacy one-simulation-per-metric protocol — each at 10% and 25% of
//! the Table-1 job mix.

use criterion::{criterion_group, criterion_main, Criterion};
use fairsched_bench::{scaled_trace, BENCH_NODES};
use fairsched_core::policy::PolicySpec;
use fairsched_core::runner::{try_run_policy, RunOptions};
use fairsched_core::sweep::try_run_policies;
use fairsched_metrics::fairness::peruser::per_user;
use fairsched_metrics::fairness::sabin::{sabin_fsts_parallel_sampled, sabin_fsts_sampled};
use fairsched_metrics::{EqualityObserver, HybridFstObserver, ResilienceReport};
use fairsched_sim::{simulate, FaultConfig, NullObserver, ObserverSet, SimOptions};
use std::hint::black_box;

/// Score 1 in 16 jobs: the Sabin prefix cost is what is being compared, and
/// the stride keeps the serial from-scratch side tractable at scale 0.25.
const SABIN_STRIDE: usize = 16;

const SCALES: [f64; 2] = [0.1, 0.25];

fn sabin_prefix_engines(c: &mut Criterion) {
    for scale in SCALES {
        let trace = scaled_trace(scale);
        let cfg = PolicySpec::baseline().sim_config(BENCH_NODES);
        let mut g = c.benchmark_group(format!("single_pass/sabin_scale_{scale}"));
        g.sample_size(5);
        g.bench_function("serial_from_scratch", |b| {
            b.iter(|| sabin_fsts_sampled(black_box(&trace), &cfg, SABIN_STRIDE))
        });
        g.bench_function("parallel_warm_start", |b| {
            b.iter(|| sabin_fsts_parallel_sampled(black_box(&trace), &cfg, SABIN_STRIDE, None))
        });
        g.finish();
    }
}

fn nine_policy_sweep(c: &mut Criterion) {
    let policies = PolicySpec::paper_policies();
    for scale in SCALES {
        let trace = scaled_trace(scale);
        let mut g = c.benchmark_group(format!("single_pass/sweep_scale_{scale}"));
        g.sample_size(5);
        g.bench_function("nine_policies_fenced", |b| {
            b.iter(|| {
                try_run_policies(
                    black_box(&trace),
                    &policies,
                    BENCH_NODES,
                    &FaultConfig::default(),
                )
            })
        });
        g.finish();
    }
}

fn metric_collection(c: &mut Criterion) {
    let policy = PolicySpec::baseline();
    for scale in SCALES {
        let trace = scaled_trace(scale);
        let cfg = policy.sim_config(BENCH_NODES);
        let mut g = c.benchmark_group(format!("single_pass/collection_scale_{scale}"));
        g.sample_size(5);
        // The redesigned path: one simulation, every report.
        g.bench_function("one_run_all_reports", |b| {
            b.iter(|| {
                try_run_policy(
                    black_box(&trace),
                    &policy,
                    BENCH_NODES,
                    &RunOptions::everything(),
                )
                .unwrap()
            })
        });
        // The legacy protocol: one simulation per metric family (hybrid,
        // equality, per-user, resilience — the latter two each re-driving
        // their own hybrid observer).
        g.bench_function("four_separate_runs", |b| {
            b.iter(|| {
                let mut hybrid = HybridFstObserver::new();
                let schedule =
                    simulate(black_box(&trace), &cfg, &mut hybrid, SimOptions::new()).unwrap();
                let fairness = hybrid.into_report();

                let mut equality = EqualityObserver::new();
                simulate(black_box(&trace), &cfg, &mut equality, SimOptions::new()).unwrap();

                let mut hybrid2 = HybridFstObserver::new();
                let s2 =
                    simulate(black_box(&trace), &cfg, &mut hybrid2, SimOptions::new()).unwrap();
                let users = per_user(&s2, &hybrid2.into_report());

                let s3 = simulate(
                    black_box(&trace),
                    &cfg,
                    &mut NullObserver,
                    SimOptions::new(),
                )
                .unwrap();
                let resilience = ResilienceReport::split(&fairness, &s3);

                (
                    schedule,
                    fairness,
                    equality.into_report(),
                    users,
                    resilience,
                )
            })
        });
        // Reference point: the bare simulation with no observers.
        g.bench_function("bare_simulation", |b| {
            b.iter(|| {
                simulate(
                    black_box(&trace),
                    &cfg,
                    &mut NullObserver,
                    SimOptions::new(),
                )
                .unwrap()
            })
        });
        // And the fan-out layer itself, isolated from report folding.
        g.bench_function("observer_set_two_members", |b| {
            b.iter(|| {
                let mut hybrid = HybridFstObserver::new();
                let mut equality = EqualityObserver::new();
                let mut set = ObserverSet::new();
                set.push(&mut hybrid);
                set.push(&mut equality);
                simulate(black_box(&trace), &cfg, &mut set, SimOptions::new()).unwrap()
            })
        });
        g.finish();
    }
}

criterion_group!(
    benches,
    sabin_prefix_engines,
    nine_policy_sweep,
    metric_collection
);
criterion_main!(benches);
