//! Ablation benchmarks for the design choices DESIGN.md calls out: the
//! fairshare decay factor, the starvation entry delay, the runtime-limit
//! value, and the machine size. Each variant runs the baseline engine end
//! to end, so the measurements double as a scaling study of the simulator
//! under different contention regimes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fairsched_bench::bench_trace;
use fairsched_sim::{
    simulate, FairshareConfig, NullObserver, RuntimeLimit, SimConfig, SimOptions, StarvationConfig,
};
use fairsched_workload::time::HOUR;
use fairsched_workload::CplantModel;
use std::hint::black_box;

fn decay_factor(c: &mut Criterion) {
    let trace = bench_trace();
    let mut g = c.benchmark_group("ablation/fairshare_decay");
    g.sample_size(10);
    for factor in [0.25f64, 0.5, 0.9, 1.0] {
        let cfg = SimConfig {
            fairshare: FairshareConfig {
                decay_factor: factor,
                ..Default::default()
            },
            ..Default::default()
        };
        g.bench_with_input(BenchmarkId::from_parameter(factor), &cfg, |b, cfg| {
            b.iter(|| {
                simulate(black_box(&trace), cfg, &mut NullObserver, SimOptions::new()).unwrap()
            })
        });
    }
    g.finish();
}

fn starvation_delay(c: &mut Criterion) {
    let trace = bench_trace();
    let mut g = c.benchmark_group("ablation/starvation_delay");
    g.sample_size(10);
    for hours in [12u64, 24, 48, 72] {
        let cfg = SimConfig {
            starvation: Some(StarvationConfig {
                entry_delay: hours * HOUR,
                heavy_rule: None,
            }),
            ..Default::default()
        };
        g.bench_with_input(BenchmarkId::from_parameter(hours), &cfg, |b, cfg| {
            b.iter(|| {
                simulate(black_box(&trace), cfg, &mut NullObserver, SimOptions::new()).unwrap()
            })
        });
    }
    g.finish();
}

fn runtime_limit(c: &mut Criterion) {
    let trace = bench_trace();
    let mut g = c.benchmark_group("ablation/runtime_limit");
    g.sample_size(10);
    for hours in [24u64, 48, 72, 168] {
        let cfg = SimConfig {
            runtime_limit: Some(RuntimeLimit {
                limit: hours * HOUR,
            }),
            ..Default::default()
        };
        g.bench_with_input(BenchmarkId::from_parameter(hours), &cfg, |b, cfg| {
            b.iter(|| {
                simulate(black_box(&trace), cfg, &mut NullObserver, SimOptions::new()).unwrap()
            })
        });
    }
    g.finish();
}

fn reservation_depth(c: &mut Criterion) {
    let trace = bench_trace();
    let mut g = c.benchmark_group("ablation/reservation_depth");
    g.sample_size(10);
    for depth in [0u32, 1, 8, 64, 1024] {
        let cfg = SimConfig {
            engine: fairsched_sim::EngineKind::ReservationDepth(depth),
            starvation: None,
            ..Default::default()
        };
        g.bench_with_input(BenchmarkId::from_parameter(depth), &cfg, |b, cfg| {
            b.iter(|| {
                simulate(black_box(&trace), cfg, &mut NullObserver, SimOptions::new()).unwrap()
            })
        });
    }
    g.finish();
}

fn machine_size(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/machine_size");
    g.sample_size(10);
    for nodes in [512u32, 1024, 2048] {
        // The trace must respect the machine width, so regenerate per size.
        let trace = CplantModel::new(42)
            .with_nodes(nodes)
            .with_scale(0.1)
            .generate();
        let cfg = SimConfig {
            nodes,
            ..Default::default()
        };
        g.bench_with_input(BenchmarkId::from_parameter(nodes), &cfg, |b, cfg| {
            b.iter(|| {
                simulate(black_box(&trace), cfg, &mut NullObserver, SimOptions::new()).unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    decay_factor,
    starvation_delay,
    runtime_limit,
    reservation_depth,
    machine_size
);
criterion_main!(benches);
