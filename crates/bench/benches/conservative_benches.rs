//! Benchmarks behind Figures 14–19: the conservative backfilling engines
//! and the full nine-policy evaluation sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fairsched_bench::{bench_trace, BENCH_NODES};
use fairsched_core::policy::PolicySpec;
use fairsched_core::runner::run_policy;
use fairsched_core::sweep::try_run_policies;
use fairsched_sim::FaultConfig;
use std::hint::black_box;

fn conservative_policies(c: &mut Criterion) {
    let trace = bench_trace();
    let mut g = c.benchmark_group("figures_14_to_19/policy");
    g.sample_size(10);
    for id in [
        "cons.nomax",
        "cons.72max",
        "consdyn.nomax",
        "consdyn.72max",
        "easy.nomax",
    ] {
        let policy = PolicySpec::by_id(id).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(id), &policy, |b, p| {
            b.iter(|| run_policy(black_box(&trace), p, BENCH_NODES))
        });
    }
    g.finish();
}

fn full_evaluation(c: &mut Criterion) {
    let trace = bench_trace();
    let policies = PolicySpec::paper_policies();
    let mut g = c.benchmark_group("figures_14_to_19/sweep");
    g.sample_size(10);
    // Everything Figures 14, 15, 17 and 19 need, in one parallel sweep.
    g.bench_function("all_nine_parallel", |b| {
        b.iter(|| {
            try_run_policies(
                black_box(&trace),
                &policies,
                BENCH_NODES,
                &FaultConfig::default(),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, conservative_policies, full_evaluation);
criterion_main!(benches);
