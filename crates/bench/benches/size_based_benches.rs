//! Virtual-schedule update cost for the size-based policy family.
//!
//! FSP/HFSP maintain a processor-sharing virtual schedule (per-job
//! remaining work drained every pass) and LAS a per-user attained-service
//! account — all updated on every scheduling pass, where the stateless
//! priority orders just sort. These benches price that per-event overhead
//! by simulating the same trace under EASY (same head-of-queue ledger and
//! greedy rule, stateless promote-head order — the baseline isolating the
//! order strategy's cost) and under each size-based engine; the BENCH
//! record is the ratio. A second group prices the warm-started Sabin FST
//! path for FSP, since the stateful order's `clone_box` sits on the fork
//! hot path.

use criterion::{criterion_group, criterion_main, Criterion};
use fairsched_bench::{bench_trace, BENCH_NODES};
use fairsched_core::policy::PolicySpec;
use fairsched_metrics::fairness::sabin::sabin_fsts_parallel_sampled;
use fairsched_sim::{simulate, warm_start_supported, NullObserver, SimOptions};
use std::hint::black_box;

/// Same 1-in-16 sample the other prefix benches use.
const SABIN_STRIDE: usize = 16;

fn size_based_simulation(c: &mut Criterion) {
    let trace = bench_trace();
    let mut g = c.benchmark_group("size_based/simulate_scale_0.1");
    g.sample_size(10);
    for id in ["easy.nomax", "fsp.nomax", "hfsp.nomax", "las.nomax"] {
        let cfg = PolicySpec::by_id(id).unwrap().sim_config(BENCH_NODES);
        g.bench_function(id, |b| {
            b.iter(|| {
                simulate(
                    black_box(&trace),
                    &cfg,
                    &mut NullObserver,
                    SimOptions::new(),
                )
                .unwrap()
            })
        });
    }
    g.finish();
}

fn size_based_warm_start(c: &mut Criterion) {
    let trace = bench_trace();
    let mut g = c.benchmark_group("size_based/sabin_warm_scale_0.1");
    g.sample_size(5);
    for id in ["easy.nomax", "fsp.nomax"] {
        let cfg = PolicySpec::by_id(id).unwrap().sim_config(BENCH_NODES);
        assert!(
            warm_start_supported(&cfg),
            "{id} must take the forked-master path"
        );
        g.bench_function(id, |b| {
            b.iter(|| sabin_fsts_parallel_sampled(black_box(&trace), &cfg, SABIN_STRIDE, None))
        });
    }
    g.finish();
}

criterion_group!(benches, size_based_simulation, size_based_warm_start);
criterion_main!(benches);
