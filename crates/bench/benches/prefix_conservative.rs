//! Warm-start vs from-scratch prefix simulation for the conservative
//! policy (the strategy-decomposition refactor's new capability).
//!
//! Before the reservation ledger grew `snapshot`/`fork` support, the
//! static conservative engine was excluded from warm-started prefix
//! simulation and every Sabin FST query paid a full from-scratch prefix
//! replay. These benches price both sides on the same 1-in-16 sample the
//! single-pass suite uses, so the BENCH record shows what forking the
//! ledger buys:
//!
//! * `from_scratch_serial` — the old cost model: one full prefix
//!   simulation per scored job;
//! * `warm_start_1thread` — the forked-master path pinned to one worker,
//!   isolating the algorithmic win from thread-level parallelism;
//! * `warm_start_4thread` — the chunked fork pipeline pinned to four
//!   workers, pricing the BENCH_5 fix (the old striping replayed every
//!   worker's prefix from scratch, so extra workers *added* total work —
//!   measurable even time-sliced onto one core);
//! * `warm_start_parallel` — the production configuration (one chunk per
//!   available core).

use criterion::{criterion_group, criterion_main, Criterion};
use fairsched_bench::{scaled_trace, BENCH_NODES};
use fairsched_core::policy::PolicySpec;
use fairsched_metrics::fairness::sabin::{sabin_fsts_parallel_sampled, sabin_fsts_sampled};
use fairsched_sim::warm_start_supported;
use std::hint::black_box;

/// Same sample as `single_pass_benches`: the prefix cost is what is being
/// compared, and the stride keeps the from-scratch side tractable.
const SABIN_STRIDE: usize = 16;

const SCALES: [f64; 2] = [0.1, 0.25];

fn conservative_prefix_fsts(c: &mut Criterion) {
    let policy = PolicySpec::by_id("cons.nomax").unwrap();
    for scale in SCALES {
        let trace = scaled_trace(scale);
        let cfg = policy.sim_config(BENCH_NODES);
        assert!(
            warm_start_supported(&cfg),
            "static conservative must be warm-startable"
        );
        let mut g = c.benchmark_group(format!("prefix_conservative/sabin_scale_{scale}"));
        g.sample_size(5);
        g.bench_function("from_scratch_serial", |b| {
            b.iter(|| sabin_fsts_sampled(black_box(&trace), &cfg, SABIN_STRIDE))
        });
        g.bench_function("warm_start_1thread", |b| {
            b.iter(|| sabin_fsts_parallel_sampled(black_box(&trace), &cfg, SABIN_STRIDE, Some(1)))
        });
        g.bench_function("warm_start_4thread", |b| {
            b.iter(|| sabin_fsts_parallel_sampled(black_box(&trace), &cfg, SABIN_STRIDE, Some(4)))
        });
        g.bench_function("warm_start_parallel", |b| {
            b.iter(|| sabin_fsts_parallel_sampled(black_box(&trace), &cfg, SABIN_STRIDE, None))
        });
        g.finish();
    }
}

criterion_group!(benches, conservative_prefix_fsts);
criterion_main!(benches);
