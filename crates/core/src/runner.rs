//! Run one (trace, policy) pair and collect everything the paper reports.
//!
//! [`try_run_policy`] is the single entry point: a [`RunOptions`] selects
//! the fault model and which optional reports to collect, and **one**
//! simulation feeds every requested metric (the hybrid-FST and equality
//! observers share the run through an `ObserverSet`; the per-user and
//! resilience reports are pure folds over its results). The historical
//! [`run_policy`] / [`run_policy_faulted`] conveniences are thin panicking
//! wrappers over it.

use crate::policy::PolicySpec;
use fairsched_metrics::fairness::equality::{EqualityObserver, EqualityReport};
use fairsched_metrics::fairness::fst::FstReport;
use fairsched_metrics::fairness::hybrid::HybridFstObserver;
use fairsched_metrics::fairness::peruser::{per_user, UserFairness};
use fairsched_metrics::fairness::resilience::ResilienceReport;
use fairsched_metrics::user;
use fairsched_obs::counters::{CounterSnapshot, ProfileReport, ProfileScope};
use fairsched_obs::TraceSink;
use fairsched_sim::{
    simulate, CancelToken, FaultConfig, ObserverSet, OriginalOutcome, Schedule, SimError,
    SimOptions,
};
use fairsched_workload::categories::WIDTH_BUCKETS;
use fairsched_workload::job::Job;

/// The full result of evaluating one policy on one trace.
#[derive(Debug, Clone)]
pub struct PolicyOutcome {
    /// The policy's paper identifier.
    pub policy: String,
    /// The raw schedule (per-submission records and exact integrals).
    pub schedule: Schedule,
    /// The hybrid fairshare fairness report (§4.1), scored per submission.
    pub fairness: FstReport,
}

/// The scalar summary of one policy run — one bar in each of the paper's
/// aggregate figures, plus the two by-width series.
#[derive(Debug, Clone, PartialEq)]
pub struct OutcomeMetrics {
    /// Fraction of submissions that missed their fair start (Figures 8/14).
    pub percent_unfair: f64,
    /// Average miss time in seconds per Equation 5 (Figures 9/15).
    pub average_miss_time: f64,
    /// Average turnaround of original jobs in seconds (Figures 11/17).
    pub average_turnaround: f64,
    /// Loss of capacity per Equation 4 (Figures 13/19).
    pub loss_of_capacity: f64,
    /// Utilization per Equation 2.
    pub utilization: f64,
    /// Average miss time per width bucket (Figures 10/16).
    pub miss_by_width: [f64; WIDTH_BUCKETS],
    /// Average turnaround per width bucket (Figures 12/18).
    pub turnaround_by_width: [f64; WIDTH_BUCKETS],
}

impl PolicyOutcome {
    /// Original-job outcomes (chunk chains collapsed).
    pub fn originals(&self) -> Vec<OriginalOutcome> {
        self.schedule.originals()
    }

    /// Splits the fairness report by crash exposure (all-clean when the
    /// run had no faults) and pairs it with the schedule's goodput.
    pub fn resilience(&self) -> ResilienceReport {
        ResilienceReport::split(&self.fairness, &self.schedule)
    }

    /// Computes the scalar summary.
    pub fn metrics(&self) -> OutcomeMetrics {
        let originals = self.originals();
        OutcomeMetrics {
            percent_unfair: self.fairness.percent_unfair(),
            average_miss_time: self.fairness.average_miss_time(),
            average_turnaround: user::average_turnaround(&originals),
            loss_of_capacity: self.schedule.loss_of_capacity(),
            utilization: self.schedule.utilization(),
            miss_by_width: self.fairness.miss_by_width(),
            turnaround_by_width: user::turnaround_by_width(&originals),
        }
    }
}

/// What [`try_run_policy`] should collect from its single simulation, and
/// under which fault model.
///
/// The hybrid fairness report and schedule are always collected; each flag
/// adds one more report to the returned [`PolicyRun`] without adding a
/// second simulation.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Fault model for the run (default: all fault sources off).
    pub faults: FaultConfig,
    /// Collect the per-user fairness audit.
    pub per_user: bool,
    /// Collect the resource-equality report.
    pub equality: bool,
    /// Collect the interrupted-vs-clean resilience split.
    pub resilience: bool,
    /// Collect a [`ProfileReport`] of where the run's time went. Counters
    /// are process-wide, so a profiled run in a parallel sweep also
    /// absorbs the other workers' activity — profile one run at a time
    /// when per-policy numbers matter.
    pub profile: bool,
    /// Cooperative cancellation: when the token fires (e.g. a sweep
    /// watchdog), the simulation stops at its next event batch with
    /// [`SimError::TimedOut`]. `None` (the default) runs unguarded.
    pub cancel: Option<CancelToken>,
}

impl RunOptions {
    /// Options with a fault model and no optional reports — the historical
    /// [`run_policy_faulted`] behaviour.
    pub fn with_faults(faults: FaultConfig) -> Self {
        RunOptions {
            faults,
            ..Default::default()
        }
    }

    /// Options collecting every report the workspace defines.
    pub fn everything() -> Self {
        RunOptions {
            faults: FaultConfig::default(),
            per_user: true,
            equality: true,
            resilience: true,
            profile: true,
            cancel: None,
        }
    }
}

/// Everything one [`try_run_policy`] simulation produced: the always-on
/// [`PolicyOutcome`] plus whichever optional reports the [`RunOptions`]
/// requested (absent flags stay `None`).
#[derive(Debug, Clone)]
pub struct PolicyRun {
    /// Schedule plus hybrid fairness report (always collected).
    pub outcome: PolicyOutcome,
    /// Per-user audit rows, heaviest users first (`RunOptions::per_user`).
    pub per_user: Option<Vec<UserFairness>>,
    /// Resource-equality report (`RunOptions::equality`).
    pub equality: Option<EqualityReport>,
    /// Interrupted-vs-clean split (`RunOptions::resilience`).
    pub resilience: Option<ResilienceReport>,
    /// Where the run's time went (`RunOptions::profile`).
    pub profile: Option<ProfileReport>,
}

/// Evaluates one policy on a trace with **one** simulation feeding every
/// report `opts` requests. Trace or configuration problems come back as a
/// typed [`SimError`] instead of a panic, so one failing policy never
/// aborts a multi-policy figure. Deterministic: equal inputs give equal
/// outcomes.
pub fn try_run_policy(
    trace: &[Job],
    policy: &PolicySpec,
    nodes: u32,
    opts: &RunOptions,
) -> Result<PolicyRun, SimError> {
    try_run_policy_traced(trace, policy, nodes, opts, None)
}

/// [`try_run_policy`] with an optional decision-trace sink. When `sink` is
/// `Some`, every scheduling decision of the single underlying simulation is
/// recorded into it; the returned run is byte-identical to the untraced one
/// (emission never feeds back into the schedule — pinned by proptest).
pub fn try_run_policy_traced(
    trace: &[Job],
    policy: &PolicySpec,
    nodes: u32,
    opts: &RunOptions,
    sink: Option<&mut dyn TraceSink>,
) -> Result<PolicyRun, SimError> {
    let mut cfg = policy.sim_config(nodes);
    cfg.faults = opts.faults.clone();
    // The scope must outlive the fairness scoring below: the hybrid-FST
    // prefix simulations are where the warm-start counters move.
    let _scope = opts.profile.then(ProfileScope::enter);
    let baseline = opts.profile.then(CounterSnapshot::capture);
    let started = std::time::Instant::now();
    let mut hybrid = HybridFstObserver::new();
    let mut equality = EqualityObserver::new();
    let schedule = {
        let mut observers = ObserverSet::new();
        observers.push(&mut hybrid);
        if opts.equality {
            observers.push(&mut equality);
        }
        // The runner keeps its own ProfileScope (above) rather than using
        // SimOptions::profile: the scope must also cover the fairness
        // scoring after the run.
        let mut sim_opts = SimOptions::new();
        if let Some(sink) = sink {
            sim_opts = sim_opts.trace(sink);
        }
        if let Some(cancel) = opts.cancel.clone() {
            sim_opts = sim_opts.cancel(cancel);
        }
        simulate(trace, &cfg, &mut observers, sim_opts)?
    };
    let fairness = hybrid.into_report();
    let profile = baseline.map(|before| ProfileReport {
        counters: CounterSnapshot::capture().since(&before),
        wall_ns: started.elapsed().as_nanos().min(u64::MAX as u128) as u64,
    });
    let per_user = opts.per_user.then(|| per_user(&schedule, &fairness));
    let resilience = opts
        .resilience
        .then(|| ResilienceReport::split(&fairness, &schedule));
    Ok(PolicyRun {
        outcome: PolicyOutcome {
            policy: policy.id.to_string(),
            schedule,
            fairness,
        },
        per_user,
        equality: opts.equality.then(|| equality.into_report()),
        resilience,
        profile,
    })
}

/// Evaluates one policy on a trace with the hybrid fairness observer
/// attached. Deterministic: equal inputs give equal outcomes. Panics on
/// invalid traces/configs; prefer [`try_run_policy`] where a failure must
/// not abort the caller.
pub fn run_policy(trace: &[Job], policy: &PolicySpec, nodes: u32) -> PolicyOutcome {
    run_policy_faulted(trace, policy, nodes, &FaultConfig::default())
}

/// [`run_policy`] under a fault model: same policy lowering, but the
/// simulator additionally injects the configured node failures and job
/// crashes. With `FaultConfig::default()` (all fault sources off) this is
/// byte-identical to the fault-free path. Still deterministic: the fault
/// timeline is a pure function of the config's seed. Panics on invalid
/// traces/configs; prefer [`try_run_policy`].
pub fn run_policy_faulted(
    trace: &[Job],
    policy: &PolicySpec,
    nodes: u32,
    faults: &FaultConfig,
) -> PolicyOutcome {
    try_run_policy(
        trace,
        policy,
        nodes,
        &RunOptions::with_faults(faults.clone()),
    )
    .map(|run| run.outcome)
    .unwrap_or_else(|e| panic!("{e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairsched_workload::CplantModel;

    fn small_trace() -> Vec<Job> {
        CplantModel::new(17).with_scale(0.02).generate()
    }

    #[test]
    fn outcome_scores_every_submission() {
        let trace = small_trace();
        let out = run_policy(&trace, &PolicySpec::baseline(), 1024);
        assert_eq!(out.policy, "cplant24.nomax.all");
        // No runtime limit: records = submissions = trace jobs.
        assert_eq!(out.schedule.records.len(), trace.len());
        assert_eq!(out.fairness.entries.len(), trace.len());
        assert_eq!(out.originals().len(), trace.len());
    }

    #[test]
    fn chunked_policy_scores_chunks_but_aggregates_originals() {
        let trace = small_trace();
        let p = PolicySpec::by_id("cplant24.72max.all").unwrap();
        let out = run_policy(&trace, &p, 1024);
        // Chunking multiplies submissions but the originals stay fixed.
        assert!(out.schedule.records.len() >= trace.len());
        assert_eq!(out.originals().len(), trace.len());
        assert_eq!(out.fairness.entries.len(), out.schedule.records.len());
    }

    #[test]
    fn metrics_are_finite_and_in_range() {
        let trace = small_trace();
        let out = run_policy(&trace, &PolicySpec::by_id("cons.nomax").unwrap(), 1024);
        let m = out.metrics();
        assert!((0.0..=1.0).contains(&m.percent_unfair));
        assert!((0.0..=1.0).contains(&m.loss_of_capacity));
        assert!((0.0..=1.0).contains(&m.utilization));
        assert!(m.average_miss_time >= 0.0 && m.average_miss_time.is_finite());
        assert!(m.average_turnaround > 0.0 && m.average_turnaround.is_finite());
        assert!(m.miss_by_width.iter().all(|v| v.is_finite()));
        assert!(m.turnaround_by_width.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn default_fault_config_changes_nothing() {
        let trace = small_trace();
        let p = PolicySpec::baseline();
        let clean = run_policy(&trace, &p, 1024);
        let faulted = run_policy_faulted(&trace, &p, 1024, &FaultConfig::default());
        assert_eq!(clean.schedule, faulted.schedule);
        assert_eq!(clean.fairness, faulted.fairness);
        // And a fault-free run reports an all-clean resilience split.
        let split = clean.resilience();
        assert_eq!(split.interrupted_count(), 0);
        assert_eq!(split.clean_count(), clean.fairness.entries.len());
    }

    #[test]
    fn faulted_runs_split_fairness_by_interruption() {
        let trace = small_trace();
        let p = PolicySpec::baseline();
        let faults = FaultConfig {
            job_crash_rate: 0.4,
            seed: 11,
            ..FaultConfig::default()
        };
        let out = run_policy_faulted(&trace, &p, 1024, &faults);
        let split = out.resilience();
        assert!(
            split.interrupted_count() > 0,
            "crash rate 0.4 must interrupt someone"
        );
        assert!(split.clean_count() > 0);
        assert_eq!(
            split.interrupted_count() + split.clean_count(),
            out.fairness.entries.len()
        );
        assert!(split.goodput > 0.0 && split.goodput <= out.schedule.utilization());
    }

    #[test]
    fn single_pass_collection_matches_separate_runs() {
        use fairsched_metrics::fairness::equality::equality_report;
        let trace = small_trace();
        let p = PolicySpec::baseline();
        let faults = FaultConfig {
            job_crash_rate: 0.2,
            seed: 5,
            ..FaultConfig::default()
        };
        let opts = RunOptions {
            faults: faults.clone(),
            per_user: true,
            equality: true,
            resilience: true,
            ..RunOptions::default()
        };
        let run = try_run_policy(&trace, &p, 1024, &opts).unwrap();
        // The historical path: one run for the schedule + hybrid report,
        // then one scoring pass per additional metric.
        let outcome = run_policy_faulted(&trace, &p, 1024, &faults);
        assert_eq!(run.outcome.schedule, outcome.schedule);
        assert_eq!(run.outcome.fairness, outcome.fairness);
        assert_eq!(
            run.per_user.as_deref().unwrap(),
            per_user(&outcome.schedule, &outcome.fairness)
        );
        assert_eq!(
            run.equality.as_ref().unwrap(),
            &equality_report(&outcome.schedule)
        );
        assert_eq!(run.resilience.as_ref().unwrap(), &outcome.resilience());
    }

    #[test]
    fn unrequested_reports_stay_absent() {
        let trace = small_trace();
        let run = try_run_policy(
            &trace,
            &PolicySpec::baseline(),
            1024,
            &RunOptions::default(),
        )
        .unwrap();
        assert!(run.per_user.is_none());
        assert!(run.equality.is_none());
        assert!(run.resilience.is_none());
    }

    #[test]
    fn profiled_runs_report_where_time_went() {
        let trace = small_trace();
        let opts = RunOptions {
            profile: true,
            ..RunOptions::default()
        };
        let run = try_run_policy(&trace, &PolicySpec::baseline(), 1024, &opts).unwrap();
        let profile = run.profile.expect("requested in RunOptions");
        assert!(profile.wall_ns > 0);
        assert!(profile.counters.sched_passes > 0);
        assert!(profile.counters.backfill_attempts >= profile.counters.backfill_successes);
        // The hybrid FST scores against the list scheduler, not prefix
        // simulation, so warm-start counters stay parked here; they move
        // under the scheduler-dependent Sabin metric instead.
        assert_eq!(profile.counters.warm_start_misses, 0);
    }

    #[test]
    fn traced_run_matches_untraced_run() {
        let trace = small_trace();
        let p = PolicySpec::by_id("easy.nomax").unwrap();
        let mut records: Vec<fairsched_obs::TraceRecord> = Vec::new();
        let traced =
            try_run_policy_traced(&trace, &p, 1024, &RunOptions::default(), Some(&mut records))
                .unwrap();
        let untraced = try_run_policy(&trace, &p, 1024, &RunOptions::default()).unwrap();
        assert_eq!(traced.outcome.schedule, untraced.outcome.schedule);
        assert_eq!(traced.outcome.fairness, untraced.outcome.fairness);
        // Every submission start shows up as a decision record.
        let starts = records
            .iter()
            .filter(|r| matches!(r, fairsched_obs::TraceRecord::JobStarted { .. }))
            .count();
        assert_eq!(starts, traced.outcome.schedule.records.len());
    }

    #[test]
    fn try_run_policy_reports_errors_instead_of_panicking() {
        // An 8-node machine rejects the CPlant trace's wide jobs: a typed
        // error, not a panic.
        let trace = small_trace();
        let err =
            try_run_policy(&trace, &PolicySpec::baseline(), 8, &RunOptions::default()).unwrap_err();
        assert!(err.to_string().contains("nodes on a"));
    }

    #[test]
    fn runs_are_deterministic() {
        let trace = small_trace();
        let p = PolicySpec::by_id("consdyn.nomax").unwrap();
        let a = run_policy(&trace, &p, 1024);
        let b = run_policy(&trace, &p, 1024);
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.fairness, b.fairness);
    }
}
