//! Parallel multi-policy sweeps.
//!
//! Every policy's simulation is an independent pure function of
//! (trace, policy, nodes), so the sweep fans out with `std::thread::scope`:
//! scoped borrows make the shared trace readable from every worker with no
//! copies and no unsafe, and the compiler guarantees data-race freedom.
//! Results come back in input order regardless of completion order.

use crate::policy::PolicySpec;
use crate::runner::{run_policy, PolicyOutcome};
use fairsched_workload::job::Job;

/// Runs each policy on the trace, in parallel, preserving input order.
pub fn run_policies(trace: &[Job], policies: &[PolicySpec], nodes: u32) -> Vec<PolicyOutcome> {
    if policies.len() <= 1 {
        return policies.iter().map(|p| run_policy(trace, p, nodes)).collect();
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = policies
            .iter()
            .map(|p| scope.spawn(move || run_policy(trace, p, nodes)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("policy simulation panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairsched_workload::CplantModel;

    #[test]
    fn parallel_sweep_matches_serial_runs() {
        let trace = CplantModel::new(29).with_scale(0.02).generate();
        let policies = vec![
            PolicySpec::baseline(),
            PolicySpec::by_id("cons.nomax").unwrap(),
            PolicySpec::by_id("consdyn.72max").unwrap(),
        ];
        let parallel = run_policies(&trace, &policies, 1024);
        for (policy, outcome) in policies.iter().zip(&parallel) {
            let serial = run_policy(&trace, policy, 1024);
            assert_eq!(outcome.policy, serial.policy);
            assert_eq!(outcome.schedule, serial.schedule);
            assert_eq!(outcome.fairness, serial.fairness);
        }
    }

    #[test]
    fn results_preserve_input_order() {
        let trace = CplantModel::new(29).with_scale(0.01).generate();
        let policies = PolicySpec::paper_policies();
        let outcomes = run_policies(&trace, &policies, 1024);
        let names: Vec<&str> = outcomes.iter().map(|o| o.policy.as_str()).collect();
        let expected: Vec<&str> = policies.iter().map(|p| p.id).collect();
        assert_eq!(names, expected);
    }

    #[test]
    fn empty_policy_set_is_fine() {
        let trace = CplantModel::new(1).with_scale(0.01).generate();
        assert!(run_policies(&trace, &[], 1024).is_empty());
    }
}
