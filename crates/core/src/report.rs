//! Text rendering of the paper's figure/table rows.
//!
//! The experiment binaries print fixed-width tables: one row per policy for
//! the aggregate figures, and a policy × width-bucket matrix for the
//! by-width figures. Values render with the same units the paper plots
//! (percent for unfairness/LOC, seconds for times).

use fairsched_workload::categories::{WIDTH_BUCKETS, WIDTH_LABELS};

/// One `policy → value` table (Figures 8, 9, 11, 13, 14, 15, 17, 19).
pub fn policy_table(title: &str, unit: &str, rows: &[(String, f64)]) -> String {
    let name_w = rows.iter().map(|(n, _)| n.len()).max().unwrap_or(6).max(6);
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    out.push_str(&format!("{:<name_w$}  {unit:>14}\n", "policy"));
    for (name, value) in rows {
        out.push_str(&format!(
            "{name:<name_w$}  {:>14}\n",
            format_value(*value, unit)
        ));
    }
    out
}

/// A policy × width-bucket matrix (Figures 10, 12, 16, 18).
pub fn width_matrix(title: &str, unit: &str, rows: &[(String, [f64; WIDTH_BUCKETS])]) -> String {
    let name_w = rows.iter().map(|(n, _)| n.len()).max().unwrap_or(6).max(6);
    let mut out = String::new();
    out.push_str(&format!("== {title} ({unit}) ==\n"));
    out.push_str(&format!("{:<name_w$}", "policy"));
    for label in WIDTH_LABELS {
        out.push_str(&format!(" {label:>9}"));
    }
    out.push('\n');
    for (name, values) in rows {
        out.push_str(&format!("{name:<name_w$}"));
        for v in values {
            out.push_str(&format!(" {:>9.0}", v));
        }
        out.push('\n');
    }
    out
}

/// Renders a value with its unit: percentages as `12.34%`, seconds rounded
/// to whole seconds, anything else with two decimals.
pub fn format_value(value: f64, unit: &str) -> String {
    match unit {
        "%" => format!("{:.2}%", value * 100.0),
        "seconds" | "s" => format!("{value:.0}"),
        _ => format!("{value:.2}"),
    }
}

/// CSV rendering of a policy table, for downstream plotting.
pub fn policy_table_csv(metric: &str, rows: &[(String, f64)]) -> String {
    let mut out = format!("policy,{metric}\n");
    for (name, value) in rows {
        out.push_str(&format!("{name},{value}\n"));
    }
    out
}

/// CSV rendering of a width matrix.
pub fn width_matrix_csv(metric: &str, rows: &[(String, [f64; WIDTH_BUCKETS])]) -> String {
    let mut out = String::from("policy");
    for label in WIDTH_LABELS {
        out.push_str(&format!(",{label}"));
    }
    out.push('\n');
    for (name, values) in rows {
        out.push_str(name);
        for v in values {
            out.push_str(&format!(",{v}"));
        }
        out.push('\n');
    }
    let _ = metric;
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_table_renders_percentages() {
        let rows = vec![
            ("cplant24.nomax.all".to_string(), 0.0832),
            ("cons.72max".to_string(), 0.0211),
        ];
        let t = policy_table("Percent Unfair Jobs", "%", &rows);
        assert!(t.contains("8.32%"));
        assert!(t.contains("2.11%"));
        assert!(t.contains("cplant24.nomax.all"));
        assert!(t.lines().count() == 4);
    }

    #[test]
    fn policy_table_renders_seconds_rounded() {
        let rows = vec![("cons.nomax".to_string(), 67_881.4)];
        let t = policy_table("Average Miss Time", "seconds", &rows);
        assert!(t.contains("67881"));
        assert!(!t.contains("67881.4"));
    }

    #[test]
    fn width_matrix_has_all_eleven_columns() {
        let rows = vec![("x".to_string(), [1.0; WIDTH_BUCKETS])];
        let t = width_matrix("Miss by Width", "seconds", &rows);
        let header = t.lines().nth(1).unwrap();
        for label in WIDTH_LABELS {
            assert!(header.contains(label), "missing {label}");
        }
    }

    #[test]
    fn csv_outputs_are_machine_readable() {
        let rows = vec![("a".to_string(), 0.5), ("b".to_string(), 1.25)];
        let csv = policy_table_csv("loc", &rows);
        assert_eq!(csv, "policy,loc\na,0.5\nb,1.25\n");

        let wrows = vec![("a".to_string(), [2.0; WIDTH_BUCKETS])];
        let wcsv = width_matrix_csv("miss", &wrows);
        assert!(wcsv.starts_with("policy,1,2,3-4"));
        assert_eq!(wcsv.lines().count(), 2);
        assert_eq!(wcsv.lines().nth(1).unwrap().split(',').count(), 12);
    }
}
