//! # fairsched-core
//!
//! The paper's contribution as a library: the fairness-directed scheduling
//! policies of §5 and the experiment machinery that evaluates them with the
//! hybrid fairshare fairness metric of §4.1.
//!
//! * [`policy`] — the nine named policies of §5.5 (plus an EASY comparison
//!   point) as declarative [`policy::PolicySpec`]s;
//! * [`runner`] — run one (trace, policy) pair and collect every metric the
//!   paper reports ([`runner::PolicyOutcome`]);
//! * [`sweep`] — fan a policy set out across threads (each policy's
//!   simulation is independent; `std::thread::scope` keeps it data-race
//!   free by construction), with per-policy panic fencing so one broken
//!   configuration cannot sink a whole comparison — and, for full
//!   design-space grids, a crash-safe sweep harness
//!   ([`sweep::run::run_sweep`]) with a durable checksummed journal,
//!   watchdog cancellation, bounded retry, and `--resume`;
//! * [`journal`] — the shared checksummed-JSONL framing (sealed lines,
//!   torn-write-tolerant replay) behind both the sweep journal and the
//!   online service's submission journal;
//! * [`report`] — fixed-width text rendering of the figure/table rows the
//!   experiment binaries print;
//! * [`gantt`] — ASCII schedule visualization (per-job Gantt bars and a
//!   machine-occupancy strip), the paper's Figures 1–2 for any schedule.
//!
//! ## Quickstart
//!
//! ```
//! use fairsched_core::policy::PolicySpec;
//! use fairsched_core::runner::run_policy;
//! use fairsched_workload::CplantModel;
//!
//! // A thin slice of the CPlant-like workload on a small machine.
//! let trace = CplantModel::new(42).with_scale(0.02).generate();
//! let baseline = PolicySpec::by_id("cplant24.nomax.all").unwrap();
//! let outcome = run_policy(&trace, &baseline, 1024);
//! println!(
//!     "{}: {:.1}% unfair, mean miss {:.0}s",
//!     outcome.policy,
//!     100.0 * outcome.fairness.percent_unfair(),
//!     outcome.fairness.average_miss_time(),
//! );
//! ```

pub mod gantt;
pub mod journal;
pub mod policy;
pub mod report;
pub mod runner;
pub mod sweep;

pub use policy::PolicySpec;
pub use runner::{
    run_policy, run_policy_faulted, try_run_policy, try_run_policy_traced, OutcomeMetrics,
    PolicyOutcome, PolicyRun, RunOptions,
};
pub use sweep::grid::{cell_fault_seed, FaultPoint, SweepPlan};
pub use sweep::journal::{CellRow, CellStatus, JournalReplay, JournalWriter};
pub use sweep::run::{run_sweep, GridState, SweepConfig, SweepSummary};
pub use sweep::{try_run_policies, try_run_policies_with, SweepError};
