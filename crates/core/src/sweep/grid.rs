//! Sweep grids: workload seeds × policies × fault configurations.
//!
//! A [`SweepPlan`] is the immutable description of a design-space sweep.
//! Every cell has a dense, stable index — `((seed · |policies|) +
//! policy) · |faults| + fault` — so a resumed run enumerates exactly the
//! same cells in exactly the same order as the run it continues, and the
//! journal can refer to a cell by one integer. Each cell's fault injection
//! uses a sub-seed derived from the plan's base seed and the cell index
//! ([`cell_fault_seed`], a splitmix64 mix), so fresh and resumed runs
//! inject identical faults without sharing any mutable state.

use crate::policy::PolicySpec;
use fairsched_sim::FaultConfig;

/// One named fault configuration of a sweep grid. The `config.seed` is a
/// *base* seed: every cell overrides it with [`cell_fault_seed`] so no two
/// cells share a fault timeline.
#[derive(Debug, Clone)]
pub struct FaultPoint {
    /// Short label journaled with every cell (e.g. "clean", "mtbf8h").
    pub label: String,
    /// The fault sources and base seed for this grid slice.
    pub config: FaultConfig,
}

impl FaultPoint {
    /// The all-off fault point every grid has by default.
    pub fn clean() -> Self {
        FaultPoint {
            label: "clean".to_string(),
            config: FaultConfig::default(),
        }
    }
}

/// The full design-space grid: N workload seeds × policies × fault points,
/// all sharing one immutable workload per seed.
#[derive(Debug, Clone)]
pub struct SweepPlan {
    /// Workload-generator seeds (one shared trace per seed).
    pub seeds: Vec<u64>,
    /// The policy compositions under test.
    pub policies: Vec<PolicySpec>,
    /// Fault configurations crossed with every (seed, policy) pair.
    pub faults: Vec<FaultPoint>,
    /// Workload scale factor passed to the generator.
    pub scale: f64,
    /// Machine size (nodes) for generation and simulation.
    pub nodes: u32,
    /// When set, every generated job's runtime estimate is replaced by its
    /// actual runtime before simulation — the "exact estimates" axis the
    /// size-based policy study crosses against the calibrated Figure 5–7
    /// over-estimation model (the generator's default).
    pub exact_estimates: bool,
}

/// One cell of the grid, identified by its dense index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cell {
    /// Dense index: `((seed_idx · |policies|) + policy_idx) · |faults| +
    /// fault_idx`.
    pub index: u64,
    /// Position in [`SweepPlan::seeds`].
    pub seed_idx: usize,
    /// Position in [`SweepPlan::policies`].
    pub policy_idx: usize,
    /// Position in [`SweepPlan::faults`].
    pub fault_idx: usize,
}

impl SweepPlan {
    /// Total cell count.
    pub fn len(&self) -> u64 {
        (self.seeds.len() * self.policies.len() * self.faults.len()) as u64
    }

    /// Whether the grid has no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The cell at `index` (panics when out of range).
    pub fn cell(&self, index: u64) -> Cell {
        assert!(index < self.len(), "cell index {index} out of range");
        let faults = self.faults.len() as u64;
        let policies = self.policies.len() as u64;
        Cell {
            index,
            seed_idx: (index / faults / policies) as usize,
            policy_idx: (index / faults % policies) as usize,
            fault_idx: (index % faults) as usize,
        }
    }

    /// Every cell, in index order.
    pub fn cells(&self) -> impl Iterator<Item = Cell> + '_ {
        (0..self.len()).map(|i| self.cell(i))
    }

    /// The fault configuration cell `cell` runs under: the fault point's
    /// sources with its base seed replaced by the cell's sub-seed.
    pub fn cell_faults(&self, cell: &Cell) -> FaultConfig {
        let point = &self.faults[cell.fault_idx];
        let mut cfg = point.config.clone();
        cfg.seed = cell_fault_seed(point.config.seed, cell.index);
        cfg
    }

    /// A stable fingerprint of the plan, journaled in the header line so a
    /// `--resume` against a journal written for a *different* grid is
    /// rejected instead of silently mixing results.
    pub fn fingerprint(&self) -> u64 {
        let mut desc = String::new();
        desc.push_str(&format!("scale={};nodes={};seeds=", self.scale, self.nodes));
        // Journal back-compat: plans predating the exact-estimates axis
        // (always modeled estimates) keep their original fingerprint, so
        // PR 6 journals still resume; only `exact_estimates: true` plans
        // fingerprint differently.
        if self.exact_estimates {
            desc.push_str("exact;");
        }
        for s in &self.seeds {
            desc.push_str(&format!("{s},"));
        }
        desc.push_str(";policies=");
        for p in &self.policies {
            desc.push_str(&format!("{},", p.id));
        }
        desc.push_str(";faults=");
        for f in &self.faults {
            let c = &f.config;
            desc.push_str(&format!(
                "{}:{:?}:{:?}:{}:{:?}:{},",
                f.label, c.node_mtbf, c.repair, c.job_crash_rate, c.resilience, c.seed
            ));
        }
        fnv1a(desc.as_bytes())
    }
}

/// splitmix64: a full-period bijective mixer. Used to derive per-cell fault
/// sub-seeds so every cell has an independent, reproducible fault timeline.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The fault sub-seed of cell `index` under base seed `base`. A pure
/// function of its inputs — resumed and fresh runs derive identical seeds
/// regardless of which cells already completed.
pub fn cell_fault_seed(base: u64, index: u64) -> u64 {
    splitmix64(base ^ splitmix64(index))
}

// The plan-fingerprint hash is the shared journal checksum; re-exported
// here because callers of this module reach for it alongside
// `cell_fault_seed`.
pub use crate::journal::fnv1a;

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> SweepPlan {
        SweepPlan {
            seeds: vec![1, 2, 3],
            policies: vec![
                PolicySpec::baseline(),
                PolicySpec::by_id("cons.nomax").unwrap(),
            ],
            faults: vec![
                FaultPoint::clean(),
                FaultPoint {
                    label: "crashy".into(),
                    config: FaultConfig {
                        job_crash_rate: 0.2,
                        seed: 9,
                        ..FaultConfig::default()
                    },
                },
            ],
            scale: 0.01,
            nodes: 1024,
            exact_estimates: false,
        }
    }

    #[test]
    fn cell_indexing_round_trips() {
        let p = plan();
        assert_eq!(p.len(), 12);
        for (i, cell) in p.cells().enumerate() {
            assert_eq!(cell.index, i as u64);
            assert_eq!(p.cell(cell.index), cell);
        }
        // Index layout: fault fastest, then policy, then seed.
        assert_eq!(
            p.cell(0),
            Cell {
                index: 0,
                seed_idx: 0,
                policy_idx: 0,
                fault_idx: 0
            }
        );
        assert_eq!(
            p.cell(11),
            Cell {
                index: 11,
                seed_idx: 2,
                policy_idx: 1,
                fault_idx: 1
            }
        );
    }

    #[test]
    fn fault_sub_seeds_are_distinct_and_pinned() {
        let p = plan();
        let seeds: Vec<u64> = p.cells().map(|c| p.cell_faults(&c).seed).collect();
        let unique: std::collections::HashSet<&u64> = seeds.iter().collect();
        assert_eq!(unique.len(), seeds.len(), "sub-seeds must not collide");
        // Pinned values: the derivation is part of the journal contract —
        // changing it silently would break resume determinism.
        assert_eq!(cell_fault_seed(0, 0), splitmix64(splitmix64(0)));
        assert_eq!(cell_fault_seed(9, 3), 2501910697915934370);
    }

    #[test]
    fn fingerprint_tracks_every_dimension() {
        let base = plan();
        let fp = base.fingerprint();
        assert_eq!(fp, plan().fingerprint(), "fingerprint is deterministic");
        let mut seeds = plan();
        seeds.seeds.push(4);
        assert_ne!(fp, seeds.fingerprint());
        let mut pol = plan();
        pol.policies.pop();
        assert_ne!(fp, pol.fingerprint());
        let mut faults = plan();
        faults.faults[1].config.job_crash_rate = 0.5;
        assert_ne!(fp, faults.fingerprint());
        let mut scale = plan();
        scale.scale = 0.02;
        assert_ne!(fp, scale.fingerprint());
        let mut exact = plan();
        exact.exact_estimates = true;
        assert_ne!(fp, exact.fingerprint());
    }
}
