//! Parallel multi-policy sweeps.
//!
//! Every policy's simulation is an independent pure function of
//! (trace, policy, nodes), so the sweep fans out with `std::thread::scope`:
//! scoped borrows make the shared trace readable from every worker with no
//! copies and no unsafe, and the compiler guarantees data-race freedom.
//! Results come back in input order regardless of completion order.
//!
//! Robustness: one policy panicking (a simulator bug, an invariant trip
//! surfaced as a panic, a pathological configuration) must not take the
//! other eight columns of a comparison down with it. [`try_run_policies`]
//! fences each worker with `catch_unwind` and returns per-policy
//! `Result`s.
//!
//! The submodules scale this from "one trace, N policies" to the full
//! design-space grid: [`grid`] enumerates seeds × policies × fault
//! configurations with a stable cell indexing, [`journal`] streams each
//! finished cell into a checksummed append-only JSONL journal, and [`run`]
//! drives the grid under a per-cell robustness envelope (watchdog
//! cancellation, bounded retry, panic quarantine) with `--resume` replaying
//! the journal instead of re-simulating completed cells.

pub mod grid;
pub mod journal;
pub mod run;

use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::policy::PolicySpec;
use crate::runner::{try_run_policy, PolicyOutcome, PolicyRun, RunOptions};
use fairsched_sim::FaultConfig;
use fairsched_workload::job::Job;

/// Why one policy of a sweep produced no outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepError {
    /// The paper identifier of the policy that failed.
    pub policy: String,
    /// The panic message (or a placeholder for non-string payloads).
    pub reason: String,
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "policy {} failed: {}", self.policy, self.reason)
    }
}

impl std::error::Error for SweepError {}

pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn fenced_run(
    trace: &[Job],
    policy: &PolicySpec,
    nodes: u32,
    opts: &RunOptions,
) -> Result<PolicyRun, SweepError> {
    // The closure only reads shared data and builds a fresh outcome, so a
    // panic cannot leave broken state visible to the other policies. Most
    // failures arrive as a typed `SimError` from the fallible runner; the
    // catch_unwind remains as a second fence against genuine bugs.
    match catch_unwind(AssertUnwindSafe(|| {
        try_run_policy(trace, policy, nodes, opts)
    })) {
        Ok(Ok(run)) => Ok(run),
        Ok(Err(e)) => Err(SweepError {
            policy: policy.id.to_string(),
            reason: e.to_string(),
        }),
        Err(payload) => Err(SweepError {
            policy: policy.id.to_string(),
            reason: panic_message(payload),
        }),
    }
}

/// Runs each policy on the trace with the full [`RunOptions`] machinery —
/// one simulation per policy feeds every requested report — in parallel,
/// preserving input order. A policy that fails (typed simulator error or
/// panic) yields an `Err` carrying the reason; the remaining policies are
/// unaffected.
pub fn try_run_policies_with(
    trace: &[Job],
    policies: &[PolicySpec],
    nodes: u32,
    opts: &RunOptions,
) -> Vec<Result<PolicyRun, SweepError>> {
    // Worker panics are caught and surfaced as `SweepError`s, so the global
    // hook's backtrace would only be stderr noise; silence it for the
    // duration. (Concurrent panics elsewhere in the process would also be
    // silenced for this window — an accepted trade for clean sweep output.)
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let results = if policies.len() <= 1 {
        policies
            .iter()
            .map(|p| fenced_run(trace, p, nodes, opts))
            .collect()
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = policies
                .iter()
                .map(|p| scope.spawn(move || fenced_run(trace, p, nodes, opts)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("sweep worker itself never panics"))
                .collect()
        })
    };
    std::panic::set_hook(prev);
    results
}

/// Runs each policy on the trace, in parallel, preserving input order.
/// A policy that fails yields an `Err` carrying the reason; the remaining
/// policies are unaffected. Convenience form of [`try_run_policies_with`]
/// that collects only the always-on [`PolicyOutcome`].
pub fn try_run_policies(
    trace: &[Job],
    policies: &[PolicySpec],
    nodes: u32,
    faults: &FaultConfig,
) -> Vec<Result<PolicyOutcome, SweepError>> {
    try_run_policies_with(
        trace,
        policies,
        nodes,
        &RunOptions::with_faults(faults.clone()),
    )
    .into_iter()
    .map(|r| r.map(|run| run.outcome))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_policy;
    use fairsched_workload::CplantModel;

    #[test]
    fn parallel_sweep_matches_serial_runs() {
        let trace = CplantModel::new(29).with_scale(0.02).generate();
        let policies = vec![
            PolicySpec::baseline(),
            PolicySpec::by_id("cons.nomax").unwrap(),
            PolicySpec::by_id("consdyn.72max").unwrap(),
        ];
        let parallel: Vec<_> = try_run_policies(&trace, &policies, 1024, &FaultConfig::default())
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        for (policy, outcome) in policies.iter().zip(&parallel) {
            let serial = run_policy(&trace, policy, 1024);
            assert_eq!(outcome.policy, serial.policy);
            assert_eq!(outcome.schedule, serial.schedule);
            assert_eq!(outcome.fairness, serial.fairness);
        }
    }

    #[test]
    fn results_preserve_input_order() {
        let trace = CplantModel::new(29).with_scale(0.01).generate();
        let policies = PolicySpec::paper_policies();
        let outcomes = try_run_policies(&trace, &policies, 1024, &FaultConfig::default());
        let names: Vec<String> = outcomes
            .iter()
            .map(|o| o.as_ref().unwrap().policy.clone())
            .collect();
        let expected: Vec<&str> = policies.iter().map(|p| p.id.as_ref()).collect();
        assert_eq!(names, expected);
    }

    #[test]
    fn empty_policy_set_is_fine() {
        let trace = CplantModel::new(1).with_scale(0.01).generate();
        assert!(try_run_policies(&trace, &[], 1024, &FaultConfig::default()).is_empty());
    }

    #[test]
    fn sweep_with_options_collects_optional_reports_once() {
        let trace = CplantModel::new(29).with_scale(0.01).generate();
        let policies = vec![
            PolicySpec::baseline(),
            PolicySpec::by_id("easy.nomax").unwrap(),
        ];
        let opts = RunOptions {
            per_user: true,
            equality: true,
            resilience: true,
            ..RunOptions::default()
        };
        for result in try_run_policies_with(&trace, &policies, 1024, &opts) {
            let run = result.unwrap();
            assert!(run.per_user.is_some());
            assert!(run.equality.is_some());
            assert!(run.resilience.is_some());
        }
    }

    #[test]
    fn a_panicking_policy_does_not_take_the_sweep_down() {
        // A job wider than the machine makes the simulator reject the run
        // with a typed error. With 8 nodes the CPlant trace contains such
        // jobs; the fenced sweep must report every policy as failed while
        // the same sweep on a full-size machine succeeds everywhere.
        let trace = CplantModel::new(3).with_scale(0.01).generate();
        let policies = vec![
            PolicySpec::baseline(),
            PolicySpec::by_id("cons.nomax").unwrap(),
        ];
        let results = try_run_policies(&trace, &policies, 8, &FaultConfig::default());
        assert_eq!(results.len(), 2);
        for (policy, result) in policies.iter().zip(&results) {
            let err = result.as_ref().unwrap_err();
            assert_eq!(err.policy, policy.id);
            assert!(
                err.reason.contains("nodes on a"),
                "error message survives: {err}"
            );
        }

        let ok = try_run_policies(&trace, &policies, 1024, &FaultConfig::default());
        assert!(ok.iter().all(|r| r.is_ok()));
    }

    #[test]
    fn faulted_sweep_threads_the_fault_config_through() {
        let trace = CplantModel::new(29).with_scale(0.01).generate();
        let policies = vec![PolicySpec::baseline()];
        let faults = FaultConfig {
            job_crash_rate: 0.3,
            seed: 7,
            ..FaultConfig::default()
        };
        let results = try_run_policies(&trace, &policies, 1024, &faults);
        let outcome = results[0].as_ref().unwrap();
        // Crashes force resubmissions, so the faulted run has more records.
        let clean = run_policy(&trace, &policies[0], 1024);
        assert!(outcome.schedule.records.len() > clean.schedule.records.len());
        assert!(outcome.schedule.records.iter().any(|r| r.interrupted));
    }
}
