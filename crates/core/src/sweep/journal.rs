//! The durable results journal: append-only, checksummed, schema-versioned
//! JSONL.
//!
//! Layout: one header line carrying the plan fingerprint and cell count,
//! then one line per *terminal* cell outcome (ok / failed / timed_out /
//! poisoned — in-process retries are not journaled). The wire discipline —
//! sealed `"crc"` lines, torn-write tolerance, schema-version skipping,
//! hand-rolled JSON (the workspace's serde is a deliberate no-op stub) —
//! lives in the shared [`crate::journal`] module, which the online
//! service's submission journal uses too. This module owns only the sweep
//! schema: what a cell row says and how a replay folds rows into resume
//! state.
//!
//! Floats are written with Rust's shortest-round-trip `Display` and read
//! back with `str::parse::<f64>`, which makes a replayed row's metrics
//! bit-identical to the run that produced them — the property the
//! kill-and-resume test pins.

use crate::journal::{
    escape, json_f64, json_f64_array, json_str, json_u32, json_u64, replay_lines, seal_line,
    LineWriter,
};
use crate::runner::OutcomeMetrics;
use fairsched_workload::categories::WIDTH_BUCKETS;
use std::path::Path;

/// The journal schema version this build writes.
pub const SCHEMA_VERSION: u64 = 1;

/// How a cell's run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellStatus {
    /// Simulation completed; metrics are present.
    Ok,
    /// The simulator rejected the cell with a typed error (deterministic —
    /// never retried).
    Failed,
    /// The watchdog cancelled the cell and every retry.
    TimedOut,
    /// The cell panicked; quarantined with its payload, never retried.
    Poisoned,
}

impl CellStatus {
    /// The status keyword as journaled (`ok`, `failed`, `timed_out`,
    /// `poisoned`).
    pub fn as_str(self) -> &'static str {
        match self {
            CellStatus::Ok => "ok",
            CellStatus::Failed => "failed",
            CellStatus::TimedOut => "timed_out",
            CellStatus::Poisoned => "poisoned",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "ok" => CellStatus::Ok,
            "failed" => CellStatus::Failed,
            "timed_out" => CellStatus::TimedOut,
            "poisoned" => CellStatus::Poisoned,
            _ => return None,
        })
    }
}

/// One journaled cell outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct CellRow {
    /// Dense cell index within the plan.
    pub cell: u64,
    /// Policy identifier (redundant with the index; kept for grep-ability).
    pub policy: String,
    /// Workload generator seed of the cell's trace.
    pub workload_seed: u64,
    /// Fault point label.
    pub fault: String,
    /// The derived per-cell fault sub-seed actually injected.
    pub fault_seed: u64,
    /// Terminal status.
    pub status: CellStatus,
    /// Attempts consumed (1 = first try succeeded).
    pub attempts: u32,
    /// Error / panic message for non-ok rows; empty for ok.
    pub detail: String,
    /// The scalar summary, present exactly when `status` is `Ok`.
    pub metrics: Option<OutcomeMetrics>,
}

fn fmt_array(vals: &[f64]) -> String {
    let inner: Vec<String> = vals.iter().map(|v| format!("{v}")).collect();
    format!("[{}]", inner.join(","))
}

fn header_body(fingerprint: u64, cells: u64) -> String {
    format!(
        "{{\"v\":{SCHEMA_VERSION},\"kind\":\"header\",\"fingerprint\":{fingerprint},\"cells\":{cells}"
    )
}

impl CellRow {
    fn body(&self) -> String {
        let mut b = format!(
            "{{\"v\":{SCHEMA_VERSION},\"kind\":\"cell\",\"cell\":{},\"policy\":\"{}\",\
             \"workload_seed\":{},\"fault\":\"{}\",\"fault_seed\":{},\"status\":\"{}\",\
             \"attempts\":{},\"detail\":\"{}\"",
            self.cell,
            escape(&self.policy),
            self.workload_seed,
            escape(&self.fault),
            self.fault_seed,
            self.status.as_str(),
            self.attempts,
            escape(&self.detail),
        );
        if let Some(m) = &self.metrics {
            b.push_str(&format!(
                ",\"percent_unfair\":{},\"average_miss_time\":{},\"average_turnaround\":{},\
                 \"loss_of_capacity\":{},\"utilization\":{},\"miss_by_width\":{},\
                 \"turnaround_by_width\":{}",
                m.percent_unfair,
                m.average_miss_time,
                m.average_turnaround,
                m.loss_of_capacity,
                m.utilization,
                fmt_array(&m.miss_by_width),
                fmt_array(&m.turnaround_by_width),
            ));
        }
        b
    }

    /// The sealed JSONL line (newline included).
    pub fn to_jsonl(&self) -> String {
        seal_line(&self.body())
    }

    /// Parses a *verified* body (checksum already checked by the caller).
    fn from_body(body: &str) -> Option<CellRow> {
        let status = CellStatus::parse(&json_str(body, "status")?)?;
        let metrics = if status == CellStatus::Ok {
            Some(OutcomeMetrics {
                percent_unfair: json_f64(body, "percent_unfair")?,
                average_miss_time: json_f64(body, "average_miss_time")?,
                average_turnaround: json_f64(body, "average_turnaround")?,
                loss_of_capacity: json_f64(body, "loss_of_capacity")?,
                utilization: json_f64(body, "utilization")?,
                miss_by_width: json_f64_array::<WIDTH_BUCKETS>(body, "miss_by_width")?,
                turnaround_by_width: json_f64_array::<WIDTH_BUCKETS>(body, "turnaround_by_width")?,
            })
        } else {
            None
        };
        Some(CellRow {
            cell: json_u64(body, "cell")?,
            policy: json_str(body, "policy")?,
            workload_seed: json_u64(body, "workload_seed")?,
            fault: json_str(body, "fault")?,
            fault_seed: json_u64(body, "fault_seed")?,
            status,
            attempts: json_u32(body, "attempts")?,
            detail: json_str(body, "detail")?,
            metrics,
        })
    }
}

/// Streams sealed rows into the journal. Every row is flushed to the
/// kernel as it is written (a process kill loses nothing), and the file is
/// fsynced every `batch` rows plus on [`JournalWriter::sync`]/drop (a
/// power cut loses at most one batch).
pub struct JournalWriter {
    out: LineWriter,
    pending: usize,
    batch: usize,
}

/// Rows per fsync batch: small enough that a crash re-runs at most a
/// handful of cells, large enough not to serialize the sweep on disk
/// flushes.
const SYNC_BATCH: usize = 8;

impl JournalWriter {
    /// Creates (truncates) `path` and writes the header line.
    pub fn create(path: &Path, fingerprint: u64, cells: u64) -> std::io::Result<Self> {
        let mut w = JournalWriter {
            out: LineWriter::create(path)?,
            pending: 0,
            batch: SYNC_BATCH,
        };
        w.write_body(&header_body(fingerprint, cells))?;
        w.sync()?;
        Ok(w)
    }

    /// Opens `path` for appending (resume: the header is already there).
    pub fn append(path: &Path) -> std::io::Result<Self> {
        Ok(JournalWriter {
            out: LineWriter::append(path)?,
            pending: 0,
            batch: SYNC_BATCH,
        })
    }

    fn write_body(&mut self, body: &str) -> std::io::Result<()> {
        let bytes = self.out.write_sealed(body)?;
        // Hand the row to the kernel right away: a SIGKILLed process then
        // loses nothing — only the fsync (power-cut durability) is
        // batched, because it is the expensive half.
        self.out.flush()?;
        fairsched_obs::counters::record_journal_bytes(bytes);
        self.pending += 1;
        if self.pending >= self.batch {
            self.sync()?;
        }
        Ok(())
    }

    /// Appends one sealed row.
    pub fn write_row(&mut self, row: &CellRow) -> std::io::Result<()> {
        self.write_body(&row.body())
    }

    /// Flushes buffered rows and fsyncs the file.
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.out.sync()?;
        self.pending = 0;
        Ok(())
    }
}

/// What a journal replay recovered.
#[derive(Debug, Clone, Default)]
pub struct JournalReplay {
    /// The header's plan fingerprint, when a valid header was found.
    pub fingerprint: Option<u64>,
    /// The header's declared cell count.
    pub cells: Option<u64>,
    /// Valid rows in file order. Duplicates (a cell journaled twice across
    /// a kill boundary) are kept; [`JournalReplay::latest_rows`] dedupes.
    pub rows: Vec<CellRow>,
    /// Malformed lines skipped (torn writes, checksum mismatches, unknown
    /// schema versions).
    pub skipped: usize,
}

impl JournalReplay {
    /// The set of cell indices with a journaled terminal outcome — what
    /// `--resume` skips.
    pub fn done_cells(&self) -> std::collections::HashSet<u64> {
        self.rows.iter().map(|r| r.cell).collect()
    }

    /// One row per cell (first write wins — a cell is only ever journaled
    /// again if a torn write hid the first row, in which case the rerun's
    /// row is the only *valid* one), sorted by cell index.
    pub fn latest_rows(&self) -> Vec<CellRow> {
        let mut seen = std::collections::HashSet::new();
        let mut out: Vec<CellRow> = self
            .rows
            .iter()
            .filter(|r| seen.insert(r.cell))
            .cloned()
            .collect();
        out.sort_by_key(|r| r.cell);
        out
    }
}

/// Replays a journal, skipping (with a warning, never a panic) every line
/// that fails framing, checksum, or schema-version checks. A missing file
/// replays as empty.
pub fn replay(path: &Path) -> std::io::Result<JournalReplay> {
    let mut replay = JournalReplay::default();
    let skipped = replay_lines(
        path,
        SCHEMA_VERSION,
        "the affected cell will re-run",
        |body| match json_str(body, "kind").as_deref() {
            Some("header") => {
                replay.fingerprint = json_u64(body, "fingerprint");
                replay.cells = json_u64(body, "cells");
                Ok(())
            }
            Some("cell") => match CellRow::from_body(body) {
                Some(row) => {
                    replay.rows.push(row);
                    Ok(())
                }
                None => Err("malformed cell row".into()),
            },
            _ => Err("unknown record kind".into()),
        },
    )?;
    replay.skipped = skipped;
    Ok(replay)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{fnv1a, unseal_line};

    fn row(cell: u64, status: CellStatus) -> CellRow {
        CellRow {
            cell,
            policy: "cplant24.nomax.all".into(),
            workload_seed: 42,
            fault: "clean".into(),
            fault_seed: 7,
            status,
            attempts: 1,
            detail: if status == CellStatus::Ok {
                String::new()
            } else {
                "it \"broke\"\nbadly".into()
            },
            metrics: (status == CellStatus::Ok).then_some(OutcomeMetrics {
                percent_unfair: 0.25,
                average_miss_time: 123.456789,
                average_turnaround: 1.0e6 + 0.125,
                loss_of_capacity: 0.015625,
                utilization: 0.87,
                miss_by_width: [0.0, 1.5, 2.25, 0.1, 7.0, 0.5, 0.0, 3.75, 9.0, 0.25, 1.0],
                turnaround_by_width: [
                    10.0, 20.0, 30.5, 40.0, 50.0, 60.0, 70.5, 80.0, 90.0, 100.0, 110.0,
                ],
            }),
        }
    }

    fn write_journal(path: &Path, rows: &[CellRow]) {
        let mut w = JournalWriter::create(path, 99, rows.len() as u64).unwrap();
        for r in rows {
            w.write_row(r).unwrap();
        }
        w.sync().unwrap();
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("fairsched-journal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn rows_round_trip_bit_exactly() {
        let path = tmp("roundtrip.jsonl");
        let rows = vec![row(0, CellStatus::Ok), row(1, CellStatus::Poisoned)];
        write_journal(&path, &rows);
        let replay = replay(&path).unwrap();
        assert_eq!(replay.fingerprint, Some(99));
        assert_eq!(replay.cells, Some(2));
        assert_eq!(replay.skipped, 0);
        assert_eq!(replay.rows, rows);
    }

    #[test]
    fn truncated_final_line_is_skipped_with_a_warning() {
        let path = tmp("truncated.jsonl");
        write_journal(&path, &[row(0, CellStatus::Ok), row(1, CellStatus::Ok)]);
        // Tear the last line mid-write, as a SIGKILL would.
        let text = std::fs::read_to_string(&path).unwrap();
        let torn = &text[..text.len() - 25];
        std::fs::write(&path, torn).unwrap();
        let mut got = None;
        let warnings = fairsched_obs::log::capture(|| got = Some(super::replay(&path).unwrap()));
        let replay = got.unwrap();
        assert_eq!(replay.rows.len(), 1);
        assert_eq!(replay.skipped, 1);
        assert_eq!(replay.done_cells().len(), 1);
        assert!(warnings
            .iter()
            .any(|(_, m)| m.contains("torn") && m.contains("re-run")));
    }

    #[test]
    fn corrupted_checksum_is_skipped_with_a_warning() {
        let path = tmp("corrupt.jsonl");
        write_journal(&path, &[row(0, CellStatus::Ok), row(1, CellStatus::Ok)]);
        // Flip a metric digit in row 0's line; its crc no longer matches.
        let text = std::fs::read_to_string(&path).unwrap();
        let corrupted = text.replacen("0.25", "0.35", 1);
        assert_ne!(text, corrupted, "corruption must hit");
        std::fs::write(&path, corrupted).unwrap();
        let mut got = None;
        let warnings = fairsched_obs::log::capture(|| got = Some(super::replay(&path).unwrap()));
        let replay = got.unwrap();
        assert_eq!(replay.rows.len(), 1);
        assert_eq!(replay.rows[0].cell, 1);
        assert_eq!(replay.skipped, 1);
        assert!(warnings.iter().any(|(_, m)| m.contains("checksum")));
    }

    #[test]
    fn unknown_schema_version_is_skipped_with_a_warning() {
        let path = tmp("version.jsonl");
        write_journal(&path, &[row(0, CellStatus::Ok)]);
        // Append a validly-sealed row from a "future" schema.
        let future = seal_line("{\"v\":999,\"kind\":\"cell\",\"cell\":5");
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str(&future);
        std::fs::write(&path, text).unwrap();
        let mut got = None;
        let warnings = fairsched_obs::log::capture(|| got = Some(super::replay(&path).unwrap()));
        let replay = got.unwrap();
        assert_eq!(replay.rows.len(), 1);
        assert_eq!(replay.skipped, 1);
        assert!(warnings.iter().any(|(_, m)| m.contains("schema version")));
        assert!(!replay.done_cells().contains(&5));
    }

    #[test]
    fn missing_file_replays_as_empty() {
        let replay = super::replay(&tmp("never-written.jsonl")).unwrap();
        assert!(replay.rows.is_empty());
        assert_eq!(replay.fingerprint, None);
    }

    #[test]
    fn latest_rows_dedupes_and_sorts() {
        let path = tmp("dedupe.jsonl");
        let mut first = row(3, CellStatus::Ok);
        first.attempts = 1;
        let mut dup = row(3, CellStatus::Ok);
        dup.attempts = 2;
        write_journal(&path, &[first.clone(), row(1, CellStatus::Failed), dup]);
        let replay = super::replay(&path).unwrap();
        let latest = replay.latest_rows();
        assert_eq!(latest.len(), 2);
        assert_eq!(latest[0].cell, 1);
        assert_eq!(latest[1].cell, 3);
        assert_eq!(latest[1].attempts, 1, "first write wins");
    }

    #[test]
    fn detail_strings_survive_escaping() {
        let r = row(0, CellStatus::Poisoned);
        let line = r.to_jsonl();
        let (body, crc) = unseal_line(line.trim_end()).unwrap();
        assert_eq!(fnv1a(body.as_bytes()), crc);
        let parsed = CellRow::from_body(body).unwrap();
        assert_eq!(parsed.detail, "it \"broke\"\nbadly");
        assert_eq!(parsed, r);
    }
}
